//! [`ChEngine`]: Consistent Hashing behind the model's [`DhtEngine`]
//! interface.
//!
//! The paper compares its model against CH (§4.3) but the two speak
//! different languages: the model reasons in split-tree *partitions*,
//! CH in arbitrary ring *arcs*. This adapter translates — every arc is
//! expressed exactly as a set of dyadic partitions
//! ([`Partition::cover_range`]), so the downstream layers that are
//! generic over `DhtEngine` (`KvStore`'s transfer replay, `SimDriver`'s
//! event pricing, the experiment harness) drive a CH ring through the
//! *same* code paths as the global and local approaches:
//!
//! * `create_vnode_with(snode, sink)` joins one physical node with the
//!   configured number of virtual servers and streams one `Transfer`
//!   event per partition piece the newcomer pulled from its previous
//!   owners (the report shim materialises the same list on demand).
//! * `remove_vnode_with` leaves the ring and streams the pieces
//!   inherited by the surviving successors the same way.
//! * `lookup`/`partitions_of` expose the current arc set as partitions,
//!   so the routing invariant ("a key lives exactly where lookup
//!   points") is checkable — and checked — identically across backends.
//!
//! The partition view is **derived, not stored**: the ring's point set is
//! the single source of truth, and every partition-oriented query tiles
//! the relevant arc with its *minimal* dyadic cover on demand (`lookup`
//! resolves its piece in O(Bh) arithmetic, `partitions_of` materialises
//! one node's arcs in O(k·Bh)). Hand-overs therefore synthesize their
//! transfer lists straight from the claimed intervals — no per-node
//! piece maps to split, rebalance or rescan, and the reported pieces are
//! always the coarsest exact tiling of what actually moved.
//!
//! CH has no groups; the whole ring is one region. Reports therefore
//! carry `GroupId::FIRST` as their container, which also makes the
//! simulator price CH like the global approach: one record, fully
//! serial — exactly the comparison the paper draws.

use crate::ring::{ArcClaim, ChNodeId, ChRing};
use domus_core::{
    BalanceSnapshot, CanonicalName, CreateOutcome, DhtConfig, DhtEngine, DhtError, GroupId,
    InvariantViolation, LedgeredSink, Pdr, PdrEntry, RebalanceSink, RemoveOutcome, SnodeId,
    SnodeLedger, Transfer, VnodeId,
};
use domus_hashspace::{HashSpace, Partition, Quota};
use std::collections::BTreeMap;

/// Consistent Hashing as a [`DhtEngine`] backend.
///
/// ```
/// use domus_ch::ChEngine;
/// use domus_core::{DhtConfig, DhtEngine, SnodeId};
/// use domus_hashspace::HashSpace;
///
/// let cfg = DhtConfig::new(HashSpace::new(32), 32, 1).unwrap();
/// let mut dht = ChEngine::with_seed(cfg, 8, 7);
/// for s in 0..4u32 {
///     dht.create_vnode(SnodeId(s)).unwrap();
/// }
/// let (partition, owner) = dht.lookup(0xBEEF).unwrap();
/// assert!(dht.partitions_of(owner).unwrap().contains(&partition));
/// assert!(dht.check_invariants().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ChEngine {
    ring: ChRing,
    cfg: DhtConfig,
    /// Hosting snode per node slot (slot = `ChNodeId` index = `VnodeId`
    /// index; slots are never reused, mirroring the engines' tombstones).
    hosts: Vec<CanonicalName>,
    /// Vnodes created per snode (for canonical `snode.local` names).
    per_snode: Vec<u32>,
    /// Incremental per-snode quota ledger (fed by the same transfers the
    /// reports carry, so it is exact).
    ledger: SnodeLedger,
}

/// Up to two half-open integer segments `[start, end)` — an arc's key
/// interval, split in two when it wraps through 0. Stack-allocated so
/// the per-event hot paths never build a `Vec` per claim.
#[derive(Debug, Clone, Copy)]
struct Segments {
    buf: [(u64, u128); 2],
    len: usize,
}

impl Segments {
    fn one(start: u64, end: u128) -> Self {
        Self { buf: [(start, end), (0, 0)], len: 1 }
    }

    fn two(a: (u64, u128), b: (u64, u128)) -> Self {
        Self { buf: [a, b], len: 2 }
    }

    fn as_slice(&self) -> &[(u64, u128)] {
        &self.buf[..self.len]
    }
}

impl ChEngine {
    /// A CH engine over `cfg`'s hash space with `virtual_servers` points
    /// per node, deterministically seeded.
    ///
    /// `cfg.pmin`/`cfg.vmin` do not constrain a ring; they are carried
    /// for the downstream layers that read the configuration.
    pub fn with_seed(cfg: DhtConfig, virtual_servers: u32, seed: u64) -> Self {
        Self {
            ring: ChRing::with_seed(cfg.hash_space(), virtual_servers, seed),
            cfg,
            hosts: Vec::new(),
            per_snode: Vec::new(),
            ledger: SnodeLedger::new(),
        }
    }

    /// The incremental per-snode quota ledger.
    pub fn ledger(&self) -> &SnodeLedger {
        &self.ledger
    }

    /// The underlying ring (read-only; mutate through the engine so the
    /// names and the ledger stay consistent).
    pub fn ring(&self) -> &ChRing {
        &self.ring
    }

    fn space(&self) -> HashSpace {
        self.ring.space()
    }

    /// The key interval of an arc `(from_excl, to_incl]` as half-open
    /// integer segments `[start, end)` (two when the arc wraps through 0).
    fn segments(space: HashSpace, from_excl: u64, to_incl: u64) -> Segments {
        if from_excl == to_incl {
            // A point's arc to itself is the whole circle.
            return Segments::one(0, space.size());
        }
        let end = to_incl as u128 + 1;
        if to_incl > from_excl {
            Segments::one(from_excl + 1, end)
        } else if from_excl == space.max_point() {
            Segments::one(0, end)
        } else {
            Segments::two((from_excl + 1, space.size()), (0, end))
        }
    }

    /// Streams the transfers of a batch of claims: every claimed interval
    /// changes hands as its minimal dyadic cover, piece by piece, with the
    /// ledger updated in the same pass. `join` moves peer → target; leave
    /// moves target → peer.
    fn emit_claims(
        space: HashSpace,
        hosts: &[CanonicalName],
        claims: &[ArcClaim],
        target: VnodeId,
        join: bool,
        sink: &mut LedgeredSink<'_>,
    ) {
        for claim in claims {
            let Some(peer_node) = claim.peer else {
                // No counterparty: the first point of an empty ring claims
                // the whole circle from nobody (no transfer — exactly like
                // the first vnode of the other engines).
                debug_assert!(join, "leaving the last node is rejected upstream");
                continue;
            };
            let peer = VnodeId(peer_node.0);
            let (from, to) = if join { (peer, target) } else { (target, peer) };
            let (from_snode, to_snode) = (hosts[from.index()].snode, hosts[to.index()].snode);
            for &(s, e) in Self::segments(space, claim.from_excl, claim.to_incl).as_slice() {
                Partition::for_each_cover(space, s, e, &mut |partition| {
                    sink.transfer(Transfer { partition, from, to }, from_snode, to_snode);
                });
            }
        }
    }

    /// The minimal dyadic tiling of one node's current arcs, in
    /// hash-space order — O(k·Bh), derived from the ring.
    fn tiles_of(&self, node: ChNodeId) -> Vec<Partition> {
        let space = self.space();
        let mut out = Vec::new();
        for &p in self.ring.points_of(node) {
            let (from_excl, to_incl, owner) =
                self.ring.arc_containing(p).expect("a live node's point resolves");
            debug_assert_eq!(owner, node, "a point's arc belongs to its node");
            debug_assert_eq!(to_incl, p);
            for &(s, e) in Self::segments(space, from_excl, to_incl).as_slice() {
                out.extend(Partition::cover_range(space, s, e));
            }
        }
        out.sort_unstable_by_key(|p| p.start(space));
        out
    }

    fn ensure_live(&self, v: VnodeId) -> Result<ChNodeId, DhtError> {
        let node = ChNodeId(v.0);
        if self.ring.is_live(node) {
            Ok(node)
        } else {
            Err(DhtError::UnknownVnode(v))
        }
    }
}

impl DhtEngine for ChEngine {
    fn config(&self) -> &DhtConfig {
        &self.cfg
    }

    fn vnode_count(&self) -> usize {
        self.ring.node_count()
    }

    fn group_count(&self) -> usize {
        1
    }

    fn create_vnode_with(
        &mut self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<CreateOutcome, DhtError> {
        let k = self.ring.virtual_servers_per_node();
        let (node, claims) = self.ring.join_with_points_reporting(k);
        let v = VnodeId(node.0);
        debug_assert_eq!(v.index(), self.hosts.len(), "ring slots are dense");
        if self.per_snode.len() <= snode.index() {
            self.per_snode.resize(snode.index() + 1, 0);
        }
        let local = self.per_snode[snode.index()];
        self.per_snode[snode.index()] += 1;
        self.hosts.push(CanonicalName { snode, local });
        self.ledger.vnode_created(snode);
        if self.ring.node_count() == 1 {
            // The first node claimed the whole circle from nobody.
            self.ledger.gain(snode, Quota::ONE);
        }
        {
            let mut ls = LedgeredSink::new(sink, &mut self.ledger);
            Self::emit_claims(self.ring.space(), &self.hosts, &claims, v, true, &mut ls);
        }
        Ok(CreateOutcome {
            vnode: v,
            group: Some(GroupId::FIRST),
            group_size_after: self.ring.node_count(),
        })
    }

    fn remove_vnode_with(
        &mut self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<RemoveOutcome, DhtError> {
        let node = self.ensure_live(v)?;
        if self.ring.node_count() == 1 {
            return Err(DhtError::LastVnode);
        }
        let claims = self.ring.leave_reporting(node);
        {
            let mut ls = LedgeredSink::new(sink, &mut self.ledger);
            Self::emit_claims(self.ring.space(), &self.hosts, &claims, v, false, &mut ls);
        }
        self.ledger.vnode_killed(self.hosts[v.index()].snode);
        Ok(RemoveOutcome { group: Some(GroupId::FIRST) })
    }

    fn lookup(&self, point: u64) -> Option<(Partition, VnodeId)> {
        let space = self.space();
        let (from_excl, to_incl, owner) = self.ring.arc_containing(point)?;
        // The piece is resolved within the arc segment holding the point —
        // pure arithmetic over the minimal cover, no stored view.
        for &(s, e) in Self::segments(space, from_excl, to_incl).as_slice() {
            if (point as u128) >= (s as u128) && (point as u128) < e {
                let piece = Partition::cover_piece_containing(space, s, e, point);
                return Some((piece, VnodeId(owner.0)));
            }
        }
        unreachable!("the arc containing a point covers it");
    }

    fn for_each_successor(&self, point: u64, f: &mut dyn FnMut(VnodeId) -> bool) {
        // Walk successor *arcs* directly off the ring — one visit per arc
        // instead of one per derived dyadic piece, same owner sequence.
        let space = self.space();
        let Some((_, first_to, owner)) = self.ring.arc_containing(point) else { return };
        if !f(VnodeId(owner.0)) {
            return;
        }
        let mut to = first_to;
        loop {
            let next = if to == space.max_point() { 0 } else { to + 1 };
            let (_, arc_to, owner) =
                self.ring.arc_containing(next).expect("a live ring covers the circle");
            if arc_to == first_to {
                return; // wrapped to the starting arc
            }
            if !f(VnodeId(owner.0)) {
                return;
            }
            to = arc_to;
        }
    }

    fn for_each_vnode(&self, f: &mut dyn FnMut(VnodeId)) {
        self.ring.for_each_node(&mut |n| f(VnodeId(n.0)));
    }

    fn name_of(&self, v: VnodeId) -> Result<CanonicalName, DhtError> {
        self.ensure_live(v)?;
        Ok(self.hosts[v.index()])
    }

    fn snode_of(&self, v: VnodeId) -> Result<SnodeId, DhtError> {
        Ok(self.name_of(v)?.snode)
    }

    fn partitions_of(&self, v: VnodeId) -> Result<Vec<Partition>, DhtError> {
        let node = self.ensure_live(v)?;
        Ok(self.tiles_of(node))
    }

    fn quota_of(&self, v: VnodeId) -> Result<f64, DhtError> {
        let node = self.ensure_live(v)?;
        Ok(self.ring.quota_of(node))
    }

    fn for_each_quota(&self, f: &mut dyn FnMut(f64)) {
        self.ring.for_each_node(&mut |n| f(self.ring.quota_of(n)));
    }

    fn vnode_quota_relstd_pct(&self) -> f64 {
        self.ring.node_quota_relstd_pct()
    }

    fn pdr_of(&self, v: VnodeId) -> Result<Pdr, DhtError> {
        self.ensure_live(v)?;
        // One region: the record visible anywhere covers every node, like
        // the global approach's GPDR.
        let entries = self
            .vnodes()
            .into_iter()
            .map(|v| PdrEntry {
                vnode: self.hosts[v.index()],
                partitions: self.tiles_of(ChNodeId(v.0)).len() as u64,
            })
            .collect();
        Ok(Pdr::new(entries))
    }

    fn record_shape_of(&self, v: VnodeId) -> Result<(u64, u64), DhtError> {
        self.ensure_live(v)?;
        // One region spanning every node; participants are the distinct
        // hosting snodes — both maintained incrementally, O(1).
        Ok((self.ring.node_count() as u64, self.ledger.snode_count() as u64))
    }

    fn balance_snapshot(&self) -> BalanceSnapshot {
        let v = self.ring.node_count();
        let space = self.space();
        BalanceSnapshot {
            vnodes: v,
            groups: 1,
            snodes: self.ledger.snode_count(),
            vnode_relstd_pct: self.ring.node_quota_relstd_pct(),
            snode_relstd_pct: self.ledger.relstd_pct(),
            max_quota_over_ideal: self.ring.max_arc() as f64 / space.size() as f64 * v as f64,
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        // Incremental arc bookkeeping vs recomputation, and exact circle
        // coverage (the ring's own G1 analogue).
        self.ring.verify().map_err(InvariantViolation::Coverage)?;
        let space = self.space();
        if self.ring.node_count() == 0 {
            return Ok(());
        }
        // The derived partition view must tile R_h exactly…
        let mut total: u128 = 0;
        for v in self.vnodes() {
            let tiles = self.tiles_of(ChNodeId(v.0));
            let from_tiles: u128 = tiles.iter().map(|p| p.size(space)).sum();
            total += from_tiles;
            // …agree with the ring's exact arc quotas, vnode by vnode…
            let from_arcs = self.ring.arc_of(ChNodeId(v.0));
            if from_tiles != from_arcs {
                return Err(InvariantViolation::RoutingMismatch {
                    vnode: v,
                    detail: format!(
                        "partition view holds {from_tiles} points, arc quota says {from_arcs}"
                    ),
                });
            }
            // …and route every piece back to its holder.
            for piece in &tiles {
                match self.lookup(piece.start(space)) {
                    Some((q, owner)) if owner == v && q == *piece => {}
                    other => {
                        return Err(InvariantViolation::RoutingMismatch {
                            vnode: v,
                            detail: format!("piece {piece} routed to {other:?}"),
                        });
                    }
                }
            }
        }
        if total != space.size() {
            return Err(InvariantViolation::Coverage(format!(
                "partition view covers {total} of {} points",
                space.size()
            )));
        }
        // The incremental snode ledger matches a per-arc recomputation.
        let mut fresh: BTreeMap<SnodeId, Quota> = BTreeMap::new();
        for v in self.vnodes() {
            let e = fresh.entry(self.hosts[v.index()].snode).or_insert(Quota::ZERO);
            for piece in self.tiles_of(ChNodeId(v.0)) {
                *e = *e + piece.quota();
            }
        }
        if fresh.len() != self.ledger.snode_count()
            || self.ledger.iter().any(|(s, share)| fresh.get(&s) != Some(&share.quota))
        {
            return Err(InvariantViolation::Coverage(
                "snode ledger drifted from the partition view".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(seed: u64) -> ChEngine {
        let cfg = DhtConfig::new(HashSpace::new(32), 32, 1).unwrap();
        ChEngine::with_seed(cfg, 8, seed)
    }

    #[test]
    fn first_vnode_owns_everything_with_no_transfers() {
        let mut e = engine(1);
        let (v, rep) = e.create_vnode(SnodeId(0)).unwrap();
        assert!(rep.transfers.is_empty(), "nobody to take from");
        assert_eq!(rep.group, Some(GroupId::FIRST));
        assert_eq!(e.quota_of(v).unwrap(), 1.0);
        let total: u128 = e.partitions_of(v).unwrap().iter().map(|p| p.size(e.space())).sum();
        assert_eq!(total, e.space().size());
        e.check_invariants().unwrap();
    }

    #[test]
    fn transfers_move_exactly_the_claimed_quota() {
        let mut e = engine(2);
        e.create_vnode(SnodeId(0)).unwrap();
        let before = e.quotas();
        let (v, rep) = e.create_vnode(SnodeId(1)).unwrap();
        assert!(!rep.transfers.is_empty(), "a second node must claim arcs");
        let space = e.space();
        let moved: u128 = rep.transfers.iter().map(|t| t.partition.size(space)).sum();
        assert_eq!(moved, e.ring().arc_of(ChNodeId(v.0)), "transfer volume == quota claimed");
        assert!(rep.transfers.iter().all(|t| t.to == v));
        assert_eq!(before.iter().sum::<f64>(), 1.0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn lookup_agrees_with_partition_lists() {
        let mut e = engine(3);
        for s in 0..6u32 {
            e.create_vnode(SnodeId(s)).unwrap();
        }
        let space = e.space();
        for key in (0..space.max_point()).step_by(1 << 24) {
            let (p, v) = e.lookup(key).expect("covered");
            assert!(p.contains(key, space));
            assert!(e.partitions_of(v).unwrap().contains(&p), "{p} missing from {v}");
        }
    }

    #[test]
    fn removal_reports_draining_transfers() {
        let mut e = engine(4);
        let mut vs = Vec::new();
        for s in 0..5u32 {
            vs.push(e.create_vnode(SnodeId(s)).unwrap().0);
        }
        let victim = vs[2];
        let arc = e.ring().arc_of(ChNodeId(victim.0));
        let rep = e.remove_vnode(victim).unwrap();
        let space = e.space();
        let moved: u128 = rep.transfers.iter().map(|t| t.partition.size(space)).sum();
        assert_eq!(moved, arc, "everything the victim held must move out");
        assert!(rep.transfers.iter().all(|t| t.from == victim && t.to != victim));
        assert_eq!(e.lookup(0).map(|(_, v)| v == victim), Some(false));
        assert!(matches!(e.quota_of(victim), Err(DhtError::UnknownVnode(_))));
        e.check_invariants().unwrap();
    }

    #[test]
    fn churn_preserves_the_view() {
        let mut e = engine(12);
        let mut live = Vec::new();
        for s in 0..10u32 {
            live.push(e.create_vnode(SnodeId(s)).unwrap().0);
        }
        for round in 0..6usize {
            let v = live.remove(round % live.len());
            e.remove_vnode(v).unwrap();
            e.check_invariants().unwrap_or_else(|err| panic!("round {round}: {err}"));
            live.push(e.create_vnode(SnodeId(90 + round as u32)).unwrap().0);
            e.check_invariants().unwrap_or_else(|err| panic!("round {round}: {err}"));
        }
    }

    #[test]
    fn last_vnode_cannot_leave() {
        let mut e = engine(5);
        let (v, _) = e.create_vnode(SnodeId(0)).unwrap();
        assert_eq!(e.remove_vnode(v), Err(DhtError::LastVnode));
        assert!(matches!(e.remove_vnode(VnodeId(99)), Err(DhtError::UnknownVnode(_))));
    }

    #[test]
    fn canonical_names_count_per_snode() {
        let mut e = engine(6);
        let (a, _) = e.create_vnode(SnodeId(7)).unwrap();
        let (b, _) = e.create_vnode(SnodeId(7)).unwrap();
        let (c, _) = e.create_vnode(SnodeId(2)).unwrap();
        assert_eq!(e.name_of(a).unwrap().to_string(), "7.0");
        assert_eq!(e.name_of(b).unwrap().to_string(), "7.1");
        assert_eq!(e.name_of(c).unwrap().to_string(), "2.0");
        assert_eq!(e.snode_of(b).unwrap(), SnodeId(7));
    }

    #[test]
    fn pdr_covers_every_live_node() {
        let mut e = engine(7);
        for s in 0..4u32 {
            e.create_vnode(SnodeId(s)).unwrap();
        }
        let v = e.vnodes()[1];
        let pdr = e.pdr_of(v).unwrap();
        assert_eq!(pdr.len(), 4);
        let total_parts: u64 = pdr.entries().iter().map(|r| r.partitions).sum();
        let listed: u64 = e.vnodes().iter().map(|&v| e.partition_count(v).unwrap()).sum();
        assert_eq!(total_parts, listed);
    }

    #[test]
    fn full_64bit_space_engine_works() {
        let cfg = DhtConfig::paper_default();
        let mut e = ChEngine::with_seed(cfg, 32, 11);
        for s in 0..8u32 {
            e.create_vnode(SnodeId(s)).unwrap();
        }
        e.check_invariants().unwrap();
        let sum: f64 = e.quotas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn derived_view_is_minimal_per_arc() {
        // Each arc's tiling is the minimal dyadic cover: re-deriving it
        // straight from the ring's arc endpoints yields the same pieces.
        let mut e = engine(21);
        for s in 0..8u32 {
            e.create_vnode(SnodeId(s)).unwrap();
        }
        let space = e.space();
        for v in e.vnodes() {
            let tiles = e.partitions_of(v).unwrap();
            let mut expected = Vec::new();
            for &p in e.ring().points_of(ChNodeId(v.0)) {
                let (from, to, _) = e.ring().arc_containing(p).unwrap();
                for &(s, en) in ChEngine::segments(space, from, to).as_slice() {
                    expected.extend(Partition::cover_range(space, s, en));
                }
            }
            expected.sort_unstable_by_key(|p| p.start(space));
            assert_eq!(tiles, expected);
        }
    }
}

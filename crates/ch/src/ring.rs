//! The consistent-hashing ring with exact incremental quota tracking.

use domus_hashspace::HashSpace;
use domus_metrics::rel_std_dev_pct;
use domus_util::{DomusRng, Xoshiro256pp};
use std::collections::BTreeMap;

/// Handle of a physical node on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChNodeId(pub u32);

impl ChNodeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One ring arc changing hands during a join or leave: the key interval
/// `(from_excl, to_incl]`, walking clockwise.
///
/// `peer` is the node on the other side of the hand-over — the previous
/// owner on a join, the inheriting successor on a leave. It is `None`
/// only for the degenerate hand-overs that have no counterparty: the
/// first point of an empty ring (a join claims the whole circle from
/// nobody) and the last point of a ring (a leave returns the circle to
/// nobody).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcClaim {
    /// Exclusive clockwise start of the arc (the predecessor point).
    pub from_excl: u64,
    /// Inclusive clockwise end of the arc (the virtual-server point).
    pub to_incl: u64,
    /// The counterparty node, if any.
    pub peer: Option<ChNodeId>,
}

/// A consistent-hashing ring.
///
/// ```
/// use domus_ch::ChRing;
/// use domus_hashspace::HashSpace;
///
/// let mut ring = ChRing::with_seed(HashSpace::full(), 32, 42);
/// for _ in 0..64 {
///     ring.join();
/// }
/// // With k = 32 virtual servers per node the imbalance sits near
/// // 100/√32 ≈ 17.7%.
/// let q = ring.node_quota_relstd_pct();
/// assert!(q > 5.0 && q < 40.0, "σ̄(Qn) = {q}");
/// ```
#[derive(Debug, Clone)]
pub struct ChRing<R: DomusRng = Xoshiro256pp> {
    space: HashSpace,
    /// Virtual-server points: position → owning node.
    points: BTreeMap<u64, ChNodeId>,
    /// Exact per-node arc totals (sum = 2^Bh once the ring is non-empty).
    arc: Vec<u128>,
    /// Per-node virtual-server positions, in insertion order. Points are
    /// only ever removed wholesale at leave time, so a node's list stays
    /// valid for its whole life — departures walk it instead of scanning
    /// every point on the ring.
    points_of: Vec<Vec<u64>>,
    /// Live flag per node (leave() retires a node).
    live: Vec<bool>,
    /// Number of live nodes (the `live` vector is append-only).
    live_count: usize,
    /// Multiset of live nodes' arc totals: arc length → node count. Keeps
    /// `max_arc` (the peak-load metric) O(log V) under churn.
    arc_counts: BTreeMap<u128, u32>,
    /// Default virtual servers per node.
    k: u32,
    rng: R,
}

impl ChRing<Xoshiro256pp> {
    /// A ring over `space` with `k` virtual servers per homogeneous node,
    /// seeded deterministically.
    pub fn with_seed(space: HashSpace, k: u32, seed: u64) -> Self {
        Self::with_rng(space, k, Xoshiro256pp::seed_from_u64(seed))
    }
}

impl<R: DomusRng> ChRing<R> {
    /// A ring using the supplied RNG stream.
    pub fn with_rng(space: HashSpace, k: u32, rng: R) -> Self {
        assert!(k >= 1, "at least one virtual server per node");
        Self {
            space,
            points: BTreeMap::new(),
            arc: Vec::new(),
            points_of: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            arc_counts: BTreeMap::new(),
            k,
            rng,
        }
    }

    /// Adjusts one live node's arc total, keeping the arc multiset in step.
    fn set_arc(&mut self, node: ChNodeId, new: u128) {
        let old = self.arc[node.index()];
        if old == new {
            return;
        }
        let n = self.arc_counts.get_mut(&old).expect("live arc is in the multiset");
        *n -= 1;
        if *n == 0 {
            self.arc_counts.remove(&old);
        }
        *self.arc_counts.entry(new).or_insert(0) += 1;
        self.arc[node.index()] = new;
    }

    /// The largest arc held by any live node — O(log V).
    pub fn max_arc(&self) -> u128 {
        self.arc_counts.keys().next_back().copied().unwrap_or(0)
    }

    /// The hash space.
    pub fn space(&self) -> HashSpace {
        self.space
    }

    /// Default virtual servers per node.
    pub fn virtual_servers_per_node(&self) -> u32 {
        self.k
    }

    /// Number of live nodes — O(1).
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Total virtual-server points on the ring.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Distance from `a` to `b` walking clockwise (`b − a` mod `2^Bh`);
    /// a zero distance is reported as the full circle (a point's arc to
    /// itself is everything).
    fn arc_len(&self, a: u64, b: u64) -> u128 {
        if a == b {
            self.space.size()
        } else if b > a {
            (b - a) as u128
        } else {
            self.space.size() - (a - b) as u128
        }
    }

    /// The point owning `key` (its successor on the ring), if any.
    fn successor_point(&self, key: u64) -> Option<(u64, ChNodeId)> {
        self.points.range(key..).next().or_else(|| self.points.iter().next()).map(|(&p, &n)| (p, n))
    }

    /// The node responsible for `key`.
    pub fn lookup(&self, key: u64) -> Option<ChNodeId> {
        self.successor_point(key).map(|(_, n)| n)
    }

    /// The predecessor point of `p` walking counter-clockwise (wraps; `p`
    /// itself when it is the only point).
    fn predecessor_of(&self, p: u64) -> u64 {
        self.points
            .range(..p)
            .next_back()
            .or_else(|| self.points.iter().next_back())
            .map(|(&q, _)| q)
            .expect("non-empty ring has a predecessor")
    }

    /// Inserts one virtual-server point for `node`, maintaining quotas and
    /// reporting the claimed arc.
    fn insert_point(&mut self, node: ChNodeId) -> ArcClaim {
        // Redraw on (astronomically unlikely) collisions so arcs are never
        // zero-length ambiguous.
        let mut p = self.space.random_point(&mut self.rng);
        while self.points.contains_key(&p) {
            p = self.space.random_point(&mut self.rng);
        }
        self.points_of[node.index()].push(p);
        if self.points.is_empty() {
            self.points.insert(p, node);
            self.set_arc(node, self.arc[node.index()] + self.space.size());
            return ArcClaim { from_excl: p, to_incl: p, peer: None };
        }
        // The arc (pred, p] currently belongs to p's successor; it moves to
        // the new point.
        let pred = self.predecessor_of(p);
        let (_, succ_owner) = self.successor_point(p).expect("non-empty ring has a successor");
        let len = self.arc_len(pred, p);
        self.set_arc(succ_owner, self.arc[succ_owner.index()] - len);
        self.set_arc(node, self.arc[node.index()] + len);
        self.points.insert(p, node);
        ArcClaim { from_excl: pred, to_incl: p, peer: Some(succ_owner) }
    }

    /// Removes one virtual-server point, returning its arc to the
    /// successor and reporting the hand-over.
    fn remove_point(&mut self, p: u64) -> ArcClaim {
        let node = self.points.remove(&p).expect("point exists");
        if self.points.is_empty() {
            self.set_arc(node, self.arc[node.index()] - self.space.size());
            return ArcClaim { from_excl: p, to_incl: p, peer: None };
        }
        let pred = self.predecessor_of(p);
        let (_, succ_owner) = self.successor_point(p).expect("non-empty ring");
        let len = self.arc_len(pred, p);
        self.set_arc(node, self.arc[node.index()] - len);
        self.set_arc(succ_owner, self.arc[succ_owner.index()] + len);
        ArcClaim { from_excl: pred, to_incl: p, peer: Some(succ_owner) }
    }

    /// Joins a homogeneous node (`k` virtual servers).
    pub fn join(&mut self) -> ChNodeId {
        self.join_with_points(self.k)
    }

    /// Joins a node with an explicit virtual-server count — the CFS recipe
    /// for heterogeneity ("allocating to each node a different number of
    /// virtual servers").
    pub fn join_with_points(&mut self, points: u32) -> ChNodeId {
        self.join_with_points_reporting(points).0
    }

    /// [`Self::join_with_points`], additionally reporting the arcs the
    /// newcomer claimed from other nodes (self-claims between the
    /// newcomer's own points are omitted — nothing changes hands).
    pub fn join_with_points_reporting(&mut self, points: u32) -> (ChNodeId, Vec<ArcClaim>) {
        assert!(points >= 1, "a node needs at least one virtual server");
        let node = ChNodeId(self.arc.len() as u32);
        self.arc.push(0);
        self.points_of.push(Vec::with_capacity(points as usize));
        self.live.push(true);
        self.live_count += 1;
        *self.arc_counts.entry(0).or_insert(0) += 1;
        let mut claims = Vec::with_capacity(points as usize);
        for _ in 0..points {
            let claim = self.insert_point(node);
            if claim.peer != Some(node) {
                claims.push(claim);
            }
        }
        (node, claims)
    }

    /// Joins a node with `weight` × the default virtual servers (≥ 1).
    pub fn join_weighted(&mut self, weight: f64) -> ChNodeId {
        assert!(weight > 0.0 && weight.is_finite());
        let points = ((self.k as f64 * weight).round() as u32).max(1);
        self.join_with_points(points)
    }

    /// Removes a node and all its points.
    pub fn leave(&mut self, node: ChNodeId) {
        self.leave_impl(node, None);
    }

    /// [`Self::leave`], additionally reporting the arcs handed to the
    /// surviving successors. Arcs that cascade through the departing
    /// node's own remaining points are reported once, against their final
    /// surviving recipient.
    pub fn leave_reporting(&mut self, node: ChNodeId) -> Vec<ArcClaim> {
        let mut claims = Vec::new();
        self.leave_impl(node, Some(&mut claims));
        claims
    }

    fn leave_impl(&mut self, node: ChNodeId, mut claims: Option<&mut Vec<ArcClaim>>) {
        assert!(self.is_live(node), "unknown or dead node");
        // The node's own point list — no O(P) sweep over the whole ring.
        let mine = std::mem::take(&mut self.points_of[node.index()]);
        if let Some(claims) = claims.as_deref_mut() {
            claims.reserve(mine.len());
        }
        for p in mine {
            let claim = self.remove_point(p);
            if claim.peer != Some(node) {
                if let Some(claims) = claims.as_deref_mut() {
                    claims.push(claim);
                }
            }
        }
        self.live[node.index()] = false;
        self.live_count -= 1;
        debug_assert_eq!(self.arc[node.index()], 0);
        let zeros = self.arc_counts.get_mut(&0).expect("drained node holds a zero arc");
        *zeros -= 1;
        if *zeros == 0 {
            self.arc_counts.remove(&0);
        }
    }

    /// `true` iff `node` exists and has not left.
    pub fn is_live(&self, node: ChNodeId) -> bool {
        self.live.get(node.index()).copied().unwrap_or(false)
    }

    /// A live node's virtual-server positions (insertion order).
    pub fn points_of(&self, node: ChNodeId) -> &[u64] {
        &self.points_of[node.index()]
    }

    /// The arc `(from_excl, to_incl]` responsible for `key`, with its
    /// owner — the interval a lookup resolves through, `O(log P)`.
    pub fn arc_containing(&self, key: u64) -> Option<(u64, u64, ChNodeId)> {
        let (to_incl, owner) = self.successor_point(key)?;
        let from_excl = self.predecessor_of(to_incl);
        Some((from_excl, to_incl, owner))
    }

    /// Live node handles, in join order.
    pub fn nodes(&self) -> Vec<ChNodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        self.for_each_node(&mut |n| out.push(n));
        out
    }

    /// Visits every live node handle in join order — the allocation-free
    /// primitive behind [`ChRing::nodes`].
    pub fn for_each_node(&self, f: &mut dyn FnMut(ChNodeId)) {
        for i in 0..self.live.len() {
            if self.live[i] {
                f(ChNodeId(i as u32));
            }
        }
    }

    /// Exact quota of a node (fraction of `R_h`).
    pub fn quota_of(&self, node: ChNodeId) -> f64 {
        self.arc[node.index()] as f64 / self.space.size() as f64
    }

    /// Exact arc total of a node, in points of `R_h`.
    pub fn arc_of(&self, node: ChNodeId) -> u128 {
        self.arc[node.index()]
    }

    /// Quotas of all live nodes, in id order (Σ = 1 once non-empty).
    pub fn quotas(&self) -> Vec<f64> {
        self.arc
            .iter()
            .zip(&self.live)
            .filter(|(_, &l)| l)
            .map(|(&a, _)| a as f64 / self.space.size() as f64)
            .collect()
    }

    /// `σ̄(Qn, Q̄n)` in percent over live nodes — the figure-9 metric.
    pub fn node_quota_relstd_pct(&self) -> f64 {
        rel_std_dev_pct(self.quotas())
    }

    /// Recomputes all arcs from scratch (O(P)); test oracle for the
    /// incremental bookkeeping.
    pub fn recomputed_arcs(&self) -> Vec<u128> {
        let mut out = vec![0u128; self.arc.len()];
        if self.points.is_empty() {
            return out;
        }
        let pts: Vec<(u64, ChNodeId)> = self.points.iter().map(|(&p, &n)| (p, n)).collect();
        for (i, &(p, n)) in pts.iter().enumerate() {
            let pred = if i == 0 { pts[pts.len() - 1].0 } else { pts[i - 1].0 };
            out[n.index()] += self.arc_len(pred, p);
        }
        out
    }

    /// Verifies the incremental arcs against a full recomputation and that
    /// they tile the ring exactly, plus the O(1)/O(log V) bookkeeping
    /// (live count, per-node point lists, arc multiset).
    pub fn verify(&self) -> Result<(), String> {
        let fresh = self.recomputed_arcs();
        if fresh != self.arc {
            return Err("incremental arcs drifted from recomputation".into());
        }
        let total: u128 = self.arc.iter().sum();
        let expected = if self.points.is_empty() { 0 } else { self.space.size() };
        if total != expected {
            return Err(format!("arcs cover {total}, expected {expected}"));
        }
        let live = self.live.iter().filter(|&&l| l).count();
        if live != self.live_count {
            return Err(format!("live counter {} vs {live} live flags", self.live_count));
        }
        let mut counts: BTreeMap<u128, u32> = BTreeMap::new();
        for (i, &a) in self.arc.iter().enumerate() {
            if self.live[i] {
                *counts.entry(a).or_insert(0) += 1;
            }
        }
        if counts != self.arc_counts {
            return Err("arc multiset drifted from live arcs".into());
        }
        for (i, mine) in self.points_of.iter().enumerate() {
            let listed: std::collections::BTreeSet<u64> = mine.iter().copied().collect();
            let actual: std::collections::BTreeSet<u64> =
                self.points.iter().filter(|(_, n)| n.index() == i).map(|(&p, _)| p).collect();
            if listed != actual {
                return Err(format!("node n{i}: point list drifted from the ring"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(k: u32, seed: u64) -> ChRing {
        ChRing::with_seed(HashSpace::new(32), k, seed)
    }

    #[test]
    fn single_node_owns_everything() {
        let mut r = ring(4, 1);
        let n = r.join();
        assert_eq!(r.quota_of(n), 1.0);
        assert_eq!(r.node_count(), 1);
        assert_eq!(r.point_count(), 4);
        r.verify().unwrap();
    }

    #[test]
    fn incremental_quota_matches_recomputation_through_growth() {
        let mut r = ring(8, 7);
        for _ in 0..100 {
            r.join();
            r.verify().unwrap();
        }
        assert_eq!(r.point_count(), 800);
    }

    #[test]
    fn quotas_sum_to_one() {
        let mut r = ring(16, 3);
        for _ in 0..50 {
            r.join();
        }
        let total: f64 = r.quotas().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_agrees_with_arc_ownership() {
        let mut r = ring(4, 11);
        for _ in 0..10 {
            r.join();
        }
        // Sample keys; each must route to a live node, and routing must be
        // stable under repetition.
        for key in (0..u32::MAX as u64).step_by(1 << 26) {
            let a = r.lookup(key).unwrap();
            let b = r.lookup(key).unwrap();
            assert_eq!(a, b);
            assert!(a.index() < 10);
        }
    }

    #[test]
    fn leave_returns_arcs() {
        let mut r = ring(8, 13);
        let _a = r.join();
        let b = r.join();
        let _c = r.join();
        r.leave(b);
        r.verify().unwrap();
        assert_eq!(r.node_count(), 2);
        let total: f64 = r.quotas().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leave_everyone_empties_the_ring() {
        let mut r = ring(4, 17);
        let nodes: Vec<ChNodeId> = (0..5).map(|_| r.join()).collect();
        for n in nodes {
            r.leave(n);
            r.verify().unwrap();
        }
        assert_eq!(r.point_count(), 0);
        assert_eq!(r.lookup(123), None);
    }

    #[test]
    fn more_virtual_servers_balance_better() {
        // 100/√k scaling: k = 64 must beat k = 8 on average.
        let measure = |k: u32| {
            let mut acc = 0.0;
            for seed in 0..10 {
                let mut r = ChRing::with_seed(HashSpace::full(), k, seed);
                for _ in 0..128 {
                    r.join();
                }
                acc += r.node_quota_relstd_pct();
            }
            acc / 10.0
        };
        let rough = measure(8);
        let fine = measure(64);
        assert!(fine < rough * 0.7, "k=64 ({fine:.2}%) should clearly beat k=8 ({rough:.2}%)");
    }

    #[test]
    fn weighted_nodes_receive_proportional_quota() {
        let mut r = ring(32, 23);
        for _ in 0..20 {
            r.join();
        }
        let heavy = r.join_weighted(4.0);
        let hq = r.quota_of(heavy);
        let avg: f64 = r.quotas().iter().sum::<f64>() / r.node_count() as f64;
        // The weight-4 node should hold clearly more than average (≈4×; CH
        // is noisy so accept a broad band).
        assert!(hq > 1.8 * avg, "heavy quota {hq}, average {avg}");
        r.verify().unwrap();
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut r = ring(8, seed);
            for _ in 0..30 {
                r.join();
            }
            r.quotas()
        };
        assert_eq!(build(99), build(99));
        assert_ne!(build(99), build(100));
    }

    #[test]
    fn ch_imbalance_matches_one_over_sqrt_k() {
        // Average over seeds: σ̄(Qn) ≈ 100/√k within a loose band.
        for &k in &[32u32, 64] {
            let mut acc = 0.0;
            let runs = 15;
            for seed in 0..runs {
                let mut r = ChRing::with_seed(HashSpace::full(), k, seed);
                for _ in 0..256 {
                    r.join();
                }
                acc += r.node_quota_relstd_pct();
            }
            let mean = acc / runs as f64;
            let theory = 100.0 / (k as f64).sqrt();
            assert!(
                (mean / theory - 1.0).abs() < 0.35,
                "k={k}: measured {mean:.2}%, theory {theory:.2}%"
            );
        }
    }
}

//! # domus-ch
//!
//! The paper's reference model (§4.3): **Consistent Hashing** with virtual
//! servers — Karger et al., *"Consistent Hashing and random trees"*,
//! STOC '97, as deployed by CFS (Dabek et al., SOSP '01) for node
//! heterogeneity.
//!
//! "In CH, the hash table is divided in partitions, with random size, and
//! each partition is bound to a virtual server. Each physical node may host
//! more than one virtual server. To ensure a fair distribution of the hash
//! table among a set of N homogeneous physical nodes, CH requires that each
//! node receives at least k·log2 N partitions/virtual servers."
//!
//! The implementation is a classic hash ring: each node throws `k` random
//! points onto `R_h`; a point owns the arc from its predecessor (exclusive)
//! to itself (inclusive). Quotas are tracked *incrementally* and *exactly*
//! (u128 arc lengths), so the figure-9 sweep — measure `σ̄(Qn)` after every
//! one of 1024 joins, 100 runs — costs O(k·log P) per join instead of a
//! full O(P) rescan.
//!
//! Two views of the same ring:
//!
//! * [`ChRing`] — the raw ring, for hot measurement loops (fig9 sweeps).
//! * [`ChEngine`] — the ring behind [`domus_core::DhtEngine`], so the KV
//!   store, the simulator and the experiment harness drive CH through the
//!   exact code paths they use for the paper's global/local approaches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod ring;

pub use engine::ChEngine;
pub use ring::{ArcClaim, ChNodeId, ChRing};

/// CFS-style guidance: virtual servers per node for an `n`-node ring with
/// base factor `k` — `max(k, k·log2(n))`.
pub fn recommended_virtual_servers(k: u32, n: u64) -> u32 {
    if n <= 1 {
        return k.max(1);
    }
    let log = domus_util::bits::ceil_log2(n);
    (k * log).max(k).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_scales_logarithmically() {
        assert_eq!(recommended_virtual_servers(4, 1), 4);
        assert_eq!(recommended_virtual_servers(4, 2), 4);
        assert_eq!(recommended_virtual_servers(4, 1024), 40);
        assert_eq!(recommended_virtual_servers(1, 0), 1);
    }
}

//! # domus-kv
//!
//! An in-memory key-value store layered on the DHT model — the downstream
//! application the paper's DHT exists to serve. Keys hash onto `R_h`
//! (FNV-1a + finalizer); entries live at the vnode owning the point;
//! every rebalancement event's partition transfers are replayed as data
//! migration, so placement stays consistent with routing through
//! arbitrary join/leave churn.
//!
//! * [`store`] — the single-threaded store + migration engine.
//! * [`replicated`] — R-way cluster-aware replication: distinct-snode
//!   placement, quorum reads, crash survival, event-driven repair.
//! * [`service`] — a `RwLock` façade: concurrent reads, exclusive
//!   maintenance.
//! * [`workload`] — uniform and Zipf key generators for experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replicated;
pub mod service;
pub mod store;
pub mod workload;

pub use replicated::{CrashReport, QuorumRead, RepairReport, ReplicatedStore, RoutedQuorum};
pub use service::{KvService, RoutedGet};
pub use store::{KvStore, MigrationReport};
pub use workload::{UniformKeys, ZipfKeys};

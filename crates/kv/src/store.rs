//! The key-value store over a DHT engine.
//!
//! Entries live at the vnode owning the key's hash point. Rebalancement
//! operations (vnode creation/removal, group splits/merges) stream
//! partition [`Transfer`] events; the store applies each one as data
//! migration *while the operation runs* (a `RebalanceSink` wired between
//! the engine and the caller's sink), so the routing invariant — *a key
//! is always stored exactly where `lookup` points* — survives arbitrary
//! elasticity with no materialised transfer list. Migration volume is
//! surfaced per operation (the KV-MIGRATE experiment prices it).

use bytes::Bytes;
use domus_core::{
    CollectReport, CreateOutcome, CreateReport, DhtEngine, DhtError, EngineSnapshot, NullSink,
    RebalanceEvent, RebalanceSink, RemoveOutcome, RemoveReport, SnodeId, Transfer, VnodeId,
};
use domus_hashspace::hasher::Fnv1aHasher;
use domus_hashspace::{HashSpace, KeyHasher};
use std::collections::BTreeMap;

/// Per-point bucket: distinct keys hashing to the same point (rare but
/// legal) are chained, **sorted by key** so probes are binary searches
/// instead of linear scans.
pub(crate) type Bucket = Vec<(Bytes, Bytes)>;

/// Position of `key` in a sorted bucket (`Ok` = present).
#[inline]
pub(crate) fn bucket_search(bucket: &Bucket, key: &[u8]) -> Result<usize, usize> {
    bucket.binary_search_by(|(k, _)| k.as_ref().cmp(key))
}

/// What a rebalancement event moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Entries moved between vnodes.
    pub entries: u64,
    /// Payload bytes moved (keys + values).
    pub bytes: u64,
    /// Partition transfers that carried them.
    pub transfers: u64,
}

/// The in-line migration tap: applies every streamed [`Transfer`] to the
/// entry maps *while the engine operation runs*, accumulates the
/// [`MigrationReport`], and forwards every event to the caller's sink.
struct MigrationSink<'a> {
    space: HashSpace,
    data: &'a mut Vec<BTreeMap<u64, Bucket>>,
    out: &'a mut dyn RebalanceSink,
    moved: MigrationReport,
}

impl<'a> MigrationSink<'a> {
    fn new(
        space: HashSpace,
        data: &'a mut Vec<BTreeMap<u64, Bucket>>,
        out: &'a mut dyn RebalanceSink,
    ) -> Self {
        Self { space, data, out, moved: MigrationReport::default() }
    }

    fn report(&self) -> MigrationReport {
        self.moved
    }

    /// Applies one partition transfer: every entry whose point falls in
    /// the partition moves from `t.from` to `t.to` — pure range surgery
    /// (`split_off`/`append`), never a per-key rescan of the donor.
    fn apply_transfer(&mut self, t: &Transfer) {
        let start = t.partition.start(self.space);
        let end = t.partition.end(self.space); // u128: may be 2^Bh
        let donor = slot_of(self.data, t.from);
        // Detach [start, end) from the donor.
        let mut moved = donor.split_off(&start);
        if end <= u64::MAX as u128 {
            let mut keep = moved.split_off(&(end as u64));
            // Every key in `keep` (≥ end) exceeds every remaining donor key
            // (< start), so this is an O(keep) ordered append, not
            // re-insertion.
            donor.append(&mut keep);
        }
        self.moved.transfers += 1;
        for bucket in moved.values() {
            for (k, v) in bucket {
                self.moved.entries += 1;
                self.moved.bytes += (k.len() + v.len()) as u64;
            }
        }
        slot_of(self.data, t.to).extend(moved);
    }
}

impl RebalanceSink for MigrationSink<'_> {
    fn event(&mut self, e: RebalanceEvent) {
        if let RebalanceEvent::Transfer(t) = e {
            self.apply_transfer(&t);
        }
        self.out.event(e);
    }
}

/// The entry map of a vnode slot, growing the arena on demand.
pub(crate) fn slot_of(
    data: &mut Vec<BTreeMap<u64, Bucket>>,
    v: VnodeId,
) -> &mut BTreeMap<u64, Bucket> {
    if data.len() <= v.index() {
        data.resize_with(v.index() + 1, BTreeMap::new);
    }
    &mut data[v.index()]
}

/// A replicated-nothing, in-memory KV store routed by a DHT engine.
///
/// ```
/// use domus_core::{DhtConfig, LocalDht, SnodeId};
/// use domus_hashspace::HashSpace;
/// use domus_kv::KvStore;
///
/// let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
/// let mut kv = KvStore::new(LocalDht::with_seed(cfg, 1));
/// kv.join(SnodeId(0)).unwrap();
/// kv.put("user:42", "alice");
/// assert_eq!(kv.get(b"user:42").unwrap().as_ref(), b"alice");
/// ```
#[derive(Debug, Clone)]
pub struct KvStore<E: DhtEngine> {
    engine: E,
    hasher: Fnv1aHasher,
    /// Entry maps indexed by vnode arena slot.
    data: Vec<BTreeMap<u64, Bucket>>,
    entries: u64,
}

impl<E: DhtEngine> KvStore<E> {
    /// Wraps an engine (which may already contain vnodes — empty stores
    /// are attached to them).
    pub fn new(engine: E) -> Self {
        let mut slots = 0;
        engine.for_each_vnode(&mut |v| slots = slots.max(v.index() + 1));
        Self { engine, hasher: Fnv1aHasher, data: vec![BTreeMap::new(); slots], entries: 0 }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    fn slot(&mut self, v: VnodeId) -> &mut BTreeMap<u64, Bucket> {
        slot_of(&mut self.data, v)
    }

    /// The vnode responsible for a key.
    pub fn route(&self, key: &[u8]) -> Option<VnodeId> {
        let point = self.hasher.point(key, self.engine.config().hash_space());
        self.engine.lookup(point).map(|(_, v)| v)
    }

    /// Inserts or replaces an entry. Returns the previous value.
    ///
    /// # Panics
    /// Panics if the DHT has no vnodes yet (nothing can own the key).
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Option<Bytes> {
        let key = key.into();
        let value = value.into();
        let point = self.hasher.point(&key, self.engine.config().hash_space());
        let (_, v) = self.engine.lookup(point).expect("put on an empty DHT");
        let bucket = self.slot(v).entry(point).or_default();
        match bucket_search(bucket, &key) {
            Ok(i) => Some(std::mem::replace(&mut bucket[i].1, value)),
            Err(i) => {
                bucket.insert(i, (key, value));
                self.entries += 1;
                None
            }
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let point = self.hasher.point(key, self.engine.config().hash_space());
        let (_, v) = self.engine.lookup(point)?;
        let bucket = self.data.get(v.index())?.get(&point)?;
        let i = bucket_search(bucket, key).ok()?;
        Some(bucket[i].1.clone())
    }

    /// The vnode responsible for a key per a pinned routing snapshot
    /// (serving-plane route — never consults the live engine).
    pub fn route_at(&self, snap: &EngineSnapshot, key: &[u8]) -> Option<VnodeId> {
        snap.owner_of(self.hasher.point(key, snap.space()))
    }

    /// Looks a key up through a pinned routing snapshot: the bucket the
    /// *snapshot* routes to. A miss can mean the key is absent **or**
    /// that the pinned epoch is stale (the key migrated since); callers
    /// holding a [`domus_core::SnapshotCell`] disambiguate by re-pinning
    /// when the cell's epoch moved (see `KvService::get_routed`).
    pub fn get_at(&self, snap: &EngineSnapshot, key: &[u8]) -> Option<Bytes> {
        let point = self.hasher.point(key, snap.space());
        let v = snap.owner_of(point)?;
        let bucket = self.data.get(v.index())?.get(&point)?;
        let i = bucket_search(bucket, key).ok()?;
        Some(bucket[i].1.clone())
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        let point = self.hasher.point(key, self.engine.config().hash_space());
        let (_, v) = self.engine.lookup(point)?;
        let map = self.data.get_mut(v.index())?;
        let bucket = map.get_mut(&point)?;
        let idx = bucket_search(bucket, key).ok()?;
        let (_, value) = bucket.remove(idx);
        if bucket.is_empty() {
            map.remove(&point);
        }
        self.entries -= 1;
        Some(value)
    }

    /// Creates a vnode on `snode` and migrates the data its arrival pulls
    /// in.
    pub fn join(&mut self, snode: SnodeId) -> Result<(VnodeId, MigrationReport), DhtError> {
        let (out, mig) = self.join_with(snode, &mut NullSink)?;
        Ok((out.vnode, mig))
    }

    /// Creates a vnode, applying each streamed [`Transfer`] to the stored
    /// data *as it happens* and forwarding every event to `sink` — the
    /// allocation-free surface replay layers (the churn driver) price
    /// events through.
    pub fn join_with(
        &mut self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(CreateOutcome, MigrationReport), DhtError> {
        let space = self.engine.config().hash_space();
        let (outcome, mig) = {
            let mut migrate = MigrationSink::new(space, &mut self.data, sink);
            let outcome = self.engine.create_vnode_with(snode, &mut migrate)?;
            (outcome, migrate.report())
        };
        let _ = self.slot(outcome.vnode); // ensure backing map exists
        Ok((outcome, mig))
    }

    /// [`KvStore::join`], also surfacing the engine's [`CreateReport`] —
    /// for consumers that want the control-plane event list *as data*
    /// alongside the data-plane migration of one event.
    pub fn join_full(
        &mut self,
        snode: SnodeId,
    ) -> Result<(VnodeId, CreateReport, MigrationReport), DhtError> {
        let mut collect = CollectReport::new();
        let (outcome, mig) = self.join_with(snode, &mut collect)?;
        Ok((outcome.vnode, collect.into_create_report(&outcome), mig))
    }

    /// Removes a vnode and migrates its data out.
    pub fn leave(&mut self, v: VnodeId) -> Result<MigrationReport, DhtError> {
        self.leave_with(v, &mut NullSink).map(|(_, mig)| mig)
    }

    /// Removes a vnode, applying each streamed [`Transfer`] to the stored
    /// data as it happens and forwarding every event to `sink`.
    pub fn leave_with(
        &mut self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(RemoveOutcome, MigrationReport), DhtError> {
        let space = self.engine.config().hash_space();
        let (outcome, mig) = {
            let mut migrate = MigrationSink::new(space, &mut self.data, sink);
            let outcome = self.engine.remove_vnode_with(v, &mut migrate)?;
            (outcome, migrate.report())
        };
        debug_assert!(
            self.data.get(v.index()).map(BTreeMap::is_empty).unwrap_or(true),
            "transfers must drain the departing vnode"
        );
        Ok((outcome, mig))
    }

    /// [`KvStore::leave`], also surfacing the engine's [`RemoveReport`].
    pub fn leave_full(&mut self, v: VnodeId) -> Result<(RemoveReport, MigrationReport), DhtError> {
        let mut collect = CollectReport::new();
        let (outcome, mig) = self.leave_with(v, &mut collect)?;
        Ok((collect.into_remove_report(&outcome), mig))
    }

    /// Every stored key, in deterministic (owner slot, hash point, chain)
    /// order — the iteration order is stable across runs with the same
    /// history, so snapshots are directly comparable.
    pub fn snapshot_keys(&self) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(self.entries as usize);
        for map in &self.data {
            for bucket in map.values() {
                out.extend(bucket.iter().map(|(k, _)| k.clone()));
            }
        }
        out
    }

    /// Verifies that every stored entry sits exactly where routing points
    /// (test/debug oracle, O(entries)).
    pub fn verify_placement(&self) -> Result<(), String> {
        let space = self.engine.config().hash_space();
        let mut count = 0u64;
        for (slot, map) in self.data.iter().enumerate() {
            for (&point, bucket) in map {
                for (key, _) in bucket {
                    count += 1;
                    let expect = self.hasher.point(key, space);
                    if expect != point {
                        return Err(format!("key stored under wrong point {point}"));
                    }
                    match self.engine.lookup(point) {
                        Some((_, v)) if v.index() == slot => {}
                        other => {
                            return Err(format!(
                                "entry at slot {slot} point {point} routed to {other:?}"
                            ));
                        }
                    }
                }
            }
        }
        if count != self.entries {
            return Err(format!("entry counter {} != stored {count}", self.entries));
        }
        Ok(())
    }

    /// Entries per vnode, in creation order (storage-balance view).
    pub fn entries_per_vnode(&self) -> Vec<(VnodeId, u64)> {
        let mut out = Vec::with_capacity(self.engine.vnode_count());
        self.engine.for_each_vnode(&mut |v| {
            let n = self
                .data
                .get(v.index())
                .map(|m| m.values().map(|b| b.len() as u64).sum())
                .unwrap_or(0);
            out.push((v, n));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, LocalDht};
    use domus_hashspace::HashSpace;

    fn store() -> KvStore<LocalDht> {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let mut kv = KvStore::new(LocalDht::with_seed(cfg, 3));
        kv.join(SnodeId(0)).unwrap();
        kv
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut kv = store();
        assert_eq!(kv.put("k1", "v1"), None);
        assert_eq!(kv.put("k2", "v2"), None);
        assert_eq!(kv.get(b"k1").unwrap().as_ref(), b"v1");
        assert_eq!(kv.put("k1", "v1b").unwrap().as_ref(), b"v1");
        assert_eq!(kv.get(b"k1").unwrap().as_ref(), b"v1b");
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.remove(b"k1").unwrap().as_ref(), b"v1b");
        assert_eq!(kv.get(b"k1"), None);
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.remove(b"missing"), None);
        kv.verify_placement().unwrap();
    }

    #[test]
    fn data_follows_rebalancing_on_join() {
        let mut kv = store();
        for i in 0..500u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        let mut migrated_total = 0;
        for s in 1..12u32 {
            let (_, rep) = kv.join(SnodeId(s)).unwrap();
            migrated_total += rep.entries;
            kv.verify_placement().unwrap_or_else(|e| panic!("after join {s}: {e}"));
        }
        assert!(migrated_total > 0, "joins must pull data over");
        assert_eq!(kv.len(), 500);
        for i in 0..500u32 {
            assert_eq!(
                kv.get(format!("key:{i}").as_bytes()).unwrap().as_ref(),
                format!("value-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn data_survives_leaves() {
        let mut kv = store();
        for s in 1..10u32 {
            kv.join(SnodeId(s)).unwrap();
        }
        for i in 0..300u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        // Remove half the vnodes.
        let vnodes = kv.engine().vnodes();
        for v in vnodes.into_iter().take(5) {
            kv.leave(v).unwrap();
            kv.verify_placement().unwrap_or_else(|e| panic!("after leaving {v}: {e}"));
        }
        assert_eq!(kv.len(), 300);
        for i in 0..300u32 {
            assert!(kv.get(format!("key:{i}").as_bytes()).is_some(), "key:{i} lost");
        }
    }

    #[test]
    fn storage_roughly_tracks_quota() {
        let mut kv = store();
        for s in 1..8u32 {
            kv.join(SnodeId(s)).unwrap();
        }
        for i in 0..4000u32 {
            kv.put(format!("key:{i}"), "x");
        }
        // Each vnode's entry share should be within a loose band of its
        // quota (hashing noise at 4000 keys is a few percent).
        let total = kv.len() as f64;
        for (v, n) in kv.entries_per_vnode() {
            let quota = kv.engine().quota_of(v).unwrap();
            let share = n as f64 / total;
            assert!((share - quota).abs() < 0.05, "{v}: share {share:.3} vs quota {quota:.3}");
        }
    }

    #[test]
    fn empty_dht_routes_nothing() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let kv = KvStore::new(LocalDht::with_seed(cfg, 3));
        assert_eq!(kv.get(b"nope"), None);
        assert!(kv.is_empty());
        assert_eq!(kv.route(b"nope"), None);
    }

    #[test]
    fn churn_preserves_every_entry() {
        let mut kv = store();
        let mut next_snode = 1u32;
        for i in 0..200u32 {
            kv.put(format!("k{i}"), format!("v{i}"));
        }
        for round in 0..6 {
            for _ in 0..3 {
                kv.join(SnodeId(next_snode)).unwrap();
                next_snode += 1;
            }
            let vnodes = kv.engine().vnodes();
            kv.leave(vnodes[round % vnodes.len()]).unwrap();
            kv.verify_placement().unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        for i in 0..200u32 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap().as_ref(),
                format!("v{i}").as_bytes()
            );
        }
    }
}

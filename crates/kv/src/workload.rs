//! Workload generators for KV experiments and benches.
//!
//! The paper assumes "uniform data distributions in the DHT, and no
//! hotspots in the access to data" (§5) — [`UniformKeys`] is that
//! workload. [`ZipfKeys`] generates the skewed access patterns the paper
//! defers to future work ("the mechanisms of the model for fine-grain
//! balancement should also evolve, to deal with situations where access to
//! data … is non-uniform"), so the repository can already measure what
//! skew does to a quota-balanced DHT.

use domus_util::DomusRng;

/// Uniform random keys `key:<id>` over a dense id space.
#[derive(Debug, Clone)]
pub struct UniformKeys {
    universe: u64,
}

impl UniformKeys {
    /// Keys drawn uniformly from `universe` distinct ids.
    pub fn new(universe: u64) -> Self {
        assert!(universe > 0);
        Self { universe }
    }

    /// The `i`-th distinct key (for loading).
    pub fn key_at(&self, i: u64) -> String {
        format!("key:{i:012}")
    }

    /// A random key draw (for lookups).
    pub fn draw<R: DomusRng>(&self, rng: &mut R) -> String {
        self.key_at(rng.next_below(self.universe))
    }
}

/// Zipf-distributed keys over ranks `1..=universe` with exponent `s`,
/// sampled by inverting a precomputed CDF (exact, O(log n) per draw).
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// A Zipf(`s`) distribution over `universe` ranks.
    ///
    /// # Panics
    /// Panics if `universe == 0` or `s < 0`.
    pub fn new(universe: u64, s: f64) -> Self {
        assert!(universe > 0 && s >= 0.0);
        let mut cdf = Vec::with_capacity(universe as usize);
        let mut acc = 0.0;
        for rank in 1..=universe {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// The key for a rank (rank 0 = hottest).
    pub fn key_at(&self, rank: u64) -> String {
        format!("key:{rank:012}")
    }

    /// A Zipf-distributed key draw.
    pub fn draw<R: DomusRng>(&self, rng: &mut R) -> String {
        let u = rng.next_f64();
        let rank = self.cdf.partition_point(|&c| c < u);
        self.key_at(rank as u64)
    }
}

/// Fixed-size synthetic value of `len` bytes.
pub fn value_of(len: usize, tag: u64) -> Vec<u8> {
    let mut v = vec![0u8; len];
    for (i, b) in v.iter_mut().enumerate() {
        *b = ((tag as usize + i) % 251) as u8;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_util::Xoshiro256pp;

    #[test]
    fn uniform_draws_cover_the_universe() {
        let w = UniformKeys::new(16);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(w.draw(&mut rng));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let w = ZipfKeys::new(1000, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut head = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let k = w.draw(&mut rng);
            if k < w.key_at(10) {
                head += 1;
            }
        }
        // Under Zipf(1.0) over 1000 ranks, the top-10 ranks carry ≈ 39% of
        // the mass; uniform would give 1%.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.25, "head mass {frac}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let w = ZipfKeys::new(100, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let k = w.draw(&mut rng);
            let rank: u64 = k.trim_start_matches("key:").parse().unwrap();
            counts[(rank / 25) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..=12_000).contains(&c), "quartiles {counts:?}");
        }
    }

    #[test]
    fn values_are_deterministic() {
        assert_eq!(value_of(8, 1), value_of(8, 1));
        assert_ne!(value_of(8, 1), value_of(8, 2));
        assert_eq!(value_of(16, 0).len(), 16);
    }
}

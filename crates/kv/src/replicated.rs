//! Cluster-aware replication over any [`DhtEngine`].
//!
//! The plain [`crate::KvStore`] holds every entry exactly once: a
//! graceful leave migrates data out in-line, but an **ungraceful** crash
//! destroys whatever the failed snode held. [`ReplicatedStore`] closes
//! that gap with the replica policy the cluster-replication literature
//! (Ayyasamy & Sivanandam; Leslie et al.) layers on structured overlays:
//!
//! * **Placement** — each entry lives on `R` vnodes hosted by *distinct*
//!   snodes: the primary is the point's owner, the followers are found by
//!   walking successor partitions ([`DhtEngine::for_each_successor`]) and
//!   taking the first vnode of each previously unseen snode. Replicas are
//!   therefore never co-located on one snode, so a single snode crash can
//!   destroy at most one copy of any entry.
//! * **Reads** — [`ReplicatedStore::get`] probes the replica chain in
//!   placement order and returns the first copy found (fallback read);
//!   [`ReplicatedStore::get_quorum`] additionally counts the live copies
//!   against the majority quorum `⌊R/2⌋+1`, the availability figure the
//!   churn harness samples.
//! * **Repair from events** — membership operations stream
//!   [`RebalanceEvent`]s; the store collects each
//!   [`domus_core::Transfer`]'s partition (plus every `VnodeMigrated`
//!   fallout, which also arrives as transfers), extends each touched
//!   range *backwards* across up to `R`
//!   distinct predecessor snodes (a change at partition `Q` can only
//!   shift the follower sets of ranges whose successor walk reaches `Q`),
//!   and rebuilds replica placement for exactly those ranges — incremental
//!   re-replication, never a full keyspace rescan.
//! * **Crash** — [`ReplicatedStore::fail_snode_with`] destroys the failed
//!   snode's slots *before* driving [`DhtEngine::fail_snode`], then
//!   relocates the surviving copies onto the new replica chains without
//!   minting new ones (placement heals, redundancy does not), records the
//!   touched ranges as **pending**, and accounts exactly which keys had
//!   their last copy on the failed snode. A later
//!   [`ReplicatedStore::repair`] re-replicates the pending ranges back to
//!   full strength — the window between the two is where quorum
//!   availability measurably dips.
//! * **Durability** — every put/remove is appended to the per-snode
//!   [`SegmentedWal`] of each replica holder *as it is applied*, and
//!   every placement decision of a rebuild is logged too. A crash leaves
//!   the victim's log intact (it models the surviving disk), so
//!   [`ReplicatedStore::rejoin_snode`] can re-enrol the snode and
//!   **replay** its log — restoring keys whose last in-memory copy died
//!   with the crash (the `R = 1` loss class) — instead of rebuilding the
//!   snode wholesale from replicas. Replay re-homes every still-live key
//!   onto its current primary's log and then checkpoints the rejoined
//!   log, which is what lets segments truncate.
//! * **Anti-entropy** — each vnode slot carries an incrementally
//!   maintained bucket-digest map (XOR of [`entry_hash`] per bucket),
//!   updated by the same code paths that move data. Repair builds a
//!   per-partition [`DigestTree`] over the primary's and each follower's
//!   span from those digests and walks the Merkle diff, so only the
//!   buckets that actually diverge are shipped — the full-rebuild byte
//!   cost is reported alongside for comparison
//!   ([`RepairReport::bytes_shipped`] vs [`RepairReport::bytes_full`]).

use crate::store::{bucket_search, slot_of, Bucket};
use bytes::Bytes;
use domus_core::{
    CreateOutcome, DhtEngine, DhtError, EngineSnapshot, NullSink, RebalanceEvent, RebalanceSink,
    RemoveOutcome, RouteStats, SnapshotCell, SnodeId, VnodeId,
};
use domus_hashspace::hasher::Fnv1aHasher;
use domus_hashspace::{HashSpace, KeyHasher, Partition};
use domus_wal::{entry_hash, DigestTree, SegmentedWal, WalRecord};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// A half-open hash-space range `[start, end)` (`end` is `u128` because
/// the full space's top is `2^Bh`).
type Range = (u64, u128);

/// Forwards every event to the caller's sink while collecting the
/// hash-space ranges the operation touched (one per streamed transfer).
struct RangeTap<'a> {
    space: HashSpace,
    out: &'a mut dyn RebalanceSink,
    touched: Vec<Range>,
}

impl<'a> RangeTap<'a> {
    fn new(space: HashSpace, out: &'a mut dyn RebalanceSink) -> Self {
        Self { space, out, touched: Vec::new() }
    }
}

impl RebalanceSink for RangeTap<'_> {
    fn event(&mut self, e: RebalanceEvent) {
        if let RebalanceEvent::Transfer(t) = e {
            self.touched.push((t.partition.start(self.space), t.partition.end(self.space)));
        }
        self.out.event(e);
    }
}

/// What one [`ReplicatedStore::fail_snode_with`] crash did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashReport {
    /// Vnodes of the failed snode torn down.
    pub vnodes_failed: usize,
    /// Handle renames group-merge migrations applied to *survivors* while
    /// the crash was absorbed (`(old, new)`), for roster bookkeeping.
    pub renames: Vec<(VnodeId, VnodeId)>,
    /// Replica copies destroyed with the snode.
    pub copies_destroyed: u64,
    /// Keys whose **last** copy was destroyed — unrecoverable. Zero
    /// whenever `R ≥ 2` copies existed and at most this one snode was
    /// lost since the last repair.
    pub keys_lost: u64,
    /// Surviving copies relocated onto their new replica chains.
    pub copies_relocated: u64,
}

/// What one repair pass ([`ReplicatedStore::repair`] or the in-line
/// repair of a graceful membership change) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Disjoint hash-space ranges rebuilt.
    pub ranges: usize,
    /// Replica copies placed (moves + newly minted replicas).
    pub copies_placed: u64,
    /// Entry bytes actually shipped between replicas (digest-driven
    /// repair ships only divergent buckets; in-line rebuilds of graceful
    /// changes count everything they re-place).
    pub bytes_shipped: u64,
    /// Entry bytes a digest-less full rebuild of the same ranges would
    /// have shipped (every entry to every chain slot) — the baseline
    /// [`RepairReport::bytes_shipped`] is measured against.
    pub bytes_full: u64,
}

/// What one [`ReplicatedStore::rejoin_snode`] crash-recovery did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RejoinReport {
    /// Fresh vnodes the snode was re-enrolled with (its count at crash
    /// time).
    pub vnodes: usize,
    /// The re-enrolled vnodes' fresh handles, in creation order.
    pub handles: Vec<VnodeId>,
    /// WAL records scanned during replay (puts, removes, placements).
    pub wal_records: u64,
    /// Framed WAL bytes scanned during replay.
    pub wal_bytes: u64,
    /// Keys restored by replay: present in the log's final state but
    /// absent from every live replica — the copies a digest-less rebuild
    /// could never get back.
    pub recovered: u64,
    /// Records unreadable due to a framing error (torn frame stops the
    /// replay; always 0 for the in-process log).
    pub torn: u64,
    /// The in-line rebuild of the ranges the re-enrolment touched.
    pub repair: RepairReport,
}

/// One quorum read ([`ReplicatedStore::get_quorum`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumRead {
    /// The value, from the first replica holding a copy (`None` when no
    /// copy survives anywhere on the chain).
    pub value: Option<Bytes>,
    /// Replicas currently holding a copy.
    pub hits: u32,
    /// The majority quorum `⌊R/2⌋+1` the read is judged against.
    pub needed: u32,
}

impl QuorumRead {
    /// `true` when the read meets its quorum.
    pub fn available(&self) -> bool {
        self.value.is_some() && self.hits >= self.needed
    }
}

/// A snapshot-routed quorum read
/// ([`ReplicatedStore::get_quorum_routed`]): the quorum verdict plus how
/// many stale-route retries it took to settle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedQuorum {
    /// The settled quorum read.
    pub read: QuorumRead,
    /// Stale-route retries performed (0 = the pinned epoch was current
    /// or the first chain probe hit).
    pub retries: u32,
}

/// The replica chain of `point`: the owner, then the first vnode of each
/// subsequent distinct snode along the successor walk, up to `r` entries.
fn replicas_for<E: DhtEngine>(engine: &E, r: usize, point: u64) -> Vec<VnodeId> {
    let mut out: Vec<VnodeId> = Vec::with_capacity(r);
    let mut snodes: Vec<SnodeId> = Vec::with_capacity(r);
    engine.for_each_successor(point, &mut |v| {
        // A vnode the walk visits mid-teardown may briefly have no
        // hosting snode; skip it rather than panic — on a thin cluster
        // (fewer than R distinct snodes) the walk simply ends with a
        // shorter chain, which every caller treats as the effective
        // replication factor.
        if let Ok(s) = engine.snode_of(v) {
            if !snodes.contains(&s) {
                snodes.push(s);
                out.push(v);
            }
        }
        out.len() < r
    });
    out
}

/// An in-memory KV store placing every entry on `R` distinct snodes.
///
/// ```
/// use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
/// use domus_hashspace::HashSpace;
/// use domus_kv::ReplicatedStore;
///
/// let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
/// let mut kv = ReplicatedStore::new(LocalDht::with_seed(cfg, 1), 2);
/// for s in 0..4u32 {
///     kv.join(SnodeId(s)).unwrap();
/// }
/// kv.put("user:42", "alice");
/// // The crash of any single snode cannot lose the entry at R = 2 —
/// // not even the primary's.
/// let primary = kv.route(b"user:42").unwrap();
/// let victim = kv.engine().snode_of(primary).unwrap();
/// let report = kv.fail_snode(victim).unwrap();
/// assert_eq!(report.keys_lost, 0);
/// assert_eq!(kv.get(b"user:42").unwrap().as_ref(), b"alice");
/// kv.repair();
/// assert!(kv.get_quorum(b"user:42").available());
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedStore<E: DhtEngine> {
    engine: E,
    hasher: Fnv1aHasher,
    /// Replication factor `R ≥ 1` (effective factor is capped by the
    /// number of distinct live snodes).
    r: usize,
    /// Routed-read statistics ([`ReplicatedStore::get_quorum_routed`]).
    stats: Arc<RouteStats>,
    /// Copy maps indexed by vnode arena slot; a point may appear in up to
    /// `R` slots (one copy per replica).
    data: Vec<BTreeMap<u64, Bucket>>,
    /// Per-slot bucket digests, maintained in lock-step with `data`:
    /// `digests[slot][point]` is the XOR of [`entry_hash`] over the
    /// bucket's entries — the leaf inputs of the repair-time Merkle
    /// comparison. A slot holds each entry at most once, so XOR is an
    /// exact toggle.
    digests: Vec<BTreeMap<u64, u64>>,
    /// Per-snode write-ahead logs. A crash leaves the victim's log in
    /// place (the disk survives); only the in-memory slots die.
    wals: BTreeMap<SnodeId, SegmentedWal>,
    /// Snodes crashed and not yet rejoined, with the vnode count each
    /// hosted at crash time (the size [`ReplicatedStore::rejoin_snode`]
    /// re-enrols).
    crashed: BTreeMap<SnodeId, usize>,
    /// Distinct live keys (≥ one surviving copy).
    keys: u64,
    /// Under-replicated ranges awaiting [`ReplicatedStore::repair`]
    /// (recorded by crashes; graceful changes repair in-line).
    pending: Vec<Range>,
}

impl<E: DhtEngine> ReplicatedStore<E> {
    /// Wraps an engine (which may already contain vnodes) with replication
    /// factor `r`.
    ///
    /// # Panics
    /// Panics when `r == 0`.
    pub fn new(engine: E, r: usize) -> Self {
        assert!(r >= 1, "replication factor must be at least 1");
        let mut slots = 0;
        engine.for_each_vnode(&mut |v| slots = slots.max(v.index() + 1));
        Self {
            engine,
            hasher: Fnv1aHasher,
            r,
            stats: Arc::new(RouteStats::new()),
            data: vec![BTreeMap::new(); slots],
            digests: vec![BTreeMap::new(); slots],
            wals: BTreeMap::new(),
            crashed: BTreeMap::new(),
            keys: 0,
            pending: Vec::new(),
        }
    }

    /// The write-ahead log of one snode, if it ever received a record.
    pub fn wal_of(&self, s: SnodeId) -> Option<&SegmentedWal> {
        self.wals.get(&s)
    }

    /// Live (non-truncated) WAL bytes across every snode's log.
    pub fn wal_bytes(&self) -> u64 {
        self.wals.values().map(|w| w.bytes() as u64).sum()
    }

    /// Snodes crashed and awaiting [`ReplicatedStore::rejoin_snode`],
    /// with the vnode count each hosted at crash time.
    pub fn crashed_snodes(&self) -> Vec<(SnodeId, usize)> {
        self.crashed.iter().map(|(&s, &n)| (s, n)).collect()
    }

    /// The store's routed-read statistics: every
    /// [`ReplicatedStore::get_quorum_routed`] records its retry count
    /// here. Clones share the block; a `domus-route` cache can share the
    /// same `Arc` to tally cache and store reads in one place.
    pub fn read_stats(&self) -> &Arc<RouteStats> {
        &self.stats
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The replication factor `R`.
    pub fn replication(&self) -> usize {
        self.r
    }

    /// The majority quorum `⌊R/2⌋+1`.
    pub fn quorum(&self) -> u32 {
        (self.r / 2 + 1) as u32
    }

    /// Number of distinct live keys.
    pub fn len(&self) -> u64 {
        self.keys
    }

    /// `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Total replica copies currently stored (`R × len` at full strength).
    pub fn copies(&self) -> u64 {
        self.data.iter().flat_map(|m| m.values()).map(|b| b.len() as u64).sum()
    }

    /// `true` while crash-touched ranges await [`ReplicatedStore::repair`].
    pub fn has_pending_repair(&self) -> bool {
        !self.pending.is_empty()
    }

    fn space(&self) -> HashSpace {
        self.engine.config().hash_space()
    }

    fn point_of(&self, key: &[u8]) -> u64 {
        self.hasher.point(key, self.engine.config().hash_space())
    }

    /// The replica chain of a key's point (primary first).
    pub fn replicas_of(&self, key: &[u8]) -> Vec<VnodeId> {
        replicas_for(&self.engine, self.r, self.point_of(key))
    }

    /// The primary vnode responsible for a key.
    pub fn route(&self, key: &[u8]) -> Option<VnodeId> {
        self.engine.lookup(self.point_of(key)).map(|(_, v)| v)
    }

    /// Inserts or replaces an entry on every replica. Returns the previous
    /// value and restores full replication for this key even when its
    /// range is pending repair. Each holder logs the write to its WAL
    /// before the in-memory copy mutates — the write-ahead discipline
    /// [`ReplicatedStore::rejoin_snode`] replays after a crash.
    ///
    /// # Panics
    /// Panics if the DHT has no vnodes yet.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Option<Bytes> {
        let key = key.into();
        let value = value.into();
        let point = self.point_of(&key);
        let replicas = replicas_for(&self.engine, self.r, point);
        assert!(!replicas.is_empty(), "put on an empty DHT");
        let record = WalRecord::Put { key: key.clone(), value: value.clone() };
        let new_hash = entry_hash(&key, &value);
        let mut prev = None;
        for (i, &v) in replicas.iter().enumerate() {
            if let Ok(s) = self.engine.snode_of(v) {
                self.wals.entry(s).or_default().append(&record);
            }
            let bucket = slot_of(&mut self.data, v).entry(point).or_default();
            let toggle = match bucket_search(bucket, &key) {
                Ok(at) => {
                    let old = std::mem::replace(&mut bucket[at].1, value.clone());
                    let t = entry_hash(&key, &old) ^ new_hash;
                    if i == 0 {
                        prev = Some(old);
                    }
                    t
                }
                Err(at) => {
                    bucket.insert(at, (key.clone(), value.clone()));
                    new_hash
                }
            };
            *digest_slot(&mut self.digests, v).entry(point).or_insert(0) ^= toggle;
        }
        if prev.is_none() {
            self.keys += 1;
        }
        prev
    }

    /// Fallback read: probes the replica chain in placement order and
    /// returns the first copy found.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let point = self.point_of(key);
        for v in replicas_for(&self.engine, self.r, point) {
            if let Some(bucket) = self.data.get(v.index()).and_then(|m| m.get(&point)) {
                if let Ok(i) = bucket_search(bucket, key) {
                    return Some(bucket[i].1.clone());
                }
            }
        }
        None
    }

    /// Quorum read: the value (with fallback) plus how many replicas hold
    /// a copy, judged against the majority quorum.
    pub fn get_quorum(&self, key: &[u8]) -> QuorumRead {
        let point = self.point_of(key);
        self.quorum_over(key, point, replicas_for(&self.engine, self.r, point))
    }

    /// The primary vnode of a key per a pinned routing snapshot
    /// (serving-plane route — never consults the live engine).
    pub fn route_at(&self, snap: &EngineSnapshot, key: &[u8]) -> Option<VnodeId> {
        snap.owner_of(self.hasher.point(key, snap.space()))
    }

    /// The replica chain of a key resolved against a pinned snapshot —
    /// the same distinct-snode successor walk as
    /// [`ReplicatedStore::replicas_of`], at the pinned epoch.
    pub fn replicas_at(&self, snap: &EngineSnapshot, key: &[u8]) -> Vec<VnodeId> {
        snap.replicas(self.hasher.point(key, snap.space()), self.r)
    }

    /// Fallback read through a pinned snapshot: probes the pinned epoch's
    /// replica chain in placement order. A miss can mean "absent" or
    /// "stale route" — callers holding a [`domus_core::SnapshotCell`]
    /// disambiguate by re-pinning when the cell's epoch moved.
    pub fn get_at(&self, snap: &EngineSnapshot, key: &[u8]) -> Option<Bytes> {
        self.get_quorum_at(snap, key).value
    }

    /// Quorum read against a pinned epoch: the replica chain comes from
    /// the snapshot, the copy probes read the live buckets. Readers pin
    /// once and issue any number of these without touching the engine.
    pub fn get_quorum_at(&self, snap: &EngineSnapshot, key: &[u8]) -> QuorumRead {
        let point = self.hasher.point(key, snap.space());
        self.quorum_over(key, point, snap.replicas(point, self.r))
    }

    /// Quorum read with stale-route repair: probes the replica chain at
    /// the pinned epoch and, on a total miss, re-pins from `cell` and
    /// retries once per epoch the cell advanced past the pin — the
    /// replicated twin of `KvService::get_routed`. `snap` is left pinned
    /// to the epoch the read settled on, and the retry count lands in
    /// [`ReplicatedStore::read_stats`].
    pub fn get_quorum_routed(
        &self,
        cell: &SnapshotCell,
        snap: &mut Arc<EngineSnapshot>,
        key: &[u8],
    ) -> RoutedQuorum {
        let mut retries = 0u32;
        loop {
            let read = self.get_quorum_at(snap, key);
            if read.value.is_some() || !cell.is_stale(snap) {
                self.stats.record(retries, read.value.is_none());
                return RoutedQuorum { read, retries };
            }
            // The pin is behind, but a retry is only a *stale-route*
            // retry when the key's replica chain actually moved between
            // the pinned and current epochs — a miss on a key whose
            // route is identical at both epochs is an absent key caught
            // mid-publish, not stale routing, and counting it would
            // double-book every concurrent-epoch miss as stale.
            let fresh = cell.load();
            let point = self.hasher.point(key, snap.space());
            let moved = fresh.replicas(point, self.r) != snap.replicas(point, self.r);
            *snap = fresh;
            if moved {
                retries += 1;
            }
        }
    }

    /// Counts live copies of `key` over a replica chain.
    fn quorum_over(&self, key: &[u8], point: u64, replicas: Vec<VnodeId>) -> QuorumRead {
        let mut value = None;
        let mut hits = 0u32;
        for v in replicas {
            if let Some(bucket) = self.data.get(v.index()).and_then(|m| m.get(&point)) {
                if let Ok(i) = bucket_search(bucket, key) {
                    hits += 1;
                    if value.is_none() {
                        value = Some(bucket[i].1.clone());
                    }
                }
            }
        }
        QuorumRead { value, hits, needed: self.quorum() }
    }

    /// Removes a key from every replica, returning its value. The
    /// removal is tombstoned into every snode's WAL — any log may still
    /// carry an old `Put` for the key — so replay after a
    /// crash-then-rejoin never resurrects a deleted key.
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        let point = self.point_of(key);
        let replicas = replicas_for(&self.engine, self.r, point);
        let record = WalRecord::Remove { key: Bytes::copy_from_slice(key) };
        let mut removed = None;
        for &v in &replicas {
            let Some(map) = self.data.get_mut(v.index()) else { continue };
            let Some(bucket) = map.get_mut(&point) else { continue };
            if let Ok(i) = bucket_search(bucket, key) {
                let (_, value) = bucket.remove(i);
                let emptied = bucket.is_empty();
                if emptied {
                    map.remove(&point);
                }
                if let Some(dmap) = self.digests.get_mut(v.index()) {
                    if emptied {
                        dmap.remove(&point);
                    } else if let Some(d) = dmap.get_mut(&point) {
                        *d ^= entry_hash(key, &value);
                    }
                }
                removed.get_or_insert(value);
            }
        }
        // Tombstone the removal into *every* log, not just the current
        // holders': migration re-logs copies on their new homes, so any
        // snode that ever held this key — live ex-holders and crashed
        // snodes alike — may still carry an old `Put` for it, and replay
        // on rejoin would resurrect it unless the same log records the
        // later removal (the fold is in sequence order, so the tombstone
        // wins). Crashed snodes always have a log entry in `wals`, so
        // iterating the map covers them too. Unconditional on purpose: a
        // key whose copies were all crash-destroyed reads back `None`
        // here, yet a crashed holder's log still carries its `Put` — the
        // removal must outrank that record when the holder rejoins.
        for wal in self.wals.values_mut() {
            wal.append(&record);
        }
        if removed.is_some() {
            self.keys -= 1;
        }
        removed
    }

    /// Creates a vnode on `snode`, then re-replicates exactly the ranges
    /// the streamed transfers touched (plus their backward horizons).
    pub fn join(&mut self, snode: SnodeId) -> Result<(VnodeId, RepairReport), DhtError> {
        let (out, rep) = self.join_with(snode, &mut NullSink)?;
        Ok((out.vnode, rep))
    }

    /// [`ReplicatedStore::join`], forwarding every rebalance event to
    /// `sink` while the touched ranges are collected for repair.
    pub fn join_with(
        &mut self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(CreateOutcome, RepairReport), DhtError> {
        let space = self.space();
        let mut tap = RangeTap::new(space, sink);
        let outcome = self.engine.create_vnode_with(snode, &mut tap)?;
        let ranges = self.extend_and_merge(tap.touched);
        let (copies_placed, bytes) = self.rebuild_ranges(&ranges, true);
        Ok((
            outcome,
            RepairReport {
                ranges: ranges.len(),
                copies_placed,
                bytes_shipped: bytes,
                bytes_full: bytes,
            },
        ))
    }

    /// Gracefully removes a vnode: its data (primary *and* follower
    /// copies) is re-placed on the surviving replica chains in the same
    /// pass that repairs the touched ranges — nothing is lost.
    pub fn leave(&mut self, v: VnodeId) -> Result<RepairReport, DhtError> {
        self.leave_with(v, &mut NullSink).map(|(_, rep)| rep)
    }

    /// [`ReplicatedStore::leave`], forwarding every rebalance event to
    /// `sink`.
    pub fn leave_with(
        &mut self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(RemoveOutcome, RepairReport), DhtError> {
        let space = self.space();
        let mut tap = RangeTap::new(space, sink);
        let outcome = self.engine.remove_vnode_with(v, &mut tap)?;
        let ranges = self.extend_and_merge(tap.touched);
        let (copies_placed, bytes) = self.rebuild_ranges(&ranges, true);
        debug_assert!(
            self.data.get(v.index()).map(BTreeMap::is_empty).unwrap_or(true),
            "a graceful leave must drain every copy off the departing vnode"
        );
        Ok((
            outcome,
            RepairReport {
                ranges: ranges.len(),
                copies_placed,
                bytes_shipped: bytes,
                bytes_full: bytes,
            },
        ))
    }

    /// Crashes a snode: its slots are destroyed (not migrated), the
    /// engine absorbs the membership change, and surviving copies are
    /// relocated onto the new replica chains *without re-replicating* —
    /// the touched ranges stay pending until [`ReplicatedStore::repair`].
    pub fn fail_snode(&mut self, s: SnodeId) -> Result<CrashReport, DhtError> {
        self.fail_snode_with(s, &mut NullSink)
    }

    /// [`ReplicatedStore::fail_snode`], forwarding every rebalance event
    /// to `sink`.
    pub fn fail_snode_with(
        &mut self,
        s: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<CrashReport, DhtError> {
        let victims = self.engine.vnodes_of_snode(s);
        // Mirror the engine's own preconditions *before* destroying data.
        if victims.is_empty() {
            return Err(DhtError::EmptySnode(s));
        }
        if victims.len() == self.engine.vnode_count() {
            return Err(DhtError::LastVnode);
        }

        // Absorb the membership change first: the engine call is the only
        // remaining fallible step, and the store holds no in-line
        // migration (the tap just collects ranges), so an engine error
        // here leaves the data untouched.
        let space = self.space();
        let mut tap = RangeTap::new(space, sink);
        let outcome = self.engine.fail_snode(s, &mut tap)?;

        // The crash proper: every in-memory copy the snode held is gone
        // (and so are its bucket digests) — but its WAL survives: the
        // log models the disk, which is exactly what a later
        // `rejoin_snode` replays. Remember the vnode count so the
        // rejoin re-enrols at the same size.
        self.crashed.insert(s, victims.len());
        let mut doomed: Vec<(u64, Bytes)> = Vec::new();
        for &v in &victims {
            if let Some(map) = self.data.get_mut(v.index()) {
                for (point, bucket) in std::mem::take(map) {
                    doomed.extend(bucket.into_iter().map(|(k, _)| (point, k)));
                }
            }
            if let Some(dmap) = self.digests.get_mut(v.index()) {
                dmap.clear();
            }
        }

        let mut touched = tap.touched;
        // Every doomed copy marks a range that lost redundancy — including
        // ranges where the snode was only a follower, which no transfer
        // touches (their primaries survived). One range per *partition*
        // holding doomed copies (points cluster, so memoize the lookup),
        // not one per copy — the backward horizon walk runs per range.
        let mut doomed_points: Vec<u64> = doomed.iter().map(|&(point, _)| point).collect();
        doomed_points.sort_unstable();
        doomed_points.dedup();
        let mut memo: Option<Partition> = None;
        for point in doomed_points {
            if !matches!(&memo, Some(p) if p.contains(point, space)) {
                let (p, _) = self.engine.lookup(point).expect("routing is total");
                memo = Some(p);
                touched.push((p.start(space), p.end(space)));
            }
        }

        let ranges = self.extend_and_merge(touched);
        let (copies_relocated, _) = self.rebuild_ranges(&ranges, false);

        // Exact loss accounting: a doomed key is lost iff no copy survived
        // anywhere. Relocation already re-placed every survivor on a
        // placement-order prefix of its chain, so the primary alone
        // decides — one memoized lookup per partition, no successor walks.
        let mut keys_lost = 0u64;
        let mut primary: Option<(Partition, usize)> = None;
        for (point, key) in &doomed {
            if !matches!(&primary, Some((p, _)) if p.contains(*point, space)) {
                let (p, v) = self.engine.lookup(*point).expect("routing is total");
                primary = Some((p, v.index()));
            }
            let slot = primary.as_ref().expect("memoized above").1;
            let alive = self
                .data
                .get(slot)
                .and_then(|m| m.get(point))
                .is_some_and(|b| bucket_search(b, key).is_ok());
            if !alive {
                keys_lost += 1;
            }
        }
        self.keys -= keys_lost;
        self.pending.extend(ranges.iter().copied());

        Ok(CrashReport {
            vnodes_failed: outcome.vnodes.len(),
            renames: outcome.renames,
            copies_destroyed: doomed.len() as u64,
            keys_lost,
            copies_relocated,
        })
    }

    /// Re-replicates every pending (crash-touched) range back to full
    /// strength, **digest-driven**: per partition, a Merkle
    /// [`DigestTree`] is built over the primary's and each follower's
    /// incrementally maintained bucket digests, and only the buckets in
    /// divergent leaves are shipped. A follower already in sync costs
    /// hash comparisons, never data movement — the full-rebuild byte
    /// cost the old eager walk would have paid is reported alongside in
    /// [`RepairReport::bytes_full`]. Idempotent; a no-op when nothing is
    /// pending.
    pub fn repair(&mut self) -> RepairReport {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return RepairReport::default();
        }
        let ranges = merge_ranges(pending);
        let mut report = RepairReport { ranges: ranges.len(), ..RepairReport::default() };
        let space = self.space();
        for &(start, end) in &ranges {
            let mut cursor = start as u128;
            while cursor < end {
                let Some((p, _)) = self.engine.lookup(cursor as u64) else { break };
                let pe = p.end(space);
                self.repair_partition(cursor as u64, pe.min(end), &mut report);
                if pe <= cursor {
                    break; // no forward progress: malformed routing
                }
                cursor = pe;
            }
        }
        report
    }

    /// Anti-entropy over one partition-aligned span `[start, end)`:
    /// Merkle-compare each follower of the span's replica chain against
    /// the primary and ship only divergent buckets (plus drop follower
    /// buckets the primary does not hold). Accounts shipped bytes and
    /// the full-rebuild baseline into `report`.
    fn repair_partition(&mut self, start: u64, end: u128, report: &mut RepairReport) {
        let chain = replicas_for(&self.engine, self.r, start);
        if chain.is_empty() {
            return;
        }
        let primary = chain[0].index();
        let bucket_bytes =
            |b: &Bucket| -> u64 { b.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum() };
        let span_bytes: u64 = self
            .data
            .get(primary)
            .map(|m| span_range(m, start, end).map(|(_, b)| bucket_bytes(b)).sum())
            .unwrap_or(0);
        // The eager rebuild gathered every copy and re-placed every entry
        // onto every chain slot — that is the baseline being beaten.
        report.bytes_full += span_bytes * chain.len() as u64;
        if chain.len() < 2 {
            return; // a thin cluster has nobody to anti-entropy against
        }

        // Normalize span positions onto the digest tree's 64-bit domain
        // (monotone, collision-free for partition-aligned spans).
        let span = end - start as u128;
        let bits = 128 - (span.saturating_sub(1)).leading_zeros();
        let shift = 64u32.saturating_sub(bits.min(64));
        let norm = |p: u64| -> u64 { (p - start) << shift };

        let empty: BTreeMap<u64, u64> = BTreeMap::new();
        let pdig = self.digests.get(primary).unwrap_or(&empty);
        let pbuckets: Vec<(u64, u64)> =
            span_range(pdig, start, end).map(|(&p, &d)| (p, d)).collect();
        let mut ptree = DigestTree::new(4);
        for &(p, d) in &pbuckets {
            ptree.toggle(norm(p), d);
        }

        // Plan each follower's divergence while the digests are borrowed,
        // then apply the shipments.
        type ShipPlan = (usize, u8, Vec<(u64, u64)>, Vec<u64>);
        let mut plans: Vec<ShipPlan> = Vec::new();
        for (rank, &fv) in chain.iter().enumerate().skip(1) {
            let fslot = fv.index();
            let fdig = self.digests.get(fslot).unwrap_or(&empty);
            let fbuckets: Vec<(u64, u64)> =
                span_range(fdig, start, end).map(|(&p, &d)| (p, d)).collect();
            let mut ftree = DigestTree::new(4);
            for &(p, d) in &fbuckets {
                ftree.toggle(norm(p), d);
            }
            let divergent = ptree.diff(&ftree);
            if divergent.is_empty() {
                continue; // in sync: the Merkle root match cost zero bytes
            }
            let in_leaf = |p: u64, leaf: usize, tree: &DigestTree| -> bool {
                let (lo, hi) = tree.leaf_range(leaf);
                let np = norm(p);
                np >= lo && hi.map_or(true, |h| np < h)
            };
            let mut ship: Vec<(u64, u64)> = Vec::new();
            let mut drop: Vec<u64> = Vec::new();
            for leaf in divergent {
                for &(p, d) in &pbuckets {
                    if in_leaf(p, leaf, &ptree) && fbuckets.binary_search(&(p, d)).is_err() {
                        ship.push((p, d));
                    }
                }
                for &(p, _) in &fbuckets {
                    if in_leaf(p, leaf, &ptree)
                        && pbuckets.binary_search_by_key(&p, |&(bp, _)| bp).is_err()
                    {
                        drop.push(p);
                    }
                }
            }
            if !ship.is_empty() || !drop.is_empty() {
                plans.push((fslot, rank.min(u8::MAX as usize) as u8, ship, drop));
            }
        }

        for (fslot, rank, ship, drop) in plans {
            let home = if ship.is_empty() {
                None
            } else {
                // One placement record per repaired follower span: the
                // chain decision is durable on the receiving snode.
                let home = self.engine.snode_of(chain[usize::from(rank)]).ok();
                if let Some(s) = home {
                    self.wals.entry(s).or_default().append(&WalRecord::Placement {
                        partition: start,
                        snode: s,
                        rank,
                    });
                }
                home
            };
            for (point, digest) in ship {
                let bucket =
                    self.data.get(primary).and_then(|m| m.get(&point)).cloned().unwrap_or_default();
                report.bytes_shipped += bucket_bytes(&bucket);
                report.copies_placed += bucket.len() as u64;
                // Re-log each shipped copy on the receiving snode: the
                // repaired follower must be able to replay what it holds.
                if let Some(s) = home {
                    let wal = self.wals.entry(s).or_default();
                    for (k, v) in &bucket {
                        wal.append(&WalRecord::Put { key: k.clone(), value: v.clone() });
                    }
                }
                if self.data.len() <= fslot {
                    self.data.resize_with(fslot + 1, BTreeMap::new);
                }
                self.data[fslot].insert(point, bucket);
                if self.digests.len() <= fslot {
                    self.digests.resize_with(fslot + 1, BTreeMap::new);
                }
                self.digests[fslot].insert(point, digest);
            }
            for point in drop {
                if let Some(m) = self.data.get_mut(fslot) {
                    m.remove(&point);
                }
                if let Some(m) = self.digests.get_mut(fslot) {
                    m.remove(&point);
                }
            }
        }
    }

    /// Re-enrols a crashed snode and **replays its write-ahead log**:
    /// the control plane gets `vnodes` fresh vnodes (the count at crash
    /// time) via [`DhtEngine::rejoin_snode`], the ranges that touched
    /// are rebuilt in-line, and the log's final state is folded back in
    /// — a key absent from every live replica is restored (the `R = 1`
    /// crash-loss class), a key still live is *re-homed* onto its
    /// current primary's log so the rejoined log can checkpoint and
    /// truncate without weakening durability.
    ///
    /// Fails with [`DhtError::EmptySnode`] when `s` was never crashed
    /// (or already rejoined) — there is nothing to replay.
    pub fn rejoin_snode(&mut self, s: SnodeId) -> Result<RejoinReport, DhtError> {
        self.rejoin_snode_with(s, &mut NullSink)
    }

    /// [`ReplicatedStore::rejoin_snode`], forwarding every rebalance
    /// event to `sink`.
    pub fn rejoin_snode_with(
        &mut self,
        s: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<RejoinReport, DhtError> {
        let Some(&vnodes) = self.crashed.get(&s) else {
            return Err(DhtError::EmptySnode(s));
        };
        // Control plane first: re-enrol, and rebuild the touched ranges
        // in-line exactly like a join (these are fresh vnodes pulling
        // partitions — full re-replication of what they now own).
        let space = self.space();
        let mut tap = RangeTap::new(space, sink);
        let outcome = self.engine.rejoin_snode(s, vnodes, &mut tap)?;
        self.crashed.remove(&s);
        let ranges = self.extend_and_merge(tap.touched);
        let (copies_placed, bytes) = self.rebuild_ranges(&ranges, true);
        let repair = RepairReport {
            ranges: ranges.len(),
            copies_placed,
            bytes_shipped: bytes,
            bytes_full: bytes,
        };

        // Replay: fold the log into its final per-key state.
        let mut report = RejoinReport {
            vnodes: outcome.vnodes.len(),
            handles: outcome.vnodes,
            repair,
            ..RejoinReport::default()
        };
        let mut state: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        let pre_seq = {
            let wal = self.wals.entry(s).or_default();
            report.wal_bytes = wal.bytes() as u64;
            for item in wal.replay() {
                match item {
                    Ok((_, record)) => {
                        report.wal_records += 1;
                        match record {
                            WalRecord::Put { key, value } => {
                                state.insert(key, Some(value));
                            }
                            WalRecord::Remove { key } => {
                                state.insert(key, None);
                            }
                            WalRecord::Placement { .. } => {}
                        }
                    }
                    Err(_) => {
                        report.torn += 1;
                        break;
                    }
                }
            }
            wal.next_seq()
        };
        for (key, value) in state {
            let Some(value) = value else { continue };
            match self.get(&key) {
                // Absent everywhere: the crash destroyed the last
                // in-memory copy — only the log still has it. Restore.
                None => {
                    self.put(key, value);
                    report.recovered += 1;
                }
                // Still live: make the current primary's log the durable
                // home (current value, not the possibly stale replayed
                // one) so truncating the rejoined log loses nothing.
                // When the primary is `s` itself the append lands at a
                // sequence number past `pre_seq`, so it survives the
                // checkpoint below.
                Some(current) => {
                    if let Some(v) = self.route(&key) {
                        if let Ok(home) = self.engine.snode_of(v) {
                            self.wals
                                .entry(home)
                                .or_default()
                                .append(&WalRecord::Put { key, value: current });
                        }
                    }
                }
            }
        }
        // Everything below `pre_seq` is now either restored into live
        // (and re-logged) state or re-homed: checkpoint, letting whole
        // segments truncate.
        if let Some(wal) = self.wals.get_mut(&s) {
            wal.checkpoint(pre_seq);
        }
        Ok(report)
    }

    /// Extends every touched range backwards across up to `R` distinct
    /// predecessor snodes and merges the result into disjoint ranges.
    ///
    /// Why backwards: the follower set of a range `X` is determined by the
    /// successor walk starting at `X`; a placement change at partition `Q`
    /// can only affect `X` if the walk from `X` reaches `Q` before
    /// collecting `R` distinct snodes. Walking back from `Q` until `R`
    /// distinct snodes have been seen therefore over-approximates every
    /// affected range — conservative and cheap (`O(R log P)` per range).
    fn extend_and_merge(&self, touched: Vec<Range>) -> Vec<Range> {
        let space = self.space();
        // Coalesce first: transfers overlap heavily (cascades re-touch the
        // same partitions), and every surviving range costs one backward
        // walk of engine lookups.
        let touched = merge_ranges(touched);
        if touched.is_empty() {
            return touched;
        }
        // Thin cluster (< R distinct snodes): asking the backward walk for
        // R distinct snodes would visit every partition of the space *per
        // range* without ever finding them (the pathological walk), and a
        // shorter walk can miss ranges holding follower copies placed
        // under an earlier, wider membership. Cover the whole space in one
        // range instead — the honest repair scope at this size, and O(1)
        // to decide.
        let live = {
            let mut live: Vec<SnodeId> = Vec::new();
            self.engine.for_each_vnode(&mut |v| {
                if let Ok(s) = self.engine.snode_of(v) {
                    if !live.contains(&s) {
                        live.push(s);
                    }
                }
            });
            live.len()
        };
        if live < self.r {
            return vec![(0, space.size())];
        }
        let want = self.r;
        let mut out: Vec<Range> = Vec::with_capacity(touched.len() + 2);
        for (start, end) in touched {
            let mut snodes: Vec<SnodeId> = Vec::with_capacity(self.r);
            let mut cur = start;
            let mut wrapped = false;
            let mut walked = end - start as u128;
            while snodes.len() < want && walked < space.size() {
                let prev_point = if cur == 0 {
                    wrapped = true;
                    space.max_point()
                } else {
                    cur - 1
                };
                let Some((p, v)) = self.engine.lookup(prev_point) else { break };
                let s = self.engine.snode_of(v).expect("routed vnode is live");
                if !snodes.contains(&s) {
                    snodes.push(s);
                }
                walked += p.size(space);
                cur = p.start(space);
                if wrapped && cur == 0 {
                    break; // walked the whole top segment
                }
            }
            if walked >= space.size() {
                out.push((0, space.size()));
            } else if wrapped {
                out.push((0, end));
                out.push((cur, space.size()));
            } else {
                out.push((cur, end));
            }
        }
        merge_ranges(out)
    }

    /// Rebuilds replica placement for `ranges` (disjoint, ascending):
    /// gathers every copy stored anywhere in each range, dedups per key,
    /// and re-places each key on a placement-order prefix of its current
    /// replica chain — the full chain when `full`, else as many replicas
    /// as copies survived (relocation without re-replication). Bucket
    /// digests are maintained in the same pass, and each partition's
    /// chain decision is logged to the holders' WALs as a placement
    /// record. Returns `(copies placed, entry bytes shipped)`.
    fn rebuild_ranges(&mut self, ranges: &[Range], full: bool) -> (u64, u64) {
        let space = self.space();
        let mut placed = 0u64;
        let mut bytes = 0u64;
        for &(start, end) in ranges {
            // Gather: detach [start, end) from every slot, merging copies
            // per (point, key) with a survivor count.
            let mut union: BTreeMap<u64, Vec<(Bytes, Bytes, usize)>> = BTreeMap::new();
            for map in &mut self.data {
                if map.is_empty() {
                    continue;
                }
                let mut mid = map.split_off(&start);
                if end <= u64::MAX as u128 {
                    let mut keep = mid.split_off(&(end as u64));
                    map.append(&mut keep);
                }
                for (point, bucket) in mid {
                    let merged = union.entry(point).or_default();
                    for (k, v) in bucket {
                        match merged.binary_search_by(|(mk, _, _)| mk.as_ref().cmp(k.as_ref())) {
                            Ok(i) => {
                                debug_assert_eq!(merged[i].1, v, "replica copies diverged");
                                merged[i].2 += 1;
                            }
                            Err(i) => merged.insert(i, (k, v, 1)),
                        }
                    }
                }
            }
            // The detached digests go with the data; placement rebuilds
            // both sides in lock-step.
            for dmap in &mut self.digests {
                if dmap.is_empty() {
                    continue;
                }
                let mut mid = dmap.split_off(&start);
                if end <= u64::MAX as u128 {
                    let mut keep = mid.split_off(&(end as u64));
                    dmap.append(&mut keep);
                }
            }
            // Re-place, memoizing the replica chain per partition (every
            // point of one partition shares it).
            let (engine, data, digests, wals, r) =
                (&self.engine, &mut self.data, &mut self.digests, &mut self.wals, self.r);
            let mut memo: Option<(Partition, Vec<VnodeId>, Vec<Option<SnodeId>>)> = None;
            for (point, bucket) in union {
                let stale = !matches!(&memo, Some((p, _, _)) if p.contains(point, space));
                if stale {
                    let (p, _) = engine.lookup(point).expect("routing is total");
                    let replicas = replicas_for(engine, r, point);
                    // Durable placement note on every holder's log: this
                    // partition's copies now live on this chain.
                    let homes: Vec<Option<SnodeId>> =
                        replicas.iter().map(|&rv| engine.snode_of(rv).ok()).collect();
                    for (rank, s) in homes.iter().enumerate() {
                        if let Some(s) = *s {
                            wals.entry(s).or_default().append(&WalRecord::Placement {
                                partition: p.start(space),
                                snode: s,
                                rank: rank.min(u8::MAX as usize) as u8,
                            });
                        }
                    }
                    memo = Some((p, replicas, homes));
                }
                let (_, replicas, homes) = memo.as_ref().expect("memoized above");
                for (k, v, survivors) in bucket {
                    let n = if full { replicas.len() } else { survivors.min(replicas.len()) };
                    placed += n as u64;
                    bytes += (k.len() + v.len()) as u64 * n as u64;
                    let h = entry_hash(&k, &v);
                    // Every migrated copy is re-logged on its new home as
                    // it is applied: the write-ahead discipline must follow
                    // the data, or a key whose copies all moved since their
                    // original `put` would have no replayable record on any
                    // of the snodes that actually hold it when they crash.
                    let record = WalRecord::Put { key: k.clone(), value: v.clone() };
                    for (&rv, home) in replicas.iter().zip(homes).take(n) {
                        if let Some(s) = *home {
                            wals.entry(s).or_default().append(&record);
                        }
                        let slot = slot_of(data, rv).entry(point).or_default();
                        let toggle = match bucket_search(slot, &k) {
                            Ok(at) => {
                                let old = std::mem::replace(&mut slot[at].1, v.clone());
                                entry_hash(&k, &old) ^ h
                            }
                            Err(at) => {
                                slot.insert(at, (k.clone(), v.clone()));
                                h
                            }
                        };
                        *digest_slot(digests, rv).entry(point).or_insert(0) ^= toggle;
                    }
                }
            }
        }
        (placed, bytes)
    }

    /// Every live key, in deterministic (hash point, key) order, read off
    /// the primary copies.
    pub fn snapshot_keys(&self) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(self.keys as usize);
        let mut points: Vec<(u64, &Bucket)> = Vec::new();
        for (slot, map) in self.data.iter().enumerate() {
            for (&point, bucket) in map {
                let primary = self.engine.lookup(point).map(|(_, v)| v.index());
                if primary == Some(slot) {
                    points.push((point, bucket));
                }
            }
        }
        points.sort_unstable_by_key(|&(point, _)| point);
        for (_, bucket) in points {
            out.extend(bucket.iter().map(|(k, _)| k.clone()));
        }
        out
    }

    /// Verifies the replication invariants — the test/debug oracle,
    /// `O(copies · R)`:
    ///
    /// 1. every copy sits on a replica of its point's current chain;
    /// 2. copies form a placement-order **prefix** of the chain (so the
    ///    primary always holds every live key and fallback reads hit on
    ///    the first probe), with byte-identical values;
    /// 3. the key counter matches the number of primary copies;
    /// 4. with no repair pending, every key is fully replicated
    ///    (`min(R, distinct snodes)` copies).
    pub fn verify_replication(&self) -> Result<(), String> {
        let mut primaries = 0u64;
        for (slot, map) in self.data.iter().enumerate() {
            for (&point, bucket) in map {
                for (key, value) in bucket {
                    if self.point_of(key) != point {
                        return Err(format!("key stored under wrong point {point}"));
                    }
                    let replicas = replicas_for(&self.engine, self.r, point);
                    let pos = replicas.iter().position(|v| v.index() == slot).ok_or_else(|| {
                        format!("copy at point {point} on slot {slot}, not a replica")
                    })?;
                    let mut copies = 0usize;
                    for (i, &rv) in replicas.iter().enumerate() {
                        let held = self
                            .data
                            .get(rv.index())
                            .and_then(|m| m.get(&point))
                            .and_then(|b| bucket_search(b, key).ok().map(|at| &b[at].1));
                        match held {
                            Some(v) if v == value => copies += 1,
                            Some(_) => return Err(format!("replica divergence at point {point}")),
                            None if i < pos => {
                                return Err(format!(
                                    "copies at point {point} are not a placement prefix"
                                ));
                            }
                            None => {}
                        }
                    }
                    if self.pending.is_empty() && copies != replicas.len() {
                        return Err(format!(
                            "point {point}: {copies} copies, expected {}",
                            replicas.len()
                        ));
                    }
                    if pos == 0 {
                        primaries += 1;
                    }
                }
            }
        }
        if primaries != self.keys {
            return Err(format!("key counter {} but {primaries} primary copies", self.keys));
        }
        // 5. the incrementally maintained bucket digests equal a fresh
        //    recomputation from the data — the anti-entropy comparison is
        //    only as sound as its inputs.
        for (slot, map) in self.data.iter().enumerate() {
            for (&point, bucket) in map {
                let want = bucket.iter().fold(0u64, |acc, (k, v)| acc ^ entry_hash(k, v));
                let got = self.digests.get(slot).and_then(|m| m.get(&point)).copied();
                if got != Some(want) {
                    return Err(format!(
                        "slot {slot} point {point}: digest {got:?} != recomputed {want:#x}"
                    ));
                }
            }
        }
        for (slot, dmap) in self.digests.iter().enumerate() {
            for &point in dmap.keys() {
                let populated =
                    self.data.get(slot).and_then(|m| m.get(&point)).is_some_and(|b| !b.is_empty());
                if !populated {
                    return Err(format!("slot {slot} point {point}: digest for an empty bucket"));
                }
            }
        }
        Ok(())
    }
}

/// The digest map of a vnode's slot, growing the arena like
/// [`slot_of`] does for the data maps.
fn digest_slot(digests: &mut Vec<BTreeMap<u64, u64>>, v: VnodeId) -> &mut BTreeMap<u64, u64> {
    if digests.len() <= v.index() {
        digests.resize_with(v.index() + 1, BTreeMap::new);
    }
    &mut digests[v.index()]
}

/// Iterates a point-keyed map over the half-open span `[start, end)`
/// (`end` may be the full space's top, which exceeds `u64`).
fn span_range<V>(
    map: &BTreeMap<u64, V>,
    start: u64,
    end: u128,
) -> std::collections::btree_map::Range<'_, u64, V> {
    let upper = if end > u64::MAX as u128 { Bound::Unbounded } else { Bound::Excluded(end as u64) };
    map.range((Bound::Included(start), upper))
}

/// Sorts and coalesces overlapping/adjacent ranges.
fn merge_ranges(mut ranges: Vec<Range>) -> Vec<Range> {
    ranges.sort_unstable();
    let mut out: Vec<Range> = Vec::with_capacity(ranges.len());
    for (start, end) in ranges {
        match out.last_mut() {
            Some((_, prev_end)) if (start as u128) <= *prev_end => {
                *prev_end = (*prev_end).max(end);
            }
            _ => out.push((start, end)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, LocalDht};
    use domus_hashspace::HashSpace;

    fn store(r: usize, snodes: u32) -> ReplicatedStore<LocalDht> {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let mut kv = ReplicatedStore::new(LocalDht::with_seed(cfg, 7), r);
        for s in 0..snodes {
            kv.join(SnodeId(s)).unwrap();
        }
        kv
    }

    #[test]
    fn put_get_remove_roundtrip_with_full_replication() {
        let mut kv = store(3, 5);
        assert_eq!(kv.put("k1", "v1"), None);
        assert_eq!(kv.put("k1", "v1b").unwrap().as_ref(), b"v1");
        assert_eq!(kv.get(b"k1").unwrap().as_ref(), b"v1b");
        let q = kv.get_quorum(b"k1");
        assert_eq!(q.hits, 3);
        assert_eq!(q.needed, 2);
        assert!(q.available());
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.copies(), 3);
        kv.verify_replication().unwrap();
        assert_eq!(kv.remove(b"k1").unwrap().as_ref(), b"v1b");
        assert_eq!(kv.get(b"k1"), None);
        assert!(kv.is_empty());
        assert_eq!(kv.copies(), 0);
    }

    #[test]
    fn replicas_live_on_distinct_snodes() {
        let kv = store(3, 6);
        for i in 0..200u32 {
            let key = format!("key:{i}");
            let replicas = kv.replicas_of(key.as_bytes());
            assert_eq!(replicas.len(), 3);
            let mut snodes: Vec<SnodeId> =
                replicas.iter().map(|&v| kv.engine().snode_of(v).unwrap()).collect();
            snodes.sort_unstable();
            snodes.dedup();
            assert_eq!(snodes.len(), 3, "{key}: replicas co-located");
            assert_eq!(replicas[0], kv.route(key.as_bytes()).unwrap(), "primary is the owner");
        }
    }

    #[test]
    fn effective_factor_is_capped_by_the_cluster_size() {
        let mut kv = store(3, 2); // only two distinct snodes
        kv.put("a", "1");
        assert_eq!(kv.replicas_of(b"a").len(), 2);
        assert_eq!(kv.get_quorum(b"a").hits, 2);
        kv.verify_replication().unwrap();
        // A third snode arrives: the in-line repair mints the third copy
        // for ranges it touched; a full repair isn't needed for puts.
        kv.join(SnodeId(9)).unwrap();
        kv.put("b", "2");
        assert_eq!(kv.replicas_of(b"b").len(), 3);
    }

    #[test]
    fn graceful_membership_keeps_everything_fully_replicated() {
        let mut kv = store(2, 4);
        for i in 0..300u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        for s in 4..9u32 {
            kv.join(SnodeId(s)).unwrap();
            kv.verify_replication().unwrap_or_else(|e| panic!("after join {s}: {e}"));
        }
        let vnodes = kv.engine().vnodes();
        for v in vnodes.into_iter().take(4) {
            kv.leave(v).unwrap();
            kv.verify_replication().unwrap_or_else(|e| panic!("after leave {v}: {e}"));
        }
        assert_eq!(kv.len(), 300);
        for i in 0..300u32 {
            let q = kv.get_quorum(format!("key:{i}").as_bytes());
            assert!(q.available(), "key:{i} lost quorum after graceful churn");
        }
    }

    #[test]
    fn crash_loses_nothing_at_r2_and_repair_restores_quorum() {
        let mut kv = store(2, 5);
        for i in 0..400u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        let report = kv.fail_snode(SnodeId(2)).unwrap();
        assert!(report.vnodes_failed > 0);
        assert!(report.copies_destroyed > 0, "the snode held copies");
        assert_eq!(report.keys_lost, 0, "R=2 survives one crash");
        assert!(kv.has_pending_repair());
        // Every key still readable via fallback; quorum may be degraded.
        let mut degraded = 0;
        for i in 0..400u32 {
            let key = format!("key:{i}");
            assert!(kv.get(key.as_bytes()).is_some(), "{key} unreadable after crash");
            if !kv.get_quorum(key.as_bytes()).available() {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "a crash must dent quorum availability before repair");
        let rep = kv.repair();
        assert!(rep.copies_placed > 0);
        assert!(!kv.has_pending_repair());
        kv.verify_replication().unwrap();
        for i in 0..400u32 {
            assert!(kv.get_quorum(format!("key:{i}").as_bytes()).available(), "key:{i}");
        }
    }

    #[test]
    fn crash_at_r1_loses_exactly_the_failed_snodes_keys() {
        let mut kv = store(1, 5);
        for i in 0..500u32 {
            kv.put(format!("key:{i}"), "x");
        }
        // Predict the loss: keys whose primary snode is the victim.
        let victim = SnodeId(3);
        let expected: u64 = (0..500u32)
            .filter(|i| {
                let key = format!("key:{i}");
                let owner = kv.route(key.as_bytes()).unwrap();
                kv.engine().snode_of(owner).unwrap() == victim
            })
            .count() as u64;
        assert!(expected > 0, "the victim must own something");
        let report = kv.fail_snode(victim).unwrap();
        assert_eq!(report.keys_lost, expected, "exact loss accounting");
        assert_eq!(kv.len(), 500 - expected);
        let alive = (0..500u32).filter(|i| kv.get(format!("key:{i}").as_bytes()).is_some()).count();
        assert_eq!(alive as u64, 500 - expected);
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn crash_preconditions_destroy_nothing() {
        let mut kv = store(2, 3);
        kv.put("a", "1");
        assert_eq!(kv.fail_snode(SnodeId(99)), Err(DhtError::EmptySnode(SnodeId(99))));
        // Crashing every snode one by one (with repair in between, so the
        // lone copy always re-replicates before the next hit) stops at the
        // last snode, which is refused before anything is destroyed.
        kv.fail_snode(SnodeId(0)).unwrap();
        kv.repair();
        kv.fail_snode(SnodeId(1)).unwrap();
        kv.repair();
        assert_eq!(kv.fail_snode(SnodeId(2)), Err(DhtError::LastVnode));
        assert_eq!(kv.get(b"a").unwrap().as_ref(), b"1", "refused crash must not touch data");
    }

    #[test]
    fn repeated_crash_repair_cycles_preserve_all_keys_at_r2() {
        let mut kv = store(2, 8);
        for i in 0..300u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        for victim in 0..5u32 {
            let report = kv.fail_snode(SnodeId(victim)).unwrap();
            assert_eq!(report.keys_lost, 0, "crash of s{victim} lost keys");
            kv.repair();
            kv.verify_replication().unwrap_or_else(|e| panic!("after s{victim}: {e}"));
        }
        assert_eq!(kv.len(), 300);
        for i in 0..300u32 {
            assert_eq!(
                kv.get(format!("key:{i}").as_bytes()).unwrap().as_ref(),
                format!("value-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn merge_ranges_coalesces() {
        assert_eq!(merge_ranges(vec![(10, 20), (15, 30), (40, 50), (30, 40)]), vec![(10, 50)]);
        assert_eq!(merge_ranges(vec![(5, 6)]), vec![(5, 6)]);
        assert!(merge_ranges(Vec::new()).is_empty());
    }

    #[test]
    fn crash_then_rejoin_replays_the_wal_at_r1() {
        let mut kv = store(1, 5);
        for i in 0..400u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        let victim = SnodeId(2);
        let report = kv.fail_snode(victim).unwrap();
        assert!(report.keys_lost > 0, "R=1 must lose the victim's primaries");
        let lost = report.keys_lost;
        assert_eq!(kv.crashed_snodes(), vec![(victim, report.vnodes_failed)]);

        let rejoin = kv.rejoin_snode(victim).unwrap();
        assert_eq!(rejoin.vnodes, report.vnodes_failed, "re-enrolled at crash-time size");
        assert!(rejoin.wal_records > 0, "the log held the victim's writes");
        assert_eq!(rejoin.torn, 0);
        assert_eq!(rejoin.recovered, lost, "replay restores exactly the lost keys");
        assert!(kv.crashed_snodes().is_empty());
        assert_eq!(kv.len(), 400, "nothing stays lost after replay");
        for i in 0..400u32 {
            assert_eq!(
                kv.get(format!("key:{i}").as_bytes()).unwrap().as_ref(),
                format!("value-{i}").as_bytes(),
                "key:{i} after rejoin"
            );
        }
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn rejoin_checkpoint_truncates_the_replayed_log() {
        let mut kv = store(2, 5);
        // Values big enough that the victim's share of the log spans
        // several 64 KiB segments, so the checkpoint can retire whole ones.
        let blob = "v".repeat(1024);
        for i in 0..400u32 {
            kv.put(format!("key:{i}"), blob.clone());
        }
        let victim = SnodeId(1);
        let before = kv.wal_of(victim).expect("the victim logged writes").pending();
        assert!(before > 0);
        kv.fail_snode(victim).unwrap();
        let rejoin = kv.rejoin_snode(victim).unwrap();
        // The rebuild that precedes replay logs fresh `Placement` records,
        // so the scan covers at least the pre-crash backlog.
        assert!(rejoin.wal_records >= before, "replay scans the whole un-checkpointed log");
        let wal = kv.wal_of(victim).unwrap();
        assert!(
            wal.pending() < before,
            "the checkpoint must retire the replayed records ({} -> {})",
            before,
            wal.pending()
        );
        assert!(wal.stats().truncated_segments > 0, "whole segments must truncate");
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn replay_never_resurrects_a_removed_key() {
        let mut kv = store(1, 4);
        for i in 0..200u32 {
            kv.put(format!("key:{i}"), "x");
        }
        // Remove half, then crash + rejoin every snode's primary range
        // would be overkill — one victim suffices: its log holds both the
        // puts and the removes.
        for i in 0..200u32 {
            if i % 2 == 0 {
                kv.remove(format!("key:{i}").as_bytes());
            }
        }
        let victim = SnodeId(0);
        kv.fail_snode(victim).unwrap();
        kv.rejoin_snode(victim).unwrap();
        for i in (0..200u32).step_by(2) {
            assert_eq!(kv.get(format!("key:{i}").as_bytes()), None, "key:{i} resurrected");
        }
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn migrated_copies_stay_replayable_after_their_new_holders_crash() {
        // Regression: copies shipped by rebalance used to land with only a
        // `Placement` note in the recipient's log. A key whose copies all
        // migrated away from their original put-time holders then had no
        // replayable `Put` on any snode that actually held it — crash the
        // new holder and the key was gone for good, because the snodes
        // whose logs *did* hold it stayed alive and never replayed.
        let mut kv = store(1, 3);
        for i in 0..200u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        // Joins pull ranges onto snodes that never saw the original puts.
        for s in 3..7u32 {
            kv.join(SnodeId(s)).unwrap();
        }
        let victim = SnodeId(5);
        let report = kv.fail_snode(victim).unwrap();
        assert!(report.keys_lost > 0, "R=1 must lose the victim's migrated primaries");
        let rejoin = kv.rejoin_snode(victim).unwrap();
        assert_eq!(rejoin.recovered, report.keys_lost, "replay restores the migrated keys");
        assert_eq!(kv.len(), 200, "no key stays lost after the holder rejoins");
        for i in 0..200u32 {
            assert_eq!(
                kv.get(format!("key:{i}").as_bytes()).unwrap().as_ref(),
                format!("value-{i}").as_bytes(),
                "key:{i} after migrate-crash-rejoin"
            );
        }
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn removing_a_crash_destroyed_key_outranks_its_crashed_log() {
        // Regression: removing a key whose copies were all crash-destroyed
        // returns `None`, and the tombstone used to be skipped — yet the
        // crashed holder's log still carried the key's `Put`, so the
        // rejoin replay resurrected a key the caller had deleted.
        let mut kv = store(1, 4);
        for i in 0..200u32 {
            kv.put(format!("key:{i}"), "x");
        }
        let victim = SnodeId(1);
        let report = kv.fail_snode(victim).unwrap();
        assert!(report.keys_lost > 0);
        let dead: Vec<String> = (0..200u32)
            .map(|i| format!("key:{i}"))
            .filter(|k| kv.get(k.as_bytes()).is_none())
            .collect();
        assert!(!dead.is_empty());
        for k in &dead {
            assert_eq!(kv.remove(k.as_bytes()), None, "{k} is crash-destroyed, nothing to remove");
        }
        kv.rejoin_snode(victim).unwrap();
        for k in &dead {
            assert_eq!(kv.get(k.as_bytes()), None, "{k} resurrected past its removal");
        }
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn removal_while_crashed_is_not_resurrected_by_replay() {
        let mut kv = store(2, 4);
        for i in 0..200u32 {
            kv.put(format!("key:{i}"), "x");
        }
        let victim = SnodeId(2);
        kv.fail_snode(victim).unwrap();
        kv.repair();
        // Remove every key *while the victim is down*: its WAL still
        // carries the pre-crash puts, so replay must see the tombstones.
        for i in 0..200u32 {
            assert!(kv.remove(format!("key:{i}").as_bytes()).is_some(), "R=2 shields key:{i}");
        }
        kv.rejoin_snode(victim).unwrap();
        assert_eq!(kv.len(), 0);
        for i in 0..200u32 {
            assert_eq!(kv.get(format!("key:{i}").as_bytes()), None, "key:{i} resurrected");
        }
        kv.repair();
        kv.verify_replication().unwrap();
    }

    #[test]
    fn rejoin_of_a_never_crashed_snode_is_refused() {
        let mut kv = store(2, 3);
        kv.put("a", "1");
        assert_eq!(kv.rejoin_snode(SnodeId(0)), Err(DhtError::EmptySnode(SnodeId(0))));
        assert_eq!(kv.rejoin_snode(SnodeId(99)), Err(DhtError::EmptySnode(SnodeId(99))));
        assert_eq!(kv.get(b"a").unwrap().as_ref(), b"1");
    }

    #[test]
    fn digest_repair_ships_strictly_less_than_a_full_rebuild() {
        let mut kv = store(2, 6);
        for i in 0..500u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        let report = kv.fail_snode(SnodeId(3)).unwrap();
        assert_eq!(report.keys_lost, 0);
        let rep = kv.repair();
        assert!(rep.copies_placed > 0, "the crash left under-replicated buckets");
        assert!(rep.bytes_shipped > 0);
        assert!(
            rep.bytes_shipped < rep.bytes_full,
            "digest repair must beat the full rebuild: shipped {} vs full {}",
            rep.bytes_shipped,
            rep.bytes_full
        );
        kv.verify_replication().unwrap();
        for i in 0..500u32 {
            assert!(kv.get_quorum(format!("key:{i}").as_bytes()).available(), "key:{i}");
        }
    }

    #[test]
    fn thin_cluster_crash_and_repair_stay_clean() {
        // R = 3 on two snodes: the effective factor is 2; one crash
        // leaves a single-snode cluster, where the repair successor walk
        // and the backward horizon walk must terminate without panicking
        // and leave a clean partial-replication state.
        let mut kv = store(3, 2);
        for i in 0..150u32 {
            kv.put(format!("key:{i}"), format!("value-{i}"));
        }
        let report = kv.fail_snode(SnodeId(0)).unwrap();
        assert_eq!(report.keys_lost, 0, "the second copy survives");
        let rep = kv.repair();
        assert_eq!(rep.bytes_shipped, 0, "one snode left: nobody to ship to");
        kv.verify_replication().unwrap();
        assert_eq!(kv.len(), 150);
        for i in 0..150u32 {
            let key = format!("key:{i}");
            assert!(kv.get(key.as_bytes()).is_some(), "{key} lost on the thin cluster");
            assert_eq!(kv.replicas_of(key.as_bytes()).len(), 1, "single-snode chain");
        }
        // The cluster thickens again: in-line join repair re-replicates.
        kv.join(SnodeId(7)).unwrap();
        kv.join(SnodeId(8)).unwrap();
        kv.verify_replication().unwrap();
        for i in 0..150u32 {
            assert_eq!(kv.replicas_of(format!("key:{i}").as_bytes()).len(), 3);
        }
    }

    #[test]
    fn routed_quorum_reads_settle_and_tally() {
        use domus_core::{SnapshotBuilder, SnapshotCell};
        // R = 1 so a moved key genuinely misses on the stale chain (at
        // R ≥ 2 a surviving replica answers even through a stale route —
        // the whole point of replication).
        let mut kv = store(1, 6);
        for i in 0..200u32 {
            kv.put(format!("k{i}"), format!("v{i}"));
        }
        let mut builder = SnapshotBuilder::from_engine(kv.engine());
        let cell = SnapshotCell::new(builder.snapshot());
        let mut pin = cell.load();
        // Rebalance past the pin: a join tee'd into the builder, published.
        let (out, _) = kv.join_with(SnodeId(9), &mut builder).unwrap();
        builder.note_create(out.vnode, SnodeId(9));
        builder.publish(&cell);
        let mut retried = 0u32;
        for i in 0..200u32 {
            let got = kv.get_quorum_routed(&cell, &mut pin, format!("k{i}").as_bytes());
            assert!(got.read.value.is_some(), "routed quorum read must converge on k{i}");
            assert!(got.retries <= 1, "one epoch of churn needs at most one retry");
            retried += got.retries;
        }
        assert!(retried > 0, "the join must have re-routed at least one probe key");
        assert_eq!(pin.epoch(), cell.epoch(), "the pin settles on the published epoch");
        // At the settled (current) epoch every read meets its quorum.
        for i in 0..200u32 {
            assert!(kv.get_quorum_at(&pin, format!("k{i}").as_bytes()).available());
        }
        let c = kv.read_stats().counters();
        assert_eq!(c.reads, 200);
        assert_eq!(c.stale_retries, u64::from(retried));
        assert_eq!(c.misses, 0);
    }
}

//! A thread-safe service façade over the store, with a concurrent
//! serving plane.
//!
//! The data plane of a cluster DHT is read-dominated: lookups proceed
//! concurrently while maintenance (join/leave and the implied migration)
//! is an exclusive event — precisely a reader/writer discipline.
//! [`KvService`] wraps [`KvStore`] in a `parking_lot::RwLock`, giving the
//! downstream user a `Clone + Send + Sync` handle.
//!
//! On top of that lock the service maintains the **serving plane**: a
//! [`SnapshotBuilder`] taps every maintenance operation's rebalance
//! events and publishes an epoch-numbered [`EngineSnapshot`] into a
//! [`SnapshotCell`] *before the write lock is released* — so from any
//! reader's point of view, "store contents" and "published routing
//! epoch" advance together. Readers pin an epoch once and route any
//! number of [`KvService::get_at`] reads lock-free against it; a miss is
//! disambiguated by [`KvService::get_routed`], which re-pins and retries
//! exactly when the cell's epoch moved past the pinned one (stale-route
//! detection). Because publishes are lock-coupled to mutations, a miss
//! at the *current* epoch is a genuine absence — never a torn route.

use crate::store::{KvStore, MigrationReport};
use bytes::Bytes;
use domus_core::{
    CollectReport, CreateOutcome, CreateReport, DhtEngine, DhtError, EngineSnapshot, NullSink,
    RebalanceSink, RemoveOutcome, RemoveReport, RouteStats, SnapshotBuilder, SnapshotCell, SnodeId,
    Tee, VnodeId,
};
use parking_lot::RwLock;
use std::sync::Arc;

/// The store plus its incrementally-maintained routing view — mutated
/// together under the service's write lock.
struct Served<E: DhtEngine> {
    store: KvStore<E>,
    builder: SnapshotBuilder,
}

/// A snapshot-routed read: the value (if the key exists at the epoch the
/// read settled on) plus how many stale-route retries it took to settle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedGet {
    /// The value, `None` when the key is absent at the settled epoch.
    pub value: Option<Bytes>,
    /// Stale-route retries performed (0 = the pinned epoch was current
    /// or the first probe hit).
    pub retries: u32,
}

/// A shareable, thread-safe KV service.
pub struct KvService<E: DhtEngine> {
    inner: Arc<RwLock<Served<E>>>,
    serve: Arc<SnapshotCell>,
    stats: Arc<RouteStats>,
}

impl<E: DhtEngine> Clone for KvService<E> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            serve: Arc::clone(&self.serve),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl<E: DhtEngine> KvService<E> {
    /// Wraps a store (which may already contain vnodes — the serving
    /// plane is seeded from the engine's current state at epoch 0).
    pub fn new(store: KvStore<E>) -> Self {
        let builder = SnapshotBuilder::from_engine(store.engine());
        let serve = Arc::new(SnapshotCell::new(builder.snapshot()));
        Self {
            inner: Arc::new(RwLock::new(Served { store, builder })),
            serve,
            stats: Arc::new(RouteStats::new()),
        }
    }

    /// The service's routed-read statistics: every
    /// [`KvService::get_routed`] records its retry count here, so
    /// stale-route rates are observable without threading a counter
    /// through every call site. Share the same `Arc` with a
    /// `domus-route` cache to tally cache and service reads in one
    /// place.
    pub fn read_stats(&self) -> &Arc<RouteStats> {
        &self.stats
    }

    /// Concurrent read through the live engine (takes the read lock for
    /// the whole route+probe; see [`KvService::get_routed`] for the
    /// serving-plane path).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.inner.read().store.get(key)
    }

    /// The serving-plane cell: pin epochs from it with
    /// [`SnapshotCell::load`], check staleness with one atomic load.
    pub fn serve(&self) -> &Arc<SnapshotCell> {
        &self.serve
    }

    /// Pins the current routing snapshot (brief read lock, then every
    /// lookup against the returned value is lock-free).
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.serve.load()
    }

    /// One snapshot-routed read attempt against a pinned epoch. The
    /// bucket probe holds the store read lock; the routing itself never
    /// touches the engine. A `None` may mean "absent" *or* "stale
    /// route" — [`KvService::get_routed`] disambiguates.
    pub fn get_at(&self, snap: &EngineSnapshot, key: &[u8]) -> Option<Bytes> {
        self.inner.read().store.get_at(snap, key)
    }

    /// Snapshot-routed read with stale-route detection: probes at the
    /// pinned epoch and, on a miss, re-pins and retries once per epoch
    /// the cell advanced past the pin (under steady churn that is a
    /// single retry on the next epoch — the property the
    /// `snapshot_consistency` suite asserts). `snap` is left pinned to
    /// the epoch the read settled on, so a read loop amortises one pin
    /// across many keys.
    pub fn get_routed(&self, snap: &mut Arc<EngineSnapshot>, key: &[u8]) -> RoutedGet {
        let mut retries = 0u32;
        loop {
            let value = self.inner.read().store.get_at(snap, key);
            if value.is_some() || !self.serve.is_stale(snap) {
                self.stats.record(retries, value.is_none());
                return RoutedGet { value, retries };
            }
            // The pin is behind, but the retry is only a *stale-route*
            // retry when the key's owner actually moved between the pinned
            // and current epochs. A miss whose route is identical at both
            // epochs is an absent key caught mid-publish, not stale
            // routing — counting it would double-book every
            // concurrent-epoch miss as stale.
            let fresh = self.serve.load();
            let moved = {
                let guard = self.inner.read();
                guard.store.route_at(snap, key) != guard.store.route_at(&fresh, key)
            };
            *snap = fresh;
            if moved {
                retries += 1;
            }
        }
    }

    /// Exclusive write.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Option<Bytes> {
        self.inner.write().store.put(key, value)
    }

    /// Exclusive removal.
    pub fn remove(&self, key: &[u8]) -> Option<Bytes> {
        self.inner.write().store.remove(key)
    }

    /// Entry count.
    pub fn len(&self) -> u64 {
        self.inner.read().store.len()
    }

    /// `true` when empty (one read-lock acquisition, no key walk).
    pub fn is_empty(&self) -> bool {
        self.inner.read().store.is_empty()
    }

    /// A consistent snapshot of every stored key, in deterministic (owner,
    /// hash point) order.
    ///
    /// Routed through [`KvService::with_read`], so the whole walk holds
    /// **one** read-lock acquisition for its entire duration: an in-flight
    /// migration (`join_full`/`leave_full` hold the write lock across the
    /// engine operation *and* the data moves) can never tear the view —
    /// the snapshot sees the store strictly before or strictly after any
    /// maintenance event, with every key present exactly once.
    pub fn snapshot_keys(&self) -> Vec<Bytes> {
        self.with_read(KvStore::snapshot_keys)
    }

    /// Maintenance: a new vnode joins (exclusive).
    pub fn join(&self, snode: SnodeId) -> Result<(VnodeId, MigrationReport), DhtError> {
        self.join_with(snode, &mut NullSink).map(|(out, mig)| (out.vnode, mig))
    }

    /// [`KvService::join`], streaming every rebalance event into `sink`
    /// while the store migrates data in-line (exclusive). The next
    /// routing epoch is published before the write lock is released.
    pub fn join_with(
        &self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(CreateOutcome, MigrationReport), DhtError> {
        let mut g = self.inner.write();
        let Served { store, builder } = &mut *g;
        let res = store.join_with(snode, &mut Tee(&mut *builder, sink));
        if let Ok((out, _)) = &res {
            builder.note_create(out.vnode, snode);
            builder.publish(&self.serve);
        }
        res
    }

    /// [`KvService::join`], also surfacing the engine's [`CreateReport`].
    pub fn join_full(
        &self,
        snode: SnodeId,
    ) -> Result<(VnodeId, CreateReport, MigrationReport), DhtError> {
        let mut collect = CollectReport::new();
        let (out, mig) = self.join_with(snode, &mut collect)?;
        Ok((out.vnode, collect.into_create_report(&out), mig))
    }

    /// Maintenance: a vnode leaves (exclusive).
    pub fn leave(&self, v: VnodeId) -> Result<MigrationReport, DhtError> {
        self.leave_with(v, &mut NullSink).map(|(_, mig)| mig)
    }

    /// [`KvService::leave`], streaming every rebalance event into `sink`
    /// while the store migrates data in-line (exclusive). The next
    /// routing epoch is published before the write lock is released.
    pub fn leave_with(
        &self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(RemoveOutcome, MigrationReport), DhtError> {
        let mut g = self.inner.write();
        let Served { store, builder } = &mut *g;
        let res = store.leave_with(v, &mut Tee(&mut *builder, sink));
        if res.is_ok() {
            builder.note_remove(v);
            builder.publish(&self.serve);
        }
        res
    }

    /// [`KvService::leave`], also surfacing the engine's [`RemoveReport`].
    pub fn leave_full(&self, v: VnodeId) -> Result<(RemoveReport, MigrationReport), DhtError> {
        let mut collect = CollectReport::new();
        let (out, mig) = self.leave_with(v, &mut collect)?;
        Ok((collect.into_remove_report(&out), mig))
    }

    /// Runs `f` under the read lock (bulk inspection).
    pub fn with_read<T>(&self, f: impl FnOnce(&KvStore<E>) -> T) -> T {
        f(&self.inner.read().store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, LocalDht};
    use domus_hashspace::HashSpace;

    fn service() -> KvService<LocalDht> {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let mut store = KvStore::new(LocalDht::with_seed(cfg, 5));
        store.join(SnodeId(0)).unwrap();
        KvService::new(store)
    }

    #[test]
    fn concurrent_readers_with_maintenance() {
        let svc = service();
        for i in 0..400u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let mut hits = 0u32;
                    for round in 0..200u32 {
                        let i = (t * 37 + round * 13) % 400;
                        if svc.get(format!("k{i}").as_bytes()).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        // Maintenance interleaves with the readers.
        for s in 1..6u32 {
            svc.join(SnodeId(s)).unwrap();
        }
        for r in readers {
            // Every key stays readable throughout migration.
            assert_eq!(r.join().unwrap(), 200);
        }
        svc.with_read(|s| s.verify_placement()).unwrap();
        assert_eq!(svc.len(), 400);
    }

    #[test]
    fn snapshot_keys_is_consistent_and_ordered() {
        let svc = service();
        for i in 0..50u32 {
            svc.put(format!("k{i}"), "v");
        }
        let snap = svc.snapshot_keys();
        assert_eq!(snap.len(), 50);
        // Every stored key appears exactly once.
        let mut sorted: Vec<_> = snap.iter().map(|k| k.to_vec()).collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        // The order is deterministic: a second snapshot is identical.
        assert_eq!(snap, svc.snapshot_keys());
        // And survives maintenance as a set (order may change with owners).
        svc.join(SnodeId(9)).unwrap();
        let mut after: Vec<_> = svc.snapshot_keys().iter().map(|k| k.to_vec()).collect();
        after.sort();
        assert_eq!(after, sorted);
    }

    #[test]
    fn snapshots_mid_join_are_complete() {
        // The read-consistency guard: snapshots racing a stream of
        // `join_full` migrations must always see the complete key set —
        // never a torn view with a key absent (mid-move) or doubled
        // (copied but not yet removed from the donor).
        let svc = service();
        const KEYS: usize = 300;
        for i in 0..KEYS as u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let snappers: Vec<_> = (0..3)
            .map(|_| {
                let svc = svc.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut snaps = 0u32;
                    loop {
                        let snap = svc.snapshot_keys();
                        assert_eq!(snap.len(), KEYS, "torn snapshot mid-join");
                        let mut set: Vec<_> = snap.iter().map(|k| k.to_vec()).collect();
                        set.sort();
                        set.dedup();
                        assert_eq!(set.len(), KEYS, "snapshot double-counted a key");
                        snaps += 1;
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                    }
                    snaps
                })
            })
            .collect();
        // Maintenance storm: every join migrates data while snapshots run.
        for s in 10..26u32 {
            let (_, report, mig) = svc.join_full(SnodeId(s)).unwrap();
            assert_eq!(report.transfers.len() as u64, mig.transfers);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for s in snappers {
            assert!(s.join().unwrap() > 0, "snapshots must actually race the joins");
        }
        assert_eq!(svc.len(), KEYS as u64);
    }

    #[test]
    fn full_reports_surface_control_and_data_plane() {
        let svc = service();
        for i in 0..200u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let (v, create, mig) = svc.join_full(SnodeId(7)).unwrap();
        assert!(create.group.is_some(), "engine report must come through");
        assert_eq!(create.transfers.len() as u64, mig.transfers);
        let (remove, mig) = svc.leave_full(v).unwrap();
        assert_eq!(remove.transfers.len() as u64, mig.transfers);
        assert_eq!(svc.len(), 200);
    }

    #[test]
    fn clone_shares_state() {
        let a = service();
        let b = a.clone();
        a.put("shared", "yes");
        assert_eq!(b.get(b"shared").unwrap().as_ref(), b"yes");
        assert!(!b.is_empty());
        b.remove(b"shared");
        assert_eq!(a.get(b"shared"), None);
        // The serving plane is shared too: a join through either handle
        // publishes an epoch both observe.
        let before = a.serve().epoch();
        b.join(SnodeId(3)).unwrap();
        assert_eq!(a.serve().epoch(), before + 1);
    }

    #[test]
    fn epochs_advance_once_per_maintenance_op() {
        let svc = service();
        assert_eq!(svc.serve().epoch(), 0, "seeded state is epoch 0");
        let (v, _) = svc.join(SnodeId(1)).unwrap();
        assert_eq!(svc.serve().epoch(), 1);
        svc.put("a", "1"); // data writes do not move routing epochs
        assert_eq!(svc.serve().epoch(), 1);
        svc.leave(v).unwrap();
        assert_eq!(svc.serve().epoch(), 2);
    }

    #[test]
    fn snapshot_routed_reads_match_live_reads() {
        let svc = service();
        for i in 0..300u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        for s in 1..5u32 {
            svc.join(SnodeId(s)).unwrap();
        }
        let snap = svc.snapshot();
        for i in 0..300u32 {
            let key = format!("k{i}");
            assert_eq!(svc.get_at(&snap, key.as_bytes()), svc.get(key.as_bytes()));
        }
        assert_eq!(svc.get_at(&snap, b"missing"), None);
    }

    #[test]
    fn stale_pin_retries_to_the_next_epoch() {
        let svc = service();
        for i in 0..300u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        // Pin, then rebalance: the pin is now one epoch stale.
        let mut pin = svc.snapshot();
        let pinned_epoch = pin.epoch();
        svc.join(SnodeId(8)).unwrap();
        let mut retried = 0u32;
        for i in 0..300u32 {
            let got = svc.get_routed(&mut pin, format!("k{i}").as_bytes());
            assert!(got.value.is_some(), "stale-route retry must converge on k{i}");
            assert!(got.retries <= 1, "one epoch of churn needs at most one retry");
            retried += got.retries;
        }
        assert!(retried > 0, "the join must have moved at least one probe key");
        assert_eq!(pin.epoch(), pinned_epoch + 1, "the pin settles on the next epoch");
        // Absent keys settle without looping.
        assert_eq!(svc.get_routed(&mut pin, b"missing").value, None);
    }

    #[test]
    fn routed_reads_tally_into_the_shared_stat_block() {
        let svc = service();
        for i in 0..200u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let mut pin = svc.snapshot();
        svc.join(SnodeId(8)).unwrap(); // the pin is now one epoch stale
        let mut expect_stale = 0u64;
        for i in 0..200u32 {
            expect_stale += u64::from(svc.get_routed(&mut pin, format!("k{i}").as_bytes()).retries);
        }
        let c = svc.read_stats().counters();
        assert_eq!(c.reads, 200);
        assert_eq!(c.stale_retries, expect_stale);
        assert_eq!(c.stale_reads, expect_stale, "one epoch of churn ⇒ ≤1 retry per read");
        assert_eq!(c.misses, 0);
        assert!(expect_stale > 0, "the join must have re-routed at least one probe");
        assert!(c.hit_rate() < 1.0);
        // Window diffing: a second tally since the first is all zeros.
        assert_eq!(svc.read_stats().counters().since(c), Default::default());
    }
}

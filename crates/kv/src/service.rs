//! A thread-safe service façade over the store.
//!
//! The data plane of a cluster DHT is read-dominated: lookups proceed
//! concurrently while maintenance (join/leave and the implied migration)
//! is an exclusive event — precisely a reader/writer discipline.
//! [`KvService`] wraps [`KvStore`] in a `parking_lot::RwLock`, giving the
//! downstream user a `Clone + Send + Sync` handle.

use crate::store::{KvStore, MigrationReport};
use bytes::Bytes;
use domus_core::{
    CreateOutcome, CreateReport, DhtEngine, DhtError, RebalanceSink, RemoveOutcome, RemoveReport,
    SnodeId, VnodeId,
};
use parking_lot::RwLock;
use std::sync::Arc;

/// A shareable, thread-safe KV service.
pub struct KvService<E: DhtEngine> {
    inner: Arc<RwLock<KvStore<E>>>,
}

impl<E: DhtEngine> Clone for KvService<E> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<E: DhtEngine> KvService<E> {
    /// Wraps a store.
    pub fn new(store: KvStore<E>) -> Self {
        Self { inner: Arc::new(RwLock::new(store)) }
    }

    /// Concurrent read.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.inner.read().get(key)
    }

    /// Exclusive write.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Option<Bytes> {
        self.inner.write().put(key, value)
    }

    /// Exclusive removal.
    pub fn remove(&self, key: &[u8]) -> Option<Bytes> {
        self.inner.write().remove(key)
    }

    /// Entry count.
    pub fn len(&self) -> u64 {
        self.inner.read().len()
    }

    /// `true` when empty (one read-lock acquisition, no key walk).
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// A consistent snapshot of every stored key, in deterministic (owner,
    /// hash point) order.
    ///
    /// Routed through [`KvService::with_read`], so the whole walk holds
    /// **one** read-lock acquisition for its entire duration: an in-flight
    /// migration (`join_full`/`leave_full` hold the write lock across the
    /// engine operation *and* the data moves) can never tear the view —
    /// the snapshot sees the store strictly before or strictly after any
    /// maintenance event, with every key present exactly once.
    pub fn snapshot_keys(&self) -> Vec<Bytes> {
        self.with_read(KvStore::snapshot_keys)
    }

    /// Maintenance: a new vnode joins (exclusive).
    pub fn join(&self, snode: SnodeId) -> Result<(VnodeId, MigrationReport), DhtError> {
        self.inner.write().join(snode)
    }

    /// [`KvService::join`], streaming every rebalance event into `sink`
    /// while the store migrates data in-line (exclusive).
    pub fn join_with(
        &self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(CreateOutcome, MigrationReport), DhtError> {
        self.inner.write().join_with(snode, sink)
    }

    /// [`KvService::join`], also surfacing the engine's [`CreateReport`].
    pub fn join_full(
        &self,
        snode: SnodeId,
    ) -> Result<(VnodeId, CreateReport, MigrationReport), DhtError> {
        self.inner.write().join_full(snode)
    }

    /// Maintenance: a vnode leaves (exclusive).
    pub fn leave(&self, v: VnodeId) -> Result<MigrationReport, DhtError> {
        self.inner.write().leave(v)
    }

    /// [`KvService::leave`], streaming every rebalance event into `sink`
    /// while the store migrates data in-line (exclusive).
    pub fn leave_with(
        &self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<(RemoveOutcome, MigrationReport), DhtError> {
        self.inner.write().leave_with(v, sink)
    }

    /// [`KvService::leave`], also surfacing the engine's [`RemoveReport`].
    pub fn leave_full(&self, v: VnodeId) -> Result<(RemoveReport, MigrationReport), DhtError> {
        self.inner.write().leave_full(v)
    }

    /// Runs `f` under the read lock (bulk inspection).
    pub fn with_read<T>(&self, f: impl FnOnce(&KvStore<E>) -> T) -> T {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, LocalDht};
    use domus_hashspace::HashSpace;

    fn service() -> KvService<LocalDht> {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let mut store = KvStore::new(LocalDht::with_seed(cfg, 5));
        store.join(SnodeId(0)).unwrap();
        KvService::new(store)
    }

    #[test]
    fn concurrent_readers_with_maintenance() {
        let svc = service();
        for i in 0..400u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let mut hits = 0u32;
                    for round in 0..200u32 {
                        let i = (t * 37 + round * 13) % 400;
                        if svc.get(format!("k{i}").as_bytes()).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        // Maintenance interleaves with the readers.
        for s in 1..6u32 {
            svc.join(SnodeId(s)).unwrap();
        }
        for r in readers {
            // Every key stays readable throughout migration.
            assert_eq!(r.join().unwrap(), 200);
        }
        svc.with_read(|s| s.verify_placement()).unwrap();
        assert_eq!(svc.len(), 400);
    }

    #[test]
    fn snapshot_keys_is_consistent_and_ordered() {
        let svc = service();
        for i in 0..50u32 {
            svc.put(format!("k{i}"), "v");
        }
        let snap = svc.snapshot_keys();
        assert_eq!(snap.len(), 50);
        // Every stored key appears exactly once.
        let mut sorted: Vec<_> = snap.iter().map(|k| k.to_vec()).collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        // The order is deterministic: a second snapshot is identical.
        assert_eq!(snap, svc.snapshot_keys());
        // And survives maintenance as a set (order may change with owners).
        svc.join(SnodeId(9)).unwrap();
        let mut after: Vec<_> = svc.snapshot_keys().iter().map(|k| k.to_vec()).collect();
        after.sort();
        assert_eq!(after, sorted);
    }

    #[test]
    fn snapshots_mid_join_are_complete() {
        // The read-consistency guard: snapshots racing a stream of
        // `join_full` migrations must always see the complete key set —
        // never a torn view with a key absent (mid-move) or doubled
        // (copied but not yet removed from the donor).
        let svc = service();
        const KEYS: usize = 300;
        for i in 0..KEYS as u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let snappers: Vec<_> = (0..3)
            .map(|_| {
                let svc = svc.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut snaps = 0u32;
                    loop {
                        let snap = svc.snapshot_keys();
                        assert_eq!(snap.len(), KEYS, "torn snapshot mid-join");
                        let mut set: Vec<_> = snap.iter().map(|k| k.to_vec()).collect();
                        set.sort();
                        set.dedup();
                        assert_eq!(set.len(), KEYS, "snapshot double-counted a key");
                        snaps += 1;
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                    }
                    snaps
                })
            })
            .collect();
        // Maintenance storm: every join migrates data while snapshots run.
        for s in 10..26u32 {
            let (_, report, mig) = svc.join_full(SnodeId(s)).unwrap();
            assert_eq!(report.transfers.len() as u64, mig.transfers);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for s in snappers {
            assert!(s.join().unwrap() > 0, "snapshots must actually race the joins");
        }
        assert_eq!(svc.len(), KEYS as u64);
    }

    #[test]
    fn full_reports_surface_control_and_data_plane() {
        let svc = service();
        for i in 0..200u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let (v, create, mig) = svc.join_full(SnodeId(7)).unwrap();
        assert!(create.group.is_some(), "engine report must come through");
        assert_eq!(create.transfers.len() as u64, mig.transfers);
        let (remove, mig) = svc.leave_full(v).unwrap();
        assert_eq!(remove.transfers.len() as u64, mig.transfers);
        assert_eq!(svc.len(), 200);
    }

    #[test]
    fn clone_shares_state() {
        let a = service();
        let b = a.clone();
        a.put("shared", "yes");
        assert_eq!(b.get(b"shared").unwrap().as_ref(), b"yes");
        assert!(!b.is_empty());
        b.remove(b"shared");
        assert_eq!(a.get(b"shared"), None);
    }
}

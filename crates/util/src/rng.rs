//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the paper's evaluation — the random victim
//! point `r ∈ R_h`, the random halving of a full group, the random choice of
//! container group, Consistent Hashing's random virtual-server points — is
//! driven through these generators so that:
//!
//! 1. a `(seed, run_index)` pair fully determines a simulation, and
//! 2. the 100-run averages reported by the experiment harness are
//!    reproducible bit-for-bit on any platform.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, used for seeding and hashing-style mixing.
//! * [`Xoshiro256pp`] — the workhorse stream (xoshiro256++ by Blackman &
//!   Vigna), statistically strong and extremely fast; implemented from the
//!   public-domain reference algorithm.

/// Minimal RNG interface used across the workspace.
///
/// This is intentionally smaller than `rand::RngCore`: simulation hot loops
/// need `u64` draws, bounded draws, floats in `[0,1)`, and in-place
/// shuffling — nothing else.
pub trait DomusRng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0) is undefined");
        // Lemire 2018: unbiased bounded generation without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly distributed `usize` index in `[0, len)`.
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability 1/2.
    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of `slice`, in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, len)` by shuffling an index
    /// vector (exact, unbiased; `k <= len`).
    fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        assert!(k <= len, "cannot sample {k} items from {len}");
        let mut idx: Vec<usize> = (0..len).collect();
        // Partial Fisher–Yates: after k swaps the first k entries are a
        // uniform k-subset in uniform order.
        for i in 0..k {
            let j = i + self.index(len - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// SplitMix64 (Steele, Lea & Flood): a 64-bit mixing generator.
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256pp`], and as a cheap avalanche mixer for hashing integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed (any value, including 0, is fine).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// One-shot avalanche mix of `x` — the SplitMix64 output function.
    ///
    /// Useful as a fast integer hash with good avalanche behaviour.
    #[inline]
    pub fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl DomusRng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, public domain reference).
///
/// The default stream generator of the workspace: 256 bits of state, period
/// `2^256 − 1`, passes BigCrush, and is a handful of ALU ops per draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from an explicit 256-bit state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must not be all-zero");
        Self { s }
    }

    /// Jump function: advances the stream by `2^128` draws, yielding a
    /// statistically independent substream. Used to derive per-run streams
    /// from one experiment master seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump_word in JUMP {
            for bit in 0..64 {
                if jump_word & (1u64 << bit) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl DomusRng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derives independent, reproducible per-run / per-purpose RNG streams from a
/// single experiment master seed.
///
/// Streams are separated by hashing `(master, label, index)` through
/// SplitMix64 — different labels or indices give unrelated streams, and the
/// derivation is order-independent (stream 7 is identical whether or not
/// stream 6 was ever created).
#[derive(Debug, Clone)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// A seed sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this sequence was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A generator for run `index` of the purpose `label`.
    pub fn stream(&self, label: &str, index: u64) -> Xoshiro256pp {
        let mut h = self.master;
        for &b in label.as_bytes() {
            h = SplitMix64::mix(h ^ b as u64);
        }
        h = SplitMix64::mix(h ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        Xoshiro256pp::seed_from_u64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ authors' C code seeded with
    /// s = {1, 2, 3, 4}.
    #[test]
    fn xoshiro_reference_vector() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_from_u64_differs_by_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_below_is_in_range_and_hits_all_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let bound = 10u64;
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues below 10 should appear in 10k draws");
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let bound = 8u64;
        let n = 80_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket off by {dev:.3} (>5%)");
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..100 {
            let s = rng.sample_indices(20, 8);
            assert_eq!(s.len(), 8);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 8, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_range_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut s = rng.sample_indices(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn seed_sequence_streams_are_label_and_index_separated() {
        let seq = SeedSequence::new(2024);
        let mut a = seq.stream("fig4", 0);
        let mut b = seq.stream("fig4", 1);
        let mut c = seq.stream("fig6", 0);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_ne!(va, vb);
        assert_ne!(va, vc);
        // And reproducible:
        let mut a2 = seq.stream("fig4", 0);
        let va2: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = a.clone();
        b.jump();
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.coin()).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "coin frac {frac}");
    }
}

//! Power-of-two and bit-twiddling helpers.
//!
//! The model of Rufino et al. is built almost entirely out of powers of two:
//! the hash range is `2^Bh`, partition counts are powers of two (invariant
//! G2/G2'), `Pmin`/`Vmin` are powers of two (G4/L2), and group identifiers
//! are binary strings. These helpers centralise the checked arithmetic so
//! the model code reads like the paper.

/// Returns `true` iff `x` is a power of two (`1, 2, 4, ...`).
///
/// Zero is *not* a power of two.
///
/// ```
/// use domus_util::bits::is_power_of_two;
/// assert!(is_power_of_two(1));
/// assert!(is_power_of_two(1024));
/// assert!(!is_power_of_two(0));
/// assert!(!is_power_of_two(12));
/// ```
#[inline]
pub fn is_power_of_two(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// `floor(log2(x))` for `x > 0`.
///
/// # Panics
/// Panics if `x == 0`.
#[inline]
pub fn floor_log2(x: u64) -> u32 {
    assert!(x > 0, "floor_log2(0) is undefined");
    63 - x.leading_zeros()
}

/// `ceil(log2(x))` for `x > 0`: the smallest `k` with `2^k >= x`.
///
/// # Panics
/// Panics if `x == 0`.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x > 0, "ceil_log2(0) is undefined");
    if is_power_of_two(x) {
        floor_log2(x)
    } else {
        floor_log2(x) + 1
    }
}

/// Smallest power of two `>= x` (for `x > 0`).
///
/// # Panics
/// Panics if `x == 0` or if the result would overflow `u64`.
#[inline]
pub fn next_power_of_two(x: u64) -> u64 {
    assert!(x > 0, "next_power_of_two(0) is undefined");
    1u64.checked_shl(ceil_log2(x)).expect("next_power_of_two overflow")
}

/// Reverses the low `len` bits of `x` (bits above `len` are discarded).
///
/// Used by the group-identifier scheme: the paper prefixes split bits on the
/// most-significant side, which is the bit-reversal of the natural insertion
/// order (see `domus_core::group_id`).
#[inline]
pub fn reverse_low_bits(x: u64, len: u32) -> u64 {
    debug_assert!(len <= 64);
    if len == 0 {
        return 0;
    }
    x.reverse_bits() >> (64 - len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        let powers: Vec<u64> = (0..63).map(|k| 1u64 << k).collect();
        for &p in &powers {
            assert!(is_power_of_two(p), "{p} must be a power of two");
        }
        for x in [0u64, 3, 5, 6, 7, 9, 12, 100, 1023, 1025] {
            assert!(!is_power_of_two(x), "{x} must not be a power of two");
        }
    }

    #[test]
    fn floor_log2_matches_float_math() {
        for x in 1u64..=4096 {
            assert_eq!(floor_log2(x) as f64, (x as f64).log2().floor());
        }
    }

    #[test]
    fn ceil_log2_matches_float_math() {
        for x in 1u64..=4096 {
            assert_eq!(ceil_log2(x) as f64, (x as f64).log2().ceil());
        }
    }

    #[test]
    fn next_power_of_two_basics() {
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1000), 1024);
        assert_eq!(next_power_of_two(1024), 1024);
        assert_eq!(next_power_of_two(1025), 2048);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn floor_log2_zero_panics() {
        let _ = floor_log2(0);
    }

    #[test]
    fn reverse_low_bits_roundtrip() {
        for len in 0..16u32 {
            for x in 0..(1u64 << len.min(10)) {
                assert_eq!(reverse_low_bits(reverse_low_bits(x, len), len), x);
            }
        }
        assert_eq!(reverse_low_bits(0b001, 3), 0b100);
        assert_eq!(reverse_low_bits(0b011, 3), 0b110);
    }
}

//! # domus-util
//!
//! Foundation utilities shared by every crate in the `domus` workspace:
//!
//! * [`rng`] — small, fast, *deterministic* pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256pp`]) with an explicit seeding
//!   discipline. The paper's evaluation averages 100 runs of each simulation;
//!   platform-independent, reproducible streams are therefore part of the
//!   public contract of this workspace, not an implementation detail.
//! * [`bits`] — power-of-two arithmetic helpers used by the hash-space
//!   algebra and the model invariants (G2/G4/L2 all speak in powers of two).
//!
//! The generators implement a tiny local [`rng::DomusRng`] trait rather than
//! `rand::RngCore` so that the hot simulation loops carry no external trait
//! plumbing; adapters for `rand` live where they are needed (test code).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod hash;
pub mod rng;

pub use bits::{ceil_log2, floor_log2, is_power_of_two, next_power_of_two};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use rng::{DomusRng, SeedSequence, SplitMix64, Xoshiro256pp};

//! A tiny deterministic integer hasher for hot-path hash maps.
//!
//! `std`'s default `HashMap` hasher (SipHash) is keyed per-process and
//! costs tens of nanoseconds per small key — both wrong for this
//! workspace, where map *contents* must be reproducible run-to-run and
//! the keys are small dense-ish integers (snode ids, vnode handles).
//! [`FxHasher`] is the classic Fibonacci-multiply mix (the `rustc`
//! hashing scheme): one multiply per word, fully deterministic.
//!
//! Iteration order of a hash map is still arbitrary — callers that emit
//! user-visible sequences must sort first (see
//! `domus_core::ledger::SnodeLedger`).

use std::hash::{BuildHasherDefault, Hasher};

/// One-multiply mixing hasher for integer keys (FxHash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(0xDEAD);
        b.write_u32(0xDEAD);
        assert_eq!(a.finish(), b.finish());
        a.write(b"suffix");
        b.write(b"suffix");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_with_integer_keys() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i as u64 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&512), Some(&1024));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let hashes: std::collections::BTreeSet<u64> = (0..10_000u32)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on small dense keys");
    }
}

//! FIG5 benchmark: the θ parameter-choice sweep — three diagonal growths
//! plus the θ functional itself.

use criterion::{criterion_group, criterion_main, Criterion};
use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_experiments::fig5::theta;
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn end_sigma(pv: u64, n: usize) -> f64 {
    let cfg = DhtConfig::new(HashSpace::full(), pv, pv).expect("config");
    let mut dht = LocalDht::with_seed(cfg, 7);
    for i in 0..n {
        dht.create_vnode(SnodeId(i as u32)).expect("growth");
    }
    dht.vnode_quota_relstd_pct()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("diagonal_sweep_256", |b| {
        b.iter(|| {
            let values = [8u64, 16, 32];
            let sigmas: Vec<f64> = values.iter().map(|&v| end_sigma(v, 256)).collect();
            black_box(theta(&values, &sigmas, 0.5, 0.5))
        });
    });
    g.bench_function("theta_functional_only", |b| {
        let values = [8u64, 16, 32, 64, 128];
        let sigmas = [22.0, 15.4, 10.8, 7.5, 5.3];
        b.iter(|| black_box(theta(&values, &sigmas, 0.5, 0.5)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

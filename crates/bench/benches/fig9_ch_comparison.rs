//! FIG9 kernel benchmark: consistent-hashing ring growth (with exact
//! incremental quota tracking) vs the model's growth — the two systems
//! figure 9 compares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_ch::ChRing;
use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 512;
    let mut g = c.benchmark_group("fig9_run");
    g.sample_size(10);
    for k in [32u32, 64] {
        g.bench_with_input(BenchmarkId::new("ch_join_sweep_k", k), &k, |b, &k| {
            b.iter(|| {
                let mut ring = ChRing::with_seed(HashSpace::full(), k, 9);
                let mut acc = 0.0;
                for _ in 0..n {
                    ring.join();
                    acc += ring.node_quota_relstd_pct();
                }
                black_box(acc)
            });
        });
    }
    for vmin in [32u64, 256] {
        let cfg = DhtConfig::new(HashSpace::full(), 32, vmin).expect("config");
        g.bench_with_input(BenchmarkId::new("local_join_sweep_vmin", vmin), &vmin, |b, _| {
            b.iter(|| {
                let mut dht = LocalDht::with_seed(cfg, 9);
                let mut acc = 0.0;
                for i in 0..n {
                    dht.create_vnode(SnodeId(i as u32)).expect("growth");
                    acc += dht.vnode_quota_relstd_pct();
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! FIG8 kernel benchmark: the σ̄(Qg) between-groups metric — the O(G)
//! per-sample computation figure 8 performs after every creation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn grown(vmin: u64, n: usize) -> LocalDht {
    let cfg = DhtConfig::new(HashSpace::full(), 8, vmin).expect("config");
    let mut dht = LocalDht::with_seed(cfg, 5);
    for i in 0..n {
        dht.create_vnode(SnodeId(i as u32)).expect("growth");
    }
    dht
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_metric");
    for vmin in [4u64, 16, 64] {
        let dht = grown(vmin, 512);
        let groups = dht.group_count();
        g.bench_with_input(BenchmarkId::new("sigma_qg_groups", groups), &dht, |b, dht| {
            b.iter(|| black_box(dht.group_quota_relstd_pct()))
        });
        g.bench_with_input(BenchmarkId::new("sigma_qv_groups", groups), &dht, |b, dht| {
            b.iter(|| black_box(dht.vnode_quota_relstd_pct()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

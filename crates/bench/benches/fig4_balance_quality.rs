//! FIG4 kernel benchmark: how fast one figure-4 simulation run is — a
//! full 1024-creation local-approach growth with per-step σ̄ sampling —
//! across the paper's diagonal `(Pmin, Vmin)` parameterizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn grow_and_sample(cfg: DhtConfig, n: usize, seed: u64) -> f64 {
    let mut dht = LocalDht::with_seed(cfg, seed);
    let mut acc = 0.0;
    for i in 0..n {
        dht.create_vnode(SnodeId(i as u32)).expect("growth");
        acc += dht.vnode_quota_relstd_pct();
    }
    acc
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_run");
    g.sample_size(10);
    for pv in [8u64, 32, 128] {
        let cfg = DhtConfig::new(HashSpace::full(), pv, pv).expect("config");
        g.bench_with_input(BenchmarkId::new("pmin_vmin", pv), &pv, |b, _| {
            b.iter(|| black_box(grow_and_sample(cfg, 1024, 42)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

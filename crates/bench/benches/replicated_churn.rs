//! Replicated-churn benchmarks: events/sec of the crash-failure replay
//! hot path with the `ReplicatedStore` overlay threaded in — event
//! dispatch + engine mutation + replica relocation + horizon-bounded
//! repair + pricing — at replication factors R = 1, 2 and 3, per backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use domus_ch::ChEngine;
use domus_churn::{Capacity, ChurnDriver, DriverConfig, Lifetime, Process, Scenario};
use domus_core::{DhtConfig, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_sim::SimTime;
use std::hint::black_box;

const ENTRIES: u64 = 2_000;
const VALUE_LEN: usize = 16;

fn bench(c: &mut Criterion) {
    // Sustained churn with ungraceful crashes layered on — the event
    // shapes CHURN-REPL replays.
    let stream = Scenario::new(SimTime::millis(600_000))
        .with(Process::InitialFleet { nodes: 16, capacity: Capacity::Fixed(2) })
        .with(Process::Poisson {
            rate_per_s: 1.0,
            lifetime: Lifetime::Pareto { min: SimTime::millis(60_000), alpha: 1.5 },
            capacity: Capacity::Uniform { lo: 1, hi: 2 },
        })
        .with(Process::RandomCrashes { rate_per_s: 0.05 })
        .with(Process::CrashStorm {
            at: SimTime::millis(400_000),
            crashes: 3,
            spread: SimTime::millis(10_000),
        })
        .build(2004);
    let space = HashSpace::full();

    let mut g = c.benchmark_group("replicated_churn");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stream.len() as u64));

    for r in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::new("local", format!("r{r}")), &stream, |b, stream| {
            let cfg = DhtConfig::new(space, 32, 32).expect("config");
            b.iter(|| {
                let driver = ChurnDriver::with_replication(
                    LocalDht::with_seed(cfg, 7),
                    DriverConfig::default(),
                    ENTRIES,
                    VALUE_LEN,
                    r,
                );
                black_box(driver.run(stream).totals.repaired)
            });
        });
        g.bench_with_input(BenchmarkId::new("global", format!("r{r}")), &stream, |b, stream| {
            let cfg = DhtConfig::new(space, 32, 1).expect("config");
            b.iter(|| {
                let driver = ChurnDriver::with_replication(
                    GlobalDht::with_seed(cfg, 7),
                    DriverConfig::default(),
                    ENTRIES,
                    VALUE_LEN,
                    r,
                );
                black_box(driver.run(stream).totals.repaired)
            });
        });
        g.bench_with_input(BenchmarkId::new("ch", format!("r{r}")), &stream, |b, stream| {
            let cfg = DhtConfig::new(space, 32, 1).expect("config");
            b.iter(|| {
                let driver = ChurnDriver::with_replication(
                    ChEngine::with_seed(cfg, 32, 7),
                    DriverConfig::default(),
                    ENTRIES,
                    VALUE_LEN,
                    r,
                );
                black_box(driver.run(stream).totals.repaired)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Route-convergence benchmarks: wall-clock cost of the routed replay —
//! event dispatch + engine mutation + replica relocation + lease
//! bookkeeping + hot-spot detection + the per-window cache probe — on
//! the hot-spot/stall scenario, per backend. The replay also reports
//! (once, outside the timed loop) how many control-plane windows the
//! rebalance took to converge, which is the number the `bench-summary`
//! gate holds per backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use domus_ch::ChEngine;
use domus_churn::{ChurnDriver, ChurnOutcome, DriverConfig, EventStream, Scenario};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_route::RouterConfig;
use std::hint::black_box;

const ENTRIES: u64 = 2_000;
const VALUE_LEN: usize = 16;

fn routed_replay<E: DhtEngine + Send + Sync>(engine: E, stream: &EventStream) -> ChurnOutcome {
    ChurnDriver::with_replication(engine, DriverConfig::default(), ENTRIES, VALUE_LEN, 2)
        .with_router(RouterConfig::default())
        .run(stream)
}

fn bench(c: &mut Criterion) {
    let stream = Scenario::hotspot_failover().build(2004);
    let space = HashSpace::full();
    let local_cfg = DhtConfig::new(space, 32, 32).expect("config");
    let flat_cfg = DhtConfig::new(space, 32, 1).expect("config");

    // Print the deterministic convergence numbers once — the benchmark
    // times the replay, but these are what the regression gate watches.
    for (name, outcome) in [
        ("local", routed_replay(LocalDht::with_seed(local_cfg, 7), &stream)),
        ("global", routed_replay(GlobalDht::with_seed(flat_cfg, 7), &stream)),
        ("ch", routed_replay(ChEngine::with_seed(flat_cfg, 32, 7), &stream)),
    ] {
        let t = &outcome.totals;
        assert_eq!(t.lease_violations, 0, "{name}: lease safety must hold");
        assert_eq!(t.keys_lost, 0, "{name}: R=2 failover must lose nothing");
        println!(
            "route_convergence/{name}: converged in {} window(s), {} failover(s), {} move(s)",
            t.route_convergence, t.failovers, t.route_moves
        );
    }

    let mut g = c.benchmark_group("route_convergence");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_with_input(BenchmarkId::new("local", "r2"), &stream, |b, stream| {
        b.iter(|| {
            black_box(routed_replay(LocalDht::with_seed(local_cfg, 7), stream).totals.route_moves)
        });
    });
    g.bench_with_input(BenchmarkId::new("global", "r2"), &stream, |b, stream| {
        b.iter(|| {
            black_box(routed_replay(GlobalDht::with_seed(flat_cfg, 7), stream).totals.route_moves)
        });
    });
    g.bench_with_input(BenchmarkId::new("ch", "r2"), &stream, |b, stream| {
        b.iter(|| {
            black_box(
                routed_replay(ChEngine::with_seed(flat_cfg, 32, 7), stream).totals.route_moves,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

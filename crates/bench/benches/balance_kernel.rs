//! Micro-benchmarks of the balancement kernel: per-creation cost as the
//! DHT grows (global O(V) record vs local O(V_g) group), and removal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn bench_creation(c: &mut Criterion) {
    let mut g = c.benchmark_group("create_vnode_at_v");
    for v in [64usize, 512, 2048] {
        // Global: the whole record participates.
        let gcfg = DhtConfig::new(HashSpace::full(), 32, 1).expect("config");
        let mut global = GlobalDht::with_seed(gcfg, 1);
        for i in 0..v {
            global.create_vnode(SnodeId(i as u32)).expect("growth");
        }
        g.bench_with_input(BenchmarkId::new("global", v), &v, |b, _| {
            b.iter_batched(
                || global.clone(),
                |mut dht| black_box(dht.create_vnode(SnodeId(0)).expect("create")),
                criterion::BatchSize::SmallInput,
            );
        });
        // Local: only the container group participates.
        let lcfg = DhtConfig::new(HashSpace::full(), 32, 32).expect("config");
        let mut local = LocalDht::with_seed(lcfg, 1);
        for i in 0..v {
            local.create_vnode(SnodeId(i as u32)).expect("growth");
        }
        g.bench_with_input(BenchmarkId::new("local", v), &v, |b, _| {
            b.iter_batched(
                || local.clone(),
                |mut dht| black_box(dht.create_vnode(SnodeId(0)).expect("create")),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_removal(c: &mut Criterion) {
    let mut g = c.benchmark_group("remove_vnode_at_v");
    g.sample_size(20);
    for v in [64usize, 512] {
        let cfg = DhtConfig::new(HashSpace::full(), 32, 32).expect("config");
        let mut local = LocalDht::with_seed(cfg, 1);
        for i in 0..v {
            local.create_vnode(SnodeId(i as u32)).expect("growth");
        }
        let victim = local.vnodes()[v / 2];
        g.bench_with_input(BenchmarkId::new("local", v), &v, |b, _| {
            b.iter_batched(
                || local.clone(),
                |mut dht| black_box(dht.remove_vnode(victim).expect("remove")),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_creation, bench_removal);
criterion_main!(benches);

//! Durability-tier benchmarks: the WAL hot paths a crashed snode walks
//! on rejoin — frame-by-frame append, checkpoint-aware replay, and the
//! Merkle digest diff that decides which buckets repair actually ships.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use domus_wal::digest::{entry_hash, DigestTree};
use domus_wal::log::SegmentedWal;
use domus_wal::record::WalRecord;
use std::hint::black_box;

const SEGMENT_CAP: usize = 64 * 1024;
const VALUE_LEN: usize = 16;

fn record(i: u64) -> WalRecord {
    WalRecord::Put {
        key: Bytes::from(format!("bench-key-{i:08}")),
        value: Bytes::from(vec![0xAB; VALUE_LEN]),
    }
}

fn filled(records: u64) -> SegmentedWal {
    let mut wal = SegmentedWal::new(SEGMENT_CAP);
    for i in 0..records {
        wal.append(&record(i));
    }
    wal
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append");
    for records in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(records));
        g.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, &records| {
            b.iter(|| {
                let mut wal = SegmentedWal::new(SEGMENT_CAP);
                for i in 0..records {
                    wal.append(&record(i));
                }
                black_box(wal.next_seq())
            });
        });
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_replay");
    for records in [1_000u64, 10_000] {
        let full = filled(records);
        // A half-checkpointed log: the realistic rejoin shape, where
        // earlier segments were already truncated away.
        let mut half = filled(records);
        half.checkpoint(records / 2);

        g.throughput(Throughput::Elements(records));
        g.bench_with_input(BenchmarkId::new("full", records), &full, |b, wal| {
            b.iter(|| {
                let recovered = wal.replay().filter(|r| r.is_ok()).count();
                black_box(recovered)
            });
        });
        g.throughput(Throughput::Elements(records / 2));
        g.bench_with_input(BenchmarkId::new("half_checkpointed", records), &half, |b, wal| {
            b.iter(|| {
                let recovered = wal.replay().filter(|r| r.is_ok()).count();
                black_box(recovered)
            });
        });
    }
    g.finish();
}

fn bench_digest_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_digest_diff");
    for entries in [10_000u64, 100_000] {
        // Two replicas that diverge on a handful of keys — the shape
        // anti-entropy sees after a crash window.
        let mut ours = DigestTree::new(8);
        let mut theirs = DigestTree::new(8);
        for i in 0..entries {
            let key = format!("bench-key-{i:08}");
            let h = entry_hash(key.as_bytes(), b"v");
            let pos = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ours.toggle(pos, h);
            theirs.toggle(pos, h);
        }
        for i in 0..16u64 {
            let key = format!("divergent-{i}");
            theirs.toggle(i << 58, entry_hash(key.as_bytes(), b"w"));
        }

        g.throughput(Throughput::Elements(entries));
        g.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &(ours, theirs),
            |b, (ours, theirs)| {
                b.iter(|| black_box(ours.diff(theirs).len()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_replay, bench_digest_diff);
criterion_main!(benches);

//! Churn-driver benchmarks: events/sec of the replay hot path
//! (event dispatch + engine mutation + report pricing + window sampling),
//! control-plane only — the CHURN experiment's kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use domus_ch::ChEngine;
use domus_churn::{Capacity, ChurnDriver, DriverConfig, Lifetime, Process, Scenario};
use domus_core::{DhtConfig, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_sim::SimTime;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A sustained interleaved join/leave storm with a mid-run failure —
    // the exact event shapes the CHURN experiment replays.
    let stream = Scenario::new(SimTime::millis(600_000))
        .with(Process::InitialFleet { nodes: 16, capacity: Capacity::Fixed(2) })
        .with(Process::Poisson {
            rate_per_s: 2.0,
            lifetime: Lifetime::Pareto { min: SimTime::millis(30_000), alpha: 1.5 },
            capacity: Capacity::Uniform { lo: 1, hi: 2 },
        })
        .with(Process::GroupFailure { at: SimTime::millis(400_000), fraction: 0.2 })
        .build(2004);
    let space = HashSpace::full();

    let mut g = c.benchmark_group("churn_replay");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_with_input(BenchmarkId::new("events", "local"), &stream, |b, stream| {
        let cfg = DhtConfig::new(space, 32, 32).expect("config");
        b.iter(|| {
            let driver = ChurnDriver::new(LocalDht::with_seed(cfg, 7), DriverConfig::default());
            black_box(driver.run(stream).totals.messages)
        });
    });
    g.bench_with_input(BenchmarkId::new("events", "global"), &stream, |b, stream| {
        let cfg = DhtConfig::new(space, 32, 1).expect("config");
        b.iter(|| {
            let driver = ChurnDriver::new(GlobalDht::with_seed(cfg, 7), DriverConfig::default());
            black_box(driver.run(stream).totals.messages)
        });
    });
    g.bench_with_input(BenchmarkId::new("events", "ch"), &stream, |b, stream| {
        let cfg = DhtConfig::new(space, 32, 1).expect("config");
        b.iter(|| {
            let driver = ChurnDriver::new(ChEngine::with_seed(cfg, 32, 7), DriverConfig::default());
            black_box(driver.run(stream).totals.messages)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! KV-layer benchmarks: put/get throughput through DHT routing, and the
//! cost of a data-migrating join (KV-MIGRATE's kernel).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use domus_core::{DhtConfig, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use domus_kv::{KvStore, UniformKeys};
use domus_util::Xoshiro256pp;
use std::hint::black_box;

fn loaded(entries: u64, vnodes: u32) -> KvStore<LocalDht> {
    let cfg = DhtConfig::new(HashSpace::full(), 16, 8).expect("config");
    let mut kv = KvStore::new(LocalDht::with_seed(cfg, 21));
    for s in 0..vnodes {
        kv.join(SnodeId(s)).expect("join");
    }
    let keys = UniformKeys::new(entries);
    for i in 0..entries {
        kv.put(keys.key_at(i), domus_kv::workload::value_of(24, i));
    }
    kv
}

fn bench(c: &mut Criterion) {
    let kv = loaded(50_000, 16);
    let keys = UniformKeys::new(50_000);

    let mut g = c.benchmark_group("kv");
    g.throughput(Throughput::Elements(1));
    g.bench_function("get_hit", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        b.iter(|| {
            let k = keys.draw(&mut rng);
            black_box(kv.get(k.as_bytes()))
        });
    });
    g.bench_function("put_overwrite", |b| {
        let mut kv = kv.clone();
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        b.iter(|| {
            let k = keys.draw(&mut rng);
            black_box(kv.put(k, "new-value"))
        });
    });
    g.finish();

    let mut m = c.benchmark_group("kv_migration");
    m.sample_size(10);
    m.bench_function("join_migrating_50k_entries", |b| {
        b.iter_batched(
            || (kv.clone(), 100u32),
            |(mut kv, s)| {
                let (_, rep) = kv.join(SnodeId(s)).expect("join");
                black_box(rep.bytes)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    m.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

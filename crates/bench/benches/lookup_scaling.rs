//! Lookup scaling: point → vnode routing throughput at 1k/4k/16k vnodes
//! on all three backends — the data-path cost the owner-indexed hashspace
//! keeps logarithmic while the DHT grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use domus_ch::ChEngine;
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use domus_util::{DomusRng, Xoshiro256pp};
use std::hint::black_box;

const SIZES: [usize; 3] = [1024, 4096, 16384];

fn grow<E: DhtEngine>(mut e: E, v: usize) -> E {
    for i in 0..v {
        e.create_vnode(SnodeId(i as u32)).expect("growth");
    }
    e
}

fn points(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_engine<E: DhtEngine>(g: &mut criterion::BenchmarkGroup<'_>, name: &str, v: usize, e: &E) {
    let probes = points(1024);
    g.bench_with_input(BenchmarkId::new(name, v), e, |b, e| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &probes {
                let (_, vn) = e.lookup(p).expect("covered");
                acc ^= vn.0 as u64;
            }
            black_box(acc)
        });
    });
}

fn bench(c: &mut Criterion) {
    let space = HashSpace::full();
    // Sample count is left to the harness (CLI `--sample-size` works —
    // CI's smoke step passes 2); engine growth dominates setup anyway.
    let mut g = c.benchmark_group("lookup_scaling");
    g.throughput(Throughput::Elements(1024));
    for v in SIZES {
        let local = grow(LocalDht::with_seed(DhtConfig::new(space, 32, 32).unwrap(), 3), v);
        bench_engine(&mut g, "local", v, &local);
        drop(local);
        let global = grow(GlobalDht::with_seed(DhtConfig::new(space, 32, 1).unwrap(), 3), v);
        bench_engine(&mut g, "global", v, &global);
        drop(global);
        let ch = grow(ChEngine::with_seed(DhtConfig::new(space, 32, 1).unwrap(), 32, 3), v);
        bench_engine(&mut g, "ch", v, &ch);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

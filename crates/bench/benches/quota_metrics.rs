//! Quota-metric sampling cost at 1k/4k/16k vnodes on all three backends:
//! `quota_of` (single vnode), `quotas()` (full vector), the σ̄(Qv) relstd
//! metric and the churn driver's per-window `balance_snapshot` — the hot
//! observation paths the incremental accumulators keep off the O(V·P)
//! rescans the seed implementation paid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_ch::ChEngine;
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

const SIZES: [usize; 3] = [1024, 4096, 16384];

fn grow<E: DhtEngine>(mut e: E, v: usize) -> E {
    for i in 0..v {
        // 4 vnodes per snode: the per-snode aggregates have real work.
        e.create_vnode(SnodeId((i / 4) as u32)).expect("growth");
    }
    e
}

fn bench_engine<E: DhtEngine>(g: &mut criterion::BenchmarkGroup<'_>, name: &str, v: usize, e: &E) {
    let probe = e.vnodes()[v / 2];
    g.bench_with_input(BenchmarkId::new(format!("{name}/quota_of"), v), e, |b, e| {
        b.iter(|| black_box(e.quota_of(probe).expect("live")));
    });
    g.bench_with_input(BenchmarkId::new(format!("{name}/quotas"), v), e, |b, e| {
        b.iter(|| black_box(e.quotas().len()));
    });
    g.bench_with_input(BenchmarkId::new(format!("{name}/relstd"), v), e, |b, e| {
        b.iter(|| black_box(e.vnode_quota_relstd_pct()));
    });
    g.bench_with_input(BenchmarkId::new(format!("{name}/balance_snapshot"), v), e, |b, e| {
        b.iter(|| black_box(e.balance_snapshot().vnode_relstd_pct));
    });
}

fn bench(c: &mut Criterion) {
    let space = HashSpace::full();
    // Sample count is left to the harness (CLI `--sample-size` works —
    // CI's smoke step passes 2); engine growth dominates setup anyway.
    let mut g = c.benchmark_group("quota_metrics");
    for v in SIZES {
        let local = grow(LocalDht::with_seed(DhtConfig::new(space, 32, 32).unwrap(), 5), v);
        bench_engine(&mut g, "local", v, &local);
        drop(local);
        let global = grow(GlobalDht::with_seed(DhtConfig::new(space, 32, 1).unwrap(), 5), v);
        bench_engine(&mut g, "global", v, &global);
        drop(global);
        let ch = grow(ChEngine::with_seed(DhtConfig::new(space, 32, 1).unwrap(), 32, 5), v);
        bench_engine(&mut g, "ch", v, &ch);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

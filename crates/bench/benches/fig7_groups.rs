//! FIG7 kernel benchmark: group-count tracking during growth, and the
//! group-split event in isolation (the event the figure counts).

use criterion::{criterion_group, criterion_main, Criterion};
use domus_core::{ideal_group_count, DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let cfg = DhtConfig::new(HashSpace::full(), 32, 32).expect("config");
    g.bench_function("growth_with_group_tracking_512", |b| {
        b.iter(|| {
            let mut dht = LocalDht::with_seed(cfg, 11);
            let mut acc = 0u64;
            for i in 0..512 {
                dht.create_vnode(SnodeId(i as u32)).expect("growth");
                acc += dht.group_count() as u64;
            }
            black_box(acc)
        });
    });
    g.bench_function("ideal_group_count_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 1..=8192u64 {
                acc += ideal_group_count(v, 64);
            }
            black_box(acc)
        });
    });
    // Isolate the split event: grow a Vmin=4 DHT to the brink, then time
    // the creation that forces the split (fresh clone per iteration).
    let small = DhtConfig::new(HashSpace::full(), 4, 4).expect("config");
    let mut brink = LocalDht::with_seed(small, 13);
    for i in 0..8 {
        brink.create_vnode(SnodeId(i)).expect("growth");
    }
    g.bench_function("creation_that_splits_a_group", |b| {
        b.iter_batched(
            || brink.clone(),
            |mut dht| {
                let (_, rep) = dht.create_vnode(SnodeId(99)).expect("split");
                debug_assert!(rep.group_split.is_some());
                black_box(rep.transfers.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Routing benchmarks: point → vnode lookups through the heterogeneous-
//! level owner map, at several DHT sizes, plus the quota metric sampling
//! cost (the per-creation measurement of every figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use domus_util::{DomusRng, Xoshiro256pp};
use std::hint::black_box;

fn grown(v: usize) -> LocalDht {
    let cfg = DhtConfig::new(HashSpace::full(), 32, 32).expect("config");
    let mut dht = LocalDht::with_seed(cfg, 3);
    for i in 0..v {
        dht.create_vnode(SnodeId(i as u32)).expect("growth");
    }
    dht
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup");
    for v in [64usize, 512, 2048] {
        let dht = grown(v);
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let points: Vec<u64> = (0..1024).map(|_| rng.next_u64()).collect();
        g.throughput(Throughput::Elements(points.len() as u64));
        g.bench_with_input(BenchmarkId::new("points_1k_at_v", v), &dht, |b, dht| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &points {
                    let (_, vn) = dht.lookup(p).expect("covered");
                    acc ^= vn.0 as u64;
                }
                black_box(acc)
            });
        });
        g.bench_with_input(BenchmarkId::new("sigma_qv_sample_at_v", v), &dht, |b, dht| {
            b.iter(|| black_box(dht.vnode_quota_relstd_pct()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

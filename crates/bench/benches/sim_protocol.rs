//! Simulator benchmarks: pricing + scheduling a growth workload under the
//! one-hop cluster model, global vs local (SIM-MAKESPAN's kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_core::{DhtConfig, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_sim::SimDriver;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 256;
    let mut g = c.benchmark_group("sim_grow");
    g.sample_size(10);
    g.bench_function("global_256", |b| {
        let cfg = DhtConfig::new(HashSpace::full(), 32, 1).expect("config");
        b.iter(|| {
            let mut sim = SimDriver::new(GlobalDht::with_seed(cfg, 7));
            sim.grow(n, 32).expect("growth");
            black_box((sim.trace().makespan(), sim.trace().messages()))
        });
    });
    for vmin in [8u64, 32] {
        let cfg = DhtConfig::new(HashSpace::full(), 32, vmin).expect("config");
        g.bench_with_input(BenchmarkId::new("local_256_vmin", vmin), &vmin, |b, _| {
            b.iter(|| {
                let mut sim = SimDriver::new(LocalDht::with_seed(cfg, 7));
                sim.grow(n, 32).expect("growth");
                black_box((sim.trace().makespan(), sim.trace().parallelism()))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

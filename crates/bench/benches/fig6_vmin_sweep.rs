//! FIG6 kernel benchmark: fixed `Pmin = 32`, sweeping `Vmin` — including
//! the degenerate single-group case and the global-approach reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 512;
    let mut g = c.benchmark_group("fig6_run");
    g.sample_size(10);
    for vmin in [8u64, 64, 256] {
        let cfg = DhtConfig::new(HashSpace::full(), 32, vmin).expect("config");
        g.bench_with_input(BenchmarkId::new("local_vmin", vmin), &vmin, |b, _| {
            b.iter(|| {
                let mut dht = LocalDht::with_seed(cfg, 3);
                let mut acc = 0.0;
                for i in 0..n {
                    dht.create_vnode(SnodeId(i as u32)).expect("growth");
                    acc += dht.vnode_quota_relstd_pct();
                }
                black_box(acc)
            });
        });
    }
    let gcfg = DhtConfig::new(HashSpace::full(), 32, 1).expect("config");
    g.bench_function("global_reference", |b| {
        b.iter(|| {
            let mut dht = GlobalDht::with_seed(gcfg, 3);
            let mut acc = 0.0;
            for i in 0..n {
                dht.create_vnode(SnodeId(i as u32)).expect("growth");
                acc += dht.vnode_quota_relstd_pct();
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Simulated time: nanosecond ticks.

use std::ops::{Add, AddAssign, Sub};

/// A point or span of simulated time, in nanoseconds.
///
/// Integral ticks keep the simulation exactly reproducible (no float
/// accumulation) and 2^64 ns ≈ 584 years, comfortably beyond any run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From microseconds.
    pub const fn micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanosecond count.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating max.
    pub fn max(self, other: Self) -> Self {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Self) -> Self {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Self) -> Self {
        SimTime(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::micros(5).nanos(), 5_000);
        assert_eq!(SimTime::millis(2).nanos(), 2_000_000);
        assert_eq!(SimTime::millis(2).as_millis_f64(), 2.0);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::micros(10);
        let b = SimTime::micros(4);
        assert_eq!(a + b, SimTime::micros(14));
        assert_eq!(a - b, SimTime::micros(6));
        assert!(b < a);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime(12).to_string(), "12ns");
        assert_eq!(SimTime::micros(12).to_string(), "12.0µs");
        assert_eq!(SimTime::millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime(1_500_000_000).to_string(), "1.500s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }
}

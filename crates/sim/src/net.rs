//! The cluster network model.
//!
//! §5 of the paper justifies the model's synchronisation appetite with
//! cluster properties: "the short (typically one-hop) communication paths
//! and high bandwidth (which make bearable events that may require
//! synchronization between many nodes)". The network model is accordingly
//! minimal: a single switch hop with fixed latency, shared link bandwidth
//! per endpoint, fixed per-message framing overhead, and no loss (the
//! paper explicitly assumes a low failure rate and omits fault tolerance).

use crate::time::SimTime;

/// One-hop cluster network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterNet {
    /// One-way wire+switch latency.
    pub latency: SimTime,
    /// Endpoint link bandwidth in bytes per microsecond (e.g. Fast
    /// Ethernet ≈ 12 B/µs ≈ 100 Mbit/s; GigE ≈ 125 B/µs).
    pub bandwidth_bytes_per_us: u64,
    /// Fixed framing overhead added to every message, in bytes.
    pub per_message_overhead: u64,
}

impl Default for ClusterNet {
    /// A 2004-vintage cluster: GigE-class (125 B/µs), 50 µs one-way
    /// latency, 64 B framing.
    fn default() -> Self {
        Self { latency: SimTime::micros(50), bandwidth_bytes_per_us: 125, per_message_overhead: 64 }
    }
}

impl ClusterNet {
    /// Serialisation (wire occupancy) time of a message with `payload`
    /// bytes, excluding propagation.
    pub fn wire_time(&self, payload: u64) -> SimTime {
        let bytes = payload + self.per_message_overhead;
        // Round up to whole nanoseconds: bytes / (B/µs) = µs → ×1000 ns.
        SimTime((bytes * 1_000).div_ceil(self.bandwidth_bytes_per_us))
    }

    /// One-way delivery time for a message with `payload` bytes.
    pub fn one_way(&self, payload: u64) -> SimTime {
        self.latency + self.wire_time(payload)
    }

    /// Request/response round trip carrying `req` and `resp` bytes.
    pub fn round_trip(&self, req: u64, resp: u64) -> SimTime {
        self.one_way(req) + self.one_way(resp)
    }

    /// Time for one sender to issue `n` messages of `payload` bytes to
    /// distinct receivers: the sender's link serialises the sends, the
    /// last message then propagates.
    pub fn fan_out(&self, n: u64, payload: u64) -> SimTime {
        if n == 0 {
            return SimTime::ZERO;
        }
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            t += self.wire_time(payload);
        }
        t + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_size() {
        let net = ClusterNet::default();
        let small = net.wire_time(0);
        let big = net.wire_time(125_000); // 1000 µs of payload
        assert!(big > small);
        assert_eq!(net.wire_time(125_000 - 64).nanos(), 1_000_000);
    }

    #[test]
    fn one_way_includes_latency() {
        let net = ClusterNet::default();
        assert!(net.one_way(0) >= net.latency);
        assert_eq!(net.one_way(0), net.latency + net.wire_time(0));
    }

    #[test]
    fn fan_out_serialises_at_the_sender() {
        let net = ClusterNet::default();
        let one = net.fan_out(1, 100);
        let ten = net.fan_out(10, 100);
        // Ten messages occupy the sender's link ten times but share one
        // final propagation.
        assert_eq!(ten - net.latency, SimTime((one - net.latency).nanos() * 10));
        assert_eq!(net.fan_out(0, 100), SimTime::ZERO);
    }

    #[test]
    fn round_trip_is_symmetric_sum() {
        let net = ClusterNet::default();
        assert_eq!(net.round_trip(10, 20), net.one_way(10) + net.one_way(20));
    }
}

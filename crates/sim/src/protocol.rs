//! Maintenance-protocol pricing and per-group concurrency scheduling.
//!
//! This is the substrate that turns the paper's *qualitative* argument —
//! "consecutive creations of vnodes are executed serially [in the global
//! approach], thus limiting the parallelism and reducing the scalability
//! of the DHT" (§3) — into numbers.
//!
//! For every creation performed by a real engine, [`SimDriver`] prices the
//! event from the operation report and the engine's own records:
//!
//! 1. **Victim lookup** (local approach only): one request to the snode
//!    owning the random point, answered with the victim group's LPDR.
//! 2. **Synchronisation round**: the initiator fans the creation request
//!    out to every *participant* snode — the snodes hosting vnodes of the
//!    record governing the event (all snodes for a GPDR, the group's
//!    snodes for an LPDR); each applies the deterministic algorithm and
//!    acknowledges with the updated record.
//! 3. **Partition transfers**: donors stream the moved partitions
//!    (metadata plus any configured payload) in parallel across donor
//!    snodes, each donor serialising its own sends.
//! 4. **CPU**: the record sort (`V log V`, §4.1.2 prices exactly this) and
//!    a per-split/per-transfer bookkeeping charge.
//!
//! Concurrency is then a resource-scheduling overlay: each event occupies
//! its governing record exclusively — the single GPDR for the global
//! approach, the container group's LPDR for the local one (the parent
//! group when the event split it). Events on disjoint groups overlap;
//! the schedule replays the engine's creation order under
//! "start when released and the resource is free".

use crate::net::ClusterNet;
use crate::time::SimTime;
use domus_core::{
    CreateReport, DhtEngine, GroupId, GroupSplit, RebalanceEvent, RebalanceSink, RemoveReport,
    SnodeId, Transfer, VnodeId,
};
use std::collections::BTreeMap;

/// CPU cost parameters (2004-era cluster node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per record-entry sort work (the paper: "the time consumed to sort a
    /// LPDR table will also grow with its number of records").
    pub sort_per_entry: SimTime,
    /// Per binary partition split/merge bookkeeping.
    pub per_split: SimTime,
    /// Per transfer scheduling/bookkeeping.
    pub per_transfer: SimTime,
    /// Stored payload bytes shipped per transferred partition (0 prices a
    /// metadata-only DHT; the KV experiments measure real payloads
    /// separately).
    pub payload_per_partition: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            sort_per_entry: SimTime(500),
            per_split: SimTime(200),
            per_transfer: SimTime(1_000),
            payload_per_partition: 0,
        }
    }
}

/// Wire size of one PDR row (snode id + local id + count).
const PDR_ENTRY_BYTES: u64 = 12;
/// Wire size of a creation request / transfer header.
const HEADER_BYTES: u64 = 24;

impl CostModel {
    /// Sort/recompute time on a record of `record_len` entries (`V log V`,
    /// paper §4.1.2).
    fn sort_cost(&self, record_len: u64) -> SimTime {
        let v = record_len;
        let logv = if v <= 1 { 1 } else { 64 - (v - 1).leading_zeros() as u64 };
        SimTime(self.sort_per_entry.nanos() * v * logv)
    }

    /// Synchronisation round with every other participant: request out
    /// (fan-out serialised at the initiator), deterministic local
    /// recompute, record-sized acks back.
    fn sync_round(&self, net: &ClusterNet, record_len: u64, participants: u64) -> EventCost {
        let record_bytes = record_len * PDR_ENTRY_BYTES;
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut duration = SimTime::ZERO;
        let others = participants.saturating_sub(1);
        if others > 0 {
            messages += 2 * others;
            bytes += others * (HEADER_BYTES + record_bytes);
            duration += net.fan_out(others, HEADER_BYTES);
            duration += net.one_way(record_bytes); // last ack home
        }
        duration += self.sort_cost(record_len);
        EventCost { messages, bytes, duration, participants }
    }

    /// The donor-run shape of a transfer list: `(count, worst donor
    /// total)` — everything [`CostModel::transfer_cost_parts`] needs.
    fn transfer_stats(transfers: &[Transfer]) -> (u64, u64) {
        if transfers.is_empty() {
            return (0, 0);
        }
        // Transfers arrive in event order, so a donor's sends form runs;
        // count per run instead of touching the map once per transfer.
        let mut per_donor: BTreeMap<VnodeId, u64> = BTreeMap::new();
        let mut run_from = transfers[0].from;
        let mut run_len = 0u64;
        for t in transfers {
            if t.from == run_from {
                run_len += 1;
            } else {
                *per_donor.entry(run_from).or_insert(0) += run_len;
                run_from = t.from;
                run_len = 1;
            }
        }
        *per_donor.entry(run_from).or_insert(0) += run_len;
        let worst = per_donor.values().max().copied().unwrap_or(0);
        (transfers.len() as u64, worst)
    }

    /// Transfer streaming from pre-aggregated stats: donors send in
    /// parallel, each donor serialises its own sends (`worst` is the
    /// busiest donor's total).
    fn transfer_cost_parts(&self, net: &ClusterNet, count: u64, worst: u64) -> EventCost {
        let mut cost =
            EventCost { messages: 0, bytes: 0, duration: SimTime::ZERO, participants: 0 };
        if count == 0 {
            return cost;
        }
        let payload = HEADER_BYTES + self.payload_per_partition;
        cost.messages += count;
        cost.bytes += count * payload;
        cost.duration += net.fan_out(worst, payload);
        cost.duration += SimTime(self.per_transfer.nanos() * count);
        cost
    }

    /// Prices one creation from its accumulated parts: the governing
    /// record's shape, whether a victim lookup ran, the split-cascade
    /// size, and the transfer stats. This is the kernel both
    /// [`CostModel::price_create`] (over a materialised report) and the
    /// streaming [`EventPricer`] resolve to, so the two surfaces price
    /// identically by construction.
    #[allow(clippy::too_many_arguments)] // the event's full shape, flattened for the hot path
    pub fn price_create_parts(
        &self,
        net: &ClusterNet,
        record_len: u64,
        participants: u64,
        probed: bool,
        partition_splits: u64,
        transfer_count: u64,
        worst_donor: u64,
    ) -> EventCost {
        let record_bytes = record_len * PDR_ENTRY_BYTES;
        let mut cost = self.sync_round(net, record_len, participants);

        // Victim lookup (the local approach's random point routing).
        if probed {
            cost.messages += 2;
            cost.bytes += HEADER_BYTES + record_bytes;
            cost.duration += net.round_trip(HEADER_BYTES, record_bytes);
        }

        // Split cascade bookkeeping.
        cost.duration += SimTime(self.per_split.nanos() * partition_splits);

        let t = self.transfer_cost_parts(net, transfer_count, worst_donor);
        cost.messages += t.messages;
        cost.bytes += t.bytes;
        cost.duration += t.duration;
        cost
    }

    /// Prices one removal from its accumulated parts, symmetrically to
    /// [`CostModel::price_create_parts`]: merge-cascade bookkeeping
    /// (merges are binary splits run in reverse, so they share
    /// `per_split`), the redistribution transfers, and one extra round
    /// trip when the removal forced an internal vnode migration.
    #[allow(clippy::too_many_arguments)] // the event's full shape, flattened for the hot path
    pub fn price_remove_parts(
        &self,
        net: &ClusterNet,
        record_len: u64,
        participants: u64,
        migrated: bool,
        partition_merges: u64,
        transfer_count: u64,
        worst_donor: u64,
    ) -> EventCost {
        let record_bytes = record_len * PDR_ENTRY_BYTES;
        let mut cost = self.sync_round(net, record_len, participants);

        cost.duration += SimTime(self.per_split.nanos() * partition_merges);

        if migrated {
            cost.messages += 2;
            cost.bytes += HEADER_BYTES + record_bytes;
            cost.duration += net.round_trip(HEADER_BYTES, record_bytes);
        }

        let t = self.transfer_cost_parts(net, transfer_count, worst_donor);
        cost.messages += t.messages;
        cost.bytes += t.bytes;
        cost.duration += t.duration;
        cost
    }

    /// Prices one vnode creation from a materialised report
    /// ([`CostModel::price_create_parts`] over the report's fields).
    pub fn price_create(
        &self,
        net: &ClusterNet,
        record_len: u64,
        participants: u64,
        report: &CreateReport,
    ) -> EventCost {
        let (count, worst) = Self::transfer_stats(&report.transfers);
        self.price_create_parts(
            net,
            record_len,
            participants,
            report.lookup_point.is_some(),
            report.partition_splits,
            count,
            worst,
        )
    }

    /// Prices one vnode removal from a materialised report
    /// ([`CostModel::price_remove_parts`] over the report's fields).
    pub fn price_remove(
        &self,
        net: &ClusterNet,
        record_len: u64,
        participants: u64,
        report: &RemoveReport,
    ) -> EventCost {
        let (count, worst) = Self::transfer_stats(&report.transfers);
        self.price_remove_parts(
            net,
            record_len,
            participants,
            report.migrated.is_some(),
            report.partition_merges,
            count,
            worst,
        )
    }
}

/// A [`RebalanceSink`] that prices a membership event *while it runs* —
/// the streaming replacement for materialising a report and handing it
/// to [`CostModel::price_create`]/[`CostModel::price_remove`].
///
/// Per event: call [`EventPricer::begin`], run the engine operation with
/// the pricer as its sink, then [`EventPricer::finish_create`] or
/// [`EventPricer::finish_remove`] with the governing record's shape. The
/// internal per-donor scratch is reused across events, so a replay loop
/// prices millions of events with no per-event allocation. Both finish
/// paths resolve to the same `*_parts` kernels the report pricers use,
/// so streamed and materialised pricing agree to the bit (asserted by a
/// test below and the cross-crate churn suite).
#[derive(Debug, Clone)]
pub struct EventPricer {
    net: ClusterNet,
    cost: CostModel,
    // Per-event accumulators, reset by `begin`.
    transfers: u64,
    splits: u64,
    merges: u64,
    probed: bool,
    group_split: Option<GroupSplit>,
    migrated: Option<(VnodeId, VnodeId)>,
    first_to: Option<VnodeId>,
    /// Per-donor totals, sorted by donor (reused scratch).
    per_donor: Vec<(VnodeId, u64)>,
    run_from: Option<VnodeId>,
    run_len: u64,
}

impl EventPricer {
    /// A pricer over the given network and cost models.
    pub fn new(net: ClusterNet, cost: CostModel) -> Self {
        Self {
            net,
            cost,
            transfers: 0,
            splits: 0,
            merges: 0,
            probed: false,
            group_split: None,
            migrated: None,
            first_to: None,
            per_donor: Vec::new(),
            run_from: None,
            run_len: 0,
        }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Resets the per-event accumulators (scratch capacity is kept).
    pub fn begin(&mut self) {
        self.transfers = 0;
        self.splits = 0;
        self.merges = 0;
        self.probed = false;
        self.group_split = None;
        self.migrated = None;
        self.first_to = None;
        self.per_donor.clear();
        self.run_from = None;
        self.run_len = 0;
    }

    /// Transfers observed since [`EventPricer::begin`].
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// The first transfer's receiver — the vnode through which the
    /// governing record of a removal is visible afterwards.
    pub fn first_receiver(&self) -> Option<VnodeId> {
        self.first_to
    }

    /// The group split observed, if any (creations only).
    pub fn group_split(&self) -> Option<GroupSplit> {
        self.group_split
    }

    /// The internal vnode migration observed, if any (removals only).
    pub fn migrated(&self) -> Option<(VnodeId, VnodeId)> {
        self.migrated
    }

    fn flush_run(&mut self) {
        let Some(from) = self.run_from.take() else { return };
        let len = std::mem::take(&mut self.run_len);
        match self.per_donor.binary_search_by_key(&from, |&(d, _)| d) {
            Ok(i) => self.per_donor[i].1 += len,
            Err(i) => self.per_donor.insert(i, (from, len)),
        }
    }

    fn worst_donor(&mut self) -> u64 {
        self.flush_run();
        self.per_donor.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }

    /// Prices the accumulated creation against the governing record's
    /// shape (`record_len` entries over `participants` snodes).
    pub fn finish_create(&mut self, record_len: u64, participants: u64) -> EventCost {
        let worst = self.worst_donor();
        self.cost.price_create_parts(
            &self.net,
            record_len,
            participants,
            self.probed,
            self.splits,
            self.transfers,
            worst,
        )
    }

    /// Prices the accumulated removal. Harmonisation `PartitionSplit`s
    /// are ignored, exactly as [`CostModel::price_remove`] ignores them
    /// (the legacy report never carried them).
    pub fn finish_remove(&mut self, record_len: u64, participants: u64) -> EventCost {
        let worst = self.worst_donor();
        self.cost.price_remove_parts(
            &self.net,
            record_len,
            participants,
            self.migrated.is_some(),
            self.merges,
            self.transfers,
            worst,
        )
    }
}

impl RebalanceSink for EventPricer {
    fn event(&mut self, e: RebalanceEvent) {
        match e {
            RebalanceEvent::Transfer(t) => {
                self.transfers += 1;
                if self.first_to.is_none() {
                    self.first_to = Some(t.to);
                }
                if self.run_from == Some(t.from) {
                    self.run_len += 1;
                } else {
                    self.flush_run();
                    self.run_from = Some(t.from);
                    self.run_len = 1;
                }
            }
            RebalanceEvent::PartitionSplit { count } => self.splits += count,
            RebalanceEvent::PartitionMerge { pairs } => self.merges += pairs,
            RebalanceEvent::GroupSplit(s) => self.group_split = Some(s),
            RebalanceEvent::GroupMerge { .. } => {}
            RebalanceEvent::VnodeMigrated { old, new } => self.migrated = Some((old, new)),
            RebalanceEvent::LookupProbe { .. } => self.probed = true,
        }
    }
}

/// The priced outcome of one maintenance event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCost {
    /// Messages exchanged.
    pub messages: u64,
    /// Total bytes on the wire (payloads + framing overhead).
    pub bytes: u64,
    /// Wall-clock duration of the event on its resource.
    pub duration: SimTime,
    /// Distinct snodes that had to participate.
    pub participants: u64,
}

/// One scheduled event in the trace.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledEvent {
    /// The vnode created.
    pub vnode: VnodeId,
    /// The record/group resource the event occupied.
    pub resource: GroupId,
    /// Release time (arrival), start, and completion.
    pub released: SimTime,
    /// Start of service.
    pub start: SimTime,
    /// Completion.
    pub done: SimTime,
    /// The priced cost.
    pub cost: EventCost,
}

/// Aggregate results of a simulated maintenance workload.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    /// Per-event records, in creation order.
    pub events: Vec<ScheduledEvent>,
}

impl SimTrace {
    /// Completion time of the last event.
    pub fn makespan(&self) -> SimTime {
        self.events.iter().map(|e| e.done).max().unwrap_or(SimTime::ZERO)
    }

    /// Sum of service times — the serial-execution lower bound.
    pub fn total_service(&self) -> SimTime {
        SimTime(self.events.iter().map(|e| e.cost.duration.nanos()).sum())
    }

    /// Achieved concurrency: total service time over makespan (1.0 =
    /// fully serial).
    pub fn parallelism(&self) -> f64 {
        let m = self.makespan().nanos();
        if m == 0 {
            return 1.0;
        }
        self.total_service().nanos() as f64 / m as f64
    }

    /// Total messages.
    pub fn messages(&self) -> u64 {
        self.events.iter().map(|e| e.cost.messages).sum()
    }

    /// Total bytes.
    pub fn bytes(&self) -> u64 {
        self.events.iter().map(|e| e.cost.bytes).sum()
    }

    /// Mean participants per event.
    pub fn mean_participants(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.cost.participants as f64).sum::<f64>()
            / self.events.len() as f64
    }
}

/// Drives a real engine while pricing and scheduling every creation.
///
/// Pricing is streamed: the driver *is* wired to the engine through an
/// [`EventPricer`] sink, so no report is materialised per event.
pub struct SimDriver<E: DhtEngine> {
    engine: E,
    pricer: EventPricer,
    /// Per-resource next-free time.
    busy: BTreeMap<GroupId, SimTime>,
    trace: SimTrace,
    clock: SimTime,
    /// Gap between successive event releases (0 ⇒ all released at once,
    /// maximal pressure on the resources).
    pub release_interval: SimTime,
}

impl<E: DhtEngine> SimDriver<E> {
    /// Wraps `engine` with the default network/cost models.
    pub fn new(engine: E) -> Self {
        Self::with_models(engine, ClusterNet::default(), CostModel::default())
    }

    /// Wraps `engine` with explicit models.
    pub fn with_models(engine: E, net: ClusterNet, cost: CostModel) -> Self {
        Self {
            engine,
            pricer: EventPricer::new(net, cost),
            busy: BTreeMap::new(),
            trace: SimTrace::default(),
            clock: SimTime::ZERO,
            release_interval: SimTime::ZERO,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The accumulated trace.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// Creates one vnode, pricing (in-stream) and scheduling the event.
    pub fn create_vnode(&mut self, snode: SnodeId) -> Result<VnodeId, domus_core::DhtError> {
        self.pricer.begin();
        let outcome = self.engine.create_vnode_with(snode, &mut self.pricer)?;
        let vnode = outcome.vnode;
        let (record_len, participants) =
            self.engine.record_shape_of(vnode).expect("fresh vnode has a record");
        let cost = self.pricer.finish_create(record_len, participants);

        // The resource occupied: the container group — or the parent group
        // when this event split it (the split itself is part of the event).
        let container = outcome.group.expect("creation reports its group");
        let group_split = self.pricer.group_split();
        let resource = group_split.map(|s| s.parent).unwrap_or(container);

        let released = self.clock;
        self.clock += self.release_interval;
        let free = self.busy.get(&resource).copied().unwrap_or(SimTime::ZERO);
        let start = released.max(free);
        let done = start + cost.duration;
        self.busy.insert(resource, done);
        if let Some(split) = group_split {
            // Both halves come into existence busy until the event ends.
            self.busy.insert(split.child0, done);
            self.busy.insert(split.child1, done);
        }
        self.trace.events.push(ScheduledEvent { vnode, resource, released, start, done, cost });
        Ok(vnode)
    }

    /// Creates `n` vnodes hosted round-robin over `snodes` cluster nodes.
    pub fn grow(&mut self, n: usize, snodes: u32) -> Result<(), domus_core::DhtError> {
        for i in 0..n {
            self.create_vnode(SnodeId(i as u32 % snodes))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, GlobalDht, LocalDht};
    use domus_hashspace::HashSpace;

    fn local(vmin: u64) -> LocalDht {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, vmin).unwrap();
        LocalDht::with_seed(cfg, 42)
    }

    fn global() -> GlobalDht {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
        GlobalDht::with_seed(cfg, 42)
    }

    #[test]
    fn global_approach_is_fully_serial() {
        let mut sim = SimDriver::new(global());
        sim.grow(64, 8).unwrap();
        let t = sim.trace();
        assert_eq!(t.events.len(), 64);
        // One resource ⇒ no overlap ⇒ parallelism exactly 1.
        assert!((t.parallelism() - 1.0).abs() < 1e-9, "parallelism {}", t.parallelism());
        assert_eq!(t.makespan(), t.total_service());
    }

    #[test]
    fn local_approach_overlaps_events() {
        let mut sim = SimDriver::new(local(4));
        sim.grow(128, 8).unwrap();
        let t = sim.trace();
        assert!(
            t.parallelism() > 1.5,
            "many small groups must overlap creations, got {}",
            t.parallelism()
        );
        assert!(t.makespan() < t.total_service());
    }

    #[test]
    fn global_sync_cost_grows_with_v_local_stays_bounded() {
        let mut g = SimDriver::new(global());
        g.grow(128, 16).unwrap();
        let g_first = g.trace().events[2].cost.messages;
        let g_last = g.trace().events[127].cost.messages;
        assert!(g_last > g_first, "GPDR sync must grow with V");

        let mut l = SimDriver::new(local(4));
        l.grow(128, 16).unwrap();
        let l_last = l.trace().events[127].cost.messages;
        // Group-bounded: participants ≤ Vmax ⇒ messages stay small.
        assert!(l_last < g_last, "local sync ({l_last} msgs) must undercut global ({g_last} msgs)");
    }

    #[test]
    fn release_interval_spreads_arrivals() {
        let mut a = SimDriver::new(local(4));
        a.grow(32, 4).unwrap();
        let mut b = SimDriver::new(local(4));
        b.release_interval = SimTime::millis(10);
        b.grow(32, 4).unwrap();
        assert!(b.trace().makespan() > a.trace().makespan());
    }

    #[test]
    fn deterministic_trace() {
        let run = || {
            let mut sim = SimDriver::new(local(4));
            sim.grow(50, 4).unwrap();
            (sim.trace().makespan(), sim.trace().messages(), sim.trace().bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn remove_pricing_mirrors_create_pricing() {
        let mut dht = local(4);
        for i in 0..24u32 {
            dht.create_vnode(SnodeId(i % 6)).unwrap();
        }
        let cost = CostModel::default();
        let net = ClusterNet::default();
        let victim = dht.vnodes()[7];
        let report = dht.remove_vnode(victim).unwrap();
        let priced = cost.price_remove(&net, 8, 4, &report);
        // A removal with transfers must price messages, bytes and time.
        assert!(!report.transfers.is_empty());
        assert!(priced.messages > 0 && priced.bytes > 0);
        assert!(priced.duration > SimTime::ZERO);
        assert_eq!(priced.participants, 4);
        // Deterministic: identical inputs price identically.
        assert_eq!(priced, cost.price_remove(&net, 8, 4, &report));
        // More participants cost strictly more sync traffic.
        let wider = cost.price_remove(&net, 8, 9, &report);
        assert!(wider.messages > priced.messages && wider.duration > priced.duration);
    }

    #[test]
    fn streamed_pricing_matches_report_pricing() {
        // Two identical engines: one priced through the EventPricer sink,
        // one through materialised reports — bit-identical EventCosts.
        let cost = CostModel::default();
        let net = ClusterNet::default();
        let mut streamed = local(2);
        let mut reported = local(2);
        let mut pricer = EventPricer::new(net, cost);
        for i in 0..40u32 {
            let snode = SnodeId(i % 5);
            pricer.begin();
            let out = streamed.create_vnode_with(snode, &mut pricer).unwrap();
            let (rl, pa) = streamed.record_shape_of(out.vnode).unwrap();
            let via_sink = pricer.finish_create(rl, pa);

            let (v, report) = reported.create_vnode(snode).unwrap();
            let (rl2, pa2) = reported.record_shape_of(v).unwrap();
            let via_report = cost.price_create(&net, rl2, pa2, &report);
            assert_eq!(via_sink, via_report, "creation {i}");
        }
        for i in 0..20u32 {
            let victim = streamed.vnodes()[(i as usize * 3) % streamed.vnode_count()];
            pricer.begin();
            streamed.remove_vnode_with(victim, &mut pricer).unwrap();
            let shape = |e: &LocalDht, v| e.record_shape_of(v).unwrap();
            let (rl, pa) = match pricer.first_receiver() {
                Some(to) => shape(&streamed, to),
                None => (1, 1),
            };
            let via_sink = pricer.finish_remove(rl, pa);

            let victim2 = reported.vnodes()[(i as usize * 3) % reported.vnode_count()];
            assert_eq!(victim, victim2, "twin engines stay in lockstep");
            let report = reported.remove_vnode(victim2).unwrap();
            let (rl2, pa2) = match report.transfers.first() {
                Some(t) => shape(&reported, t.to),
                None => (1, 1),
            };
            let via_report = cost.price_remove(&net, rl2, pa2, &report);
            assert_eq!(via_sink, via_report, "removal {i}");
        }
    }

    #[test]
    fn split_events_occupy_the_parent() {
        let mut sim = SimDriver::new(local(2));
        sim.grow(20, 4).unwrap();
        let split_events: Vec<&ScheduledEvent> = sim
            .trace()
            .events
            .iter()
            .filter(|e| {
                // A split event's resource is a gid shorter than its final
                // container group's gid.
                e.resource.len() < sim.engine().group_of(e.vnode).map(|g| g.len()).unwrap_or(0)
            })
            .collect();
        assert!(!split_events.is_empty(), "growing 20 vnodes with Vmin=2 must split groups");
    }
}

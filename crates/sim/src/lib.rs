//! # domus-sim
//!
//! The cluster substrate the paper's system would run on, as a
//! deterministic cost simulator:
//!
//! * [`time`] — integral simulated time.
//! * [`net`] — the one-hop, high-bandwidth, loss-free cluster network the
//!   paper assumes (§5).
//! * [`protocol`] — pricing of the maintenance protocols (GPDR broadcast
//!   vs LPDR group-restricted synchronisation) and the per-group
//!   concurrency schedule that quantifies the paper's parallelism claim:
//!   the global approach serialises every creation on the one GPDR, the
//!   local approach overlaps creations on disjoint groups.
//! * [`memory`] — record-replication footprints (the "globally reduce
//!   memory utilization" claim of §1).
//!
//! The simulator never re-implements the balancement logic: it *drives* a
//! real [`domus_core::DhtEngine`] and prices the rebalance events the
//! engine streams (through the [`protocol::EventPricer`] sink), so the
//! priced workload is exactly the workload the model produces — with no
//! per-event report materialisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod net;
pub mod protocol;
pub mod time;

pub use memory::{global_footprint, local_footprint, RecordFootprint};
pub use net::ClusterNet;
pub use protocol::{CostModel, EventCost, EventPricer, ScheduledEvent, SimDriver, SimTrace};
pub use time::SimTime;

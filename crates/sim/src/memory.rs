//! Record-memory accounting (SIM-MEM).
//!
//! §1 of the paper promises the local approach will "globally reduce
//! memory utilization": every snode replicates the *global* record under
//! the global approach (`V` entries × `S` snodes), while under the local
//! approach an snode only replicates the LPDRs of groups it actually
//! hosts vnodes of.

use domus_core::{DhtEngine, GroupId, LocalDht, SnodeId};
use domus_util::DomusRng;
use std::collections::{BTreeMap, BTreeSet};

/// Wire/storage size of one PDR row (matches `Pdr::wire_size_bytes`).
const PDR_ENTRY_BYTES: u64 = 12;

/// Per-snode record footprints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordFootprint {
    /// Record entries replicated at each snode.
    pub per_snode_entries: BTreeMap<SnodeId, u64>,
    /// Number of distinct records (LPDRs/GPDR copies) each snode holds.
    pub per_snode_records: BTreeMap<SnodeId, u64>,
}

impl RecordFootprint {
    /// Total replicated entries across the cluster.
    pub fn total_entries(&self) -> u64 {
        self.per_snode_entries.values().sum()
    }

    /// Total bytes across the cluster.
    pub fn total_bytes(&self) -> u64 {
        self.total_entries() * PDR_ENTRY_BYTES
    }

    /// Largest per-snode entry count.
    pub fn max_entries(&self) -> u64 {
        self.per_snode_entries.values().max().copied().unwrap_or(0)
    }

    /// Mean entries per snode.
    pub fn mean_entries(&self) -> f64 {
        if self.per_snode_entries.is_empty() {
            return 0.0;
        }
        self.total_entries() as f64 / self.per_snode_entries.len() as f64
    }
}

/// GPDR footprint under the global approach: every snode hosting vnodes
/// keeps a full `V`-entry copy (§2.1.4: "every snode hosts a copy").
pub fn global_footprint<E: DhtEngine>(dht: &E) -> RecordFootprint {
    let v = dht.vnode_count() as u64;
    let mut snodes: BTreeSet<SnodeId> = BTreeSet::new();
    dht.for_each_vnode(&mut |vn| {
        snodes.insert(dht.snode_of(vn).expect("alive"));
    });
    let mut fp = RecordFootprint::default();
    for s in snodes {
        fp.per_snode_entries.insert(s, v);
        fp.per_snode_records.insert(s, 1);
    }
    fp
}

/// LPDR footprint under the local approach: each snode keeps "an instance
/// of the LPDR of each group in which participate local vnodes" (§3.2).
pub fn local_footprint<R: DomusRng>(dht: &LocalDht<R>) -> RecordFootprint {
    // Group sizes by gid.
    let group_size: BTreeMap<GroupId, u64> =
        dht.group_table().into_iter().map(|(gid, len, _)| (gid, len as u64)).collect();
    // Which groups does each snode participate in?
    let mut membership: BTreeMap<SnodeId, BTreeSet<GroupId>> = BTreeMap::new();
    dht.for_each_vnode(&mut |v| {
        let s = dht.snode_of(v).expect("alive");
        let g = dht.group_of(v).expect("alive");
        membership.entry(s).or_default().insert(g);
    });
    let mut fp = RecordFootprint::default();
    for (s, groups) in membership {
        let entries = groups.iter().map(|g| group_size[g]).sum();
        fp.per_snode_records.insert(s, groups.len() as u64);
        fp.per_snode_entries.insert(s, entries);
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, GlobalDht, SnodeId};
    use domus_hashspace::HashSpace;

    #[test]
    fn global_footprint_is_s_times_v() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
        let mut dht = GlobalDht::with_seed(cfg, 1);
        for i in 0..40u32 {
            dht.create_vnode(SnodeId(i % 8)).unwrap();
        }
        let fp = global_footprint(&dht);
        assert_eq!(fp.total_entries(), 8 * 40);
        assert_eq!(fp.max_entries(), 40);
        assert_eq!(fp.per_snode_records.values().sum::<u64>(), 8);
    }

    #[test]
    fn local_footprint_undercuts_global() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
        let mut dht = domus_core::LocalDht::with_seed(cfg, 1);
        for i in 0..200u32 {
            dht.create_vnode(SnodeId(i % 16)).unwrap();
        }
        let local = local_footprint(&dht);
        let global_equiv = global_footprint(&dht);
        assert!(
            local.total_entries() < global_equiv.total_entries() / 2,
            "local {} entries vs global {}",
            local.total_entries(),
            global_equiv.total_entries()
        );
    }

    #[test]
    fn local_entries_count_each_hosted_group_once() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let mut dht = domus_core::LocalDht::with_seed(cfg, 7);
        // One snode hosts everything: it participates in every group, so
        // its entries equal V and its record count equals G.
        for _ in 0..32 {
            dht.create_vnode(SnodeId(0)).unwrap();
        }
        let fp = local_footprint(&dht);
        assert_eq!(fp.per_snode_entries[&SnodeId(0)], 32);
        assert_eq!(fp.per_snode_records[&SnodeId(0)], dht.group_count() as u64);
    }
}

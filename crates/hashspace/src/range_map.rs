//! `OwnerMap`: the partition → owner routing structure.
//!
//! The local approach needs one global lookup primitive: given a point
//! `r ∈ R_h`, find the partition containing `r` and its owner (§3.6 — the
//! victim-vnode selection; also the data path of any DHT lookup). Because
//! partition sizes differ *across* groups, the map cannot assume one global
//! splitlevel; it stores heterogeneous-level partitions keyed by start
//! point and relies on the split-tree structure for non-overlap.
//!
//! Complexity: `lookup`, `insert`, `remove`, `transfer`, `split` are all
//! `O(log P)` in the number of partitions `P` (BTreeMap operations).

use crate::partition::Partition;
use crate::quota::Quota;
use crate::space::HashSpace;
use std::collections::BTreeMap;

/// Errors from [`OwnerMap`] mutation and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The partition (or an overlapping one) is already present.
    Overlap(Partition),
    /// The partition is not present.
    Missing(Partition),
    /// Coverage verification failed: a gap starts at this point.
    Gap(u64),
    /// Coverage verification failed: total covered size is wrong.
    BadTotal {
        /// Sum of partition sizes found.
        covered: u128,
        /// Expected `2^Bh`.
        expected: u128,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Overlap(p) => write!(f, "partition {p} overlaps an existing entry"),
            MapError::Missing(p) => write!(f, "partition {p} not present"),
            MapError::Gap(at) => write!(f, "coverage gap starting at {at}"),
            MapError::BadTotal { covered, expected } => {
                write!(f, "covered {covered} of {expected} points")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Maps every point of a [`HashSpace`] to an owner `T` through a set of
/// non-overlapping [`Partition`]s.
#[derive(Debug, Clone)]
pub struct OwnerMap<T> {
    space: HashSpace,
    // start point → (partition, owner). Starts are unique because entries
    // never overlap; the partition carries its level (and thus its end).
    entries: BTreeMap<u64, (Partition, T)>,
}

impl<T: Clone + Eq + std::fmt::Debug> OwnerMap<T> {
    /// An empty map over `space`.
    pub fn new(space: HashSpace) -> Self {
        Self { space, entries: BTreeMap::new() }
    }

    /// A map with the whole space owned by `owner` (the first-vnode state).
    pub fn whole(space: HashSpace, owner: T) -> Self {
        let mut m = Self::new(space);
        m.insert(Partition::ROOT, owner).expect("empty map accepts the root");
        m
    }

    /// The space this map routes.
    pub fn space(&self) -> HashSpace {
        self.space
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no partitions are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a partition with its owner.
    ///
    /// Rejects any insertion that would overlap an existing entry.
    pub fn insert(&mut self, p: Partition, owner: T) -> Result<(), MapError> {
        let start = p.start(self.space);
        // Any overlapping entry either starts within [start, end) or starts
        // before `start` and extends past it; check both neighbours.
        if let Some((&s, (q, _))) = self.entries.range(..=start).next_back() {
            if (s as u128) + q.size(self.space) > start as u128 {
                return Err(MapError::Overlap(p));
            }
        }
        if let Some((&s, _)) = self.entries.range(start..).next() {
            if (s as u128) < p.end(self.space) {
                return Err(MapError::Overlap(p));
            }
        }
        self.entries.insert(start, (p, owner));
        Ok(())
    }

    /// Removes a partition, returning its owner.
    pub fn remove(&mut self, p: Partition) -> Result<T, MapError> {
        let start = p.start(self.space);
        match self.entries.get(&start) {
            Some((q, _)) if *q == p => Ok(self.entries.remove(&start).expect("checked").1),
            _ => Err(MapError::Missing(p)),
        }
    }

    /// Reassigns an existing partition to a new owner, returning the old one.
    pub fn transfer(&mut self, p: Partition, new_owner: T) -> Result<T, MapError> {
        let start = p.start(self.space);
        match self.entries.get_mut(&start) {
            Some((q, owner)) if *q == p => Ok(std::mem::replace(owner, new_owner)),
            _ => Err(MapError::Missing(p)),
        }
    }

    /// Splits an existing partition in place; both halves keep the owner.
    pub fn split(&mut self, p: Partition) -> Result<(Partition, Partition), MapError> {
        let owner = self.remove(p)?;
        let (a, b) = p.split();
        self.insert(a, owner.clone()).expect("left half fits where the parent was");
        self.insert(b, owner).expect("right half fits where the parent was");
        Ok((a, b))
    }

    /// Merges two sibling partitions owned by the same owner into their
    /// parent. Returns the parent.
    pub fn merge(&mut self, a: Partition, b: Partition) -> Result<Partition, MapError> {
        let parent = Partition::merge(a, b).ok_or(MapError::Missing(b))?;
        let oa = self.owner_of(a).ok_or(MapError::Missing(a))?.clone();
        let ob = self.owner_of(b).ok_or(MapError::Missing(b))?.clone();
        if oa != ob {
            return Err(MapError::Overlap(parent)); // owners differ: refuse
        }
        self.remove(a)?;
        self.remove(b)?;
        self.insert(parent, oa).expect("children freed the parent's slot");
        Ok(parent)
    }

    /// The partition containing `point` and its owner, if any entry covers
    /// the point.
    pub fn lookup(&self, point: u64) -> Option<(Partition, &T)> {
        debug_assert!(self.space.contains(point));
        let (_, (p, owner)) = self.entries.range(..=point).next_back()?;
        if p.contains(point, self.space) {
            Some((*p, owner))
        } else {
            None
        }
    }

    /// The owner of exactly this partition, if present.
    pub fn owner_of(&self, p: Partition) -> Option<&T> {
        match self.entries.get(&p.start(self.space)) {
            Some((q, owner)) if *q == p => Some(owner),
            _ => None,
        }
    }

    /// Iterates `(partition, owner)` in hash-space order.
    pub fn iter(&self) -> impl Iterator<Item = (Partition, &T)> {
        self.entries.values().map(|(p, o)| (*p, o))
    }

    /// All partitions of `owner`, in hash-space order (O(P) scan; the model
    /// keeps per-vnode partition lists for the hot paths, this is the
    /// verification-oriented accessor).
    pub fn partitions_of(&self, owner: &T) -> Vec<Partition> {
        self.iter().filter(|(_, o)| *o == owner).map(|(p, _)| p).collect()
    }

    /// Exact total quota covered by `owner`'s partitions.
    pub fn quota_of(&self, owner: &T) -> Quota {
        self.iter().filter(|(_, o)| *o == owner).map(|(p, _)| p.quota()).sum()
    }

    /// Verifies invariant G1: the entries tile `R_h` exactly — no gaps, no
    /// overlaps, total size `2^Bh`.
    pub fn verify_coverage(&self) -> Result<(), MapError> {
        let mut cursor: u128 = 0;
        for (&start, (p, _)) in &self.entries {
            if (start as u128) != cursor {
                return Err(MapError::Gap(cursor as u64));
            }
            cursor = start as u128 + p.size(self.space);
        }
        if cursor != self.space.size() {
            return Err(MapError::BadTotal { covered: cursor, expected: self.space.size() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> HashSpace {
        HashSpace::new(8)
    }

    #[test]
    fn whole_map_routes_everything_to_one_owner() {
        let m = OwnerMap::whole(space(), "v0");
        for point in 0..=255u64 {
            let (p, owner) = m.lookup(point).expect("covered");
            assert_eq!(p, Partition::ROOT);
            assert_eq!(*owner, "v0");
        }
        m.verify_coverage().unwrap();
    }

    #[test]
    fn split_preserves_coverage_and_owner() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (a, b) = m.split(Partition::ROOT).unwrap();
        m.verify_coverage().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.owner_of(a), Some(&0));
        assert_eq!(m.owner_of(b), Some(&0));
    }

    #[test]
    fn transfer_changes_routing() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (a, b) = m.split(Partition::ROOT).unwrap();
        let old = m.transfer(b, 1).unwrap();
        assert_eq!(old, 0);
        assert_eq!(m.lookup(0).unwrap().1, &0);
        assert_eq!(m.lookup(255).unwrap().1, &1);
        assert_eq!(m.partitions_of(&0), vec![a]);
        assert_eq!(m.partitions_of(&1), vec![b]);
    }

    #[test]
    fn overlapping_insert_rejected() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (l, _r) = Partition::ROOT.split();
        assert_eq!(m.insert(l, 1), Err(MapError::Overlap(l)));
        // Also a *smaller* partition inside an existing one:
        let (ll, _) = l.split();
        assert_eq!(m.insert(ll, 1), Err(MapError::Overlap(ll)));
    }

    #[test]
    fn insert_overlap_detected_from_the_right() {
        // Existing entry starts *after* the candidate but inside it.
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        let (_rl, rr) = r.split();
        m.insert(rr, 7u32).unwrap();
        assert_eq!(m.insert(r, 8), Err(MapError::Overlap(r)));
        m.insert(l, 9).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn remove_missing_is_an_error() {
        let mut m: OwnerMap<u32> = OwnerMap::new(space());
        let p = Partition::new(1, 0);
        assert_eq!(m.remove(p), Err(MapError::Missing(p)));
        // Present start but different level also counts as missing:
        m.insert(Partition::new(2, 0), 1).unwrap();
        assert_eq!(m.remove(p), Err(MapError::Missing(p)));
    }

    #[test]
    fn merge_requires_same_owner() {
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        m.insert(l, 1u32).unwrap();
        m.insert(r, 2u32).unwrap();
        assert!(m.merge(l, r).is_err());
        m.transfer(r, 1).unwrap();
        let parent = m.merge(l, r).unwrap();
        assert_eq!(parent, Partition::ROOT);
        assert_eq!(m.len(), 1);
        m.verify_coverage().unwrap();
    }

    #[test]
    fn coverage_detects_gap() {
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        m.insert(r, 1u32).unwrap();
        assert_eq!(m.verify_coverage(), Err(MapError::Gap(0)));
        m.insert(l, 1).unwrap();
        m.verify_coverage().unwrap();
    }

    #[test]
    fn quota_of_sums_partitions_exactly() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (a, b) = m.split(Partition::ROOT).unwrap();
        let (_a1, a2) = m.split(a).unwrap();
        m.transfer(a2, 1).unwrap();
        m.transfer(b, 1).unwrap();
        assert_eq!(m.quota_of(&0), Quota::new(1, 2));
        assert_eq!(m.quota_of(&1), Quota::new(3, 2));
        assert!((m.quota_of(&0) + m.quota_of(&1)).is_one());
    }

    #[test]
    fn heterogeneous_levels_route_correctly() {
        // Simulates two groups at different splitlevels sharing the space:
        // left half at level 3, right half at level 1.
        let mut m = OwnerMap::new(space());
        for i in 0..4u64 {
            m.insert(Partition::new(3, i), i as u32).unwrap();
        }
        m.insert(Partition::new(1, 1), 99u32).unwrap();
        m.verify_coverage().unwrap();
        assert_eq!(*m.lookup(0).unwrap().1, 0);
        assert_eq!(*m.lookup(32).unwrap().1, 1);
        assert_eq!(*m.lookup(127).unwrap().1, 3);
        assert_eq!(*m.lookup(128).unwrap().1, 99);
        assert_eq!(*m.lookup(255).unwrap().1, 99);
    }

    #[test]
    fn lookup_on_empty_is_none() {
        let m: OwnerMap<u32> = OwnerMap::new(space());
        assert!(m.lookup(10).is_none());
        assert!(m.is_empty());
    }
}

//! `OwnerMap`: the partition → owner routing structure.
//!
//! The local approach needs one global lookup primitive: given a point
//! `r ∈ R_h`, find the partition containing `r` and its owner (§3.6 — the
//! victim-vnode selection; also the data path of any DHT lookup). Because
//! partition sizes differ *across* groups, the map cannot assume one global
//! splitlevel; it stores heterogeneous-level partitions keyed by start
//! point and relies on the split-tree structure for non-overlap.
//!
//! Alongside the point-ordered entry map the structure maintains a
//! **per-owner reverse index**: owner → its partitions plus an exact
//! cached [`Quota`] accumulator, stored in a dense arena addressed by
//! [`OwnerKey::dense`] so the per-mutation upkeep is an array access and
//! a short vector scan — not tree surgery. The index makes the
//! owner-oriented queries cheap:
//!
//! | operation            | complexity                                      |
//! |----------------------|-------------------------------------------------|
//! | `lookup`             | `O(log P)`                                      |
//! | `insert` / `remove`  | `O(log P + Pv)`                                 |
//! | `transfer`           | `O(log P + Pv)`                                 |
//! | `split` / `merge`    | `O(log P + Pv)` (in place, no re-validation)    |
//! | `split_all`          | `O(P)` (bulk rebuild)                           |
//! | `replace_all`        | `O(P)` (bulk rebuild)                           |
//! | `partitions_of`      | `O(Pv log Pv)` (sorted copy off the index)      |
//! | `quota_of`           | `O(1)` (cached, exact)                          |
//! | `owner_quotas`       | `O(V)`                                          |
//!
//! (`P` partitions, `V` owners, `Pv` partitions of one owner — bounded by
//! `Pmax` in the model, so the `Pv` terms are small constants.)

use crate::partition::Partition;
use crate::quota::Quota;
use crate::space::HashSpace;
use std::collections::BTreeMap;

/// Errors from [`OwnerMap`] mutation and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The partition (or an overlapping one) is already present.
    Overlap(Partition),
    /// The partition is not present.
    Missing(Partition),
    /// Coverage verification failed: a gap starts at this point.
    Gap(u64),
    /// Coverage verification failed: total covered size is wrong.
    BadTotal {
        /// Sum of partition sizes found.
        covered: u128,
        /// Expected `2^Bh`.
        expected: u128,
    },
    /// The owner index disagrees with the entry map.
    IndexDrift(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Overlap(p) => write!(f, "partition {p} overlaps an existing entry"),
            MapError::Missing(p) => write!(f, "partition {p} not present"),
            MapError::Gap(at) => write!(f, "coverage gap starting at {at}"),
            MapError::BadTotal { covered, expected } => {
                write!(f, "covered {covered} of {expected} points")
            }
            MapError::IndexDrift(d) => write!(f, "owner index drifted: {d}"),
        }
    }
}

impl std::error::Error for MapError {}

/// An owner type usable as the key of the [`OwnerMap`] reverse index:
/// every owner exposes a small, stable, dense arena index (the engines'
/// vnode handles are dense by construction; the unsigned primitives are
/// their own index).
pub trait OwnerKey: Clone + Eq + std::fmt::Debug {
    /// The owner's dense arena index. Must be stable for the owner's
    /// lifetime and small (the index allocates `max(dense) + 1` slots).
    fn dense(&self) -> usize;
}

macro_rules! impl_owner_key {
    ($($t:ty),*) => {$(
        impl OwnerKey for $t {
            #[inline]
            fn dense(&self) -> usize {
                *self as usize
            }
        }
    )*};
}
impl_owner_key!(u8, u16, u32, usize);

/// One owner's slice of the index: its partitions (unordered — owners
/// hold few partitions, so a flat vector beats tree surgery on the
/// transfer hot path) and the exact sum of their quotas.
#[derive(Debug, Clone)]
struct OwnerEntry<T> {
    owner: T,
    parts: Vec<Partition>,
    quota: Quota,
}

impl<T> OwnerEntry<T> {
    #[inline]
    fn slot_of(&self, p: Partition) -> usize {
        self.parts.iter().position(|&q| q == p).expect("partition is indexed under its owner")
    }
}

/// Maps every point of a [`HashSpace`] to an owner `T` through a set of
/// non-overlapping [`Partition`]s, with a per-owner reverse index.
#[derive(Debug, Clone)]
pub struct OwnerMap<T> {
    space: HashSpace,
    // start point → (partition, owner). Starts are unique because entries
    // never overlap; the partition carries its level (and thus its end).
    entries: BTreeMap<u64, (Partition, T)>,
    // Dense arena over OwnerKey::dense: owner → partitions + cached
    // quota. Slots of owners with no partitions are vacated, so the index
    // never keeps an owner alive past its last hand-over.
    owners: Vec<Option<OwnerEntry<T>>>,
    owner_count: usize,
}

impl<T: OwnerKey> OwnerMap<T> {
    /// An empty map over `space`.
    pub fn new(space: HashSpace) -> Self {
        Self { space, entries: BTreeMap::new(), owners: Vec::new(), owner_count: 0 }
    }

    /// A map with the whole space owned by `owner` (the first-vnode state).
    pub fn whole(space: HashSpace, owner: T) -> Self {
        let mut m = Self::new(space);
        m.insert(Partition::ROOT, owner).expect("empty map accepts the root");
        m
    }

    /// The space this map routes.
    pub fn space(&self) -> HashSpace {
        self.space
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no partitions are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct owners currently holding partitions.
    pub fn owner_count(&self) -> usize {
        self.owner_count
    }

    /// Registers `p` under `owner` in the index.
    fn index_add(&mut self, owner: &T, p: Partition) {
        let count = &mut self.owner_count;
        let slot = {
            let slot = owner.dense();
            if self.owners.len() <= slot {
                self.owners.resize_with(slot + 1, || None);
            }
            &mut self.owners[slot]
        };
        match slot {
            Some(e) => {
                debug_assert!(!e.parts.contains(&p), "index already held {p}");
                debug_assert!(e.owner == *owner, "dense index collision");
                e.parts.push(p);
                e.quota = e.quota + p.quota();
            }
            None => {
                *slot = Some(OwnerEntry { owner: owner.clone(), parts: vec![p], quota: p.quota() });
                *count += 1;
            }
        }
    }

    /// Unregisters `p` from `owner` in the index, vacating empty owners.
    fn index_remove(&mut self, owner: &T, p: Partition) {
        let count = &mut self.owner_count;
        let slot = &mut self.owners[owner.dense()];
        let e = slot.as_mut().expect("mutated owner is indexed");
        let at = e.slot_of(p);
        e.parts.swap_remove(at);
        e.quota = e.quota - p.quota();
        if e.parts.is_empty() {
            debug_assert!(e.quota.is_zero());
            *slot = None;
            *count -= 1;
        }
    }

    /// Inserts a partition with its owner.
    ///
    /// Rejects any insertion that would overlap an existing entry.
    pub fn insert(&mut self, p: Partition, owner: T) -> Result<(), MapError> {
        let start = p.start(self.space);
        // Any overlapping entry either starts within [start, end) or starts
        // before `start` and extends past it; check both neighbours.
        if let Some((&s, (q, _))) = self.entries.range(..=start).next_back() {
            if (s as u128) + q.size(self.space) > start as u128 {
                return Err(MapError::Overlap(p));
            }
        }
        if let Some((&s, _)) = self.entries.range(start..).next() {
            if (s as u128) < p.end(self.space) {
                return Err(MapError::Overlap(p));
            }
        }
        self.index_add(&owner, p);
        self.entries.insert(start, (p, owner));
        Ok(())
    }

    /// Removes a partition, returning its owner.
    pub fn remove(&mut self, p: Partition) -> Result<T, MapError> {
        let start = p.start(self.space);
        match self.entries.get(&start) {
            Some((q, _)) if *q == p => {
                let (_, owner) = self.entries.remove(&start).expect("checked");
                self.index_remove(&owner, p);
                Ok(owner)
            }
            _ => Err(MapError::Missing(p)),
        }
    }

    /// Reassigns an existing partition to a new owner, returning the old one.
    pub fn transfer(&mut self, p: Partition, new_owner: T) -> Result<T, MapError> {
        let start = p.start(self.space);
        let old = match self.entries.get_mut(&start) {
            Some((q, owner)) if *q == p => std::mem::replace(owner, new_owner.clone()),
            _ => return Err(MapError::Missing(p)),
        };
        self.index_remove(&old, p);
        self.index_add(&new_owner, p);
        Ok(old)
    }

    /// Splits an existing partition in place; both halves keep the owner.
    ///
    /// The halves replace the parent structurally (the left half reuses
    /// the parent's slot), so no overlap re-validation — and exactly one
    /// owner clone, for the new right-half entry — is needed.
    pub fn split(&mut self, p: Partition) -> Result<(Partition, Partition), MapError> {
        let start = p.start(self.space);
        let (a, b) = p.split();
        let owner = match self.entries.get_mut(&start) {
            Some((q, owner)) if *q == p => {
                *q = a; // the left half starts where the parent did
                owner.clone()
            }
            _ => return Err(MapError::Missing(p)),
        };
        let mid = b.start(self.space);
        let prev = self.entries.insert(mid, (b, owner.clone()));
        debug_assert!(prev.is_none(), "the parent covered its own right half");
        // Index: same owner, same quota (1/2^l = 2 · 1/2^(l+1)); only the
        // partition set changes.
        let e = self.owners[owner.dense()].as_mut().expect("split owner is indexed");
        let at = e.slot_of(p);
        e.parts[at] = a;
        e.parts.push(b);
        Ok((a, b))
    }

    /// Merges two sibling partitions owned by the same owner into their
    /// parent. Returns the parent.
    ///
    /// The parent replaces the left child's slot in place; no owner is
    /// cloned.
    pub fn merge(&mut self, a: Partition, b: Partition) -> Result<Partition, MapError> {
        let parent = Partition::merge(a, b).ok_or(MapError::Missing(b))?;
        let (sa, sb) = (a.start(self.space), b.start(self.space));
        // Optimistically detach the right child; the error paths restore it.
        let Some((pb, owner_b)) = self.entries.remove(&sb) else {
            return Err(MapError::Missing(b));
        };
        if pb != b {
            self.entries.insert(sb, (pb, owner_b));
            return Err(MapError::Missing(b));
        }
        match self.entries.get_mut(&sa) {
            Some((q, owner)) if *q == a && *owner == owner_b => {
                *q = parent;
            }
            Some((q, _)) if *q == a => {
                self.entries.insert(sb, (pb, owner_b));
                return Err(MapError::Overlap(parent)); // owners differ: refuse
            }
            _ => {
                self.entries.insert(sb, (pb, owner_b));
                return Err(MapError::Missing(a));
            }
        }
        let e = self.owners[owner_b.dense()].as_mut().expect("merge owner is indexed");
        let at = e.slot_of(b);
        e.parts.swap_remove(at);
        let at = e.slot_of(a);
        e.parts[at] = parent;
        Ok(parent)
    }

    /// Binary-splits **every** entry of the map in one bulk rebuild —
    /// `O(P)`, against `O(P log P)` for `P` individual [`OwnerMap::split`]
    /// calls. This is the split cascade of a region that spans the whole
    /// map (the global approach; the local approach while one group
    /// remains). Returns the number of partitions split.
    ///
    /// The caller guarantees every entry sits above the space's resolution
    /// floor (level < `Bh`), exactly as for [`OwnerMap::split`].
    pub fn split_all(&mut self) -> u64 {
        let space = self.space;
        let old = std::mem::take(&mut self.entries);
        let n = old.len() as u64;
        // The input is in ascending start order and children preserve it,
        // so `collect` bulk-builds the tree bottom-up without rebalancing.
        self.entries = old
            .into_values()
            .flat_map(|(p, o)| {
                debug_assert!(p.level() < space.bits(), "split below the space's resolution");
                let (a, b) = p.split();
                [(a.start(space), (a, o.clone())), (b.start(space), (b, o))]
            })
            .collect();
        for e in self.owners.iter_mut().flatten() {
            let parts = std::mem::take(&mut e.parts);
            e.parts = parts
                .into_iter()
                .flat_map(|p| {
                    let (a, b) = p.split();
                    [a, b]
                })
                .collect();
            // Quotas are unchanged: 1/2^l = 2 · 1/2^(l+1).
        }
        n
    }

    /// Replaces the entire map with `new`, given in ascending hash-space
    /// order — the bulk form of a whole-map merge cascade (`O(P)`).
    ///
    /// # Panics
    /// Debug-asserts that `new` is sorted and non-overlapping; release
    /// builds trust the caller (the balance kernel, which constructs the
    /// parent list in entry order).
    pub fn replace_all(&mut self, new: Vec<(Partition, T)>) {
        let space = self.space;
        self.owners.clear();
        self.owner_count = 0;
        // Index first (borrowing `new`), then move the same vector into
        // the entry map — no intermediate copy of the whole tiling.
        for (p, o) in &new {
            self.index_add(o, *p);
        }
        let mut last_end = 0u128;
        self.entries = new
            .into_iter()
            .map(|(p, o)| {
                let start = p.start(space);
                debug_assert!(
                    (start as u128) >= last_end,
                    "replace_all input must be sorted and non-overlapping"
                );
                last_end = p.end(space);
                (start, (p, o))
            })
            .collect();
    }

    /// The partition containing `point` and its owner, if any entry covers
    /// the point.
    pub fn lookup(&self, point: u64) -> Option<(Partition, &T)> {
        debug_assert!(self.space.contains(point));
        let (_, (p, owner)) = self.entries.range(..=point).next_back()?;
        if p.contains(point, self.space) {
            Some((*p, owner))
        } else {
            None
        }
    }

    /// The owner of exactly this partition, if present.
    pub fn owner_of(&self, p: Partition) -> Option<&T> {
        match self.entries.get(&p.start(self.space)) {
            Some((q, owner)) if *q == p => Some(owner),
            _ => None,
        }
    }

    /// Iterates `(partition, owner)` in hash-space order.
    pub fn iter(&self) -> impl Iterator<Item = (Partition, &T)> {
        self.entries.values().map(|(p, o)| (*p, o))
    }

    /// Iterates `(partition, owner)` in hash-space order **starting at the
    /// partition containing `point`**, wrapping past the top of the space —
    /// the replica-successor walk of a cluster-aware replication policy:
    /// the first item is the point's owner (the primary), the following
    /// items are the successive partitions a replica placer probes for
    /// followers hosted on distinct snodes. Visits every partition exactly
    /// once; empty when the map is empty.
    pub fn successors(&self, point: u64) -> impl Iterator<Item = (Partition, &T)> {
        debug_assert!(self.space.contains(point));
        let pivot = match self.entries.range(..=point).next_back() {
            Some((&s, _)) => s,
            // No entry at or below the point: the wrap begins at the first
            // entry (only reachable on a non-covering map).
            None => 0,
        };
        self.entries.range(pivot..).chain(self.entries.range(..pivot)).map(|(_, (p, o))| (*p, o))
    }

    /// All partitions of `owner`, in hash-space order — `O(Pv log Pv)`
    /// straight off the owner index (the index keeps the set unordered;
    /// this accessor sorts its copy).
    pub fn partitions_of(&self, owner: &T) -> Vec<Partition> {
        let Some(e) = self.owners.get(owner.dense()).and_then(Option::as_ref) else {
            return Vec::new();
        };
        let mut out = e.parts.clone();
        out.sort_unstable_by_key(|p| p.start(self.space));
        out
    }

    /// Number of partitions held by `owner` — `O(1)`.
    pub fn partition_count_of(&self, owner: &T) -> usize {
        self.owners.get(owner.dense()).and_then(Option::as_ref).map(|e| e.parts.len()).unwrap_or(0)
    }

    /// Exact total quota covered by `owner`'s partitions — `O(1)`, served
    /// from the index's cached accumulator.
    pub fn quota_of(&self, owner: &T) -> Quota {
        self.owners
            .get(owner.dense())
            .and_then(Option::as_ref)
            .map(|e| e.quota)
            .unwrap_or(Quota::ZERO)
    }

    /// Every owner with its exact quota, in dense-index order — `O(V)`.
    pub fn owner_quotas(&self) -> impl Iterator<Item = (&T, Quota)> {
        self.owners.iter().flatten().map(|e| (&e.owner, e.quota))
    }

    /// Verifies invariant G1: the entries tile `R_h` exactly — no gaps, no
    /// overlaps, total size `2^Bh`.
    pub fn verify_coverage(&self) -> Result<(), MapError> {
        let mut cursor: u128 = 0;
        for (&start, (p, _)) in &self.entries {
            if (start as u128) != cursor {
                return Err(MapError::Gap(cursor as u64));
            }
            cursor = start as u128 + p.size(self.space);
        }
        if cursor != self.space.size() {
            return Err(MapError::BadTotal { covered: cursor, expected: self.space.size() });
        }
        Ok(())
    }

    /// Verifies the owner index against a from-scratch recomputation over
    /// the entry map (O(P log P); test/debug oracle).
    pub fn verify_index(&self) -> Result<(), MapError> {
        let mut fresh: BTreeMap<usize, (Vec<Partition>, Quota)> = BTreeMap::new();
        for (p, o) in self.iter() {
            let e = fresh.entry(o.dense()).or_insert_with(|| (Vec::new(), Quota::ZERO));
            e.0.push(p);
            e.1 = e.1 + p.quota();
        }
        if fresh.len() != self.owner_count {
            return Err(MapError::IndexDrift(format!(
                "{} owners indexed, {} found in entries",
                self.owner_count,
                fresh.len()
            )));
        }
        for (slot, (parts, quota)) in fresh {
            let Some(e) = self.owners.get(slot).and_then(Option::as_ref) else {
                return Err(MapError::IndexDrift(format!("owner slot {slot} missing")));
            };
            if e.owner.dense() != slot {
                return Err(MapError::IndexDrift(format!("owner slot {slot} holds {:?}", e.owner)));
            }
            if e.quota != quota {
                return Err(MapError::IndexDrift(format!(
                    "owner {:?}: cached quota {} vs recomputed {quota}",
                    e.owner, e.quota
                )));
            }
            let mut indexed = e.parts.clone();
            indexed.sort_unstable_by_key(|p| p.start(self.space));
            if indexed != parts {
                return Err(MapError::IndexDrift(format!(
                    "owner {:?}: partition sets differ",
                    e.owner
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> HashSpace {
        HashSpace::new(8)
    }

    #[test]
    fn whole_map_routes_everything_to_one_owner() {
        let m = OwnerMap::whole(space(), 0u32);
        for point in 0..=255u64 {
            let (p, owner) = m.lookup(point).expect("covered");
            assert_eq!(p, Partition::ROOT);
            assert_eq!(*owner, 0);
        }
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        assert_eq!(m.owner_count(), 1);
        assert!(m.quota_of(&0).is_one());
    }

    #[test]
    fn split_preserves_coverage_and_owner() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (a, b) = m.split(Partition::ROOT).unwrap();
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.owner_of(a), Some(&0));
        assert_eq!(m.owner_of(b), Some(&0));
        assert!(m.quota_of(&0).is_one());
    }

    #[test]
    fn transfer_changes_routing() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (a, b) = m.split(Partition::ROOT).unwrap();
        let old = m.transfer(b, 1).unwrap();
        assert_eq!(old, 0);
        assert_eq!(m.lookup(0).unwrap().1, &0);
        assert_eq!(m.lookup(255).unwrap().1, &1);
        assert_eq!(m.partitions_of(&0), vec![a]);
        assert_eq!(m.partitions_of(&1), vec![b]);
        assert_eq!(m.partition_count_of(&0), 1);
        m.verify_index().unwrap();
    }

    #[test]
    fn overlapping_insert_rejected() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (l, _r) = Partition::ROOT.split();
        assert_eq!(m.insert(l, 1), Err(MapError::Overlap(l)));
        // Also a *smaller* partition inside an existing one:
        let (ll, _) = l.split();
        assert_eq!(m.insert(ll, 1), Err(MapError::Overlap(ll)));
        // Rejected inserts must leave the index untouched.
        m.verify_index().unwrap();
        assert_eq!(m.owner_count(), 1);
    }

    #[test]
    fn insert_overlap_detected_from_the_right() {
        // Existing entry starts *after* the candidate but inside it.
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        let (_rl, rr) = r.split();
        m.insert(rr, 7u32).unwrap();
        assert_eq!(m.insert(r, 8), Err(MapError::Overlap(r)));
        m.insert(l, 9).unwrap();
        assert_eq!(m.len(), 2);
        m.verify_index().unwrap();
    }

    #[test]
    fn remove_missing_is_an_error() {
        let mut m: OwnerMap<u32> = OwnerMap::new(space());
        let p = Partition::new(1, 0);
        assert_eq!(m.remove(p), Err(MapError::Missing(p)));
        // Present start but different level also counts as missing:
        m.insert(Partition::new(2, 0), 1).unwrap();
        assert_eq!(m.remove(p), Err(MapError::Missing(p)));
        m.verify_index().unwrap();
    }

    #[test]
    fn remove_evicts_empty_owners_from_the_index() {
        let mut m = OwnerMap::whole(space(), 3u32);
        assert_eq!(m.owner_count(), 1);
        m.remove(Partition::ROOT).unwrap();
        assert_eq!(m.owner_count(), 0);
        assert!(m.quota_of(&3).is_zero());
        assert!(m.partitions_of(&3).is_empty());
        m.verify_index().unwrap();
    }

    #[test]
    fn merge_requires_same_owner() {
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        m.insert(l, 1u32).unwrap();
        m.insert(r, 2u32).unwrap();
        assert!(m.merge(l, r).is_err());
        // The refused merge must leave both entries routed.
        assert_eq!(m.owner_of(l), Some(&1));
        assert_eq!(m.owner_of(r), Some(&2));
        m.verify_index().unwrap();
        m.transfer(r, 1).unwrap();
        let parent = m.merge(l, r).unwrap();
        assert_eq!(parent, Partition::ROOT);
        assert_eq!(m.len(), 1);
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        assert_eq!(m.owner_count(), 1);
    }

    #[test]
    fn merge_of_missing_children_restores_state() {
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        let (rl, rr) = r.split();
        m.insert(l, 1u32).unwrap();
        m.insert(rl, 1u32).unwrap();
        m.insert(rr, 1u32).unwrap();
        // (l, r): r itself is not an entry (its children are).
        assert_eq!(m.merge(l, r), Err(MapError::Missing(r)));
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn coverage_detects_gap() {
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        m.insert(r, 1u32).unwrap();
        assert_eq!(m.verify_coverage(), Err(MapError::Gap(0)));
        m.insert(l, 1).unwrap();
        m.verify_coverage().unwrap();
    }

    #[test]
    fn quota_of_sums_partitions_exactly() {
        let mut m = OwnerMap::whole(space(), 0u32);
        let (a, b) = m.split(Partition::ROOT).unwrap();
        let (_a1, a2) = m.split(a).unwrap();
        m.transfer(a2, 1).unwrap();
        m.transfer(b, 1).unwrap();
        assert_eq!(m.quota_of(&0), Quota::new(1, 2));
        assert_eq!(m.quota_of(&1), Quota::new(3, 2));
        assert!((m.quota_of(&0) + m.quota_of(&1)).is_one());
        m.verify_index().unwrap();
    }

    #[test]
    fn heterogeneous_levels_route_correctly() {
        // Simulates two groups at different splitlevels sharing the space:
        // left half at level 3, right half at level 1.
        let mut m = OwnerMap::new(space());
        for i in 0..4u64 {
            m.insert(Partition::new(3, i), i as u32).unwrap();
        }
        m.insert(Partition::new(1, 1), 99u32).unwrap();
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        assert_eq!(*m.lookup(0).unwrap().1, 0);
        assert_eq!(*m.lookup(32).unwrap().1, 1);
        assert_eq!(*m.lookup(127).unwrap().1, 3);
        assert_eq!(*m.lookup(128).unwrap().1, 99);
        assert_eq!(*m.lookup(255).unwrap().1, 99);
        assert_eq!(m.owner_count(), 5);
    }

    #[test]
    fn successors_wrap_and_cover_every_partition_once() {
        let mut m = OwnerMap::new(space());
        for i in 0..4u64 {
            m.insert(Partition::new(2, i), i as u32).unwrap();
        }
        // Starting inside the third quarter: 2, 3, then wrap to 0, 1.
        let walk: Vec<u32> = m.successors(130).map(|(_, &o)| o).collect();
        assert_eq!(walk, vec![2, 3, 0, 1]);
        // Starting at point 0 is plain hash-space order.
        let walk: Vec<u32> = m.successors(0).map(|(_, &o)| o).collect();
        assert_eq!(walk, vec![0, 1, 2, 3]);
        // The first item always matches lookup.
        for point in [0u64, 77, 128, 255] {
            let (p, o) = m.successors(point).next().unwrap();
            let (lp, lo) = m.lookup(point).unwrap();
            assert_eq!((p, o), (lp, lo));
        }
        assert_eq!(OwnerMap::<u32>::new(space()).successors(9).count(), 0);
    }

    #[test]
    fn lookup_on_empty_is_none() {
        let m: OwnerMap<u32> = OwnerMap::new(space());
        assert!(m.lookup(10).is_none());
        assert!(m.is_empty());
        assert_eq!(m.owner_count(), 0);
    }

    #[test]
    fn split_all_doubles_every_entry() {
        let mut m = OwnerMap::new(space());
        for i in 0..4u64 {
            m.insert(Partition::new(2, i), (i % 2) as u32).unwrap();
        }
        let n = m.split_all();
        assert_eq!(n, 4);
        assert_eq!(m.len(), 8);
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        for i in 0..8u64 {
            assert_eq!(m.owner_of(Partition::new(3, i)), Some(&(((i / 2) % 2) as u32)));
        }
        assert_eq!(m.quota_of(&0), Quota::new(1, 1));
        assert_eq!(m.quota_of(&1), Quota::new(1, 1));
    }

    #[test]
    fn replace_all_rebuilds_entries_and_index() {
        let mut m = OwnerMap::whole(space(), 0u32);
        m.replace_all(vec![
            (Partition::new(1, 0), 4u32),
            (Partition::new(2, 2), 5),
            (Partition::new(2, 3), 4),
        ]);
        m.verify_coverage().unwrap();
        m.verify_index().unwrap();
        assert_eq!(m.owner_count(), 2);
        assert_eq!(m.quota_of(&4), Quota::new(3, 2));
        assert_eq!(m.quota_of(&5), Quota::new(1, 2));
        assert_eq!(m.partitions_of(&4), vec![Partition::new(1, 0), Partition::new(2, 3)]);
    }

    #[test]
    fn owner_quotas_iterates_in_dense_order() {
        let mut m = OwnerMap::new(space());
        let (l, r) = Partition::ROOT.split();
        m.insert(r, 9u32).unwrap();
        m.insert(l, 2u32).unwrap();
        let got: Vec<(u32, Quota)> = m.owner_quotas().map(|(&o, q)| (o, q)).collect();
        assert_eq!(got, vec![(2, Quota::new(1, 1)), (9, Quota::new(1, 1))]);
    }

    #[test]
    fn randomized_interleaving_keeps_index_exact() {
        // A deterministic pseudo-random walk over every mutation kind; the
        // index must match a from-scratch recomputation at every step.
        let mut m = OwnerMap::whole(space(), 0u32);
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..600 {
            let parts: Vec<Partition> = m.iter().map(|(p, _)| p).collect();
            let p = parts[(rng() % parts.len() as u64) as usize];
            match rng() % 3 {
                0 if p.level() < 8 => {
                    m.split(p).unwrap();
                }
                1 => {
                    m.transfer(p, (rng() % 5) as u32).unwrap();
                }
                _ => {
                    if p.level() > 0 {
                        let sib = p.sibling();
                        if m.owner_of(sib).is_some() && m.owner_of(sib) != m.owner_of(p) {
                            let o = m.owner_of(p).copied().unwrap();
                            m.transfer(sib, o).unwrap();
                        }
                        if m.owner_of(sib) == m.owner_of(p) && m.owner_of(sib).is_some() {
                            let (l, r) = if p.index() % 2 == 0 { (p, sib) } else { (sib, p) };
                            m.merge(l, r).unwrap();
                        }
                    }
                }
            }
            m.verify_coverage().unwrap_or_else(|e| panic!("step {step}: {e}"));
            m.verify_index().unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
}

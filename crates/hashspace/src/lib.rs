//! # domus-hashspace
//!
//! The hash-space algebra beneath the DHT model of Rufino et al.
//! (IPDPS 2004): a hash function range `R_h = [0, 2^Bh)` that is *fully
//! divided into non-overlapping partitions* (invariant G1), where every
//! partition results from binary splits of `R_h` and therefore has size
//! `2^(Bh − l)` for its *splitlevel* `l` (§3.4 of the paper).
//!
//! Modules:
//!
//! * [`space`] — the range `R_h` itself ([`HashSpace`], `Bh` configurable up
//!   to 64 bits; small spaces make exhaustive property tests cheap).
//! * [`partition`] — [`Partition`] as `(level, index)` with split / merge /
//!   sibling / ancestor algebra. A partition never stores its bounds; they
//!   are derived, so invariants G1/G3 cannot be violated by construction.
//! * [`quota`] — exact dyadic-rational quota arithmetic ([`Quota`]); quota
//!   sums are exact (`Σ = 1` is an equality test, not an ε-comparison).
//! * [`range_map`] — [`OwnerMap`]: the partition → owner routing structure
//!   (lookup of the vnode that owns a point, as needed by the local
//!   approach's random-victim selection, §3.6).
//! * [`hasher`] — byte-string and integer hashing onto the space (FNV-1a
//!   plus a SplitMix finalizer), for the KV layer and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hasher;
pub mod partition;
pub mod quota;
pub mod range_map;
pub mod space;

pub use hasher::KeyHasher;
pub use partition::Partition;
pub use quota::Quota;
pub use range_map::{MapError, OwnerKey, OwnerMap};
pub use space::HashSpace;

//! The hash range `R_h = [0, 2^Bh)`.

use domus_util::DomusRng;

/// The range of the hash function: `R_h = {i ∈ N0 : 0 ≤ i < 2^Bh}` (§2.2).
///
/// `Bh` (the number of bits) is fixed for the lifetime of a DHT. The paper
/// leaves `Bh` abstract; this implementation supports `1 ..= 64` bits —
/// 64 for production-grade key spreading, small values for exhaustive tests.
///
/// Points in the space are `u64` with only the low `Bh` bits significant.
/// Sizes are `u128` because the full range `2^64` overflows `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashSpace {
    bits: u32,
}

impl HashSpace {
    /// A hash space of `bits` bits.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 64`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "Bh must be in 1..=64, got {bits}");
        Self { bits }
    }

    /// The conventional production space: `Bh = 64`.
    pub fn full() -> Self {
        Self::new(64)
    }

    /// `Bh`, the number of bits of any hash index.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `2^Bh`, the size of the range.
    #[inline]
    pub fn size(&self) -> u128 {
        1u128 << self.bits
    }

    /// Largest valid point (`2^Bh − 1`).
    #[inline]
    pub fn max_point(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// `true` iff `point` lies inside the range.
    #[inline]
    pub fn contains(&self, point: u64) -> bool {
        point <= self.max_point()
    }

    /// A uniformly random point `r ∈ R_h` — the local approach's victim
    /// selector draws exactly this (§3.6).
    #[inline]
    pub fn random_point<R: DomusRng>(&self, rng: &mut R) -> u64 {
        if self.bits == 64 {
            rng.next_u64()
        } else {
            rng.next_u64() & self.max_point()
        }
    }

    /// Folds an arbitrary `u64` hash value onto this space (keeps the low
    /// `Bh` bits after xor-folding the high ones in, so small spaces still
    /// see all input entropy).
    #[inline]
    pub fn fold(&self, h: u64) -> u64 {
        if self.bits == 64 {
            h
        } else {
            (h ^ (h >> self.bits)) & self.max_point()
        }
    }
}

impl Default for HashSpace {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_util::Xoshiro256pp;

    #[test]
    fn size_and_max_point() {
        let s = HashSpace::new(8);
        assert_eq!(s.size(), 256);
        assert_eq!(s.max_point(), 255);
        assert!(s.contains(255));
        assert!(!s.contains(256));
        let f = HashSpace::full();
        assert_eq!(f.size(), 1u128 << 64);
        assert_eq!(f.max_point(), u64::MAX);
        assert!(f.contains(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "Bh must be in 1..=64")]
    fn zero_bits_rejected() {
        let _ = HashSpace::new(0);
    }

    #[test]
    #[should_panic(expected = "Bh must be in 1..=64")]
    fn too_many_bits_rejected() {
        let _ = HashSpace::new(65);
    }

    #[test]
    fn random_points_in_range_and_spread() {
        let s = HashSpace::new(10);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut seen_hi = false;
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let p = s.random_point(&mut rng);
            assert!(s.contains(p));
            if p >= 768 {
                seen_hi = true;
            }
            if p < 256 {
                seen_lo = true;
            }
        }
        assert!(seen_hi && seen_lo, "draws should cover the space");
    }

    #[test]
    fn fold_stays_in_space_and_uses_high_bits() {
        let s = HashSpace::new(8);
        for h in [0u64, 1, 0xFF, 0x100, 0xDEAD_BEEF_CAFE_F00D] {
            assert!(s.contains(s.fold(h)));
        }
        // Two values differing only above bit 8 must (generically) fold
        // differently thanks to xor-folding.
        assert_ne!(s.fold(0x0100), s.fold(0x0000));
    }

    #[test]
    fn default_is_full() {
        assert_eq!(HashSpace::default(), HashSpace::full());
    }
}

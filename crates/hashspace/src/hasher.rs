//! Key hashing onto the hash space.
//!
//! The model is agnostic to the hash function `h` — it only requires a fixed
//! range `R_h` (§2.2). The KV layer and the examples need a concrete `h`;
//! this module provides FNV-1a (64-bit) for byte strings with a SplitMix64
//! avalanche finalizer (plain FNV has weak high bits, and the partition
//! algebra routes on the *high* bits of the index).

use crate::space::HashSpace;
use domus_util::SplitMix64;

/// Hashes keys onto a [`HashSpace`].
pub trait KeyHasher {
    /// Maps a byte-string key to a point of `space`.
    fn point(&self, key: &[u8], space: HashSpace) -> u64;
}

/// FNV-1a 64-bit with a SplitMix64 finalizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fnv1aHasher;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv1aHasher {
    /// Raw FNV-1a over `bytes` (no finalizer).
    #[inline]
    pub fn raw(bytes: &[u8]) -> u64 {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Finalized 64-bit hash of `bytes`.
    #[inline]
    pub fn hash(bytes: &[u8]) -> u64 {
        SplitMix64::mix(Self::raw(bytes))
    }
}

impl KeyHasher for Fnv1aHasher {
    #[inline]
    fn point(&self, key: &[u8], space: HashSpace) -> u64 {
        space.fold(Fnv1aHasher::hash(key))
    }
}

/// Hashes a `u64` identifier onto the space (SplitMix64 finalizer only).
#[inline]
pub fn point_for_u64(id: u64, space: HashSpace) -> u64 {
    space.fold(SplitMix64::mix(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv1aHasher::raw(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(Fnv1aHasher::raw(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(Fnv1aHasher::raw(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let space = HashSpace::new(16);
        let h = Fnv1aHasher;
        let a = h.point(b"key-1", space);
        let b = h.point(b"key-2", space);
        assert_eq!(a, h.point(b"key-1", space));
        assert_ne!(a, b);
        assert!(space.contains(a) && space.contains(b));
    }

    #[test]
    fn points_distribute_roughly_uniformly() {
        // 4 buckets over the top bits of an 8-bit space; 4000 sequential
        // keys must not pile into one bucket (the finalizer's job).
        let space = HashSpace::new(8);
        let h = Fnv1aHasher;
        let mut buckets = [0u32; 4];
        for i in 0..4000u32 {
            let p = h.point(format!("user:{i}").as_bytes(), space);
            buckets[(p >> 6) as usize] += 1;
        }
        for &c in &buckets {
            assert!((700..=1300).contains(&c), "bucket counts skewed: {buckets:?}");
        }
    }

    #[test]
    fn u64_points_spread() {
        let space = HashSpace::new(8);
        let mut buckets = [0u32; 4];
        for i in 0..4000u64 {
            buckets[(point_for_u64(i, space) >> 6) as usize] += 1;
        }
        for &c in &buckets {
            assert!((700..=1300).contains(&c), "bucket counts skewed: {buckets:?}");
        }
    }
}

//! Exact dyadic-rational quota arithmetic.
//!
//! A *quota* `Qv` is "the fraction of `R_h` specific to the vnode v …
//! calculated by summing up the size of all partitions bound to v, and then
//! dividing the result by the size of the range of h" (§2.3). Because every
//! partition size is `2^(Bh−l)`, every quota is a dyadic rational
//! `num / 2^log2_den`. Representing quotas exactly lets invariant checks be
//! equality tests (`ΣQv = 1`) instead of ε-comparisons, at every scale.

/// An exact non-negative dyadic rational `num / 2^log2_den`, kept in lowest
/// terms (odd numerator or zero).
///
/// Supports the handful of operations the model needs: add, subtract,
/// compare, convert to `f64` for metric computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quota {
    num: u128,
    log2_den: u32,
}

impl Quota {
    /// The zero quota.
    pub const ZERO: Quota = Quota { num: 0, log2_den: 0 };

    /// The full range (quota 1).
    pub const ONE: Quota = Quota { num: 1, log2_den: 0 };

    /// `num / 2^log2_den`, normalised to lowest terms.
    ///
    /// # Panics
    /// Panics if `log2_den > 127` (beyond any sensible `Bh`).
    pub fn new(num: u128, log2_den: u32) -> Self {
        assert!(log2_den <= 127, "quota denominator 2^{log2_den} too large");
        let mut q = Quota { num, log2_den };
        q.normalise();
        q
    }

    /// `count` partitions at splitlevel `level`: `count / 2^level`.
    pub fn of_partitions(count: u64, level: u32) -> Self {
        Quota::new(count as u128, level)
    }

    fn normalise(&mut self) {
        if self.num == 0 {
            self.log2_den = 0;
            return;
        }
        let tz = self.num.trailing_zeros().min(self.log2_den);
        self.num >>= tz;
        self.log2_den -= tz;
    }

    /// Numerator in lowest terms.
    pub fn numerator(&self) -> u128 {
        self.num
    }

    /// `log2` of the denominator in lowest terms.
    pub fn log2_denominator(&self) -> u32 {
        self.log2_den
    }

    /// Exact equality with 1 (`R_h` fully covered).
    pub fn is_one(&self) -> bool {
        *self == Quota::ONE
    }

    /// Exact equality with 0.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Checked addition (None on overflow — practically unreachable for
    /// quotas bounded by 1, but the type does not enforce that bound).
    pub fn checked_add(self, other: Quota) -> Option<Quota> {
        let den = self.log2_den.max(other.log2_den);
        let a = self.num.checked_shl(den - self.log2_den)?;
        let b = other.num.checked_shl(den - other.log2_den)?;
        Some(Quota::new(a.checked_add(b)?, den))
    }

    /// Checked subtraction (None if the result would be negative or on
    /// overflow during scaling).
    pub fn checked_sub(self, other: Quota) -> Option<Quota> {
        let den = self.log2_den.max(other.log2_den);
        let a = self.num.checked_shl(den - self.log2_den)?;
        let b = other.num.checked_shl(den - other.log2_den)?;
        Some(Quota::new(a.checked_sub(b)?, den))
    }

    /// Lossy conversion for metric computation.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / (self.log2_den as f64).exp2()
    }
}

impl Default for Quota {
    fn default() -> Self {
        Quota::ZERO
    }
}

impl std::ops::Add for Quota {
    type Output = Quota;
    fn add(self, rhs: Quota) -> Quota {
        self.checked_add(rhs).expect("quota addition overflow")
    }
}

impl std::ops::Sub for Quota {
    type Output = Quota;
    fn sub(self, rhs: Quota) -> Quota {
        self.checked_sub(rhs).expect("quota subtraction underflow")
    }
}

impl std::iter::Sum for Quota {
    fn sum<I: Iterator<Item = Quota>>(iter: I) -> Quota {
        iter.fold(Quota::ZERO, |a, b| a + b)
    }
}

impl PartialOrd for Quota {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Quota {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Compare a/2^x vs b/2^y by scaling to the common denominator.
        // Numerators are < 2^127 in practice (quotas ≤ 1, Bh ≤ 64), so the
        // shifted comparison cannot overflow u128 after normalisation; fall
        // back to cross-scaling halves if it would.
        let den = self.log2_den.max(other.log2_den);
        let sa = den - self.log2_den;
        let sb = den - other.log2_den;
        match (self.num.checked_shl(sa), other.num.checked_shl(sb)) {
            (Some(a), Some(b)) => a.cmp(&b),
            // Overflow on one side means that side is astronomically larger.
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, None) => self.to_f64().partial_cmp(&other.to_f64()).expect("finite"),
        }
    }
}

impl std::fmt::Display for Quota {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.log2_den == 0 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/2^{}", self.num, self.log2_den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_reduces_to_lowest_terms() {
        let q = Quota::new(4, 3); // 4/8 = 1/2
        assert_eq!(q.numerator(), 1);
        assert_eq!(q.log2_denominator(), 1);
        assert_eq!(q, Quota::new(1, 1));
    }

    #[test]
    fn zero_normalises_fully() {
        let q = Quota::new(0, 57);
        assert!(q.is_zero());
        assert_eq!(q, Quota::ZERO);
        assert_eq!(q.log2_denominator(), 0);
    }

    #[test]
    fn partition_quotas_sum_to_one() {
        // 2^k partitions at level k tile the space exactly.
        for level in 0..20u32 {
            let total: Quota = (0..(1u64 << level)).map(|_| Quota::of_partitions(1, level)).sum();
            assert!(total.is_one(), "level {level}: got {total}");
        }
    }

    #[test]
    fn mixed_level_sum_is_exact() {
        // 1/2 + 1/4 + 1/8 + 1/8 = 1
        let q = Quota::new(1, 1) + Quota::new(1, 2) + Quota::new(1, 3) + Quota::new(1, 3);
        assert!(q.is_one());
    }

    #[test]
    fn subtraction_and_underflow() {
        let half = Quota::new(1, 1);
        let quarter = Quota::new(1, 2);
        assert_eq!(half - quarter, quarter);
        assert_eq!(quarter.checked_sub(half), None);
    }

    #[test]
    fn ordering_across_denominators() {
        let a = Quota::new(3, 3); // 3/8
        let b = Quota::new(1, 1); // 1/2
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        let list = [Quota::new(5, 4), Quota::new(1, 3), Quota::new(7, 3)];
        let max = list.iter().max().unwrap();
        assert_eq!(*max, Quota::new(7, 3));
    }

    #[test]
    fn to_f64_matches_expectation() {
        assert_eq!(Quota::new(3, 2).to_f64(), 0.75);
        assert_eq!(Quota::ONE.to_f64(), 1.0);
        assert_eq!(Quota::ZERO.to_f64(), 0.0);
        // Deep denominators stay finite and accurate.
        let tiny = Quota::new(1, 64);
        assert!((tiny.to_f64() - 2f64.powi(-64)).abs() < 1e-30);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Quota::ONE.to_string(), "1");
        assert_eq!(Quota::new(3, 5).to_string(), "3/2^5");
    }

    #[test]
    fn sum_iterator_impl() {
        let qs = vec![Quota::new(1, 2); 4];
        let total: Quota = qs.into_iter().sum();
        assert!(total.is_one());
    }
}

//! Partitions and the splitlevel algebra (§2.1.3, §3.4 of the paper).
//!
//! "Every partition of `R_h` results from the binary split (division, in two
//! equal parts) of another partition; the splitlevel of a partition may be
//! defined as the number of binary splits needed, departing from `R_h`, to
//! reach the current size of the partition. Thus, a partition in splitlevel
//! `l` will have `1/2^l` the size of `R_h`."
//!
//! A partition is represented as `(level, index)` — the `index`-th interval
//! of size `2^(Bh−level)`. Bounds are always *derived*, never stored, which
//! makes the non-overlap invariant (G1) structural: two partitions overlap
//! iff one is an ancestor of the other in the binary-split tree.

use crate::quota::Quota;
use crate::space::HashSpace;

/// A contiguous subset of the hash range produced by binary splits:
/// `[index · 2^(Bh−level), (index+1) · 2^(Bh−level))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Partition {
    level: u32,
    index: u64,
}

impl Partition {
    /// The whole hash range (splitlevel 0).
    pub const ROOT: Partition = Partition { level: 0, index: 0 };

    /// The partition at `(level, index)`.
    ///
    /// # Panics
    /// Panics if `level > 64` or `index` is not below `2^level`.
    pub fn new(level: u32, index: u64) -> Self {
        assert!(level <= 64, "splitlevel {level} exceeds 64");
        if level < 64 {
            assert!(
                index < (1u64 << level),
                "partition index {index} out of range for level {level}"
            );
        }
        Self { level, index }
    }

    /// The splitlevel `l`.
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The index within the level (0-based, left to right).
    #[inline]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// First point of the partition in `space`.
    ///
    /// # Panics
    /// Panics (debug) if the level is deeper than the space has bits.
    #[inline]
    pub fn start(&self, space: HashSpace) -> u64 {
        debug_assert!(self.level <= space.bits(), "partition deeper than the space");
        if self.level == 0 {
            0
        } else {
            self.index << (space.bits() - self.level)
        }
    }

    /// Size in points: `2^(Bh − l)`.
    #[inline]
    pub fn size(&self, space: HashSpace) -> u128 {
        debug_assert!(self.level <= space.bits());
        1u128 << (space.bits() - self.level)
    }

    /// One-past-the-end point (u128: the last partition ends at `2^Bh`).
    #[inline]
    pub fn end(&self, space: HashSpace) -> u128 {
        self.start(space) as u128 + self.size(space)
    }

    /// `true` iff `point` lies inside this partition.
    #[inline]
    pub fn contains(&self, point: u64, space: HashSpace) -> bool {
        let s = self.start(space);
        (point as u128) >= (s as u128) && (point as u128) < self.end(space)
    }

    /// The exact fraction of the hash range this partition covers: `1/2^l`.
    #[inline]
    pub fn quota(&self) -> Quota {
        Quota::new(1, self.level)
    }

    /// Binary split into the (left, right) halves at `level + 1` (§3.4).
    ///
    /// # Panics
    /// Panics if the partition is already at the maximum splitlevel (64).
    pub fn split(&self) -> (Partition, Partition) {
        assert!(self.level < 64, "cannot split a level-64 partition");
        let l = self.level + 1;
        (
            Partition { level: l, index: self.index << 1 },
            Partition { level: l, index: (self.index << 1) | 1 },
        )
    }

    /// The sibling under the same parent (the other half of the split).
    ///
    /// # Panics
    /// Panics for the root (it has no sibling).
    pub fn sibling(&self) -> Partition {
        assert!(self.level > 0, "the root partition has no sibling");
        Partition { level: self.level, index: self.index ^ 1 }
    }

    /// The parent partition (one binary merge up), or `None` for the root.
    pub fn parent(&self) -> Option<Partition> {
        if self.level == 0 {
            None
        } else {
            Some(Partition { level: self.level - 1, index: self.index >> 1 })
        }
    }

    /// Merges two sibling partitions back into their parent.
    ///
    /// Returns `None` when the partitions are not siblings.
    pub fn merge(a: Partition, b: Partition) -> Option<Partition> {
        if a.level == b.level && a.level > 0 && a.index ^ 1 == b.index {
            a.parent()
        } else {
            None
        }
    }

    /// `true` iff `self` is a strict ancestor of `other` in the split tree.
    pub fn is_ancestor_of(&self, other: &Partition) -> bool {
        self.level < other.level && (other.index >> (other.level - self.level)) == self.index
    }

    /// `true` iff the two partitions share any point — by the split-tree
    /// structure, iff one is an ancestor of (or equal to) the other.
    pub fn overlaps(&self, other: &Partition) -> bool {
        self == other || self.is_ancestor_of(other) || other.is_ancestor_of(self)
    }

    /// The partition at splitlevel `level` that contains `point`.
    pub fn containing(level: u32, point: u64, space: HashSpace) -> Partition {
        assert!(level <= space.bits(), "level {level} deeper than space ({} bits)", space.bits());
        let index = if level == 0 { 0 } else { point >> (space.bits() - level) };
        Partition { level, index }
    }

    /// All `2^level` partitions of a level, left to right (test/debug aid —
    /// O(2^level), only sensible for small levels).
    pub fn all_at_level(level: u32) -> impl Iterator<Item = Partition> {
        assert!(level < 63, "all_at_level is a small-level debug aid");
        (0..(1u64 << level)).map(move |index| Partition { level, index })
    }

    /// The minimal sequence of non-overlapping partitions tiling the
    /// half-open interval `[start, end)` exactly, in ascending point order
    /// (the greedy dyadic decomposition; at most `2·Bh` pieces).
    ///
    /// This is how an *arbitrary* interval — e.g. a consistent-hashing arc
    /// — is expressed in the model's partition algebra: each piece is the
    /// largest split-tree block that starts at the current offset and fits
    /// in the remaining span.
    ///
    /// # Panics
    /// Panics if `end` exceeds the space size or `start as u128 > end`.
    pub fn cover_range(space: HashSpace, start: u64, end: u128) -> Vec<Partition> {
        let mut out = Vec::new();
        Self::for_each_cover(space, start, end, &mut |p| out.push(p));
        out
    }

    /// Visits [`Partition::cover_range`]`(space, start, end)` piece by
    /// piece without materialising the cover — the allocation-free form
    /// the streaming transfer paths use.
    ///
    /// # Panics
    /// Panics if `end` exceeds the space size or `start as u128 > end`.
    pub fn for_each_cover(space: HashSpace, start: u64, end: u128, f: &mut dyn FnMut(Partition)) {
        assert!(end <= space.size(), "range end beyond the space");
        assert!((start as u128) <= end, "inverted range");
        let mut at = start as u128;
        while at < end {
            // Largest block aligned at `at`…
            let align =
                if at == 0 { space.bits() } else { (at.trailing_zeros()).min(space.bits()) };
            // …capped by the largest power of two fitting the remainder.
            let fit = 127 - (end - at).leading_zeros();
            let k = align.min(fit);
            let level = space.bits() - k;
            f(Partition { level, index: (at >> k) as u64 });
            at += 1u128 << k;
        }
    }

    /// The piece of [`Partition::cover_range`]`(space, start, end)` that
    /// contains `point`, without materialising the cover — the same greedy
    /// walk, O(Bh) arithmetic and no allocation.
    ///
    /// # Panics
    /// Panics if `point` lies outside `[start, end)` (debug) or the range
    /// is invalid.
    pub fn cover_piece_containing(
        space: HashSpace,
        start: u64,
        end: u128,
        point: u64,
    ) -> Partition {
        debug_assert!(
            (point as u128) >= (start as u128) && (point as u128) < end,
            "point outside the covered range"
        );
        assert!(end <= space.size(), "range end beyond the space");
        let mut at = start as u128;
        loop {
            let align = if at == 0 {
                space.bits()
            } else {
                ((at as u64).trailing_zeros()).min(space.bits())
            };
            let fit = 127 - (end - at).leading_zeros();
            let k = align.min(fit);
            if (point as u128) < at + (1u128 << k) {
                return Partition { level: space.bits() - k, index: (at >> k) as u64 };
            }
            at += 1u128 << k;
        }
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}:{}", self.level, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s8() -> HashSpace {
        HashSpace::new(8)
    }

    #[test]
    fn root_covers_everything() {
        let s = s8();
        assert_eq!(Partition::ROOT.start(s), 0);
        assert_eq!(Partition::ROOT.size(s), 256);
        assert!(Partition::ROOT.contains(0, s));
        assert!(Partition::ROOT.contains(255, s));
    }

    #[test]
    fn split_halves_exactly() {
        let s = s8();
        let (l, r) = Partition::ROOT.split();
        assert_eq!(l.start(s), 0);
        assert_eq!(l.size(s), 128);
        assert_eq!(r.start(s), 128);
        assert_eq!(r.size(s), 128);
        assert_eq!(l.end(s), r.start(s) as u128);
        assert_eq!(r.end(s), 256);
    }

    #[test]
    fn split_then_merge_roundtrips() {
        let p = Partition::new(3, 5);
        let (a, b) = p.split();
        assert_eq!(Partition::merge(a, b), Some(p));
        assert_eq!(Partition::merge(b, a), Some(p));
        assert_eq!(a.sibling(), b);
        assert_eq!(b.sibling(), a);
        assert_eq!(a.parent(), Some(p));
    }

    #[test]
    fn merge_rejects_non_siblings() {
        let a = Partition::new(3, 0);
        let b = Partition::new(3, 2);
        assert_eq!(Partition::merge(a, b), None);
        let c = Partition::new(2, 1);
        assert_eq!(Partition::merge(a, c), None);
        assert_eq!(Partition::merge(Partition::ROOT, Partition::ROOT), None);
    }

    #[test]
    fn quota_is_one_over_two_to_level() {
        assert_eq!(Partition::ROOT.quota().to_f64(), 1.0);
        assert_eq!(Partition::new(3, 7).quota().to_f64(), 0.125);
    }

    #[test]
    fn ancestor_and_overlap() {
        let p = Partition::new(2, 1); // [64, 128) in an 8-bit space
        let (a, b) = p.split();
        assert!(p.is_ancestor_of(&a));
        assert!(p.is_ancestor_of(&b));
        assert!(!a.is_ancestor_of(&p));
        assert!(p.overlaps(&a));
        assert!(a.overlaps(&p));
        assert!(!a.overlaps(&b));
        let unrelated = Partition::new(2, 3);
        assert!(!p.overlaps(&unrelated));
    }

    #[test]
    fn containing_finds_the_right_partition() {
        let s = s8();
        for level in 0..=8 {
            for point in [0u64, 1, 63, 64, 127, 128, 200, 255] {
                let p = Partition::containing(level, point, s);
                assert!(p.contains(point, s), "level {level} point {point} → {p}");
            }
        }
    }

    #[test]
    fn level_partitions_tile_the_space() {
        let s = s8();
        for level in 0..=4u32 {
            let parts: Vec<Partition> = Partition::all_at_level(level).collect();
            assert_eq!(parts.len(), 1 << level);
            let total: u128 = parts.iter().map(|p| p.size(s)).sum();
            assert_eq!(total, s.size(), "G1+G3: level {level} must tile R_h");
            for w in parts.windows(2) {
                assert_eq!(w[0].end(s), w[1].start(s) as u128, "partitions must abut");
            }
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Partition::new(4, 9).to_string(), "p4:9");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Partition::new(2, 4);
    }

    #[test]
    fn full_space_level64_partitions_work() {
        let s = HashSpace::full();
        let p = Partition::new(64, u64::MAX);
        assert_eq!(p.size(s), 1);
        assert_eq!(p.start(s), u64::MAX);
        assert!(p.contains(u64::MAX, s));
    }

    #[test]
    fn cover_range_tiles_exactly() {
        let s = s8();
        for (start, end) in
            [(0u64, 256u128), (0, 0), (3, 3), (0, 1), (255, 256), (3, 200), (64, 192), (1, 255)]
        {
            let cover = Partition::cover_range(s, start, end);
            // Pieces abut, stay inside [start, end), and sum to the span.
            let mut at = start as u128;
            for p in &cover {
                assert_eq!(p.start(s) as u128, at, "[{start}, {end}) piece {p}");
                at = p.end(s);
            }
            assert_eq!(at.max(start as u128), (end).max(start as u128), "[{start}, {end}) covered");
            let total: u128 = cover.iter().map(|p| p.size(s)).sum();
            assert_eq!(total, end - start as u128);
        }
    }

    #[test]
    fn cover_range_is_minimal_on_aligned_blocks() {
        let s = s8();
        assert_eq!(Partition::cover_range(s, 0, 256), vec![Partition::ROOT]);
        assert_eq!(Partition::cover_range(s, 128, 256), vec![Partition::new(1, 1)]);
        assert_eq!(Partition::cover_range(s, 64, 128), vec![Partition::new(2, 1)]);
        // [1, 255): forced to fine levels at the ragged edges.
        let c = Partition::cover_range(s, 1, 255);
        assert!(c.len() <= 2 * 8, "at most 2·Bh pieces, got {}", c.len());
    }

    #[test]
    fn cover_piece_containing_matches_materialised_cover() {
        let s = s8();
        for (start, end) in [(0u64, 256u128), (3, 200), (64, 192), (1, 255), (255, 256)] {
            let cover = Partition::cover_range(s, start, end);
            for point in start..end as u64 {
                let expect = cover.iter().find(|p| p.contains(point, s)).copied().unwrap();
                assert_eq!(
                    Partition::cover_piece_containing(s, start, end, point),
                    expect,
                    "[{start},{end}) point {point}"
                );
            }
        }
        let full = HashSpace::full();
        let p = Partition::cover_piece_containing(full, 1, full.size() - 1, u64::MAX - 1);
        assert!(p.contains(u64::MAX - 1, full));
    }

    #[test]
    fn cover_range_full_64bit_space() {
        let s = HashSpace::full();
        assert_eq!(Partition::cover_range(s, 0, s.size()), vec![Partition::ROOT]);
        let c = Partition::cover_range(s, u64::MAX, s.size());
        assert_eq!(c, vec![Partition::new(64, u64::MAX)]);
        let c = Partition::cover_range(s, 1, s.size() - 1);
        assert!(c.len() <= 128);
        let total: u128 = c.iter().map(|p| p.size(s)).sum();
        assert_eq!(total, s.size() - 2);
    }
}

//! The paper's quality metric: relative standard deviation of quotas.
//!
//! §2.3 of the paper: for quotas `Qv` with ideal average `Q̄v`, the model
//! minimises `σ̄(Qv, Q̄v) = σ(Qv, Q̄v) / Q̄v`, "often expressed in percentage".
//!
//! Two subtleties, both reproduced here:
//!
//! * For vnode quotas the measured mean *equals* the ideal mean (`ΣQv = 1`,
//!   so `mean = 1/V`), but figure 8's group metric is explicitly defined
//!   against the **ideal** average `Q̄g = 1/G` — hence
//!   [`rel_std_dev_about_pct`], which takes the reference mean as an
//!   argument and measures the root-mean-square deviation *about that
//!   reference*, not about the empirical mean.
//! * The deviation is a population measure (the complete set of quotas at an
//!   instant), not a sample estimate.

use crate::welford::Welford;

/// Relative standard deviation (percent) about the empirical mean.
///
/// `100 · σ(xs) / mean(xs)` with population σ. Returns 0.0 for empty input
/// and for a zero mean (degenerate; avoids NaN in edge cases such as a
/// single-vnode DHT).
///
/// ```
/// use domus_metrics::rel_std_dev_pct;
/// // Perfect balance: zero deviation.
/// assert_eq!(rel_std_dev_pct([0.25, 0.25, 0.25, 0.25]), 0.0);
/// ```
pub fn rel_std_dev_pct<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let w: Welford = xs.into_iter().collect();
    if w.is_empty() || w.mean() == 0.0 {
        return 0.0;
    }
    100.0 * w.std_dev_population() / w.mean()
}

/// Relative standard deviation (percent) about a caller-supplied *ideal*
/// mean: `100 · sqrt(mean((x − ideal)²)) / ideal`.
///
/// This is the figure-8 definition (`Q̄g = 1/G`). When `ideal` equals the
/// empirical mean the result coincides with [`rel_std_dev_pct`].
///
/// Returns 0.0 for empty input. Panics if `ideal <= 0` (quotas are positive
/// fractions by construction).
pub fn rel_std_dev_about_pct<I: IntoIterator<Item = f64>>(xs: I, ideal: f64) -> f64 {
    assert!(ideal > 0.0, "ideal mean must be positive, got {ideal}");
    let mut n = 0u64;
    let mut sum_sq = 0.0f64;
    for x in xs {
        let d = x - ideal;
        sum_sq += d * d;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    100.0 * (sum_sq / n as f64).sqrt() / ideal
}

/// Relative standard deviation (percent) of integer counts about their
/// empirical mean — the global approach's `σ̄(Pv, P̄v)` shortcut (§2.4:
/// because all partitions share one size, `σ̄(Qv) = σ̄(Pv)`).
pub fn rel_std_dev_counts_pct(counts: &[u64]) -> f64 {
    rel_std_dev_pct(counts.iter().map(|&c| c as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_for_uniform_input() {
        assert_eq!(rel_std_dev_pct(vec![3.0; 17]), 0.0);
        assert_eq!(rel_std_dev_counts_pct(&[8; 32]), 0.0);
    }

    #[test]
    fn known_value() {
        // xs = [1, 3]: mean 2, population σ = 1, rel = 50%.
        let v = rel_std_dev_pct([1.0, 3.0]);
        assert!((v - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(rel_std_dev_pct(std::iter::empty()), 0.0);
        assert_eq!(rel_std_dev_about_pct(std::iter::empty(), 1.0), 0.0);
    }

    #[test]
    fn about_ideal_matches_empirical_when_equal() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let mean = 0.25;
        let a = rel_std_dev_pct(xs);
        let b = rel_std_dev_about_pct(xs, mean);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn about_ideal_penalises_systematic_offset() {
        // All quotas equal but *not* equal to the ideal: empirical σ is 0,
        // the ideal-referenced deviation is not.
        let xs = [0.3, 0.3, 0.3];
        assert_eq!(rel_std_dev_pct(xs), 0.0);
        let v = rel_std_dev_about_pct(xs, 0.25);
        assert!((v - 20.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn scale_invariance() {
        // §2.4: if Y = c·X then σ̄(Y) = σ̄(X). This is what lets the global
        // approach use partition counts in place of quotas.
        let xs = [2.0, 5.0, 9.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * 12.5).collect();
        let a = rel_std_dev_pct(xs);
        let b = rel_std_dev_pct(ys);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn counts_variant_agrees_with_float_variant() {
        let counts = [4u64, 6, 5, 5, 8, 4];
        let a = rel_std_dev_counts_pct(&counts);
        let b = rel_std_dev_pct(counts.iter().map(|&c| c as f64));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ideal mean must be positive")]
    fn nonpositive_ideal_panics() {
        let _ = rel_std_dev_about_pct([1.0], 0.0);
    }
}

//! Welford's online algorithm for mean and variance.
//!
//! Numerically stable one-pass moments; supports merging two accumulators
//! (Chan et al.), which the experiment harness uses to combine runs computed
//! on worker threads.

/// Streaming mean/variance accumulator.
///
/// ```
/// use domus_metrics::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.variance_population(), 4.0);
/// assert_eq!(w.std_dev_population(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0.0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance `Σ(x−μ)²/n` (0.0 when empty).
    ///
    /// The paper measures the dispersion of *the complete set* of vnode
    /// quotas at an instant — a population, not a sample — so population
    /// variance is the default throughout the workspace.
    #[inline]
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance `Σ(x−μ)²/(n−1)` (0.0 when fewer than 2 observations).
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Sample standard deviation.
    pub fn std_dev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance combination). Exact up to floating-point rounding.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let w: Welford = xs.iter().copied().collect();
        let (mean, var) = naive_moments(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance_population() - var).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_benign() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance_population(), 0.0);
        assert_eq!(w.variance_sample(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance_population(), 0.0);
        assert_eq!(w.variance_sample(), 0.0);
        assert_eq!(w.min(), 5.0);
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let ys: Vec<f64> = (0..300).map(|i| (i as f64).cos() * 3.0 + 2.0).collect();
        let mut a: Welford = xs.iter().copied().collect();
        let b: Welford = ys.iter().copied().collect();
        a.merge(&b);
        let all: Welford = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance_population() - all.variance_population()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = xs;
        a.merge(&Welford::new());
        assert_eq!(a, xs);
        let mut e = Welford::new();
        e.merge(&xs);
        assert_eq!(e, xs);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let xs: Vec<f64> = [4.0, 7.0, 13.0, 16.0].iter().map(|x| x + offset).collect();
        let w: Welford = xs.iter().copied().collect();
        assert!((w.variance_population() - 22.5).abs() < 1e-6, "var={}", w.variance_population());
    }

    #[test]
    fn sample_variance_uses_n_minus_1() {
        let w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((w.variance_sample() - 1.0).abs() < 1e-12);
        assert!((w.variance_population() - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! Dependency-free ASCII line plots.
//!
//! Each figure reproduction prints an ASCII rendition next to its CSV so
//! the curve *shapes* (the reproduction criterion — see DESIGN.md §4) can be
//! checked straight from a terminal, without a plotting toolchain.

use crate::series::Series;
use std::fmt::Write as _;

/// Glyphs assigned to successive series in a plot.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '~', '='];

/// Configuration for an ASCII plot.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Plot-area width in columns (excluding the y-axis gutter).
    pub width: usize,
    /// Plot-area height in rows.
    pub height: usize,
    /// Optional fixed y range; autoscaled when `None`.
    pub y_range: Option<(f64, f64)>,
    /// Axis titles.
    pub x_label: String,
    /// Y-axis label printed above the plot.
    pub y_label: String,
}

impl Default for PlotConfig {
    fn default() -> Self {
        Self {
            width: 72,
            height: 20,
            y_range: None,
            x_label: String::new(),
            y_label: String::new(),
        }
    }
}

/// Renders `series` as a multi-curve ASCII plot.
///
/// Points are binned into character cells; later series overwrite earlier
/// ones on collisions (legend order = paper legend order, so the primary
/// curve should be listed last if overlap matters).
pub fn ascii_plot(series: &[Series], cfg: &PlotConfig) -> String {
    let mut out = String::new();
    if series.iter().all(Series::is_empty) {
        return "(no data)\n".to_string();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &x in &s.x {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
        }
        for &y in &s.y {
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if let Some((lo, hi)) = cfg.y_range {
        y_min = lo;
        y_max = hi;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }

    let mut grid = vec![vec![' '; cfg.width]; cfg.height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (&x, &y) in s.x.iter().zip(&s.y) {
            let cx = ((x - x_min) / (x_max - x_min) * (cfg.width - 1) as f64).round() as usize;
            let fy = (y - y_min) / (y_max - y_min);
            if !(0.0..=1.0).contains(&fy) {
                continue; // outside a fixed y range
            }
            let cy = ((1.0 - fy) * (cfg.height - 1) as f64).round() as usize;
            grid[cy.min(cfg.height - 1)][cx.min(cfg.width - 1)] = glyph;
        }
    }

    if !cfg.y_label.is_empty() {
        let _ = writeln!(out, "{}", cfg.y_label);
    }
    let gutter = 9;
    for (ri, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * ri as f64 / (cfg.height - 1) as f64;
        let label = if ri == 0 || ri == cfg.height - 1 || ri == (cfg.height - 1) / 2 {
            format!("{y_here:>8.2}")
        } else {
            " ".repeat(8)
        };
        let _ = writeln!(out, "{label}|{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(gutter - 1), "-".repeat(cfg.width));
    let x_axis = format!(
        "{}{:<width$.0}{:>width2$.0}",
        " ".repeat(gutter),
        x_min,
        x_max,
        width = cfg.width / 2,
        width2 = cfg.width - cfg.width / 2
    );
    let _ = writeln!(out, "{x_axis}");
    if !cfg.x_label.is_empty() {
        let pad = gutter + cfg.width.saturating_sub(cfg.x_label.chars().count()) / 2;
        let _ = writeln!(out, "{}{}", " ".repeat(pad), cfg.x_label);
    }
    let _ = writeln!(out);
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Series {
        let x: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|x| x.sqrt()).collect();
        Series::new("sqrt", x, y)
    }

    #[test]
    fn plot_contains_legend_and_axis() {
        let s = demo_series();
        let cfg =
            PlotConfig { x_label: "n".into(), y_label: "sqrt(n)".into(), ..Default::default() };
        let p = ascii_plot(&[s], &cfg);
        assert!(p.contains("sqrt"));
        assert!(p.contains('*'));
        assert!(p.contains('+'), "axis rule");
    }

    #[test]
    fn empty_series_is_handled() {
        let s = Series::new("empty", vec![], vec![]);
        let p = ascii_plot(&[s], &PlotConfig::default());
        assert_eq!(p, "(no data)\n");
    }

    #[test]
    fn fixed_y_range_clips_out_of_range_points() {
        let s = Series::new("s", vec![1.0, 2.0], vec![0.5, 100.0]);
        let cfg = PlotConfig { y_range: Some((0.0, 1.0)), ..Default::default() };
        let p = ascii_plot(&[s], &cfg);
        // The 100.0 point is outside the fixed range and must be dropped,
        // not wrapped somewhere bogus.
        assert!(p.lines().count() > 5);
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let a = Series::new("a", vec![1.0, 2.0], vec![1.0, 2.0]);
        let b = Series::new("b", vec![1.0, 2.0], vec![2.0, 1.0]);
        let p = ascii_plot(&[a, b], &PlotConfig::default());
        assert!(p.contains("* a"));
        assert!(p.contains("o b"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series::new("c", vec![1.0, 2.0, 3.0], vec![5.0, 5.0, 5.0]);
        let p = ascii_plot(&[s], &PlotConfig::default());
        assert!(!p.contains("NaN"));
    }
}

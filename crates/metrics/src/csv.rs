//! Minimal CSV emission for experiment results.
//!
//! Only what the harness needs: header + numeric rows, RFC-4180 quoting for
//! the (rare) textual cells. Writing goes through any `io::Write`, so tests
//! target in-memory buffers and the harness targets `results/*.csv`.

use crate::series::Series;
use std::io::{self, Write};

/// Quotes a cell per RFC 4180 when needed.
fn quote(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Writes a header row followed by data rows.
pub fn write_rows<W: Write>(
    mut w: W,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    writeln!(w, "{}", header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(w, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","))?;
    }
    Ok(())
}

/// Writes a family of curves sharing one x grid as columns:
/// `x, <name-of-series-1>, <name-of-series-2>, ...`.
///
/// # Panics
/// Panics if the series do not share an identical x grid.
pub fn write_series_columns<W: Write>(w: W, x_name: &str, series: &[Series]) -> io::Result<()> {
    if series.is_empty() {
        return write_rows(w, &[x_name], std::iter::empty());
    }
    let x = &series[0].x;
    for s in series {
        assert_eq!(&s.x, x, "series '{}' has a different x grid", s.name);
    }
    let mut header: Vec<&str> = vec![x_name];
    header.extend(series.iter().map(|s| s.name.as_str()));
    let rows = (0..x.len()).map(|i| {
        let mut row = Vec::with_capacity(series.len() + 1);
        row.push(format!("{}", x[i]));
        row.extend(series.iter().map(|s| format!("{}", s.y[i])));
        row
    });
    write_rows(w, &header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_rules() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn writes_header_and_rows() {
        let mut buf = Vec::new();
        write_rows(&mut buf, &["a", "b"], vec![vec!["1".into(), "2".into()]]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn series_columns_share_grid() {
        let a = Series::new("ya", vec![1.0, 2.0], vec![0.5, 0.6]);
        let b = Series::new("yb", vec![1.0, 2.0], vec![0.7, 0.8]);
        let mut buf = Vec::new();
        write_series_columns(&mut buf, "x", &[a, b]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "x,ya,yb\n1,0.5,0.7\n2,0.6,0.8\n");
    }

    #[test]
    #[should_panic(expected = "different x grid")]
    fn mismatched_grids_panic() {
        let a = Series::new("ya", vec![1.0], vec![0.5]);
        let b = Series::new("yb", vec![2.0], vec![0.7]);
        let mut buf = Vec::new();
        let _ = write_series_columns(&mut buf, "x", &[a, b]);
    }

    #[test]
    fn empty_series_list_writes_header_only() {
        let mut buf = Vec::new();
        write_series_columns(&mut buf, "x", &[]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x\n");
    }
}

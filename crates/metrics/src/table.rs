//! Plain-text tables for harness output.
//!
//! The experiment harness prints, for every figure, the same rows/series the
//! paper reports; this module renders them with aligned columns so the
//! output is directly quotable in EXPERIMENTS.md.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// ```
/// use domus_metrics::table::Table;
/// let mut t = Table::new(&["V", "σ̄(Qv) %"]);
/// t.row(&["128".into(), "9.61".into()]);
/// let s = t.render();
/// assert!(s.contains("σ̄(Qv)"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// A table with the given column headers; first column left-aligned,
    /// the rest right-aligned (the common numeric layout).
    pub fn new(headers: &[&str]) -> Self {
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new(), aligns }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    /// Panics if `aligns` length differs from the header count.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity != header arity");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with unicode column rules and a header separator.
    pub fn render(&self) -> String {
        // Width must be measured in chars: headers contain σ̄ etc.
        let width = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(width(cell));
            }
        }
        let mut out = String::new();
        let fmt_cell = |cell: &str, w: usize, a: Align| -> String {
            let pad = w - width(cell).min(w);
            match a {
                Align::Left => format!("{cell}{}", " ".repeat(pad)),
                Align::Right => format!("{}{cell}", " ".repeat(pad)),
            }
        };
        // Header
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| fmt_cell(h, widths[i], Align::Left))
            .collect();
        let _ = writeln!(out, "| {} |", header_line.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", rule.join("-|-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| fmt_cell(c, widths[i], self.aligns[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }
}

/// Formats an `f64` with `prec` decimals, using `-` for NaN.
pub fn num(x: f64, prec: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.prec$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "123.45".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal display width.
        let w0 = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w0), "{s}");
        assert!(lines[3].contains("123.45"));
    }

    #[test]
    fn unicode_headers_align() {
        let mut t = Table::new(&["V", "σ̄(Qv) %"]);
        t.row(&["8".into(), "0.00".into()]);
        t.row(&["1024".into(), "10.31".into()]);
        let s = t.render();
        assert!(s.contains("10.31"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new(&["x", "y"]);
        t.row_display(&[1, 2]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}

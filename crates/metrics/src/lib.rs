//! # domus-metrics
//!
//! Statistics and reporting for the `domus` workspace.
//!
//! The paper's entire evaluation is expressed through one family of metrics:
//! the *relative standard deviation* of a set of quotas against an (ideal)
//! mean — `σ̄(Qv)` for vnodes (figures 4, 6, 9), `σ̄(Qg)` for groups
//! (figure 8), `σ̄(Qn)` for physical nodes (figure 9) — always reported in
//! percent and averaged over 100 simulation runs. This crate provides:
//!
//! * [`welford`] — numerically stable streaming mean/variance with merging,
//!   used both for per-point run-averaging and inside hot loops;
//! * [`relstd`] — the paper's quality metric, with both "measured mean" and
//!   "ideal mean" variants (figure 8 explicitly uses the ideal `1/G`);
//! * [`series`] — (x, y) experiment series and a multi-run accumulator that
//!   produces mean ± stddev curves from seeded runs;
//! * [`table`] — plain-text tables for harness output;
//! * [`plot`] — dependency-free ASCII line plots so every figure can be
//!   eyeballed straight from the terminal;
//! * [`csv`] — hand-rolled CSV emission (kept off `serde` on purpose: the
//!   format is trivial and the approved dependency list is small).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod plot;
pub mod relstd;
pub mod series;
pub mod table;
pub mod welford;

pub use relstd::{rel_std_dev_about_pct, rel_std_dev_pct};
pub use series::{MultiRunSeries, Series};
pub use table::Table;
pub use welford::Welford;

//! Experiment series: (x, y) curves and multi-run aggregation.
//!
//! Every figure in the paper is a family of curves "metric vs number of
//! vnodes/nodes", each curve the average of 100 seeded runs. [`Series`] is
//! one finished curve; [`MultiRunSeries`] accumulates per-x observations
//! across runs and yields the mean curve (plus dispersion, which the paper
//! doesn't plot but EXPERIMENTS.md records).

use crate::welford::Welford;

/// A named, finished (x, y) curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"(Pmin,Vmin)=(32,32)"`).
    pub name: String,
    /// X coordinates (e.g. overall number of vnodes).
    pub x: Vec<f64>,
    /// Y coordinates (e.g. σ̄(Qv) in percent).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series from parallel x/y vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn new(name: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series x/y length mismatch");
        Self { name: name.into(), x, y }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Y value at the largest x (the "end state" — used by figure 5's θ).
    pub fn last_y(&self) -> Option<f64> {
        self.y.last().copied()
    }

    /// Mean of y over the x range `[from_x, to_x]` inclusive.
    pub fn mean_y_in(&self, from_x: f64, to_x: f64) -> f64 {
        let mut w = Welford::new();
        for (&x, &y) in self.x.iter().zip(&self.y) {
            if x >= from_x && x <= to_x {
                w.push(y);
            }
        }
        w.mean()
    }

    /// Largest y value (and its x) — used to locate figure 8's spikes.
    pub fn max_point(&self) -> Option<(f64, f64)> {
        self.x
            .iter()
            .zip(&self.y)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in series"))
            .map(|(&x, &y)| (x, y))
    }
}

/// Accumulates one y observation per (run, x-index) and produces the
/// run-averaged curve, exactly like the paper's "averages of 100 runs".
#[derive(Debug, Clone)]
pub struct MultiRunSeries {
    name: String,
    x: Vec<f64>,
    acc: Vec<Welford>,
}

impl MultiRunSeries {
    /// A new accumulator over the fixed x grid `x`.
    pub fn new(name: impl Into<String>, x: Vec<f64>) -> Self {
        let acc = vec![Welford::new(); x.len()];
        Self { name: name.into(), x, acc }
    }

    /// Convenience: x grid `1..=n` (the paper's "after the creation of each
    /// vnode" sampling).
    pub fn over_counts(name: impl Into<String>, n: usize) -> Self {
        Self::new(name, (1..=n).map(|i| i as f64).collect())
    }

    /// Records one run's y value at x index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range of the x grid.
    #[inline]
    pub fn record(&mut self, i: usize, y: f64) {
        self.acc[i].push(y);
    }

    /// Records a whole run (one y per x point, in order).
    ///
    /// # Panics
    /// Panics if `ys` length differs from the x grid.
    pub fn record_run(&mut self, ys: &[f64]) {
        assert_eq!(ys.len(), self.x.len(), "run length != x grid");
        for (i, &y) in ys.iter().enumerate() {
            self.acc[i].push(y);
        }
    }

    /// Merges another accumulator over the same grid (for worker threads).
    ///
    /// # Panics
    /// Panics if the x grids differ.
    pub fn merge(&mut self, other: &MultiRunSeries) {
        assert_eq!(self.x, other.x, "cannot merge MultiRunSeries over different grids");
        for (a, b) in self.acc.iter_mut().zip(&other.acc) {
            a.merge(b);
        }
    }

    /// Number of runs recorded so far (at the first grid point).
    pub fn runs(&self) -> u64 {
        self.acc.first().map_or(0, Welford::count)
    }

    /// The run-averaged curve.
    pub fn mean_series(&self) -> Series {
        Series::new(self.name.clone(), self.x.clone(), self.acc.iter().map(Welford::mean).collect())
    }

    /// The per-point across-run standard deviation curve (sample σ).
    pub fn std_series(&self) -> Series {
        Series::new(
            format!("{} (σ across runs)", self.name),
            self.x.clone(),
            self.acc.iter().map(Welford::std_dev_sample).collect(),
        )
    }

    /// Legend label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The x grid.
    pub fn x(&self) -> &[f64] {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_series_averages_runs() {
        let mut m = MultiRunSeries::over_counts("t", 3);
        m.record_run(&[1.0, 2.0, 3.0]);
        m.record_run(&[3.0, 4.0, 5.0]);
        let s = m.mean_series();
        assert_eq!(s.x, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.y, vec![2.0, 3.0, 4.0]);
        assert_eq!(m.runs(), 2);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut a = MultiRunSeries::over_counts("t", 4);
        let mut b = MultiRunSeries::over_counts("t", 4);
        a.record_run(&[1.0, 1.0, 2.0, 8.0]);
        b.record_run(&[3.0, 5.0, 4.0, 0.0]);
        b.record_run(&[5.0, 3.0, 0.0, 4.0]);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut seq = MultiRunSeries::over_counts("t", 4);
        seq.record_run(&[1.0, 1.0, 2.0, 8.0]);
        seq.record_run(&[3.0, 5.0, 4.0, 0.0]);
        seq.record_run(&[5.0, 3.0, 0.0, 4.0]);
        assert_eq!(merged.mean_series(), seq.mean_series());
        assert_eq!(merged.runs(), 3);
    }

    #[test]
    fn last_y_and_mean_window() {
        let s = Series::new("s", vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.last_y(), Some(40.0));
        assert_eq!(s.mean_y_in(2.0, 3.0), 25.0);
        assert_eq!(s.mean_y_in(5.0, 9.0), 0.0, "empty window yields 0 mean");
    }

    #[test]
    fn max_point_finds_spike() {
        let s = Series::new("s", vec![1.0, 2.0, 3.0], vec![5.0, 50.0, 12.0]);
        assert_eq!(s.max_point(), Some((2.0, 50.0)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn merge_different_grids_panics() {
        let mut a = MultiRunSeries::over_counts("a", 2);
        let b = MultiRunSeries::over_counts("b", 3);
        a.merge(&b);
    }
}

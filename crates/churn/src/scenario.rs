//! Scenario composition: processes → one deterministic event stream.

use crate::event::{ChurnEvent, EventStream};
use crate::process::{Capacity, Lifetime, Process};
use domus_sim::SimTime;
use domus_util::SeedSequence;

/// A churn scenario: a horizon plus any number of composable event
/// processes. [`Scenario::build`] compiles it — for a given seed — into
/// one flat [`EventStream`] that every backend replays identically.
///
/// ```
/// use domus_churn::{Capacity, Lifetime, Process, Scenario};
/// use domus_sim::SimTime;
///
/// let scenario = Scenario::new(SimTime::millis(60_000))
///     .with(Process::InitialFleet { nodes: 16, capacity: Capacity::Fixed(2) })
///     .with(Process::Poisson {
///         rate_per_s: 2.0,
///         lifetime: Lifetime::Exponential { mean: SimTime::millis(20_000) },
///         capacity: Capacity::Fixed(1),
///     });
/// let stream = scenario.build(2004);
/// assert_eq!(stream.fingerprint(), scenario.build(2004).fingerprint());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    horizon: SimTime,
    processes: Vec<Process>,
}

impl Scenario {
    /// An empty scenario observed over `[0, horizon)`.
    pub fn new(horizon: SimTime) -> Self {
        assert!(horizon > SimTime::ZERO, "scenario horizon must be positive");
        Self { horizon, processes: Vec::new() }
    }

    /// Adds a process (builder style).
    pub fn with(mut self, process: Process) -> Self {
        self.processes.push(process);
        self
    }

    /// The observation horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The composed processes, in addition order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Compiles the scenario into a time-sorted event stream.
    ///
    /// Each process draws from its own `(seed, label, index)` RNG stream,
    /// so the output is a pure function of `(scenario, seed)`: the same
    /// seed yields a byte-identical stream no matter which engine will
    /// replay it, and adding a process never perturbs the draws of the
    /// others.
    pub fn build(&self, seed: u64) -> EventStream {
        let seeds = SeedSequence::new(seed);
        let mut events: Vec<ChurnEvent> = Vec::new();
        for (i, p) in self.processes.iter().enumerate() {
            let mut rng = seeds.stream(p.label(), i as u64);
            events.extend(p.generate(i as u32, &mut rng, self.horizon));
        }
        // Stable sort: ties keep (process, emission) order — deterministic.
        events.sort_by_key(|e| e.at);
        EventStream::new(events, self.horizon)
    }

    /// A ready-made mixed-workload scenario exercising every process
    /// kind: a heterogeneous base fleet, sustained heavy-tailed Poisson
    /// churn, a diurnal wave, a mid-run flash crowd, and a correlated
    /// failure at 70% of the horizon. `intensity` scales the event volume
    /// (1.0 ≈ a few thousand events over a 10-minute horizon).
    pub fn mixed(intensity: f64) -> Self {
        assert!(intensity > 0.0, "intensity must be positive");
        let horizon = SimTime::millis(600_000); // 10 simulated minutes
        Scenario::new(horizon)
            .with(Process::InitialFleet {
                nodes: 24,
                capacity: Capacity::Weighted(vec![(1, 60), (2, 30), (4, 10)]),
            })
            .with(Process::Poisson {
                rate_per_s: 2.0 * intensity,
                lifetime: Lifetime::Pareto { min: SimTime::millis(30_000), alpha: 1.5 },
                capacity: Capacity::Uniform { lo: 1, hi: 3 },
            })
            .with(Process::DiurnalWave {
                period: horizon,
                peak_rate_per_s: 1.5 * intensity,
                trough_rate_per_s: 0.1 * intensity,
                lifetime: Lifetime::Exponential { mean: SimTime::millis(90_000) },
                capacity: Capacity::Fixed(1),
            })
            .with(Process::FlashCrowd {
                at: SimTime::millis(300_000),
                joins: (48.0 * intensity) as u32,
                spread: SimTime::millis(5_000),
                capacity: Capacity::Fixed(1),
                stay: Lifetime::Exponential { mean: SimTime::millis(60_000) },
            })
            .with(Process::GroupFailure { at: SimTime::millis(420_000), fraction: 0.2 })
    }

    /// A ready-made durability scenario for replication studies: a stable
    /// base fleet under sustained Poisson churn with **ungraceful**
    /// failures layered on — memoryless single-node crashes throughout
    /// plus a correlated crash storm at 70% of the horizon. `intensity`
    /// scales the event volume.
    pub fn crashy(intensity: f64) -> Self {
        assert!(intensity > 0.0, "intensity must be positive");
        let horizon = SimTime::millis(600_000); // 10 simulated minutes
        Scenario::new(horizon)
            .with(Process::InitialFleet {
                nodes: 24,
                capacity: Capacity::Weighted(vec![(1, 70), (2, 30)]),
            })
            .with(Process::Poisson {
                rate_per_s: 1.0 * intensity,
                lifetime: Lifetime::Pareto { min: SimTime::millis(60_000), alpha: 1.5 },
                capacity: Capacity::Uniform { lo: 1, hi: 2 },
            })
            .with(Process::RandomCrashes { rate_per_s: 0.05 * intensity })
            .with(Process::CrashStorm {
                at: SimTime::millis(420_000),
                crashes: (3.0 * intensity).ceil() as u32,
                spread: SimTime::millis(10_000),
            })
    }

    /// A ready-made WAL-durability scenario for rejoin studies: a
    /// fixed-capacity fleet under mild graceful churn, with repeated
    /// crash-then-rejoin cycles layered on — each rank-selected victim
    /// crashes ungracefully and comes back 45 simulated seconds later
    /// (1.5 default windows, so the quorum gap is observable) by
    /// replaying its write-ahead log. `intensity` scales the cycle
    /// count.
    pub fn durability(intensity: f64) -> Self {
        assert!(intensity > 0.0, "intensity must be positive");
        let horizon = SimTime::millis(600_000); // 10 simulated minutes
        Scenario::new(horizon)
            .with(Process::InitialFleet { nodes: 16, capacity: Capacity::Fixed(2) })
            .with(Process::Poisson {
                rate_per_s: 0.5 * intensity,
                lifetime: Lifetime::Exponential { mean: SimTime::millis(120_000) },
                capacity: Capacity::Fixed(1),
            })
            .with(Process::CrashRejoin {
                at: SimTime::millis(120_000),
                cycles: (6.0 * intensity).ceil() as u32,
                spread: SimTime::millis(300_000),
                downtime: SimTime::millis(45_000),
            })
    }

    /// A ready-made control-plane scenario for
    /// `ChurnDriver::with_router` studies: a fixed-capacity fleet under
    /// mild Poisson arrivals, one node degrading to a quarter of its
    /// declared capacity at a third of the horizon (the hot spot the
    /// capacity-weighted detector must catch and shed), and one
    /// **silent** stall at two thirds (the failure only lease expiry
    /// can notice — no crash notification is ever delivered). The
    /// 180 s horizon is six default 30 s windows, so the default 75 s
    /// lease TTL spans 2.5 ticks: the stall's leases lapse two windows
    /// after its last renewal and the failover lands before the
    /// horizon.
    pub fn hotspot_failover() -> Self {
        let horizon = SimTime::millis(180_000);
        Scenario::new(horizon)
            .with(Process::InitialFleet { nodes: 12, capacity: Capacity::Fixed(2) })
            .with(Process::Poisson {
                rate_per_s: 0.1,
                lifetime: Lifetime::Forever,
                capacity: Capacity::Fixed(1),
            })
            .with(Process::Degrade { at: SimTime::millis(60_000), factor: 0.25 })
            .with(Process::SilentStalls {
                at: SimTime::millis(120_000),
                stalls: 1,
                spread: SimTime::ZERO,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn build_is_deterministic_and_sorted() {
        let s = Scenario::mixed(0.5);
        let a = s.build(11);
        let b = s.build(11);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), s.build(12).fingerprint(), "different seed, different stream");
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn mixed_scenario_exercises_every_event_kind() {
        let stream = Scenario::mixed(1.0).build(2004);
        let mut joins = 0;
        let mut leaves = 0;
        let mut fails = 0;
        let mut het = false;
        for e in stream.events() {
            match e.kind {
                EventKind::Join { vnodes, .. } => {
                    joins += 1;
                    het |= vnodes > 1;
                }
                EventKind::Leave { .. } => leaves += 1,
                EventKind::FailSlice { .. } => fails += 1,
                other => panic!("mixed scenario emits no {other:?}"),
            }
        }
        assert!(joins > 500, "mixed scenario is join-heavy ({joins})");
        assert!(leaves > 200, "sustained churn produces departures ({leaves})");
        assert_eq!(fails, 1);
        assert!(het, "weighted capacities must produce multi-vnode arrivals");
    }

    #[test]
    fn crashy_scenario_mixes_graceful_and_ungraceful_departures() {
        let stream = Scenario::crashy(1.0).build(2004);
        let mut joins = 0;
        let mut leaves = 0;
        let mut crashes = 0;
        for e in stream.events() {
            match e.kind {
                EventKind::Join { .. } => joins += 1,
                EventKind::Leave { .. } => leaves += 1,
                EventKind::Crash { .. } | EventKind::CrashRank { .. } => crashes += 1,
                other => panic!("crashy scenario emits no {other:?}"),
            }
        }
        assert!(joins > 200, "{joins} joins");
        assert!(leaves > 50, "{leaves} leaves");
        // ~0.05/s over 600 s plus the storm: ≈ 33 crashes expected.
        assert!((10..=80).contains(&crashes), "{crashes} crashes");
        assert_eq!(stream.fingerprint(), Scenario::crashy(1.0).build(2004).fingerprint());
    }

    #[test]
    fn hotspot_failover_scenario_carries_one_stall_and_one_degrade() {
        let stream = Scenario::hotspot_failover().build(2004);
        let stalls =
            stream.events().iter().filter(|e| matches!(e.kind, EventKind::StallRank { .. }));
        let degrades =
            stream.events().iter().filter(|e| matches!(e.kind, EventKind::DegradeRank { .. }));
        assert_eq!(stalls.count(), 1);
        assert_eq!(degrades.count(), 1);
        assert_eq!(
            stream.fingerprint(),
            Scenario::hotspot_failover().build(2004).fingerprint(),
            "stall/degrade events are part of the fingerprint contract"
        );
    }

    #[test]
    fn durability_scenario_pairs_every_crash_with_a_rejoin() {
        let stream = Scenario::durability(1.0).build(2004);
        let crashes = stream
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CrashRank { .. }))
            .count();
        let rejoins = stream
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RejoinRank { .. }))
            .count();
        assert!(crashes >= 1, "{crashes} crashes");
        // Every crash before `horizon − downtime` is answered by a rejoin.
        assert!(rejoins >= 1 && rejoins <= crashes, "{rejoins} rejoins for {crashes} crashes");
        assert_eq!(
            stream.fingerprint(),
            Scenario::durability(1.0).build(2004).fingerprint(),
            "rejoin events are part of the fingerprint contract"
        );
    }

    #[test]
    fn adding_a_process_leaves_other_streams_untouched() {
        let base = Scenario::new(SimTime::millis(50_000)).with(Process::Poisson {
            rate_per_s: 4.0,
            lifetime: Lifetime::Forever,
            capacity: Capacity::Fixed(1),
        });
        let extended =
            base.clone().with(Process::GroupFailure { at: SimTime::millis(25_000), fraction: 0.5 });
        let only_joins: Vec<_> = extended
            .build(5)
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Join { .. }))
            .copied()
            .collect();
        assert_eq!(only_joins, base.build(5).events().to_vec());
    }
}

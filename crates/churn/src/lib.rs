//! # domus-churn
//!
//! A deterministic churn & failure scenario engine for the `domus` DHT
//! workspace.
//!
//! The paper evaluates its cluster model under monotone growth and shrink
//! sequences; its central claim, however — that group-local balancing
//! keeps the DHT balanced *dynamically* — is a claim about behaviour
//! under sustained, interleaved membership churn. This crate makes that
//! measurable:
//!
//! * [`process`] — composable membership-event generators: Poisson
//!   join/leave with exponential or heavy-tailed Pareto node lifetimes,
//!   flash-crowd bursts, diurnal intensity waves, correlated mass
//!   failure, heterogeneous-capacity arrivals, plus **ungraceful crash**
//!   processes (memoryless single-node crashes and correlated crash
//!   storms) whose victims lose their data unless the overlay replicated
//!   it.
//! * [`scenario`] — [`Scenario`]: processes + horizon, compiled by seed
//!   into one flat [`EventStream`]. The stream is engine-agnostic and a
//!   pure function of `(scenario, seed)`, so the global approach, the
//!   local approach and Consistent Hashing replay the *identical* event
//!   sequence — [`EventStream::fingerprint`] asserts it.
//! * [`event`] — the event vocabulary and the compiled stream.
//! * [`driver`] — [`ChurnDriver`]: replays a stream into any
//!   [`domus_core::DhtEngine`] through the streaming event surface,
//!   pricing every operation in-line with `domus-sim`'s
//!   [`domus_sim::EventPricer`] sink (no report materialisation on the
//!   hot path), samples [`domus_core::BalanceSnapshot`]s per time
//!   window, and (optionally) threads a [`domus_kv::KvService`] — or a
//!   [`domus_kv::ReplicatedStore`] at a chosen replication factor —
//!   through the run to measure keys migrated, lookup correctness,
//!   per-window availability, and (replicated) per-window durability
//!   (`keys_lost`/`keys_total`) plus quorum-read availability with an
//!   anti-entropy repair pass at every window close. With
//!   [`ChurnDriver::with_router`] the `domus-route` control plane rides
//!   the replay: leases grant/renew/lapse on the sim clock, silent
//!   stalls ([`EventKind::StallRank`]) fail over via lease expiry,
//!   capacity degradations ([`EventKind::DegradeRank`]) trip the
//!   hot-spot detector and shed vnodes until rebalanced — all
//!   byte-deterministic, sampled into per-window route columns.
//!
//! ```
//! use domus_churn::{Capacity, ChurnDriver, DriverConfig, Lifetime, Process, Scenario};
//! use domus_core::{DhtConfig, LocalDht};
//! use domus_hashspace::HashSpace;
//! use domus_sim::SimTime;
//!
//! let scenario = Scenario::new(SimTime::millis(60_000))
//!     .with(Process::InitialFleet { nodes: 8, capacity: Capacity::Fixed(1) })
//!     .with(Process::FlashCrowd {
//!         at: SimTime::millis(30_000),
//!         joins: 16,
//!         spread: SimTime::millis(2_000),
//!         capacity: Capacity::Fixed(1),
//!         stay: Lifetime::Forever,
//!     });
//! let stream = scenario.build(2004);
//!
//! let engine = LocalDht::with_seed(DhtConfig::new(HashSpace::full(), 8, 4).unwrap(), 1);
//! let outcome = ChurnDriver::new(engine, DriverConfig::default()).run(&stream);
//! assert_eq!(outcome.totals.joins, 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod event;
pub mod process;
pub mod scenario;

pub use driver::{ChurnDriver, ChurnOutcome, DriverConfig, RunTotals, WindowSample};
pub use event::{ChurnEvent, EventKind, EventStream, NodeTag};
pub use process::{Capacity, Lifetime, Process};
pub use scenario::Scenario;

//! Composable membership-event processes.
//!
//! Each [`Process`] is a generator of [`ChurnEvent`]s over a finite
//! horizon, driven by its own seeded RNG stream; a [`crate::Scenario`]
//! merges several of them into one [`crate::EventStream`]. The menagerie
//! covers the shapes the churn literature benchmarks against: memoryless
//! Poisson join/leave with configurable node-lifetime distributions
//! (exponential and heavy-tailed Pareto — measured P2P lifetimes are
//! famously heavy-tailed), flash-crowd bursts, diurnal intensity waves
//! (non-homogeneous Poisson via thinning), correlated rack failure, and
//! heterogeneous-capacity arrivals.

use crate::event::{ChurnEvent, EventKind, NodeTag};
use domus_sim::SimTime;
use domus_util::{DomusRng, Xoshiro256pp};

/// How long an arrived node stays before departing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Memoryless sessions with the given mean.
    Exponential {
        /// Mean session length.
        mean: SimTime,
    },
    /// Pareto (heavy-tailed) sessions: most nodes leave quickly, a few
    /// stay very long — the empirical shape of P2P session lengths.
    Pareto {
        /// Minimum session length (the distribution's scale `x_m`).
        min: SimTime,
        /// Tail exponent `α > 0`; smaller = heavier tail.
        alpha: f64,
    },
    /// Every session lasts exactly this long.
    Fixed(SimTime),
    /// Nodes never leave on their own (only failures remove them).
    Forever,
}

impl Lifetime {
    /// Draws one session length; `None` means the node stays past any
    /// horizon.
    pub fn draw<R: DomusRng>(&self, rng: &mut R) -> Option<SimTime> {
        match *self {
            Lifetime::Exponential { mean } => {
                let u = rng.next_f64();
                Some(secs_to_simtime(-(1.0 - u).ln() * simtime_to_secs(mean)))
            }
            Lifetime::Pareto { min, alpha } => {
                assert!(alpha > 0.0, "Pareto tail exponent must be positive");
                let u = rng.next_f64();
                Some(secs_to_simtime(simtime_to_secs(min) / (1.0 - u).powf(1.0 / alpha)))
            }
            Lifetime::Fixed(t) => Some(t),
            Lifetime::Forever => None,
        }
    }
}

/// How many vnodes an arriving node enrolls (its capacity share).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capacity {
    /// Every arrival enrolls the same count.
    Fixed(u32),
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Smallest capacity, ≥ 1.
        lo: u32,
        /// Largest capacity.
        hi: u32,
    },
    /// Discrete weighted classes `(vnodes, weight)` — e.g. a cluster of
    /// mostly small nodes with a few big ones.
    Weighted(Vec<(u32, u32)>),
}

impl Capacity {
    /// Draws one arrival's capacity (always ≥ 1).
    pub fn draw<R: DomusRng>(&self, rng: &mut R) -> u32 {
        match self {
            Capacity::Fixed(n) => (*n).max(1),
            Capacity::Uniform { lo, hi } => {
                assert!(lo <= hi && *lo >= 1, "capacity range must be 1 ≤ lo ≤ hi");
                lo + rng.next_below((hi - lo + 1) as u64) as u32
            }
            Capacity::Weighted(classes) => {
                let total: u64 = classes.iter().map(|&(_, w)| w as u64).sum();
                assert!(total > 0, "weighted capacity needs positive total weight");
                let mut pick = rng.next_below(total);
                for &(v, w) in classes {
                    if pick < w as u64 {
                        return v.max(1);
                    }
                    pick -= w as u64;
                }
                unreachable!("pick < total is exhausted by the classes")
            }
        }
    }
}

/// One composable event process.
#[derive(Debug, Clone, PartialEq)]
pub enum Process {
    /// `nodes` arrivals at t = 0 that never leave on their own — the
    /// steady base population a scenario churns around.
    InitialFleet {
        /// Number of arrivals.
        nodes: u32,
        /// Capacity of each arrival.
        capacity: Capacity,
    },
    /// Homogeneous Poisson arrivals; each arrival departs after a drawn
    /// lifetime (if it falls within the horizon).
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
        /// Session-length distribution.
        lifetime: Lifetime,
        /// Capacity distribution.
        capacity: Capacity,
    },
    /// A burst of `joins` arrivals spread uniformly over
    /// `[at, at + spread)` — a flash crowd. Members stay per `stay`.
    FlashCrowd {
        /// Burst start.
        at: SimTime,
        /// Arrivals in the burst.
        joins: u32,
        /// Burst width (0 = all at one instant).
        spread: SimTime,
        /// Capacity distribution of burst members.
        capacity: Capacity,
        /// How long burst members stay.
        stay: Lifetime,
    },
    /// Non-homogeneous Poisson arrivals whose intensity oscillates
    /// sinusoidally between `trough_rate_per_s` and `peak_rate_per_s`
    /// with the given period — a day/night load wave. Generated by
    /// thinning a homogeneous process at the peak rate.
    DiurnalWave {
        /// Oscillation period.
        period: SimTime,
        /// Intensity at the wave crest (arrivals per second).
        peak_rate_per_s: f64,
        /// Intensity at the wave trough (arrivals per second).
        trough_rate_per_s: f64,
        /// Session-length distribution.
        lifetime: Lifetime,
        /// Capacity distribution.
        capacity: Capacity,
    },
    /// One correlated mass failure at `at`: `fraction` of the then-live
    /// vnode roster departs at once.
    GroupFailure {
        /// Failure instant.
        at: SimTime,
        /// Fraction of the live roster lost, in `(0, 1]`.
        fraction: f64,
    },
    /// Memoryless **crash** failures: at Poisson instants a rank-selected
    /// live node crashes ungracefully with all its vnodes
    /// ([`EventKind::CrashRank`]) — whatever it stored is lost unless the
    /// overlay replicated it. The steady "disks die" background process of
    /// a durability study.
    RandomCrashes {
        /// Mean crashes per second.
        rate_per_s: f64,
    },
    /// A correlated crash wave: `crashes` rank-selected nodes crash
    /// ungracefully, spread uniformly over `[at, at + spread)` — the
    /// "rack loses power" shape, but without the graceful drain of
    /// [`Process::GroupFailure`].
    CrashStorm {
        /// Wave start.
        at: SimTime,
        /// Nodes crashed by the wave.
        crashes: u32,
        /// Wave width (0 = all at one instant).
        spread: SimTime,
    },
    /// Crash-then-rejoin cycles: `cycles` rank-selected nodes crash
    /// ungracefully, spread uniformly over `[at, at + spread)`, and each
    /// crash is answered `downtime` later by the **rejoin** of a
    /// rank-selected crashed node ([`EventKind::RejoinRank`]) — the node
    /// comes back at its crash-time size and replays its write-ahead log
    /// instead of being rebuilt from replicas. The durability drill of a
    /// WAL study.
    CrashRejoin {
        /// Wave start.
        at: SimTime,
        /// Crash/rejoin pairs in the wave.
        cycles: u32,
        /// Wave width (0 = all crashes at one instant).
        spread: SimTime,
        /// How long each victim stays down before rejoining.
        downtime: SimTime,
    },
    /// `stalls` rank-selected nodes go **silently** unresponsive, spread
    /// uniformly over `[at, at + spread)` ([`EventKind::StallRank`]): no
    /// crash notification, no graceful drain — the cluster only notices
    /// through missed lease renewals, so recovery needs a control plane
    /// (`ChurnDriver::with_router`) and takes one lease TTL.
    SilentStalls {
        /// Wave start.
        at: SimTime,
        /// Nodes stalled by the wave.
        stalls: u32,
        /// Wave width (0 = all at one instant).
        spread: SimTime,
    },
    /// One rank-selected node degrades at `at` to `factor` of its
    /// declared capacity ([`EventKind::DegradeRank`]) — the deterministic
    /// hot-spot injection the capacity-weighted detector must catch.
    Degrade {
        /// Degradation instant.
        at: SimTime,
        /// Remaining effective capacity, in `(0, 1]`.
        factor: f64,
    },
}

impl Process {
    /// The RNG-stream label of this process kind (stable across runs).
    pub fn label(&self) -> &'static str {
        match self {
            Process::InitialFleet { .. } => "initial-fleet",
            Process::Poisson { .. } => "poisson",
            Process::FlashCrowd { .. } => "flash-crowd",
            Process::DiurnalWave { .. } => "diurnal-wave",
            Process::GroupFailure { .. } => "group-failure",
            Process::RandomCrashes { .. } => "random-crashes",
            Process::CrashStorm { .. } => "crash-storm",
            Process::CrashRejoin { .. } => "crash-rejoin",
            Process::SilentStalls { .. } => "silent-stalls",
            Process::Degrade { .. } => "degrade",
        }
    }

    /// Generates this process's events for `[0, horizon)`. `process_index`
    /// namespaces the node tags; `rng` is the process's private stream.
    pub fn generate(
        &self,
        process_index: u32,
        rng: &mut Xoshiro256pp,
        horizon: SimTime,
    ) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        let mut seq = 0u32;
        let mut arrival = |out: &mut Vec<ChurnEvent>,
                           rng: &mut Xoshiro256pp,
                           at: SimTime,
                           capacity: &Capacity,
                           stay: &Lifetime| {
            let node = NodeTag::new(process_index, seq);
            seq += 1;
            let vnodes = capacity.draw(rng);
            out.push(ChurnEvent { at, kind: EventKind::Join { node, vnodes } });
            if let Some(life) = stay.draw(rng) {
                let depart = at + life;
                if depart < horizon {
                    out.push(ChurnEvent { at: depart, kind: EventKind::Leave { node } });
                }
            }
        };
        match self {
            Process::InitialFleet { nodes, capacity } => {
                for _ in 0..*nodes {
                    arrival(&mut out, rng, SimTime::ZERO, capacity, &Lifetime::Forever);
                }
            }
            Process::Poisson { rate_per_s, lifetime, capacity } => {
                assert!(*rate_per_s > 0.0, "Poisson rate must be positive");
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_gap(rng, *rate_per_s);
                    if t >= horizon {
                        break;
                    }
                    arrival(&mut out, rng, t, capacity, lifetime);
                }
            }
            Process::FlashCrowd { at, joins, spread, capacity, stay } => {
                let mut offsets: Vec<u64> = (0..*joins)
                    .map(|_| if spread.nanos() == 0 { 0 } else { rng.next_below(spread.nanos()) })
                    .collect();
                // Arrival order within the burst is time order.
                offsets.sort_unstable();
                for off in offsets {
                    let t = *at + SimTime(off);
                    if t < horizon {
                        arrival(&mut out, rng, t, capacity, stay);
                    }
                }
            }
            Process::DiurnalWave {
                period,
                peak_rate_per_s,
                trough_rate_per_s,
                lifetime,
                capacity,
            } => {
                assert!(
                    *peak_rate_per_s >= *trough_rate_per_s && *trough_rate_per_s >= 0.0,
                    "diurnal wave needs peak ≥ trough ≥ 0"
                );
                assert!(*peak_rate_per_s > 0.0, "diurnal wave needs a positive peak rate");
                let mut t = SimTime::ZERO;
                loop {
                    // Thinning (Lewis–Shedler): candidates at the peak
                    // rate, accepted with probability λ(t)/λ_peak.
                    t += exp_gap(rng, *peak_rate_per_s);
                    if t >= horizon {
                        break;
                    }
                    let phase = simtime_to_secs(t) / simtime_to_secs(*period);
                    let wave = 0.5 * (1.0 + (std::f64::consts::TAU * phase).sin());
                    let intensity =
                        trough_rate_per_s + (peak_rate_per_s - trough_rate_per_s) * wave;
                    if rng.next_f64() < intensity / peak_rate_per_s {
                        arrival(&mut out, rng, t, capacity, lifetime);
                    }
                }
            }
            Process::GroupFailure { at, fraction } => {
                assert!(*fraction > 0.0 && *fraction <= 1.0, "failure fraction must be in (0, 1]");
                if *at < horizon {
                    out.push(ChurnEvent {
                        at: *at,
                        kind: EventKind::FailSlice {
                            fraction_ppm: (fraction * 1e6).round() as u32,
                            draw: rng.next_u64(),
                        },
                    });
                }
            }
            Process::RandomCrashes { rate_per_s } => {
                assert!(*rate_per_s > 0.0, "crash rate must be positive");
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_gap(rng, *rate_per_s);
                    if t >= horizon {
                        break;
                    }
                    out.push(ChurnEvent {
                        at: t,
                        kind: EventKind::CrashRank { draw: rng.next_u64() },
                    });
                }
            }
            Process::CrashStorm { at, crashes, spread } => {
                let mut offsets: Vec<u64> = (0..*crashes)
                    .map(|_| if spread.nanos() == 0 { 0 } else { rng.next_below(spread.nanos()) })
                    .collect();
                offsets.sort_unstable();
                for off in offsets {
                    let t = *at + SimTime(off);
                    if t < horizon {
                        out.push(ChurnEvent {
                            at: t,
                            kind: EventKind::CrashRank { draw: rng.next_u64() },
                        });
                    }
                }
            }
            Process::CrashRejoin { at, cycles, spread, downtime } => {
                let mut offsets: Vec<u64> = (0..*cycles)
                    .map(|_| if spread.nanos() == 0 { 0 } else { rng.next_below(spread.nanos()) })
                    .collect();
                offsets.sort_unstable();
                for off in offsets {
                    let t = *at + SimTime(off);
                    if t < horizon {
                        out.push(ChurnEvent {
                            at: t,
                            kind: EventKind::CrashRank { draw: rng.next_u64() },
                        });
                        let back = t + *downtime;
                        if back < horizon {
                            out.push(ChurnEvent {
                                at: back,
                                kind: EventKind::RejoinRank { draw: rng.next_u64() },
                            });
                        }
                    }
                }
                // Crash/rejoin pairs interleave when the downtime exceeds
                // the gap between crashes; restore time order.
                out.sort_by_key(|e| e.at);
            }
            Process::SilentStalls { at, stalls, spread } => {
                let mut offsets: Vec<u64> = (0..*stalls)
                    .map(|_| if spread.nanos() == 0 { 0 } else { rng.next_below(spread.nanos()) })
                    .collect();
                offsets.sort_unstable();
                for off in offsets {
                    let t = *at + SimTime(off);
                    if t < horizon {
                        out.push(ChurnEvent {
                            at: t,
                            kind: EventKind::StallRank { draw: rng.next_u64() },
                        });
                    }
                }
            }
            Process::Degrade { at, factor } => {
                assert!(*factor > 0.0 && *factor <= 1.0, "degrade factor must be in (0, 1]");
                if *at < horizon {
                    out.push(ChurnEvent {
                        at: *at,
                        kind: EventKind::DegradeRank {
                            draw: rng.next_u64(),
                            factor_ppm: (factor * 1e6).round() as u32,
                        },
                    });
                }
            }
        }
        out
    }
}

/// An exponential inter-arrival gap at `rate` events per second.
fn exp_gap<R: DomusRng>(rng: &mut R, rate_per_s: f64) -> SimTime {
    let u = rng.next_f64();
    secs_to_simtime(-(1.0 - u).ln() / rate_per_s)
}

fn simtime_to_secs(t: SimTime) -> f64 {
    t.nanos() as f64 / 1e9
}

/// Converts seconds to [`SimTime`], saturating pathological draws so a
/// heavy-tailed lifetime can never overflow the clock.
fn secs_to_simtime(secs: f64) -> SimTime {
    debug_assert!(secs >= 0.0, "negative duration");
    let nanos = (secs * 1e9).round();
    if nanos.is_finite() && nanos < u64::MAX as f64 / 4.0 {
        SimTime(nanos as u64)
    } else {
        SimTime(u64::MAX / 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(7)
    }

    #[test]
    fn poisson_joins_match_rate_and_pair_with_leaves() {
        let p = Process::Poisson {
            rate_per_s: 10.0,
            lifetime: Lifetime::Exponential { mean: SimTime::millis(500) },
            capacity: Capacity::Fixed(1),
        };
        let horizon = SimTime::millis(60_000);
        let events = p.generate(0, &mut rng(), horizon);
        let joins = events.iter().filter(|e| matches!(e.kind, EventKind::Join { .. })).count();
        let leaves = events.iter().filter(|e| matches!(e.kind, EventKind::Leave { .. })).count();
        // ≈ 600 expected joins over 60 s at 10/s; 5σ ≈ 122.
        assert!((480..=720).contains(&joins), "got {joins} joins");
        // Mean lifetime 0.5 s « horizon, so nearly every join's leave lands
        // inside the horizon.
        assert!(leaves as f64 > joins as f64 * 0.9, "{leaves} leaves for {joins} joins");
        assert!(events.iter().all(|e| e.at < horizon));
    }

    #[test]
    fn pareto_lifetimes_are_heavy_tailed() {
        let life = Lifetime::Pareto { min: SimTime::millis(100), alpha: 1.2 };
        let mut r = rng();
        let draws: Vec<SimTime> = (0..5_000).map(|_| life.draw(&mut r).unwrap()).collect();
        assert!(draws.iter().all(|&d| d >= SimTime::millis(100)), "xm is a hard floor");
        // Median of Pareto(α=1.2) is xm·2^(1/1.2) ≈ 1.78·xm, but the mean
        // is ≈ 6·xm: a heavy tail separates the two.
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        let median = sorted[draws.len() / 2];
        let mean_ns = draws.iter().map(|d| d.nanos() as f64).sum::<f64>() / draws.len() as f64;
        assert!(mean_ns > 2.0 * median.nanos() as f64, "tail must drag the mean up");
    }

    #[test]
    fn flash_crowd_lands_inside_its_window() {
        let p = Process::FlashCrowd {
            at: SimTime::millis(1_000),
            joins: 64,
            spread: SimTime::millis(200),
            capacity: Capacity::Fixed(1),
            stay: Lifetime::Forever,
        };
        let events = p.generate(3, &mut rng(), SimTime::millis(10_000));
        assert_eq!(events.len(), 64);
        for e in &events {
            assert!(e.at >= SimTime::millis(1_000) && e.at < SimTime::millis(1_200));
            assert!(matches!(e.kind, EventKind::Join { .. }));
        }
        // Burst events are emitted in time order (pre-sorted offsets).
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn diurnal_wave_thins_toward_the_trough() {
        let p = Process::DiurnalWave {
            period: SimTime::millis(100_000),
            peak_rate_per_s: 20.0,
            trough_rate_per_s: 1.0,
            lifetime: Lifetime::Forever,
            capacity: Capacity::Fixed(1),
        };
        let events = p.generate(0, &mut rng(), SimTime::millis(100_000));
        // Split one full period into crest half vs trough half by wave
        // phase: sin ≥ 0 on [0, P/2).
        let (crest, trough): (Vec<&ChurnEvent>, Vec<&ChurnEvent>) =
            events.iter().partition(|e| e.at < SimTime::millis(50_000));
        assert!(
            crest.len() > 2 * trough.len(),
            "crest {} events vs trough {}",
            crest.len(),
            trough.len()
        );
    }

    #[test]
    fn weighted_capacity_respects_weights() {
        let cap = Capacity::Weighted(vec![(1, 90), (8, 10)]);
        let mut r = rng();
        let draws: Vec<u32> = (0..10_000).map(|_| cap.draw(&mut r)).collect();
        let big = draws.iter().filter(|&&v| v == 8).count();
        assert!(draws.iter().all(|&v| v == 1 || v == 8));
        assert!((600..=1_400).contains(&big), "≈10% big nodes, got {big}");
    }

    #[test]
    fn group_failure_is_one_event_with_ppm_fraction() {
        let p = Process::GroupFailure { at: SimTime::millis(5_000), fraction: 0.25 };
        let events = p.generate(0, &mut rng(), SimTime::millis(10_000));
        assert_eq!(events.len(), 1);
        match events[0].kind {
            EventKind::FailSlice { fraction_ppm, .. } => assert_eq!(fraction_ppm, 250_000),
            other => panic!("unexpected kind {other:?}"),
        }
        // Beyond the horizon the failure never fires.
        assert!(p.generate(0, &mut rng(), SimTime::millis(1_000)).is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = Process::Poisson {
            rate_per_s: 5.0,
            lifetime: Lifetime::Pareto { min: SimTime::millis(200), alpha: 1.5 },
            capacity: Capacity::Uniform { lo: 1, hi: 4 },
        };
        let a = p.generate(1, &mut Xoshiro256pp::seed_from_u64(42), SimTime::millis(20_000));
        let b = p.generate(1, &mut Xoshiro256pp::seed_from_u64(42), SimTime::millis(20_000));
        assert_eq!(a, b);
    }
}

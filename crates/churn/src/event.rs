//! The engine-agnostic churn event vocabulary.
//!
//! A scenario compiles to a flat, time-sorted [`EventStream`] **before**
//! any engine is involved: events reference cluster nodes by an abstract
//! [`NodeTag`] (the arrival's identity) or by rank in the live-vnode
//! roster, never by engine-specific handles. The same stream therefore
//! replays bit-identically into the global approach, the local approach
//! and Consistent Hashing — which is what makes cross-backend churn
//! comparisons fair, and what [`EventStream::fingerprint`] asserts.

use domus_sim::SimTime;
use domus_util::SplitMix64;

/// Identity of one physical-node arrival in a scenario.
///
/// Tags double as [`domus_core::SnodeId`] values during replay (the tag
/// *is* the snode id), so the vnode→snode assignment is a property of the
/// stream, identical across engines. The high bits carry the generating
/// process index, the low bits its arrival sequence number, so concurrent
/// processes never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeTag(pub u32);

impl NodeTag {
    /// Bits reserved for the per-process arrival sequence number.
    pub const SEQ_BITS: u32 = 22;

    /// The tag of arrival `seq` of process `process`.
    ///
    /// # Panics
    /// Panics if `seq` overflows the sequence field (4M arrivals per
    /// process) or `process` the process field (1024 processes).
    pub fn new(process: u32, seq: u32) -> Self {
        assert!(seq < 1 << Self::SEQ_BITS, "arrival sequence overflow");
        assert!(process < 1 << (32 - Self::SEQ_BITS), "process index overflow");
        NodeTag(process << Self::SEQ_BITS | seq)
    }
}

/// What happens at one instant of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A physical node arrives and enrolls `vnodes` vnodes (its capacity —
    /// heterogeneous scenarios draw different counts per arrival).
    Join {
        /// The arrival's identity (also its snode id).
        node: NodeTag,
        /// Enrolled capacity in vnodes, ≥ 1.
        vnodes: u32,
    },
    /// A previously joined node departs with **all** its vnodes.
    /// A no-op if the node's vnodes are already gone (e.g. a preceding
    /// correlated failure took them).
    Leave {
        /// The departing arrival.
        node: NodeTag,
    },
    /// Correlated mass failure: a contiguous slice of the live-vnode
    /// roster departs at once (a rack or sub-cluster dying). The slice is
    /// `max(1, fraction_ppm·live/10⁶)` vnodes starting at roster index
    /// `draw mod live` — rank-based, so the selection is identical on
    /// every engine.
    FailSlice {
        /// Failed fraction of the live roster, in parts per million.
        fraction_ppm: u32,
        /// Pre-drawn randomness locating the slice.
        draw: u64,
    },
    /// An **ungraceful** departure: the node crashes with all its vnodes.
    /// Unlike [`EventKind::Leave`], whatever data the node held is *not*
    /// migrated out — it is lost unless the overlay replicated it. A
    /// no-op if the node's vnodes are already gone.
    Crash {
        /// The crashing arrival.
        node: NodeTag,
    },
    /// An ungraceful crash of a rank-selected node: the snode owning the
    /// live-roster vnode at rank `draw mod live` crashes with **all** its
    /// vnodes — rank-based, so the victim is identical on every engine.
    CrashRank {
        /// Pre-drawn randomness locating the victim.
        draw: u64,
    },
    /// A **silent** stall of a rank-selected node: its data plane stops
    /// answering but no crash notification ever reaches the cluster —
    /// the only observable signal is that the node stops renewing its
    /// leases. The event itself performs **no engine operation**;
    /// recovery happens later, via lease expiry, when a router is
    /// attached (`ChurnDriver::with_router`) — without one the event is
    /// skipped, like a `Leave` for a node never seen.
    StallRank {
        /// Pre-drawn randomness locating the victim.
        draw: u64,
    },
    /// A previously **crashed** node comes back with the vnode count it
    /// held at crash time, replaying its write-ahead log instead of
    /// being rebuilt from replicas. The victim is the crashed-roster
    /// entry at rank `draw mod crashed` — rank-based over the (shared,
    /// deterministic) crashed set, so the pick is identical on every
    /// engine. A no-op while nothing is crashed, and on overlays
    /// without a durability tier.
    RejoinRank {
        /// Pre-drawn randomness locating the returning node.
        draw: u64,
    },
    /// A rank-selected node degrades: its *effective* capacity drops to
    /// `factor_ppm` parts-per-million of what it declared (disks dying,
    /// a noisy neighbour), while its quota share stays put — the
    /// deterministic hot-spot injection. Observable only to an attached
    /// router's capacity-weighted detector; skipped without one.
    DegradeRank {
        /// Pre-drawn randomness locating the victim.
        draw: u64,
        /// Remaining effective capacity, in parts per million.
        factor_ppm: u32,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the event fires (simulated wall clock).
    pub at: SimTime,
    /// What fires.
    pub kind: EventKind,
}

/// A compiled, time-sorted scenario: the unit of replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventStream {
    events: Vec<ChurnEvent>,
    horizon: SimTime,
}

impl EventStream {
    /// Wraps pre-sorted events (callers: [`crate::Scenario::build`]).
    ///
    /// # Panics
    /// Panics if the events are not sorted by time.
    pub fn new(events: Vec<ChurnEvent>, horizon: SimTime) -> Self {
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "event stream must be time-sorted");
        Self { events, horizon }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// End of the observation period (≥ the last event time).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Keeps only the first `n` events — smoke-test mode. The horizon
    /// shrinks to the last surviving event so windowing stays sensible.
    pub fn truncate(&mut self, n: usize) {
        if n < self.events.len() {
            self.events.truncate(n);
            self.horizon = self.events.last().map(|e| e.at).unwrap_or(SimTime::ZERO);
        }
    }

    /// An order- and content-sensitive 64-bit digest of the stream.
    ///
    /// Two streams fingerprint equal iff every event matches field-for-
    /// field in order — the cheap way to assert "same seed ⇒ identical
    /// stream" across backends without serialising anything.
    pub fn fingerprint(&self) -> u64 {
        let mut h = SplitMix64::mix(self.horizon.nanos() ^ self.events.len() as u64);
        for e in &self.events {
            h = SplitMix64::mix(h ^ e.at.nanos());
            let (disc, a, b) = match e.kind {
                EventKind::Join { node, vnodes } => (1u64, node.0 as u64, vnodes as u64),
                EventKind::Leave { node } => (2, node.0 as u64, 0),
                EventKind::FailSlice { fraction_ppm, draw } => (3, fraction_ppm as u64, draw),
                EventKind::Crash { node } => (4, node.0 as u64, 0),
                EventKind::CrashRank { draw } => (5, draw, 0),
                EventKind::StallRank { draw } => (6, draw, 0),
                EventKind::DegradeRank { draw, factor_ppm } => (7, draw, factor_ppm as u64),
                EventKind::RejoinRank { draw } => (8, draw, 0),
            };
            h = SplitMix64::mix(h ^ disc);
            h = SplitMix64::mix(h ^ a);
            h = SplitMix64::mix(h ^ b);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(at_ms: u64, tag: u32) -> ChurnEvent {
        ChurnEvent {
            at: SimTime::millis(at_ms),
            kind: EventKind::Join { node: NodeTag(tag), vnodes: 1 },
        }
    }

    #[test]
    fn tags_partition_by_process() {
        let a = NodeTag::new(0, 5);
        let b = NodeTag::new(1, 5);
        assert_ne!(a, b);
        assert_eq!(NodeTag::new(0, 5), NodeTag(5));
    }

    #[test]
    #[should_panic(expected = "sequence overflow")]
    fn tag_overflow_panics() {
        let _ = NodeTag::new(0, 1 << NodeTag::SEQ_BITS);
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let horizon = SimTime::millis(100);
        let a = EventStream::new(vec![join(1, 0), join(2, 1)], horizon);
        let b = EventStream::new(vec![join(1, 0), join(2, 1)], horizon);
        let c = EventStream::new(vec![join(1, 1), join(2, 0)], horizon);
        let d = EventStream::new(vec![join(1, 0), join(2, 2)], horizon);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn truncate_shrinks_horizon() {
        let mut s = EventStream::new(vec![join(1, 0), join(2, 1), join(9, 2)], SimTime::millis(50));
        s.truncate(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.horizon(), SimTime::millis(2));
        // Truncating to more than the length is a no-op.
        s.truncate(10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_events_rejected() {
        let _ = EventStream::new(vec![join(5, 0), join(1, 1)], SimTime::millis(9));
    }
}

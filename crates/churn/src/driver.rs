//! The replay engine: an [`EventStream`] driven into any [`DhtEngine`].
//!
//! [`ChurnDriver`] replays membership events through the streaming
//! operation surface: every engine operation runs with `domus-sim`'s
//! [`domus_sim::EventPricer`] as its sink (tapped through the KV store's
//! in-line migration when the overlay is active), so pricing, transfer
//! counting and data migration all happen *while the event executes* —
//! no per-event report is ever materialised, and the hot path performs
//! zero per-event report allocations. Per fixed simulated-time window
//! the driver samples [`BalanceSnapshot`]s into per-window rows. With
//! the optional KV overlay the run also measures data-plane effects:
//! entries migrated per event, lookup correctness of a probe set, and a
//! per-window *availability* figure — the fraction of probe keys whose
//! owning vnode did **not** change during the window (an owner change
//! mid-window is a request that would have hit a node mid-migration).
//!
//! Replay is rank- and tag-based (see [`crate::event`]), so the identical
//! stream drives the global approach, the local approach and Consistent
//! Hashing through the same decisions — cross-backend outputs differ only
//! by what the engines themselves do.
//!
//! ## The routing control plane
//!
//! With [`ChurnDriver::with_router`] a [`domus_route::Router`] rides the
//! replay: every join grants a lease, every window close runs one
//! deterministic [`domus_route::Router::tick`] on the sim clock, and the
//! tick's decisions execute through the ordinary membership machinery —
//! a lapsed lease (a silently stalled snode,
//! [`crate::event::EventKind::StallRank`]) fails over exactly like a
//! crash, and a capacity-weighted hot spot
//! ([`crate::event::EventKind::DegradeRank`]) sheds vnodes toward the
//! coldest peer until the imbalance is bounded again. A deterministic
//! 64-point probe routes through a client [`domus_route::RouteCache`] at
//! every window close, so the per-window CSV carries the route version,
//! the cache hit/stale ratio, live/expired lease counts, executed
//! failovers and hot-spot moves — all byte-deterministic (the control
//! plane runs on simulated time, not wall time).
//!
//! ## The concurrent serving plane
//!
//! With [`ChurnDriver::with_readers`] the replay becomes a two-plane
//! system: the driver thread applies membership events (the mutation
//! plane) while `n` reader threads resolve lookups/gets against pinned
//! [`EngineSnapshot`]s (the serving plane). Every membership operation
//! tees its rebalance events into a [`SnapshotBuilder`] and publishes the
//! next epoch into a shared [`SnapshotCell`] *before* the operation's
//! store lock is released, so a reader that settles at the current epoch
//! can trust a miss. Readers are paced closed-loop clients (a burst of
//! reads per pinned snapshot, then a fixed pause), so aggregate offered
//! load scales with the reader count and per-window reads/sec, latency
//! quantiles and the stale-route rate land in the CHURN CSVs. Without
//! readers the replay is byte-for-byte the single-threaded hot path —
//! the new CSV columns emit deterministic zeros.

use crate::event::{ChurnEvent, EventKind, EventStream, NodeTag};
use domus_core::{
    BalanceSnapshot, DhtEngine, EngineSnapshot, SnapshotBuilder, SnapshotCell, SnodeId, Tee,
    VnodeId,
};
use domus_kv::workload::value_of;
use domus_kv::{KvService, KvStore, ReplicatedStore, UniformKeys};
use domus_metrics::Series;
use domus_route::{RouteAction, RouteCache, Router, RouterConfig};
use domus_sim::{ClusterNet, CostModel, EventCost, EventPricer, SimTime};
use parking_lot::RwLock;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads issued per pinned snapshot in one reader-thread burst.
const READ_BURST: usize = 64;
/// Pause between bursts: readers are paced clients, so the serving plane
/// measures sustained offered load (which scales with the reader count),
/// not how fast one core can spin on an uncontended path.
const READ_PACE: Duration = Duration::from_millis(1);
/// Latency histogram buckets: bucket `i` holds nanosecond readings in
/// `[2^(i-1), 2^i)` (bucket 0 is the zero reading).
const LAT_BUCKETS: usize = 65;

/// Replay configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Network model used to price protocol traffic.
    pub net: ClusterNet,
    /// CPU/transfer cost model.
    pub cost: CostModel,
    /// Sampling cadence: one [`WindowSample`] per `window` of simulated
    /// time.
    pub window: SimTime,
    /// Maximum number of probe keys the KV overlay tracks for
    /// availability/correctness (ignored without the overlay).
    pub probes: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            net: ClusterNet::default(),
            cost: CostModel::default(),
            window: SimTime::millis(30_000),
            probes: 256,
        }
    }
}

/// Per-window accumulator (reset at every window boundary).
#[derive(Debug, Clone, Copy, Default)]
struct WindowAcc {
    events: u64,
    joins: u64,
    leaves: u64,
    crashes: u64,
    skipped: u64,
    transfers: u64,
    messages: u64,
    bytes: u64,
    service_ns: u64,
    entries_migrated: u64,
    keys_lost: u64,
    failovers: u64,
    route_moves: u64,
    rejoins: u64,
    wal_replay_ns: u64,
    repair_bytes: u64,
}

impl WindowAcc {
    fn absorb(&mut self, cost: EventCost) {
        self.messages += cost.messages;
        self.bytes += cost.bytes;
        self.service_ns += cost.duration.nanos();
    }
}

/// Shared read-plane counters every reader thread increments (relaxed —
/// they are statistics, not synchronisation).
struct ReadStats {
    reads: AtomicU64,
    stale_retries: AtomicU64,
    errors: AtomicU64,
    hist: [AtomicU64; LAT_BUCKETS],
}

impl ReadStats {
    fn new() -> Self {
        Self {
            reads: AtomicU64::new(0),
            stale_retries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, nanos: u64, retries: u32, error: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if retries > 0 {
            self.stale_retries.fetch_add(retries as u64, Ordering::Relaxed);
        }
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = 64 - nanos.leading_zeros() as usize;
        self.hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn counters(&self) -> ReadCounters {
        ReadCounters {
            reads: self.reads.load(Ordering::Relaxed),
            stale_retries: self.stale_retries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            hist: std::array::from_fn(|i| self.hist[i].load(Ordering::Relaxed)),
        }
    }
}

/// A plain copy of [`ReadStats`], used for window deltas and quantiles.
#[derive(Clone, Copy)]
struct ReadCounters {
    reads: u64,
    stale_retries: u64,
    errors: u64,
    hist: [u64; LAT_BUCKETS],
}

impl ReadCounters {
    fn zero() -> Self {
        Self { reads: 0, stale_retries: 0, errors: 0, hist: [0; LAT_BUCKETS] }
    }

    fn since(&self, prev: &Self) -> Self {
        Self {
            reads: self.reads - prev.reads,
            stale_retries: self.stale_retries - prev.stale_retries,
            errors: self.errors - prev.errors,
            hist: std::array::from_fn(|i| self.hist[i] - prev.hist[i]),
        }
    }

    /// The latency quantile `q` in nanoseconds — the midpoint of the
    /// log-scale bucket where the cumulative count crosses `q`.
    fn quantile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.hist.iter().enumerate() {
            cum += c;
            if cum >= target {
                if i == 0 {
                    return 0;
                }
                let lo = 1u128 << (i - 1);
                let hi = 1u128 << i;
                return ((lo + hi) / 2) as u64;
            }
        }
        0
    }

    fn window(&self, wall: Duration) -> ReadWindow {
        let secs = wall.as_secs_f64();
        ReadWindow {
            reads: self.reads,
            reads_per_sec: if secs > 0.0 { self.reads as f64 / secs } else { 0.0 },
            p50_ns: self.quantile_ns(0.50),
            p99_ns: self.quantile_ns(0.99),
            stale_rate: if self.reads > 0 {
                self.stale_retries as f64 / self.reads as f64
            } else {
                0.0
            },
            errors: self.errors,
        }
    }
}

/// Read-plane counters at the last window boundary (wall clock — the
/// serving plane runs in real time, unlike the simulated event clock).
struct ReadMark {
    at: Instant,
    counters: ReadCounters,
}

/// The read-plane figures of one window (all zero when readers are off —
/// the CSV stays byte-deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ReadWindow {
    reads: u64,
    reads_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    stale_rate: f64,
    errors: u64,
}

/// The control-plane figures of one window (all zero without a router —
/// the CSV stays byte-deterministic either way, since the router runs on
/// simulated time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct RouteWindow {
    version: u64,
    cache_hit_rate: f64,
    cache_stale: u64,
    leases_live: u64,
    leases_expired: u64,
    hot_snodes: u64,
}

/// One observation window of a churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Window index (0-based).
    pub index: usize,
    /// Window end, simulated time.
    pub end: SimTime,
    /// Membership events replayed in the window.
    pub events: u64,
    /// Vnodes created.
    pub joins: u64,
    /// Vnodes removed.
    pub leaves: u64,
    /// Membership operations that could not be applied: a departure of an
    /// already-gone node or a failure on an empty roster count one each;
    /// the keep-one-vnode guard counts one per guarded removal.
    pub skipped: u64,
    /// Partition transfers across all events.
    pub transfers: u64,
    /// Priced protocol messages.
    pub messages: u64,
    /// Priced wire bytes.
    pub bytes: u64,
    /// Priced service time (sum of event durations).
    pub service: SimTime,
    /// KV entries migrated (0 without an overlay; replica copies moved or
    /// minted with the replicated overlay).
    pub entries_migrated: u64,
    /// Ungraceful snode crashes absorbed in the window.
    pub crashes: u64,
    /// Balance/shape snapshot at the window end.
    pub balance: BalanceSnapshot,
    /// Fraction of probe keys whose owner did not change in the window
    /// (1.0 without the overlay or before data is loaded).
    pub availability: f64,
    /// Probe keys that failed to read back at the window end (must stay 0
    /// — a nonzero value is a routing/migration bug; crash-lost keys are
    /// pruned from the probe set as they are accounted in `keys_lost`).
    pub lost_lookups: u64,
    /// Keys whose last replica was destroyed by crashes in this window —
    /// the per-window durability numerator (0 without the replicated
    /// overlay).
    pub keys_lost: u64,
    /// Distinct live keys at the window end — the durability denominator
    /// (0 without any overlay; the plain KV overlay reports its entry
    /// count, which graceful churn never changes).
    pub keys_total: u64,
    /// Fraction of probe keys readable at majority quorum at the window
    /// end, *before* the end-of-window repair pass (1.0 without the
    /// replicated overlay).
    pub quorum_availability: f64,
    /// Replica copies placed by the anti-entropy repair that runs at this
    /// window's close (0 without the replicated overlay).
    pub repaired: u64,
    /// Serving-plane reads completed in the window (0 without readers).
    pub reads: u64,
    /// Serving-plane read throughput over the window's wall time (0.0
    /// without readers).
    pub reads_per_sec: f64,
    /// Median read latency in nanoseconds (0 without readers).
    pub read_p50_ns: u64,
    /// 99th-percentile read latency in nanoseconds (0 without readers).
    pub read_p99_ns: u64,
    /// Stale-route retries per read: the fraction of reads that had to
    /// re-pin the snapshot because an epoch was published mid-flight
    /// (0.0 without readers).
    pub stale_rate: f64,
    /// Reads that settled at the current epoch and still missed — must
    /// stay 0 whenever the overlay is loss-free (0 without readers).
    pub read_errors: u64,
    /// The shard-map version at the window end — the serving-plane epoch
    /// the window's route probe pinned (0 without a router).
    pub route_version: u64,
    /// Hit rate of the window's deterministic 64-point cache probe:
    /// `1 − stale_reads/reads` (0.0 without a router).
    pub cache_hit_rate: f64,
    /// Cache refreshes the probe needed — at most one per published
    /// epoch, the ≤1-round repair contract (0 without a router).
    pub cache_stale: u64,
    /// Live leases at the window end (0 without a router).
    pub leases_live: u64,
    /// Leases that lapsed at this window's tick (0 without a router).
    pub leases_expired: u64,
    /// Lease-expiry failovers *executed* in this window (0 without a
    /// router).
    pub failovers: u64,
    /// Snodes over the hot threshold at this window's tick (0 without a
    /// router).
    pub hot_snodes: u64,
    /// Hot-spot vnode moves executed in this window (0 without a
    /// router).
    pub route_moves: u64,
    /// Crashed snodes that rejoined by replaying their write-ahead log
    /// in this window (0 without the replicated overlay).
    pub rejoins: u64,
    /// Wall time spent replaying write-ahead logs during this window's
    /// rejoins, in nanoseconds (0 without rejoins — the column stays
    /// deterministic on rejoin-free streams).
    pub wal_replay_ns: u64,
    /// Bytes shipped by digest-driven anti-entropy this window (rejoin
    /// rebuilds plus the window-close repair pass; 0 without the
    /// replicated overlay).
    pub repair_bytes: u64,
    /// Consecutive windows (including this one) the cluster has been
    /// below full quorum availability — 0 whenever every probe key is
    /// quorum-readable, so the value at the last degraded window of an
    /// episode is that episode's time-to-full-quorum.
    pub quorum_gap_windows: u64,
}

/// Whole-run aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunTotals {
    /// Events replayed.
    pub events: u64,
    /// Vnodes created.
    pub joins: u64,
    /// Vnodes removed.
    pub leaves: u64,
    /// Membership operations that could not be applied (see
    /// [`WindowSample::skipped`]).
    pub skipped: u64,
    /// Total partition transfers.
    pub transfers: u64,
    /// Total priced messages.
    pub messages: u64,
    /// Total priced bytes.
    pub bytes: u64,
    /// Total priced service time.
    pub service: SimTime,
    /// Total KV entries migrated.
    pub entries_migrated: u64,
    /// Total ungraceful snode crashes absorbed.
    pub crashes: u64,
    /// Unweighted mean of per-window availability.
    pub mean_availability: f64,
    /// Total probe read failures (must be 0).
    pub lost_lookups: u64,
    /// Total keys lost to crashes (0 at full replication with isolated
    /// failures; the durability headline of CHURN-REPL).
    pub keys_lost: u64,
    /// Unweighted mean of per-window quorum availability.
    pub mean_quorum_availability: f64,
    /// Total replica copies placed by end-of-window repairs.
    pub repaired: u64,
    /// Serving-plane reads completed over the whole run (0 without
    /// readers).
    pub reads: u64,
    /// Whole-run read throughput (reads over replay wall time; 0.0
    /// without readers).
    pub reads_per_sec: f64,
    /// Whole-run median read latency in nanoseconds.
    pub read_p50_ns: u64,
    /// Whole-run 99th-percentile read latency in nanoseconds.
    pub read_p99_ns: u64,
    /// Whole-run stale-route retries per read.
    pub stale_rate: f64,
    /// Total settled-epoch read misses (must be 0 on a loss-free
    /// overlay).
    pub read_errors: u64,
    /// Total leases that lapsed (0 without a router).
    pub leases_expired: u64,
    /// Total lease-expiry failovers executed (0 without a router).
    pub failovers: u64,
    /// Total hot-spot vnode moves executed (0 without a router).
    pub route_moves: u64,
    /// Windows with at least one hot snode (0 without a router).
    pub hot_windows: u64,
    /// Whole-run hit rate of the per-window cache probes (1.0 without a
    /// router — nothing was ever stale).
    pub cache_hit_rate: f64,
    /// The longest hot episode in windows, from onset to rebalanced
    /// under the threshold; an episode still open at the horizon counts
    /// as ongoing. The convergence figure the CI gate bounds (0 without
    /// a router).
    pub route_convergence: u64,
    /// `false` iff a hot episode was still open at the horizon (always
    /// `true` without a router).
    pub route_converged: bool,
    /// Windows where the lease table disagreed with the authoritative
    /// roster — lease safety demands 0 (and 0 without a router).
    pub lease_violations: u64,
    /// Crashed snodes that came back by replaying their write-ahead log
    /// (0 without [`crate::event::EventKind::RejoinRank`] events).
    pub rejoins: u64,
    /// Total wall time spent replaying write-ahead logs on rejoin, in
    /// milliseconds (0.0 without rejoins).
    pub wal_replay_ms: f64,
    /// Total bytes shipped by digest-driven anti-entropy — the figure
    /// the full-rebuild baseline is compared against (0 without the
    /// replicated overlay).
    pub repair_bytes: u64,
    /// Entry bytes a digest-less full rebuild of the same ranges would
    /// have shipped — the baseline [`RunTotals::repair_bytes`] is
    /// measured against (0 without the replicated overlay).
    pub repair_bytes_full: u64,
    /// The longest stretch of consecutive windows below full quorum
    /// availability, from first degradation back to full quorum — the
    /// time-to-full-quorum headline (an episode still open at the
    /// horizon counts at its current length).
    pub time_to_full_quorum_windows: u64,
}

/// The finished result of one churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// Per-window rows, in time order.
    pub samples: Vec<WindowSample>,
    /// Balance snapshot at the horizon.
    pub final_balance: BalanceSnapshot,
    /// Whole-run totals.
    pub totals: RunTotals,
}

impl ChurnOutcome {
    /// The CSV header of [`ChurnOutcome::write_csv`].
    pub const CSV_HEADER: [&'static str; 41] = [
        "window",
        "t_ms",
        "events",
        "joins",
        "leaves",
        "crashes",
        "skipped",
        "vnodes",
        "groups",
        "snodes",
        "balance_vnode_pct",
        "balance_snode_pct",
        "peak_over_ideal",
        "transfers",
        "messages",
        "bytes",
        "service_ns",
        "entries_migrated",
        "availability",
        "lost_lookups",
        "keys_total",
        "keys_lost",
        "quorum_availability",
        "repaired",
        "reads",
        "reads_per_sec",
        "read_p50_ns",
        "read_p99_ns",
        "stale_rate",
        "read_errors",
        "route_version",
        "cache_hit_rate",
        "cache_stale",
        "leases_live",
        "leases_expired",
        "failovers",
        "hot_snodes",
        "route_moves",
        "wal_replay_ms",
        "repair_bytes",
        "quorum_gap_windows",
    ];

    /// Writes the per-window rows as CSV. The formatting is fixed-point,
    /// so two identical runs emit byte-identical files — the determinism
    /// contract the CHURN experiment asserts.
    pub fn write_csv<W: Write>(&self, w: W) -> io::Result<()> {
        let rows = self.samples.iter().map(|s| {
            vec![
                s.index.to_string(),
                format!("{:.3}", s.end.as_millis_f64()),
                s.events.to_string(),
                s.joins.to_string(),
                s.leaves.to_string(),
                s.crashes.to_string(),
                s.skipped.to_string(),
                s.balance.vnodes.to_string(),
                s.balance.groups.to_string(),
                s.balance.snodes.to_string(),
                format!("{:.4}", s.balance.vnode_relstd_pct),
                format!("{:.4}", s.balance.snode_relstd_pct),
                format!("{:.4}", s.balance.max_quota_over_ideal),
                s.transfers.to_string(),
                s.messages.to_string(),
                s.bytes.to_string(),
                s.service.nanos().to_string(),
                s.entries_migrated.to_string(),
                format!("{:.4}", s.availability),
                s.lost_lookups.to_string(),
                s.keys_total.to_string(),
                s.keys_lost.to_string(),
                format!("{:.4}", s.quorum_availability),
                s.repaired.to_string(),
                s.reads.to_string(),
                format!("{:.1}", s.reads_per_sec),
                s.read_p50_ns.to_string(),
                s.read_p99_ns.to_string(),
                format!("{:.4}", s.stale_rate),
                s.read_errors.to_string(),
                s.route_version.to_string(),
                format!("{:.4}", s.cache_hit_rate),
                s.cache_stale.to_string(),
                s.leases_live.to_string(),
                s.leases_expired.to_string(),
                s.failovers.to_string(),
                s.hot_snodes.to_string(),
                s.route_moves.to_string(),
                format!("{:.3}", s.wal_replay_ns as f64 / 1e6),
                s.repair_bytes.to_string(),
                s.quorum_gap_windows.to_string(),
            ]
        });
        domus_metrics::csv::write_rows(w, &Self::CSV_HEADER, rows)
    }

    /// The CSV as a string (convenience for tests and comparisons).
    pub fn csv_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("CSV is ASCII")
    }

    /// Extracts a named time series `(t_ms, pick(window))` for plotting.
    pub fn series(&self, name: impl Into<String>, pick: impl Fn(&WindowSample) -> f64) -> Series {
        Series::new(
            name,
            self.samples.iter().map(|s| s.end.as_millis_f64()).collect(),
            self.samples.iter().map(pick).collect(),
        )
    }
}

/// What the driver drives: the bare engine, the engine threaded through a
/// [`KvService`] so every membership event migrates real data, or a
/// [`ReplicatedStore`] so crashes destroy data and durability is measured.
enum Plant<E: DhtEngine> {
    Bare(E),
    Kv(KvService<E>),
    Repl(Arc<RwLock<ReplicatedStore<E>>>),
}

/// What a serving-plane reader thread resolves reads against.
enum ReadTarget<E: DhtEngine> {
    /// Routing-plane only: resolve random points on the pinned snapshot.
    Routing,
    Kv(KvService<E>),
    Repl(Arc<RwLock<ReplicatedStore<E>>>),
}

impl<E: DhtEngine> Clone for ReadTarget<E> {
    fn clone(&self) -> Self {
        match self {
            Self::Routing => Self::Routing,
            Self::Kv(svc) => Self::Kv(svc.clone()),
            Self::Repl(store) => Self::Repl(Arc::clone(store)),
        }
    }
}

/// Replays an [`EventStream`] into one engine, pricing and sampling.
pub struct ChurnDriver<E: DhtEngine> {
    plant: Plant<E>,
    cfg: DriverConfig,
    /// The streaming pricing sink every operation runs through (scratch
    /// reused across events — the hot path allocates nothing per event).
    pricer: EventPricer,
    /// Live vnodes in creation order, tagged by their arrival.
    roster: Vec<(NodeTag, VnodeId)>,
    clock: SimTime,
    next_window_end: SimTime,
    acc: WindowAcc,
    samples: Vec<WindowSample>,
    /// KV overlay: population to load at the first join.
    pending_load: Option<(u64, usize)>,
    /// Probe keys and their owner at the last window boundary.
    probe_keys: Vec<String>,
    probe_owner: Vec<Option<VnodeId>>,
    /// The published routing view readers (and the window probe) pin.
    /// The KV plant's [`KvService`] maintains its own cell; this one
    /// serves the bare/replicated plants.
    serve: Arc<SnapshotCell>,
    /// Incremental view maintenance for the bare/replicated plants,
    /// tee'd into every operation when readers are on.
    builder: SnapshotBuilder,
    /// The control plane ([`ChurnDriver::with_router`]): leases, silent-
    /// failure failover and hot-spot scheduling, ticked per window.
    router: Option<Router>,
    /// The deterministic client cache the per-window route probe routes
    /// through (present iff the router is).
    route_cache: Option<RouteCache>,
    /// Windows whose lease table disagreed with the roster (must stay 0).
    lease_violations: u64,
    /// Crashed snodes eligible to rejoin, with the vnode count each held
    /// at crash time — the deterministic roster
    /// [`EventKind::RejoinRank`] rank-selects from (shared across
    /// engines, like the live roster).
    crashed: Vec<(NodeTag, u32)>,
    /// Entry bytes a digest-less full rebuild would have shipped, run
    /// total (the denominator of the anti-entropy savings figure).
    repair_bytes_full: u64,
    /// Consecutive windows below full quorum availability, so far.
    quorum_gap: u64,
    /// The longest *closed* below-quorum episode, in windows.
    worst_quorum_gap: u64,
    /// Serving-plane reader threads ([`ChurnDriver::with_readers`]).
    readers: usize,
    /// Reads per pinned snapshot in one reader burst.
    read_burst: usize,
    /// Pause between reader bursts (the closed-loop pacing).
    read_pace: Duration,
    /// Optional pause after each replayed event in reader mode —
    /// stretches replay wall time so read metrics cover a steady window.
    writer_pace: Duration,
    read_stats: Arc<ReadStats>,
    /// Raised once the KV population is loaded; readers issue
    /// routing-only probes until then.
    loaded: Arc<AtomicBool>,
    read_mark: ReadMark,
    run_started: Option<Instant>,
}

impl<E: DhtEngine> ChurnDriver<E> {
    /// A control-plane-only driver (no data moves, pricing + balance
    /// sampling only) — the bench hot path.
    pub fn new(engine: E, cfg: DriverConfig) -> Self {
        Self::build(Plant::Bare(engine), cfg, None)
    }

    /// A driver with the KV overlay: `entries` uniform keys with
    /// `value_len`-byte values are loaded at the first join, then every
    /// event migrates real data and the probe set measures availability.
    pub fn with_kv(engine: E, cfg: DriverConfig, entries: u64, value_len: usize) -> Self {
        assert!(entries > 0, "KV overlay needs a key population");
        Self::build(
            Plant::Kv(KvService::new(KvStore::new(engine))),
            cfg,
            Some((entries, value_len)),
        )
    }

    /// A driver with the **replicated** overlay at replication factor
    /// `replication`: crashes ([`EventKind::Crash`]/[`EventKind::CrashRank`])
    /// destroy the failed snode's replicas instead of migrating them, each
    /// window samples durability (`keys_lost` / `keys_total`) and
    /// quorum-read availability, and an anti-entropy repair pass runs at
    /// every window close.
    pub fn with_replication(
        engine: E,
        cfg: DriverConfig,
        entries: u64,
        value_len: usize,
        replication: usize,
    ) -> Self {
        assert!(entries > 0, "replicated overlay needs a key population");
        Self::build(
            Plant::Repl(Arc::new(RwLock::new(ReplicatedStore::new(engine, replication)))),
            cfg,
            Some((entries, value_len)),
        )
    }

    fn build(plant: Plant<E>, cfg: DriverConfig, pending_load: Option<(u64, usize)>) -> Self {
        assert!(cfg.window > SimTime::ZERO, "sampling window must be positive");
        let builder = match &plant {
            Plant::Bare(e) => SnapshotBuilder::from_engine(e),
            Plant::Kv(svc) => svc.with_read(|s| SnapshotBuilder::from_engine(s.engine())),
            Plant::Repl(store) => SnapshotBuilder::from_engine(store.read().engine()),
        };
        let serve = Arc::new(SnapshotCell::new(builder.snapshot()));
        Self {
            plant,
            cfg,
            pricer: EventPricer::new(cfg.net, cfg.cost),
            roster: Vec::new(),
            clock: SimTime::ZERO,
            next_window_end: cfg.window,
            acc: WindowAcc::default(),
            samples: Vec::new(),
            pending_load,
            probe_keys: Vec::new(),
            probe_owner: Vec::new(),
            serve,
            builder,
            router: None,
            route_cache: None,
            lease_violations: 0,
            crashed: Vec::new(),
            repair_bytes_full: 0,
            quorum_gap: 0,
            worst_quorum_gap: 0,
            readers: 0,
            read_burst: READ_BURST,
            read_pace: READ_PACE,
            writer_pace: Duration::ZERO,
            read_stats: Arc::new(ReadStats::new()),
            loaded: Arc::new(AtomicBool::new(false)),
            read_mark: ReadMark { at: Instant::now(), counters: ReadCounters::zero() },
            run_started: None,
        }
    }

    /// Turns on the serving plane: `n` reader threads hammer
    /// lookups/gets against pinned snapshots while the replay mutates.
    /// Readers are paced closed-loop clients (a 64-read burst per
    /// pinned snapshot, then a 1 ms pause, by default), so per-window
    /// reads/sec measures sustained offered load scaling with `n`.
    /// Read metrics are wall-clock figures — a run with readers trades
    /// the byte-identical-CSV determinism contract for them.
    pub fn with_readers(mut self, n: usize) -> Self {
        self.readers = n;
        self
    }

    /// Attaches the routing & failover control plane: every join grants
    /// a lease, every window close runs one deterministic
    /// [`Router::tick`], and the tick's decisions — lease-expiry
    /// failovers and hot-spot moves — execute through the same
    /// membership machinery the event stream drives. Unlocks
    /// [`crate::event::EventKind::StallRank`] and
    /// [`crate::event::EventKind::DegradeRank`] (skipped without a
    /// router) and fills the `route_*`/`lease*`/`failover` CSV columns.
    /// Fully deterministic: the control plane runs on simulated time.
    pub fn with_router(mut self, cfg: RouterConfig) -> Self {
        let cell = Arc::clone(self.serve_cell());
        self.router = Some(Router::new(cfg));
        self.route_cache = Some(RouteCache::new(cell));
        self
    }

    /// Overrides the reader pacing profile: `burst` reads per pinned
    /// snapshot, then a `pace` pause. Lower offered load per reader keeps
    /// aggregate throughput linear in the reader count on small machines.
    pub fn with_reader_pacing(mut self, burst: usize, pace: Duration) -> Self {
        assert!(burst > 0, "a reader burst must issue at least one read");
        self.read_burst = burst;
        self.read_pace = pace;
        self
    }

    /// Pauses the replay thread for `pace` after every event in reader
    /// mode — a load-bench knob that stretches replay wall time so read
    /// windows sample a steady state (ignored without readers).
    pub fn with_writer_pace(mut self, pace: Duration) -> Self {
        self.writer_pace = pace;
        self
    }

    /// Read access to the engine regardless of the overlay.
    pub fn with_engine<T>(&self, f: impl FnOnce(&E) -> T) -> T {
        match &self.plant {
            Plant::Bare(e) => f(e),
            Plant::Kv(svc) => svc.with_read(|s| f(s.engine())),
            Plant::Repl(store) => f(store.read().engine()),
        }
    }

    /// The KV service handle, when the plain overlay is active.
    pub fn kv(&self) -> Option<&KvService<E>> {
        match &self.plant {
            Plant::Kv(svc) => Some(svc),
            _ => None,
        }
    }

    /// Read access to the replicated store, when that overlay is active.
    pub fn with_replicated<T>(&self, f: impl FnOnce(&ReplicatedStore<E>) -> T) -> Option<T> {
        match &self.plant {
            Plant::Repl(store) => Some(f(&store.read())),
            _ => None,
        }
    }

    /// The serving-plane cell readers pin snapshots from.
    pub fn serve_cell(&self) -> &Arc<SnapshotCell> {
        match &self.plant {
            Plant::Kv(svc) => svc.serve(),
            _ => &self.serve,
        }
    }

    fn read_target(&self) -> ReadTarget<E> {
        match &self.plant {
            Plant::Bare(_) => ReadTarget::Routing,
            Plant::Kv(svc) => ReadTarget::Kv(svc.clone()),
            Plant::Repl(store) => ReadTarget::Repl(Arc::clone(store)),
        }
    }

    /// Live vnodes currently tracked by the replay roster.
    pub fn live(&self) -> usize {
        self.roster.len()
    }

    /// The control plane's lifetime view, when a router is attached.
    pub fn router(&self) -> Option<&Router> {
        self.router.as_ref()
    }

    /// `true` when the serving cell must be published per operation:
    /// readers pin it concurrently, and the router's window tick judges
    /// loads (and the route probe routes) on it.
    fn serves_live(&self) -> bool {
        self.readers > 0 || self.router.is_some()
    }

    /// Replays one event (time must be nondecreasing across calls).
    pub fn step(&mut self, event: &ChurnEvent) {
        self.advance_to(event.at);
        match event.kind {
            EventKind::Join { node, vnodes } => {
                // The arrival's enrollment is its *declared capacity* —
                // the fixed basis hot-spot decisions weigh against
                // (later moves shrink its quota, not its capacity).
                if let Some(r) = &mut self.router {
                    r.note_capacity(SnodeId(node.0), vnodes.max(1));
                }
                for _ in 0..vnodes.max(1) {
                    self.create_one(node);
                }
            }
            EventKind::Leave { node } => {
                let victims: Vec<VnodeId> =
                    self.roster.iter().filter(|(t, _)| *t == node).map(|&(_, v)| v).collect();
                if victims.is_empty() {
                    self.acc.skipped += 1; // already gone (e.g. a failure took it)
                }
                self.remove_all(victims);
            }
            EventKind::FailSlice { fraction_ppm, draw } => {
                let live = self.roster.len();
                if live == 0 {
                    self.acc.skipped += 1;
                } else {
                    let n = ((live as u64 * fraction_ppm as u64) / 1_000_000).max(1) as usize;
                    let start = (draw % live as u64) as usize;
                    let victims: Vec<VnodeId> =
                        (0..n.min(live)).map(|i| self.roster[(start + i) % live].1).collect();
                    self.remove_all(victims);
                }
            }
            EventKind::Crash { node } => self.crash_tag(node, false),
            EventKind::CrashRank { draw } => {
                if self.roster.is_empty() {
                    self.acc.skipped += 1;
                } else {
                    let tag = self.roster[(draw % self.roster.len() as u64) as usize].0;
                    self.crash_tag(tag, false);
                }
            }
            EventKind::StallRank { draw } => {
                // A silent stall performs no engine operation — the only
                // signal is that the victim stops renewing its leases,
                // so without a control plane the event is unobservable.
                match &mut self.router {
                    Some(router) if !self.roster.is_empty() => {
                        let tag = self.roster[(draw % self.roster.len() as u64) as usize].0;
                        router.inject_stall(SnodeId(tag.0));
                    }
                    _ => self.acc.skipped += 1,
                }
            }
            EventKind::DegradeRank { draw, factor_ppm } => match &mut self.router {
                Some(router) if !self.roster.is_empty() => {
                    let tag = self.roster[(draw % self.roster.len() as u64) as usize].0;
                    router.degrade(SnodeId(tag.0), f64::from(factor_ppm) / 1e6);
                }
                _ => self.acc.skipped += 1,
            },
            EventKind::RejoinRank { draw } => {
                if self.crashed.is_empty() {
                    self.acc.skipped += 1;
                } else {
                    let idx = (draw % self.crashed.len() as u64) as usize;
                    let (tag, vnodes) = self.crashed.remove(idx);
                    self.rejoin_tag(tag, vnodes);
                }
            }
        }
        self.acc.events += 1;
    }

    /// Closes the remaining windows through `horizon` and aggregates.
    pub fn finish(mut self, horizon: SimTime) -> ChurnOutcome {
        let horizon = horizon.max(self.clock);
        while self.next_window_end < horizon {
            let b = self.next_window_end;
            self.close_window(b);
            self.next_window_end = b + self.cfg.window;
        }
        // When the last event sat exactly on a window boundary,
        // advance_to already closed a window ending at `horizon`; only
        // emit another (same-timestamp) row if events landed after it.
        let closed_at_horizon = self.samples.last().map(|s| s.end == horizon).unwrap_or(false);
        if !closed_at_horizon || self.acc.events > 0 {
            self.close_window(horizon);
        }

        let final_balance = self.with_engine(|e| e.balance_snapshot());
        let mut totals = RunTotals {
            events: 0,
            joins: 0,
            leaves: 0,
            skipped: 0,
            transfers: 0,
            messages: 0,
            bytes: 0,
            service: SimTime::ZERO,
            entries_migrated: 0,
            crashes: 0,
            mean_availability: 1.0,
            lost_lookups: 0,
            keys_lost: 0,
            mean_quorum_availability: 1.0,
            repaired: 0,
            reads: 0,
            reads_per_sec: 0.0,
            read_p50_ns: 0,
            read_p99_ns: 0,
            stale_rate: 0.0,
            read_errors: 0,
            leases_expired: 0,
            failovers: 0,
            route_moves: 0,
            hot_windows: 0,
            cache_hit_rate: 1.0,
            route_convergence: 0,
            route_converged: true,
            lease_violations: 0,
            rejoins: 0,
            wal_replay_ms: 0.0,
            repair_bytes: 0,
            repair_bytes_full: self.repair_bytes_full,
            time_to_full_quorum_windows: self.worst_quorum_gap.max(self.quorum_gap),
        };
        if self.readers > 0 {
            let c = self.read_stats.counters();
            let wall = self.run_started.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
            let w = c.window(wall);
            totals.reads = w.reads;
            totals.reads_per_sec = w.reads_per_sec;
            totals.read_p50_ns = w.p50_ns;
            totals.read_p99_ns = w.p99_ns;
            totals.stale_rate = w.stale_rate;
            totals.read_errors = w.errors;
        }
        if let Some(router) = &self.router {
            totals.hot_windows = router.totals().hot_windows;
            totals.route_convergence = router.worst_convergence();
            totals.route_converged = !router.unconverged();
            totals.lease_violations = self.lease_violations;
            totals.cache_hit_rate = self
                .route_cache
                .as_ref()
                .expect("with_router sets the cache")
                .stats()
                .counters()
                .hit_rate();
        }
        for s in &self.samples {
            totals.events += s.events;
            totals.joins += s.joins;
            totals.leaves += s.leaves;
            totals.skipped += s.skipped;
            totals.transfers += s.transfers;
            totals.messages += s.messages;
            totals.bytes += s.bytes;
            totals.service += s.service;
            totals.entries_migrated += s.entries_migrated;
            totals.crashes += s.crashes;
            totals.lost_lookups += s.lost_lookups;
            totals.keys_lost += s.keys_lost;
            totals.repaired += s.repaired;
            totals.leases_expired += s.leases_expired;
            totals.failovers += s.failovers;
            totals.route_moves += s.route_moves;
            totals.rejoins += s.rejoins;
            totals.wal_replay_ms += s.wal_replay_ns as f64 / 1e6;
            totals.repair_bytes += s.repair_bytes;
        }
        if !self.samples.is_empty() {
            let n = self.samples.len() as f64;
            totals.mean_availability = self.samples.iter().map(|s| s.availability).sum::<f64>() / n;
            totals.mean_quorum_availability =
                self.samples.iter().map(|s| s.quorum_availability).sum::<f64>() / n;
        }
        ChurnOutcome { samples: self.samples, final_balance, totals }
    }

    /// Rolls the clock forward, closing any windows the gap crosses.
    /// Windows are left-open, right-closed `(prev, end]`: an event landing
    /// exactly on a boundary belongs to the window ending there, so a
    /// truncated stream (horizon = last event time) never produces two
    /// samples with the same timestamp.
    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.clock, "events must be replayed in time order");
        while t > self.next_window_end {
            let b = self.next_window_end;
            self.close_window(b);
            self.next_window_end = b + self.cfg.window;
        }
        self.clock = t;
    }

    fn close_window(&mut self, end: SimTime) {
        // The control plane ticks first: its failovers and moves execute
        // inside the closing window, so the balance/probe samples below
        // see the post-action state the next window starts from.
        let route = self.route_window(end);
        let balance = self.with_engine(|e| e.balance_snapshot());
        let (availability, lost_lookups, quorum_availability) = self.probe_window();
        let read = self.read_window();
        // Anti-entropy runs at window cadence: sample the damage first
        // (the quorum figure above sees the pre-repair state), then heal.
        let (keys_total, repaired) = match &mut self.plant {
            Plant::Repl(store) => {
                // Repair fills missing copies on the chains the current
                // epoch already routes to — no republish needed.
                let mut g = store.write();
                let rep = g.repair();
                self.acc.repair_bytes += rep.bytes_shipped;
                self.repair_bytes_full += rep.bytes_full;
                (g.len(), rep.copies_placed)
            }
            Plant::Kv(svc) => (svc.len(), 0),
            Plant::Bare(_) => (0, 0),
        };
        // Time-to-full-quorum bookkeeping: a window below full quorum
        // availability extends the current gap; a fully-quorate window
        // closes the episode.
        if quorum_availability < 1.0 {
            self.quorum_gap += 1;
        } else {
            self.worst_quorum_gap = self.worst_quorum_gap.max(self.quorum_gap);
            self.quorum_gap = 0;
        }
        let acc = std::mem::take(&mut self.acc);
        self.samples.push(WindowSample {
            index: self.samples.len(),
            end,
            events: acc.events,
            joins: acc.joins,
            leaves: acc.leaves,
            crashes: acc.crashes,
            skipped: acc.skipped,
            transfers: acc.transfers,
            messages: acc.messages,
            bytes: acc.bytes,
            service: SimTime(acc.service_ns),
            entries_migrated: acc.entries_migrated,
            balance,
            availability,
            lost_lookups,
            keys_lost: acc.keys_lost,
            keys_total,
            quorum_availability,
            repaired,
            reads: read.reads,
            reads_per_sec: read.reads_per_sec,
            read_p50_ns: read.p50_ns,
            read_p99_ns: read.p99_ns,
            stale_rate: read.stale_rate,
            read_errors: read.errors,
            route_version: route.version,
            cache_hit_rate: route.cache_hit_rate,
            cache_stale: route.cache_stale,
            leases_live: route.leases_live,
            leases_expired: route.leases_expired,
            failovers: acc.failovers,
            hot_snodes: route.hot_snodes,
            route_moves: acc.route_moves,
            rejoins: acc.rejoins,
            wal_replay_ns: acc.wal_replay_ns,
            repair_bytes: acc.repair_bytes,
            quorum_gap_windows: self.quorum_gap,
        });
    }

    /// One control-plane window: tick the router on the published loads,
    /// execute its decisions through the ordinary membership machinery,
    /// verify lease safety against the roster, and sample the client
    /// cache with a deterministic 64-point probe.
    fn route_window(&mut self, end: SimTime) -> RouteWindow {
        if self.router.is_none() {
            return RouteWindow::default();
        }
        let report = {
            let loads = self.serve_cell().load().loads().to_vec();
            self.router.as_mut().expect("checked above").tick(end, &loads)
        };
        for action in &report.actions {
            match action {
                RouteAction::Failover { snode, .. } => {
                    let tag = NodeTag(snode.0);
                    let count = self.roster.iter().filter(|(t, _)| *t == tag).count();
                    if count == 0 {
                        // The leases outlived the roster (verify below
                        // would flag it) — confirm to clean the table.
                        self.router.as_mut().expect("router mode").note_fail(*snode);
                    } else if count == self.roster.len() {
                        // Failing over the whole fleet would empty the
                        // DHT: push the expiry out one TTL and retry.
                        self.router.as_mut().expect("router mode").defer(*snode, end);
                    } else {
                        self.crash_tag(tag, true);
                    }
                }
                RouteAction::MoveVnode { from, to } => {
                    // Shed the hot snode's first-enrolled vnode; grow the
                    // coldest peer by one in the same stroke so the
                    // population stays level and the load lands colder.
                    let victim = self.roster.iter().find(|(t, _)| t.0 == from.0).map(|&(_, v)| v);
                    if let Some(v) = victim {
                        let live_before = self.roster.len();
                        self.remove_one(v);
                        if self.roster.len() < live_before {
                            if let Some(t) = to {
                                self.create_one(NodeTag(t.0));
                            }
                            self.acc.route_moves += 1;
                        }
                    }
                }
            }
        }
        // Lease safety, checked against the authoritative roster every
        // single window: every live vnode exactly one lease, held by its
        // hosting snode.
        let roster: Vec<(VnodeId, SnodeId)> =
            self.roster.iter().map(|&(t, v)| (v, SnodeId(t.0))).collect();
        if self.router.as_ref().expect("router mode").verify(roster).is_err() {
            self.lease_violations += 1;
        }
        // The deterministic client-cache probe: 64 grid points through
        // the cache. At most one refresh per published epoch lands as a
        // stale read — the ≤1-round repair contract, in the CSV.
        let cache = self.route_cache.as_mut().expect("with_router sets the cache");
        let space = cache.table().space();
        let before = cache.stats().counters();
        for i in 0..64u64 {
            cache.lookup(space.fold(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
        let delta = cache.stats().counters().since(before);
        let router = self.router.as_ref().expect("router mode");
        RouteWindow {
            version: cache.version().0,
            cache_hit_rate: delta.hit_rate(),
            cache_stale: delta.stale_reads,
            leases_live: router.leases().len() as u64,
            leases_expired: report.expired,
            hot_snodes: report.hot.len() as u64,
        }
    }

    /// Re-routes the probe set **through a pinned snapshot** — the same
    /// consistent epoch a concurrent client would serve from, not the
    /// live engine: availability = unchanged-owner fraction; every probe
    /// must still read back (lookup correctness); with the replicated
    /// overlay the quorum figure counts probes readable at majority
    /// quorum.
    fn probe_window(&mut self) -> (f64, u64, f64) {
        if self.probe_keys.is_empty() {
            return (1.0, 0, 1.0);
        }
        self.refresh_serve();
        let snap = self.serve_cell().load();
        let mut changed = 0u64;
        let mut lost = 0u64;
        let mut at_quorum = 0u64;
        let owners = &mut self.probe_owner;
        let keys = &self.probe_keys;
        match &self.plant {
            Plant::Bare(_) => return (1.0, 0, 1.0),
            Plant::Kv(svc) => svc.with_read(|store| {
                for (key, prev) in keys.iter().zip(owners.iter_mut()) {
                    let now = store.route_at(&snap, key.as_bytes());
                    if store.get_at(&snap, key.as_bytes()).is_none() {
                        lost += 1;
                    }
                    at_quorum += 1;
                    if prev.is_some() && *prev != now {
                        changed += 1;
                    }
                    *prev = now;
                }
            }),
            Plant::Repl(store) => {
                let store = store.read();
                for (key, prev) in keys.iter().zip(owners.iter_mut()) {
                    let now = store.route_at(&snap, key.as_bytes());
                    let read = store.get_quorum_at(&snap, key.as_bytes());
                    if read.value.is_none() {
                        lost += 1;
                    }
                    if read.available() {
                        at_quorum += 1;
                    }
                    if prev.is_some() && *prev != now {
                        changed += 1;
                    }
                    *prev = now;
                }
            }
        }
        let n = self.probe_keys.len() as f64;
        (1.0 - changed as f64 / n, lost, at_quorum as f64 / n)
    }

    /// Brings the bare/replicated serving cell up to date in
    /// single-threaded replay (in reader mode every operation already
    /// published its epoch; the KV service always maintains its own).
    fn refresh_serve(&mut self) {
        if self.serves_live() || matches!(self.plant, Plant::Kv(_)) {
            return;
        }
        let epoch = self.samples.len() as u64 + 1;
        let snap = self.with_engine(|e| EngineSnapshot::from_engine(e, epoch));
        self.serve.publish(snap);
    }

    /// Drains the read-plane counters accumulated since the last window
    /// boundary (all-zero when readers are off).
    fn read_window(&mut self) -> ReadWindow {
        if self.readers == 0 {
            return ReadWindow::default();
        }
        let now = Instant::now();
        let cur = self.read_stats.counters();
        let delta = cur.since(&self.read_mark.counters);
        let wall = now.duration_since(self.read_mark.at);
        self.read_mark = ReadMark { at: now, counters: cur };
        delta.window(wall)
    }

    fn create_one(&mut self, node: NodeTag) {
        let snode = SnodeId(node.0);
        self.pricer.begin();
        // With readers or a router on, the bare/replicated plants tee
        // every event into the snapshot builder and publish the next
        // epoch before the operation's lock is released (the KV service
        // does its own).
        let serve_live = self.serves_live();
        let (v, entries_moved) = match &mut self.plant {
            Plant::Bare(e) => {
                let out = if serve_live {
                    e.create_vnode_with(snode, &mut Tee(&mut self.builder, &mut self.pricer))
                } else {
                    e.create_vnode_with(snode, &mut self.pricer)
                }
                .expect("churn replay: create failed");
                if serve_live {
                    self.builder.note_create(out.vnode, snode);
                    self.builder.publish(&self.serve);
                }
                (out.vnode, 0)
            }
            Plant::Kv(svc) => {
                let (out, m) =
                    svc.join_with(snode, &mut self.pricer).expect("churn replay: create failed");
                (out.vnode, m.entries)
            }
            Plant::Repl(store) => {
                let mut g = store.write();
                let (out, rep) = if serve_live {
                    let r = g
                        .join_with(snode, &mut Tee(&mut self.builder, &mut self.pricer))
                        .expect("churn replay: create failed");
                    self.builder.note_create(r.0.vnode, snode);
                    self.builder.publish(&self.serve);
                    r
                } else {
                    g.join_with(snode, &mut self.pricer).expect("churn replay: create failed")
                };
                (out.vnode, rep.copies_placed)
            }
        };
        self.load_kv_if_pending();
        let (record_len, participants) = self.record_shape_of(v);
        let cost = self.pricer.finish_create(record_len, participants);
        self.acc.absorb(cost);
        self.acc.transfers += self.pricer.transfers();
        self.acc.entries_migrated += entries_moved;
        self.acc.joins += 1;
        self.roster.push((node, v));
        if let Some(r) = &mut self.router {
            r.note_join(v, snode, self.clock);
        }
    }

    /// Removes `victims` in order, patching not-yet-removed handles when a
    /// removal internally migrates (renames) a surviving vnode.
    fn remove_all(&mut self, mut victims: Vec<VnodeId>) {
        while !victims.is_empty() {
            let v = victims.remove(0);
            if let Some((old, new)) = self.remove_one(v) {
                for pending in &mut victims {
                    if *pending == old {
                        *pending = new;
                    }
                }
            }
        }
    }

    /// Removes one vnode; returns the rename a group-merge migration
    /// applied to a *surviving* vnode, if any.
    fn remove_one(&mut self, v: VnodeId) -> Option<(VnodeId, VnodeId)> {
        if self.roster.len() <= 1 {
            // The model has no representation for an empty DHT; a real
            // deployment would be down. Count it instead of crashing —
            // the guard is state-parallel, so every engine skips alike.
            self.acc.skipped += 1;
            return None;
        }
        self.pricer.begin();
        let serve_live = self.serves_live();
        let entries_moved = match &mut self.plant {
            Plant::Bare(e) => {
                if serve_live {
                    e.remove_vnode_with(v, &mut Tee(&mut self.builder, &mut self.pricer))
                        .expect("churn replay: remove failed");
                    self.builder.note_remove(v);
                    self.builder.publish(&self.serve);
                } else {
                    e.remove_vnode_with(v, &mut self.pricer).expect("churn replay: remove failed");
                }
                0
            }
            Plant::Kv(svc) => {
                svc.leave_with(v, &mut self.pricer).expect("churn replay: remove failed").1.entries
            }
            Plant::Repl(store) => {
                let mut g = store.write();
                let rep = if serve_live {
                    let r = g
                        .leave_with(v, &mut Tee(&mut self.builder, &mut self.pricer))
                        .expect("churn replay: remove failed");
                    self.builder.note_remove(v);
                    self.builder.publish(&self.serve);
                    r
                } else {
                    g.leave_with(v, &mut self.pricer).expect("churn replay: remove failed")
                };
                rep.1.copies_placed
            }
        };
        // The governing record after the event is visible through any
        // receiver of the redistribution transfers.
        let (record_len, participants) = match self.pricer.first_receiver() {
            Some(to) => self.record_shape_of(to),
            None => (1, 1),
        };
        let cost = self.pricer.finish_remove(record_len, participants);
        self.acc.absorb(cost);
        self.acc.transfers += self.pricer.transfers();
        self.acc.entries_migrated += entries_moved;
        self.acc.leaves += 1;
        self.roster.retain(|&(_, rv)| rv != v);
        // A removal may internally migrate a surviving vnode between
        // groups, retiring its old handle — follow the rename.
        let migrated = self.pricer.migrated();
        if let Some((old, new)) = migrated {
            for entry in &mut self.roster {
                if entry.1 == old {
                    entry.1 = new;
                }
            }
        }
        if let Some(r) = &mut self.router {
            r.note_remove(v);
            if let Some((old, new)) = migrated {
                r.note_rename(old, new);
            }
        }
        migrated
    }

    /// Crashes the snode identified by `tag` **ungracefully**: every vnode
    /// it hosts is torn down at once and — with the replicated overlay —
    /// whatever it stored is destroyed rather than migrated. The plain KV
    /// overlay cannot represent loss, so it degrades the crash to graceful
    /// removals (identical membership trajectory, data migrates).
    ///
    /// A crash is priced as one composite removal event: one
    /// synchronisation round over the post-crash record plus all streamed
    /// transfers — a deliberate approximation (a crash is detected and
    /// absorbed as a unit, not as per-vnode goodbyes).
    ///
    /// With `failover` set the teardown was ordered by the control plane
    /// (a lapsed lease, not a crash notification): the mechanics are
    /// identical, only the accounting differs.
    fn crash_tag(&mut self, tag: NodeTag, failover: bool) {
        let count = self.roster.iter().filter(|(t, _)| *t == tag).count();
        if count == 0 || count == self.roster.len() {
            // Already gone, or crashing the whole fleet would empty the
            // DHT — skip, state-parallel across engines.
            self.acc.skipped += 1;
            return;
        }
        if matches!(self.plant, Plant::Kv(_)) {
            let victims: Vec<VnodeId> =
                self.roster.iter().filter(|(t, _)| *t == tag).map(|&(_, v)| v).collect();
            self.remove_all(victims);
            // The per-vnode removals already released the leases; this
            // clears the holder's capacity/stall records too.
            if let Some(r) = &mut self.router {
                r.note_fail(SnodeId(tag.0));
            }
            if failover {
                self.acc.failovers += 1;
            } else {
                self.acc.crashes += 1;
            }
            self.crashed.push((tag, count as u32));
            return;
        }
        let snode = SnodeId(tag.0);
        self.pricer.begin();
        let serve_live = self.serves_live();
        let (renames, vnodes_failed, keys_lost, relocated) = match &mut self.plant {
            Plant::Bare(e) => {
                let out = if serve_live {
                    let o = e
                        .fail_snode(snode, &mut Tee(&mut self.builder, &mut self.pricer))
                        .expect("churn replay: crash failed");
                    self.builder.note_fail(snode);
                    self.builder.publish(&self.serve);
                    o
                } else {
                    e.fail_snode(snode, &mut self.pricer).expect("churn replay: crash failed")
                };
                (out.renames, out.vnodes.len(), 0, 0)
            }
            Plant::Repl(store) => {
                let mut g = store.write();
                let rep = if serve_live {
                    let r = g
                        .fail_snode_with(snode, &mut Tee(&mut self.builder, &mut self.pricer))
                        .expect("churn replay: crash failed");
                    self.builder.note_fail(snode);
                    self.builder.publish(&self.serve);
                    r
                } else {
                    g.fail_snode_with(snode, &mut self.pricer).expect("churn replay: crash failed")
                };
                (rep.renames, rep.vnodes_failed, rep.keys_lost, rep.copies_relocated)
            }
            Plant::Kv(_) => unreachable!("degraded to graceful removal above"),
        };
        self.roster.retain(|&(t, _)| t != tag);
        if let Some(r) = &mut self.router {
            // Survivor renames re-key their leases; then the dead
            // holder's leases are released (the executor's confirmation
            // the tick's failover asked for).
            for &(old, new) in &renames {
                r.note_rename(old, new);
            }
            r.note_fail(snode);
        }
        for (old, new) in renames {
            for entry in &mut self.roster {
                if entry.1 == old {
                    entry.1 = new;
                }
            }
        }
        // The governing record after the event: the first transfer
        // receiver when it survived the whole crash, else any survivor.
        let shape_v = self
            .pricer
            .first_receiver()
            .filter(|&v| self.with_engine(|e| e.snode_of(v).is_ok()))
            .or_else(|| self.roster.first().map(|&(_, v)| v));
        let (record_len, participants) = match shape_v {
            Some(v) => self.record_shape_of(v),
            None => (1, 1),
        };
        let cost = self.pricer.finish_remove(record_len, participants);
        self.acc.absorb(cost);
        self.acc.transfers += self.pricer.transfers();
        self.acc.entries_migrated += relocated;
        self.acc.leaves += vnodes_failed as u64;
        if failover {
            self.acc.failovers += 1;
        } else {
            self.acc.crashes += 1;
        }
        self.crashed.push((tag, count as u32));
        self.acc.keys_lost += keys_lost;
        if keys_lost > 0 {
            self.prune_lost_probes();
        }
    }

    /// Brings a crashed snode back with the capacity it held at crash
    /// time. The replicated overlay replays the snode's write-ahead log
    /// (the durability tier's fast path — timed into `wal_replay_ms`);
    /// the bare and plain-KV plants have no log to replay, so the return
    /// is an ordinary re-enrollment of the same tag.
    fn rejoin_tag(&mut self, tag: NodeTag, vnodes: u32) {
        if self.roster.iter().any(|(t, _)| *t == tag) {
            // The tag re-enrolled through the event stream while down —
            // there is nothing to bring back.
            self.acc.skipped += 1;
            return;
        }
        if matches!(self.plant, Plant::Repl(_)) {
            self.rejoin_repl(tag);
            return;
        }
        if let Some(r) = &mut self.router {
            r.note_capacity(SnodeId(tag.0), vnodes.max(1));
        }
        for _ in 0..vnodes.max(1) {
            self.create_one(tag);
        }
        self.acc.rejoins += 1;
    }

    /// The replicated overlay's rejoin: re-enrol the crashed snode's
    /// vnodes, rebuild their ranges in-line, replay the surviving WAL and
    /// checkpoint it — one composite creation event, priced like a join
    /// of the whole returning node.
    fn rejoin_repl(&mut self, tag: NodeTag) {
        let snode = SnodeId(tag.0);
        self.pricer.begin();
        let serve_live = self.serves_live();
        let started = Instant::now();
        let result = {
            let Plant::Repl(store) = &mut self.plant else {
                unreachable!("caller checked the plant")
            };
            let mut g = store.write();
            if serve_live {
                let r = g.rejoin_snode_with(snode, &mut Tee(&mut self.builder, &mut self.pricer));
                if let Ok(report) = &r {
                    for &v in &report.handles {
                        self.builder.note_create(v, snode);
                    }
                    self.builder.publish(&self.serve);
                }
                r
            } else {
                g.rejoin_snode_with(snode, &mut self.pricer)
            }
        };
        let report = match result {
            Ok(report) => report,
            Err(_) => {
                // The store no longer remembers the crash (e.g. the event
                // stream shrank the fleet past it) — state-parallel skip.
                self.acc.skipped += 1;
                return;
            }
        };
        self.acc.wal_replay_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (record_len, participants) = match report.handles.first() {
            Some(&v) => self.record_shape_of(v),
            None => (1, 1),
        };
        let cost = self.pricer.finish_create(record_len, participants);
        self.acc.absorb(cost);
        self.acc.transfers += self.pricer.transfers();
        self.acc.entries_migrated += report.repair.copies_placed + report.recovered;
        self.acc.repair_bytes += report.repair.bytes_shipped;
        self.repair_bytes_full += report.repair.bytes_full;
        self.acc.joins += report.handles.len() as u64;
        self.acc.rejoins += 1;
        for &v in &report.handles {
            self.roster.push((tag, v));
        }
        if let Some(r) = &mut self.router {
            r.note_capacity(snode, report.handles.len().max(1) as u32);
            for &v in &report.handles {
                r.note_join(v, snode, self.clock);
            }
        }
    }

    /// Drops probe keys whose every replica a crash just destroyed — they
    /// are accounted in `keys_lost`, and keeping them would misreport the
    /// loss a second time as `lost_lookups`.
    fn prune_lost_probes(&mut self) {
        let Plant::Repl(store) = &self.plant else { return };
        let store = store.read();
        let keys = std::mem::take(&mut self.probe_keys);
        let owners = std::mem::take(&mut self.probe_owner);
        for (key, owner) in keys.into_iter().zip(owners) {
            if store.get(key.as_bytes()).is_some() {
                self.probe_keys.push(key);
                self.probe_owner.push(owner);
            }
        }
    }

    /// `(record length, participant snodes)` of the record governing `v`'s
    /// region — the inputs [`CostModel`] prices synchronisation with.
    /// Served by the engines' incrementally-maintained counts, so pricing
    /// an event never materialises a PDR.
    fn record_shape_of(&self, v: VnodeId) -> (u64, u64) {
        self.with_engine(|e| e.record_shape_of(v).expect("live vnode has a record"))
    }

    /// Loads the KV population once the DHT can own keys (first join).
    fn load_kv_if_pending(&mut self) {
        let Some((entries, value_len)) = self.pending_load.take() else { return };
        let keys = UniformKeys::new(entries);
        match &mut self.plant {
            Plant::Bare(_) => return, // only overlay plants carry a load
            Plant::Kv(svc) => {
                for i in 0..entries {
                    svc.put(keys.key_at(i), value_of(value_len, i));
                }
            }
            Plant::Repl(store) => {
                let mut g = store.write();
                for i in 0..entries {
                    g.put(keys.key_at(i), value_of(value_len, i));
                }
            }
        }
        let probes = self.cfg.probes.min(entries as usize).max(1);
        let stride = (entries / probes as u64).max(1);
        self.probe_keys = (0..probes as u64).map(|i| keys.key_at((i * stride) % entries)).collect();
        let owners = &mut self.probe_owner;
        let probe_keys = &self.probe_keys;
        match &self.plant {
            Plant::Bare(_) => {}
            Plant::Kv(svc) => svc.with_read(|store| {
                *owners = probe_keys.iter().map(|k| store.route(k.as_bytes())).collect();
            }),
            Plant::Repl(store) => {
                let store = store.read();
                *owners = probe_keys.iter().map(|k| store.route(k.as_bytes())).collect();
            }
        }
        // Readers switch from routing-only probes to real gets from here.
        self.loaded.store(true, Ordering::Release);
    }
}

impl<E: DhtEngine + Send + Sync> ChurnDriver<E> {
    /// Replays a whole stream and finishes the run. With
    /// [`ChurnDriver::with_readers`] the serving plane runs concurrently
    /// for the duration of the replay.
    pub fn run(mut self, stream: &EventStream) -> ChurnOutcome {
        self.run_started = Some(Instant::now());
        if self.readers == 0 {
            for e in stream.events() {
                self.step(e);
            }
            return self.finish(stream.horizon());
        }
        self.run_threaded(stream)
    }

    fn run_threaded(mut self, stream: &EventStream) -> ChurnOutcome {
        let cell = Arc::clone(self.serve_cell());
        let stats = Arc::clone(&self.read_stats);
        let loaded = Arc::clone(&self.loaded);
        let entries = self.pending_load.map(|(n, _)| n).unwrap_or(0);
        let target = self.read_target();
        let stop = Arc::new(AtomicBool::new(false));
        let writer_pace = self.writer_pace;
        let (burst, pace) = (self.read_burst, self.read_pace);
        std::thread::scope(|s| {
            for t in 0..self.readers {
                let cell = Arc::clone(&cell);
                let stats = Arc::clone(&stats);
                let loaded = Arc::clone(&loaded);
                let stop = Arc::clone(&stop);
                let target = target.clone();
                s.spawn(move || {
                    reader_loop(
                        t as u64, &cell, &target, entries, &loaded, &stop, &stats, burst, pace,
                    )
                });
            }
            self.read_mark = ReadMark { at: Instant::now(), counters: ReadCounters::zero() };
            for e in stream.events() {
                self.step(e);
                if !writer_pace.is_zero() {
                    std::thread::sleep(writer_pace);
                }
            }
            let outcome = self.finish(stream.horizon());
            // Scope exit joins the readers; release them first.
            stop.store(true, Ordering::Relaxed);
            outcome
        })
    }
}

/// One serving-plane reader: pin the latest snapshot, issue a burst of
/// reads against it, pause, repeat. Stale pins are re-pinned (counted as
/// stale retries); a read that settles at the current epoch and still
/// misses counts as a read error.
#[allow(clippy::too_many_arguments)]
fn reader_loop<E: DhtEngine>(
    id: u64,
    cell: &SnapshotCell,
    target: &ReadTarget<E>,
    entries: u64,
    loaded: &AtomicBool,
    stop: &AtomicBool,
    stats: &ReadStats,
    burst: usize,
    pace: Duration,
) {
    let keys = UniformKeys::new(entries.max(1));
    // A cheap xorshift per thread: read metrics are wall-clock figures,
    // so the key choice carries no determinism contract.
    let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id + 1) | 1;
    let mut snap = cell.load();
    while !stop.load(Ordering::Relaxed) {
        if cell.is_stale(&snap) {
            snap = cell.load();
        }
        for _ in 0..burst {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t0 = Instant::now();
            let (retries, error) = one_read(cell, target, &mut snap, &keys, entries, loaded, x);
            stats.record(t0.elapsed().as_nanos() as u64, retries, error);
        }
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
}

fn one_read<E: DhtEngine>(
    cell: &SnapshotCell,
    target: &ReadTarget<E>,
    snap: &mut Arc<EngineSnapshot>,
    keys: &UniformKeys,
    entries: u64,
    loaded: &AtomicBool,
    draw: u64,
) -> (u32, bool) {
    let have_data = entries > 0 && loaded.load(Ordering::Acquire);
    match target {
        ReadTarget::Kv(svc) if have_data => {
            let key = keys.key_at(draw % entries);
            let got = svc.get_routed(snap, key.as_bytes());
            (got.retries, got.value.is_none())
        }
        ReadTarget::Repl(store) if have_data => {
            // A settled miss is genuine — only reachable when crashes
            // destroyed every copy, i.e. R was too low for the burst.
            let key = keys.key_at(draw % entries);
            let got = store.read().get_quorum_routed(cell, snap, key.as_bytes());
            (got.retries, got.read.value.is_none())
        }
        // Routing-plane read: resolve a random point at the pinned epoch.
        _ => {
            let point = snap.space().fold(draw);
            let miss = !snap.is_empty() && snap.lookup(point).is_none();
            (0, miss)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Capacity, Lifetime, Process};
    use crate::scenario::Scenario;
    use domus_core::{DhtConfig, GlobalDht, LocalDht};
    use domus_hashspace::HashSpace;

    fn local() -> LocalDht {
        LocalDht::with_seed(DhtConfig::new(HashSpace::full(), 8, 4).unwrap(), 0xC0)
    }

    fn small_scenario() -> Scenario {
        Scenario::new(SimTime::millis(120_000))
            .with(Process::InitialFleet { nodes: 8, capacity: Capacity::Fixed(1) })
            .with(Process::Poisson {
                rate_per_s: 1.0,
                lifetime: Lifetime::Exponential { mean: SimTime::millis(20_000) },
                capacity: Capacity::Uniform { lo: 1, hi: 2 },
            })
            .with(Process::GroupFailure { at: SimTime::millis(80_000), fraction: 0.25 })
    }

    #[test]
    fn bare_replay_tracks_engine_population() {
        let stream = small_scenario().build(1);
        let driver = ChurnDriver::new(local(), DriverConfig::default());
        let outcome = driver.run(&stream);
        assert_eq!(outcome.totals.events, stream.len() as u64);
        assert!(outcome.totals.joins > 0 && outcome.totals.leaves > 0);
        // Roster bookkeeping matches the engine's own census.
        assert_eq!(
            outcome.final_balance.vnodes as u64,
            outcome.totals.joins - outcome.totals.leaves
        );
        // Windows tile the horizon exactly: 120 s / 30 s = 4 windows.
        assert_eq!(outcome.samples.len(), 4);
        assert!(outcome.totals.messages > 0 && outcome.totals.service > SimTime::ZERO);
    }

    #[test]
    fn replay_leaves_invariants_intact() {
        let stream = small_scenario().build(3);
        let mut driver = ChurnDriver::new(local(), DriverConfig::default());
        for e in stream.events() {
            driver.step(e);
        }
        driver.with_engine(|e| e.check_invariants().expect("invariants after churn"));
        let outcome = driver.finish(stream.horizon());
        assert!(outcome.final_balance.vnodes >= 1);
    }

    #[test]
    fn kv_overlay_measures_data_plane_and_loses_nothing() {
        let stream = small_scenario().build(2);
        let driver = ChurnDriver::with_kv(local(), DriverConfig::default(), 2_000, 16);
        let outcome = driver.run(&stream);
        assert_eq!(outcome.totals.lost_lookups, 0, "churn must never lose a key");
        assert!(outcome.totals.entries_migrated > 0, "churn must move data");
        assert!(outcome.totals.mean_availability > 0.0);
        assert!(
            outcome.samples.iter().any(|s| s.availability < 1.0),
            "a failure event must disturb some owners"
        );
    }

    #[test]
    fn outcome_csv_is_deterministic() {
        let stream = small_scenario().build(5);
        let a = ChurnDriver::with_kv(local(), DriverConfig::default(), 1_000, 8).run(&stream);
        let b = ChurnDriver::with_kv(local(), DriverConfig::default(), 1_000, 8).run(&stream);
        assert_eq!(a, b);
        assert_eq!(a.csv_string(), b.csv_string());
        assert!(a.csv_string().starts_with("window,t_ms,"));
    }

    #[test]
    fn identical_stream_replays_into_every_engine() {
        let scenario = small_scenario();
        let s1 = scenario.build(9);
        let s2 = scenario.build(9);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        let l = ChurnDriver::new(local(), DriverConfig::default()).run(&s1);
        let g = ChurnDriver::new(
            GlobalDht::with_seed(DhtConfig::new(HashSpace::full(), 8, 1).unwrap(), 0xC1),
            DriverConfig::default(),
        )
        .run(&s2);
        // Same membership trajectory on both engines...
        assert_eq!(l.totals.joins, g.totals.joins);
        assert_eq!(l.totals.leaves, g.totals.leaves);
        assert_eq!(l.final_balance.vnodes, g.final_balance.vnodes);
        // ...while the engines differ where they should (group structure).
        assert_eq!(g.final_balance.groups, 1);
        assert!(l.final_balance.groups > 1);
    }

    #[test]
    fn boundary_exact_events_never_duplicate_window_timestamps() {
        // A truncated stream's horizon equals its last event time; when
        // that lands exactly on a window boundary (here 30 s, the default
        // window), the run must still emit unique, gap-free timestamps.
        let join = |at_ms: u64, tag: u32| crate::event::ChurnEvent {
            at: SimTime::millis(at_ms),
            kind: EventKind::Join { node: NodeTag(tag), vnodes: 1 },
        };
        let stream = EventStream::new(
            vec![join(10_000, 0), join(20_000, 1), join(30_000, 2)],
            SimTime::millis(30_000),
        );
        let outcome = ChurnDriver::new(local(), DriverConfig::default()).run(&stream);
        assert_eq!(outcome.samples.len(), 1, "one window, no zero-width duplicate");
        assert_eq!(outcome.samples[0].end, SimTime::millis(30_000));
        assert_eq!(outcome.samples[0].events, 3, "the boundary event belongs to the window");
        // And with a gap past the boundary, windows stay unique too.
        let stream = EventStream::new(
            vec![join(10_000, 0), join(30_000, 1), join(45_000, 2)],
            SimTime::millis(60_000),
        );
        let outcome = ChurnDriver::new(local(), DriverConfig::default()).run(&stream);
        let ends: Vec<SimTime> = outcome.samples.iter().map(|s| s.end).collect();
        assert_eq!(ends, vec![SimTime::millis(30_000), SimTime::millis(60_000)]);
        assert_eq!(outcome.samples[0].events, 2);
        assert_eq!(outcome.samples[1].events, 1);
    }

    fn crashy_scenario() -> Scenario {
        Scenario::new(SimTime::millis(120_000))
            .with(Process::InitialFleet { nodes: 10, capacity: Capacity::Fixed(1) })
            .with(Process::Poisson {
                rate_per_s: 0.5,
                lifetime: Lifetime::Exponential { mean: SimTime::millis(40_000) },
                capacity: Capacity::Fixed(1),
            })
            .with(Process::RandomCrashes { rate_per_s: 0.08 })
    }

    #[test]
    fn replicated_overlay_survives_crashes_at_r2() {
        // One crash per 30 s window: the end-of-window repair always runs
        // between failures, so R=2 provably loses nothing (a single crash
        // destroys at most one of two distinct-snode copies).
        let stream = Scenario::new(SimTime::millis(120_000))
            .with(Process::InitialFleet { nodes: 10, capacity: Capacity::Fixed(1) })
            .with(Process::Poisson {
                rate_per_s: 0.3,
                lifetime: Lifetime::Forever,
                capacity: Capacity::Fixed(1),
            })
            .with(Process::CrashStorm {
                at: SimTime::millis(20_000),
                crashes: 1,
                spread: SimTime::ZERO,
            })
            .with(Process::CrashStorm {
                at: SimTime::millis(50_000),
                crashes: 1,
                spread: SimTime::ZERO,
            })
            .with(Process::CrashStorm {
                at: SimTime::millis(80_000),
                crashes: 1,
                spread: SimTime::ZERO,
            })
            .build(6);
        let driver = ChurnDriver::with_replication(local(), DriverConfig::default(), 1_500, 16, 2);
        let outcome = driver.run(&stream);
        assert!(outcome.totals.crashes > 0, "the scenario must crash nodes");
        assert_eq!(outcome.totals.keys_lost, 0, "R=2 with per-window repair loses nothing");
        assert_eq!(outcome.totals.lost_lookups, 0);
        assert!(outcome.totals.repaired > 0, "crashes must leave work for repair");
        assert!(
            outcome.samples.iter().any(|s| s.quorum_availability < 1.0),
            "a crash window must dent quorum availability before repair"
        );
        assert_eq!(outcome.samples.last().unwrap().keys_total, 1_500);
    }

    #[test]
    fn unreplicated_crashes_lose_exactly_what_accounting_says() {
        let stream = crashy_scenario().build(11);
        let driver = ChurnDriver::with_replication(local(), DriverConfig::default(), 1_500, 16, 1);
        let outcome = driver.run(&stream);
        assert!(outcome.totals.crashes > 0);
        assert!(outcome.totals.keys_lost > 0, "R=1 crashes must lose keys");
        // Exact accounting: the survivors plus the accounted losses cover
        // the whole population.
        let final_keys = outcome.samples.last().unwrap().keys_total;
        assert_eq!(final_keys + outcome.totals.keys_lost, 1_500);
        assert_eq!(outcome.totals.lost_lookups, 0, "losses are accounted, never silent");
    }

    #[test]
    fn replicated_replay_is_deterministic_and_parallel_across_backends() {
        let scenario = crashy_scenario();
        let (s1, s2) = (scenario.build(9), scenario.build(9));
        let a = ChurnDriver::with_replication(local(), DriverConfig::default(), 800, 8, 3).run(&s1);
        let b = ChurnDriver::with_replication(local(), DriverConfig::default(), 800, 8, 3).run(&s2);
        assert_eq!(a, b, "same seed ⇒ identical replicated outcome");
        assert!(a.csv_string().contains("quorum_availability"));
        let g = ChurnDriver::with_replication(
            GlobalDht::with_seed(DhtConfig::new(HashSpace::full(), 8, 1).unwrap(), 0xD1),
            DriverConfig::default(),
            800,
            8,
            3,
        )
        .run(&scenario.build(9));
        assert_eq!(a.totals.joins, g.totals.joins, "identical membership trajectory");
        assert_eq!(a.totals.crashes, g.totals.crashes);
    }

    #[test]
    fn readers_hammer_the_kv_serving_plane_without_errors() {
        let stream = small_scenario().build(7);
        let driver = ChurnDriver::with_kv(local(), DriverConfig::default(), 1_000, 8)
            .with_readers(2)
            .with_writer_pace(Duration::from_micros(300));
        let outcome = driver.run(&stream);
        assert!(outcome.totals.reads > 0, "readers must complete reads during replay");
        assert_eq!(outcome.totals.read_errors, 0, "graceful churn must never fail a read");
        assert_eq!(outcome.totals.lost_lookups, 0);
        assert!(outcome.totals.reads_per_sec > 0.0);
        assert!(outcome.totals.read_p99_ns >= outcome.totals.read_p50_ns);
        assert!(
            outcome.samples.iter().map(|s| s.reads).sum::<u64>() <= outcome.totals.reads,
            "window reads are a subset of the run total"
        );
        let csv = outcome.csv_string();
        assert!(csv.contains("reads_per_sec") && csv.contains("read_p99_ns"));
    }

    #[test]
    fn readers_survive_crashes_on_the_replicated_plane_at_r2() {
        let stream = Scenario::new(SimTime::millis(120_000))
            .with(Process::InitialFleet { nodes: 10, capacity: Capacity::Fixed(1) })
            // One crash per window: repair runs between failures, so R=2
            // provably loses nothing and every read must succeed.
            .with(Process::CrashStorm {
                at: SimTime::millis(40_000),
                crashes: 1,
                spread: SimTime::ZERO,
            })
            .with(Process::CrashStorm {
                at: SimTime::millis(80_000),
                crashes: 1,
                spread: SimTime::ZERO,
            })
            .build(13);
        let driver = ChurnDriver::with_replication(local(), DriverConfig::default(), 800, 8, 2)
            .with_readers(2)
            .with_writer_pace(Duration::from_micros(300));
        let outcome = driver.run(&stream);
        assert!(outcome.totals.crashes > 0);
        assert_eq!(outcome.totals.keys_lost, 0);
        assert!(outcome.totals.reads > 0);
        assert_eq!(
            outcome.totals.read_errors, 0,
            "R=2 must serve every quorum read through crashes"
        );
    }

    #[test]
    fn readers_route_on_the_bare_plane() {
        let stream = small_scenario().build(21);
        let driver = ChurnDriver::new(local(), DriverConfig::default())
            .with_readers(2)
            .with_writer_pace(Duration::from_micros(300));
        let outcome = driver.run(&stream);
        assert!(outcome.totals.reads > 0);
        assert_eq!(outcome.totals.read_errors, 0, "a published epoch always routes every point");
    }

    #[test]
    fn reader_columns_are_deterministic_zeros_without_readers() {
        let stream = small_scenario().build(5);
        let outcome = ChurnDriver::with_kv(local(), DriverConfig::default(), 500, 8).run(&stream);
        assert_eq!(outcome.totals.reads, 0);
        assert_eq!(outcome.totals.read_errors, 0);
        assert!(outcome.samples.iter().all(|s| s.reads == 0 && s.stale_rate == 0.0));
        // Without readers *and* without a router, both column groups
        // stay all-zero and the CSV is byte-deterministic.
        assert_eq!(outcome.totals.failovers, 0);
        assert_eq!(outcome.totals.route_moves, 0);
        assert!(outcome.samples.iter().all(|s| s.leases_live == 0 && s.route_version == 0));
        for line in outcome.csv_string().lines().skip(1) {
            assert!(
                line.ends_with(",0,0.0,0,0,0.0000,0,0,0.0000,0,0,0,0,0,0,0.000,0,0"),
                "read, route and durability columns stay zero: {line}"
            );
        }
    }

    #[test]
    fn a_silent_stall_fails_over_via_lease_expiry_with_zero_loss_at_r2() {
        let stream = Scenario::hotspot_failover().build(17);
        let driver = ChurnDriver::with_replication(local(), DriverConfig::default(), 1_200, 16, 2)
            .with_router(RouterConfig::default());
        let outcome = driver.run(&stream);
        assert!(outcome.totals.leases_expired >= 1, "the stall must lapse leases");
        assert!(outcome.totals.failovers >= 1, "a lapsed lease must fail over");
        assert_eq!(outcome.totals.crashes, 0, "no crash notification was ever delivered");
        assert_eq!(outcome.totals.keys_lost, 0, "R=2: failover + repair lose nothing");
        assert_eq!(outcome.totals.lost_lookups, 0);
        assert_eq!(outcome.totals.lease_violations, 0, "lease safety holds every window");
        assert!(outcome.samples.iter().any(|s| s.failovers > 0));
        // The route probe sees live epochs: versions advance, and the
        // cache repairs staleness in at most one round per window.
        assert!(outcome.samples.last().unwrap().route_version > 0);
        assert!(outcome.samples.iter().any(|s| s.cache_stale > 0));
        assert!(outcome.samples.iter().all(|s| s.cache_stale <= 1));
    }

    #[test]
    fn crashed_snodes_rejoin_by_replaying_their_wal() {
        let stream = Scenario::durability(1.0).build(9);
        let driver = ChurnDriver::with_replication(local(), DriverConfig::default(), 1_500, 16, 2);
        let outcome = driver.run(&stream);
        assert!(outcome.totals.crashes >= 1, "{} crashes", outcome.totals.crashes);
        assert!(
            outcome.totals.rejoins >= 1,
            "crashed snodes must come back: {} rejoins",
            outcome.totals.rejoins
        );
        assert!(outcome.samples.iter().any(|s| s.rejoins > 0));
        // Anti-entropy ships digest-selected bytes while the fleet is
        // degraded, and the quorum gap closes again after each rejoin.
        assert!(outcome.totals.repair_bytes > 0, "digest repair must ship bytes");
        assert!(
            outcome.totals.repair_bytes < outcome.totals.repair_bytes_full,
            "digest-driven repair must ship less than a full rebuild: {} vs {}",
            outcome.totals.repair_bytes,
            outcome.totals.repair_bytes_full
        );
        assert!(
            outcome.totals.time_to_full_quorum_windows >= 1,
            "a 1.5-window downtime must register a quorum gap"
        );
        assert_eq!(outcome.totals.lost_lookups, 0, "surviving probes always read back");
    }

    #[test]
    fn bare_plant_rejoins_are_plain_reenrollments() {
        // The bare plant has no WAL: a rejoin re-enrolls the crashed tag
        // at its crash-time capacity, and the durability columns stay
        // deterministic zeros.
        let stream = Scenario::new(SimTime::millis(120_000))
            .with(Process::InitialFleet { nodes: 6, capacity: Capacity::Fixed(1) })
            .with(Process::CrashRejoin {
                at: SimTime::millis(30_000),
                cycles: 2,
                spread: SimTime::millis(10_000),
                downtime: SimTime::millis(10_000),
            })
            .build(13);
        let rejoins = stream
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RejoinRank { .. }))
            .count() as u64;
        assert!(rejoins >= 1);
        let outcome = ChurnDriver::new(local(), DriverConfig::default()).run(&stream);
        assert_eq!(outcome.totals.rejoins, rejoins, "every paired rejoin executes");
        assert_eq!(outcome.totals.repair_bytes, 0, "no overlay, no repair traffic");
        assert_eq!(outcome.totals.wal_replay_ms, 0.0, "no WAL on the bare plant");
    }

    #[test]
    fn rejoin_events_are_skipped_while_nothing_is_crashed() {
        let events = vec![ChurnEvent {
            at: SimTime::millis(10_000),
            kind: EventKind::RejoinRank { draw: 7 },
        }];
        let stream = EventStream::new(events, SimTime::millis(20_000));
        let mut driver = ChurnDriver::new(local(), DriverConfig::default());
        driver.step(&ChurnEvent {
            at: SimTime::millis(1),
            kind: EventKind::Join { node: NodeTag(0), vnodes: 2 },
        });
        for e in stream.events() {
            driver.step(e);
        }
        let outcome = driver.finish(stream.horizon());
        assert_eq!(outcome.totals.rejoins, 0);
        assert_eq!(outcome.totals.skipped, 1, "a rejoin with no crashed roster skips");
    }

    #[test]
    fn a_degraded_snode_is_detected_and_rebalanced_within_bounded_windows() {
        let stream = Scenario::hotspot_failover().build(17);
        let driver = ChurnDriver::with_kv(local(), DriverConfig::default(), 1_000, 8)
            .with_router(RouterConfig::default());
        let outcome = driver.run(&stream);
        assert!(outcome.totals.hot_windows >= 1, "the degrade must trip the detector");
        assert!(outcome.totals.route_moves >= 1, "a hot snode must shed");
        assert!(outcome.totals.route_converged, "the imbalance must be rebalanced away");
        assert!(
            outcome.totals.route_convergence <= 3,
            "convergence must be bounded: {} windows",
            outcome.totals.route_convergence
        );
        assert_eq!(outcome.totals.lost_lookups, 0, "moves migrate data, never lose it");
        assert_eq!(outcome.totals.lease_violations, 0);
    }

    #[test]
    fn routed_replay_is_deterministic() {
        let scenario = Scenario::hotspot_failover();
        let run = || {
            ChurnDriver::with_replication(local(), DriverConfig::default(), 800, 8, 2)
                .with_router(RouterConfig::default())
                .run(&scenario.build(3))
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "the control plane runs on simulated time — byte-deterministic");
        assert_eq!(a.csv_string(), b.csv_string());
        assert!(a.csv_string().starts_with("window,t_ms,"));
        assert!(a.csv_string().contains("route_version"));
    }

    #[test]
    fn stall_and_degrade_events_are_skipped_without_a_router() {
        let stream = Scenario::hotspot_failover().build(5);
        let outcome = ChurnDriver::new(local(), DriverConfig::default()).run(&stream);
        assert_eq!(outcome.totals.failovers, 0);
        assert_eq!(outcome.totals.route_moves, 0);
        assert_eq!(
            outcome.totals.skipped, 2,
            "one stall + one degrade are unobservable without a control plane"
        );
    }

    #[test]
    fn availability_series_extraction() {
        let stream = small_scenario().build(4);
        let outcome = ChurnDriver::with_kv(local(), DriverConfig::default(), 500, 8).run(&stream);
        let s = outcome.series("availability", |w| w.availability);
        assert_eq!(s.len(), outcome.samples.len());
        assert!(s.y.iter().all(|&y| (0.0..=1.0).contains(&y)));
    }
}

//! # domus-wal
//!
//! The durability tier under the DHT's storage overlay: a per-snode,
//! **segmented, in-process write-ahead log** plus **Merkle anti-entropy
//! digests**, so a crashed snode can *rejoin and replay* its own log
//! instead of being rebuilt wholesale from replicas, and repair ships
//! only the buckets that actually diverge.
//!
//! * [`record`] — CRC-framed record types (puts, removes, placements).
//! * [`log`] — append-only [`WalSegment`]s with dense sequence numbers,
//!   byte-capped rotation, and whole-segment truncation at checkpoints.
//! * [`digest`] — incremental per-range hash trees whose Merkle descent
//!   ([`DigestTree::diff`]) pinpoints divergent leaf ranges.
//! * [`crc`] — the CRC-32 (ISO-HDLC) each frame is sealed with.
//!
//! The log is deliberately storage-agnostic: frames are plain
//! little-endian byte runs, so persisting a segment is a single write
//! of [`WalSegment`]'s buffer and the format survives a move to disk
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod digest;
pub mod log;
pub mod record;

pub use crc::crc32;
pub use digest::{entry_hash, DigestTree, DEFAULT_LEAF_BITS};
pub use log::{Replay, SegmentedWal, WalSegment, WalStats, DEFAULT_SEGMENT_CAP};
pub use record::{WalError, WalRecord};

//! Merkle anti-entropy digests over the 64-bit ring.
//!
//! A [`DigestTree`] splits the hashed key space into `2^leaf_bits`
//! equal leaf ranges. Each leaf holds an *order-independent*
//! accumulator — the XOR of per-entry hashes — so inserting and
//! removing an entry are the same O(1) update and two stores that
//! hold the same entries reach the same leaf values regardless of
//! arrival order. Above the leaves sits a classic binary hash tree;
//! [`DigestTree::diff`] descends it, pruning equal subtrees, and
//! returns only the leaf ranges whose contents actually diverge —
//! the buckets anti-entropy must ship, instead of a full key scan.

use domus_util::SplitMix64;

/// Default tree granularity: `2^8 = 256` leaf ranges.
pub const DEFAULT_LEAF_BITS: u32 = 8;

/// An incremental Merkle digest over ring positions in `[0, 2^64)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestTree {
    /// log2 of the leaf count; leaf `i` covers positions with top
    /// `leaf_bits` bits equal to `i`.
    leaf_bits: u32,
    /// Per-leaf XOR accumulators of entry hashes.
    leaves: Vec<u64>,
}

/// Hash one stored entry into the accumulator domain. Both sides of a
/// comparison must use the same function; mixing the key hash with a
/// value fingerprint makes a changed *value* diverge, not just a
/// changed key set.
pub fn entry_hash(key: &[u8], value: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for &b in key {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Domain-separate the value bytes so ("ab","c") != ("a","bc").
    h = SplitMix64::mix(h ^ 0x9E37_79B9_7F4A_7C15);
    for &b in value {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::mix(h)
}

impl Default for DigestTree {
    fn default() -> Self {
        Self::new(DEFAULT_LEAF_BITS)
    }
}

impl DigestTree {
    /// An empty tree with `2^leaf_bits` leaves (`leaf_bits` ≤ 16).
    pub fn new(leaf_bits: u32) -> Self {
        let bits = leaf_bits.min(16);
        DigestTree { leaf_bits: bits, leaves: vec![0; 1 << bits] }
    }

    /// Number of leaf ranges.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The leaf index covering ring position `pos`.
    pub fn leaf_of(&self, pos: u64) -> usize {
        if self.leaf_bits == 0 {
            0
        } else {
            (pos >> (64 - self.leaf_bits)) as usize
        }
    }

    /// The inclusive-start/exclusive-end position range of leaf `i`
    /// (end `None` means the range runs to the top of the space).
    pub fn leaf_range(&self, i: usize) -> (u64, Option<u64>) {
        if self.leaf_bits == 0 {
            return (0, None);
        }
        let width = 64 - self.leaf_bits;
        let start = (i as u64) << width;
        if i + 1 == self.leaves.len() {
            (start, None)
        } else {
            (start, Some(((i as u64) + 1) << width))
        }
    }

    /// Toggle one entry in the digest: call once when an entry is
    /// stored at ring position `pos` and once again (same arguments)
    /// when it is removed or overwritten.
    pub fn toggle(&mut self, pos: u64, entry_hash: u64) {
        let i = self.leaf_of(pos);
        self.leaves[i] ^= entry_hash;
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.leaves.iter_mut().for_each(|l| *l = 0);
    }

    /// The Merkle root over all leaves.
    pub fn root(&self) -> u64 {
        self.fold(0, self.leaves.len())
    }

    /// Hash of the subtree spanning `leaves[lo..hi]`.
    fn fold(&self, lo: usize, hi: usize) -> u64 {
        if hi - lo == 1 {
            // Leaf node: bind the accumulator to its position so a
            // value swapped between two leaves still diverges.
            return SplitMix64::mix(self.leaves[lo] ^ (lo as u64).rotate_left(32));
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.fold(lo, mid);
        let right = self.fold(mid, hi);
        SplitMix64::mix(left.wrapping_mul(3).wrapping_add(right.rotate_left(17)))
    }

    /// Merkle descent against `other`: the list of leaf indices whose
    /// contents diverge, pruning equal subtrees without visiting them.
    /// Trees of different granularity fall back to comparing every
    /// leaf of the finer side's span.
    pub fn diff(&self, other: &DigestTree) -> Vec<usize> {
        let mut out = Vec::new();
        if self.leaf_bits != other.leaf_bits {
            // Granularity mismatch: no shared tree shape to prune on.
            for i in 0..self.leaves.len().max(other.leaves.len()) {
                let a = self.leaves.get(i).copied().unwrap_or(0);
                let b = other.leaves.get(i).copied().unwrap_or(0);
                if a != b {
                    out.push(i);
                }
            }
            return out;
        }
        self.descend(other, 0, self.leaves.len(), &mut out);
        out
    }

    fn descend(&self, other: &DigestTree, lo: usize, hi: usize, out: &mut Vec<usize>) {
        if self.fold(lo, hi) == other.fold(lo, hi) {
            return; // identical subtree: prune
        }
        if hi - lo == 1 {
            out.push(lo);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.descend(other, lo, mid, out);
        self.descend(other, mid, hi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling_twice_restores_the_empty_root() {
        let empty = DigestTree::new(6);
        let mut tree = DigestTree::new(6);
        let h = entry_hash(b"key", b"value");
        tree.toggle(0xDEAD_BEEF_0000_0000, h);
        assert_ne!(tree.root(), empty.root());
        tree.toggle(0xDEAD_BEEF_0000_0000, h);
        assert_eq!(tree.root(), empty.root());
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = DigestTree::new(6);
        let mut b = DigestTree::new(6);
        let entries: Vec<(u64, u64)> = (0..100u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), entry_hash(&i.to_le_bytes(), b"v")))
            .collect();
        for &(pos, h) in &entries {
            a.toggle(pos, h);
        }
        for &(pos, h) in entries.iter().rev() {
            b.toggle(pos, h);
        }
        assert_eq!(a.root(), b.root());
        assert!(a.diff(&b).is_empty());
    }

    #[test]
    fn diff_pinpoints_exactly_the_divergent_leaf() {
        let mut a = DigestTree::new(8);
        let mut b = DigestTree::new(8);
        for i in 0..500u64 {
            let pos = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let h = entry_hash(&i.to_le_bytes(), b"same");
            a.toggle(pos, h);
            b.toggle(pos, h);
        }
        // One extra entry on one side only.
        let pos = 0xABCD_EF01_2345_6789u64;
        a.toggle(pos, entry_hash(b"extra", b"entry"));
        let diff = a.diff(&b);
        assert_eq!(diff, vec![a.leaf_of(pos)]);
        let (start, end) = a.leaf_range(diff[0]);
        assert!(pos >= start);
        if let Some(end) = end {
            assert!(pos < end);
        }
    }

    #[test]
    fn a_changed_value_diverges_even_with_the_same_key() {
        assert_ne!(entry_hash(b"key", b"v1"), entry_hash(b"key", b"v2"));
        assert_ne!(entry_hash(b"ab", b"c"), entry_hash(b"a", b"bc"));
    }

    #[test]
    fn leaf_ranges_tile_the_space() {
        let tree = DigestTree::new(4);
        let mut next = 0u64;
        for i in 0..tree.leaf_count() {
            let (start, end) = tree.leaf_range(i);
            assert_eq!(start, next);
            match end {
                Some(e) => next = e,
                None => assert_eq!(i, tree.leaf_count() - 1),
            }
        }
    }
}

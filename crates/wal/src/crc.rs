//! CRC-32 (ISO-HDLC / IEEE 802.3) over record payloads.
//!
//! The table-driven form: one 256-entry table built at first use from
//! the reflected polynomial `0xEDB8_8320`, then one lookup per byte.
//! This is the same checksum `zlib` frames with, so a future on-disk
//! WAL can interoperate with standard tooling.

/// The reflected CRC-32 polynomial (ISO-HDLC).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed once in a `const` context so
/// the crate stays dependency-free and allocation-free here.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data`, with the conventional init/final inversion.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[usize::from((crc as u8) ^ b)];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"domus"), crc32(b"domus"));
    }

    #[test]
    fn single_bit_flip_changes_the_sum() {
        let a = crc32(b"hello, wal");
        let b = crc32(b"hello, wam");
        assert_ne!(a, b);
    }
}

//! The segmented log proper: append, rotate, checkpoint, replay.
//!
//! A [`SegmentedWal`] is a queue of append-only [`WalSegment`]s. Appends
//! go to the tail segment; once the tail exceeds the configured byte
//! cap a fresh segment is opened (rotation). A checkpoint marks every
//! record below a sequence number as re-derivable from checkpointed
//! state; truncation then drops whole segments that fell entirely
//! below the mark — individual frames are never rewritten, which is
//! what makes the log crash-consistent.

use crate::record::{WalError, WalRecord};
use std::collections::VecDeque;

/// One append-only run of CRC-framed records.
///
/// Segments are identified by the sequence number of their first
/// record (`base_seq`), mirroring on-disk WAL file naming
/// (`<base_seq>.log`), so rotation and truncation stay cheap: both
/// are whole-segment operations.
#[derive(Debug, Clone, Default)]
pub struct WalSegment {
    /// Sequence number of the first record in this segment.
    base_seq: u64,
    /// Sequence number one past the last record in this segment.
    end_seq: u64,
    /// The framed bytes, appended in sequence order.
    frames: Vec<u8>,
}

impl WalSegment {
    fn new(base_seq: u64) -> Self {
        WalSegment { base_seq, end_seq: base_seq, frames: Vec::new() }
    }

    /// Sequence number of the first record held here.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Number of records held here.
    pub fn records(&self) -> u64 {
        self.end_seq - self.base_seq
    }

    /// Framed size in bytes.
    pub fn bytes(&self) -> usize {
        self.frames.len()
    }
}

/// Counters a [`SegmentedWal`] maintains across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended in total (monotone; survives truncation).
    pub appended: u64,
    /// Bytes appended in total (monotone; survives truncation).
    pub appended_bytes: u64,
    /// Segment rotations performed.
    pub rotations: u64,
    /// Whole segments dropped by checkpoint truncation.
    pub truncated_segments: u64,
}

/// A per-snode, in-process segmented write-ahead log.
#[derive(Debug, Clone)]
pub struct SegmentedWal {
    /// Rotation threshold: a tail segment at or above this many bytes
    /// is sealed and a fresh one opened on the next append.
    segment_cap: usize,
    /// Live segments, oldest first. Never empty.
    segments: VecDeque<WalSegment>,
    /// Sequence number the next append receives.
    next_seq: u64,
    /// Records below this sequence number are checkpointed.
    checkpoint: u64,
    /// Lifetime counters.
    stats: WalStats,
}

/// Default rotation threshold: 64 KiB per segment.
pub const DEFAULT_SEGMENT_CAP: usize = 64 * 1024;

impl Default for SegmentedWal {
    fn default() -> Self {
        Self::new(DEFAULT_SEGMENT_CAP)
    }
}

impl SegmentedWal {
    /// A fresh, empty log rotating at `segment_cap` bytes (min 1).
    pub fn new(segment_cap: usize) -> Self {
        SegmentedWal {
            segment_cap: segment_cap.max(1),
            segments: VecDeque::from([WalSegment::new(0)]),
            next_seq: 0,
            checkpoint: 0,
            stats: WalStats::default(),
        }
    }

    /// Append one record; returns the sequence number it was assigned.
    /// Rotates to a fresh segment first if the tail is at capacity.
    pub fn append(&mut self, record: &WalRecord) -> u64 {
        let seq = self.next_seq;
        if self.tail().frames.len() >= self.segment_cap && self.tail().records() > 0 {
            self.segments.push_back(WalSegment::new(seq));
            self.stats.rotations += 1;
        }
        let tail = self.segments.back_mut().expect("segments never empty");
        let written = record.encode_frame(seq, &mut tail.frames);
        tail.end_seq = seq + 1;
        self.next_seq = seq + 1;
        self.stats.appended += 1;
        self.stats.appended_bytes += written as u64;
        seq
    }

    fn tail(&self) -> &WalSegment {
        self.segments.back().expect("segments never empty")
    }

    /// Mark every record with `seq < upto` as checkpointed and drop
    /// whole segments that fell entirely below the mark. Returns the
    /// number of segments dropped. The mark never moves backwards.
    pub fn checkpoint(&mut self, upto: u64) -> usize {
        self.checkpoint = self.checkpoint.max(upto.min(self.next_seq));
        let mut dropped = 0;
        while self.segments.len() > 1
            && self.segments.front().expect("non-empty").end_seq <= self.checkpoint
        {
            self.segments.pop_front();
            dropped += 1;
        }
        // The tail is only dropped by replacement, never popped: an
        // empty queue would lose the next_seq anchoring.
        if self.segments.len() == 1
            && self.segments[0].end_seq <= self.checkpoint
            && self.segments[0].records() > 0
        {
            self.segments[0] = WalSegment::new(self.next_seq);
            dropped += 1;
        }
        self.stats.truncated_segments += dropped as u64;
        dropped
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The current checkpoint mark: records below it are not replayed.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint
    }

    /// Records currently replayable (appended, not yet checkpointed).
    pub fn pending(&self) -> u64 {
        self.next_seq - self.checkpoint
    }

    /// Live (non-truncated) framed bytes across all segments.
    pub fn bytes(&self) -> usize {
        self.segments.iter().map(WalSegment::bytes).sum()
    }

    /// Number of live segments (always at least one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Iterate the un-checkpointed suffix in sequence order. Each item
    /// is the record with its sequence number, or the framing error
    /// that stopped replay (iteration ends after the first error).
    pub fn replay(&self) -> Replay<'_> {
        // Skip whole segments below the checkpoint; within the first
        // surviving segment, frames below the mark are skipped lazily.
        let start = self
            .segments
            .iter()
            .position(|s| s.end_seq > self.checkpoint)
            .unwrap_or(self.segments.len());
        Replay { wal: self, segment: start, offset: 0, done: false }
    }
}

/// Iterator over a [`SegmentedWal`]'s replayable suffix.
#[derive(Debug)]
pub struct Replay<'a> {
    wal: &'a SegmentedWal,
    segment: usize,
    offset: usize,
    done: bool,
}

impl Iterator for Replay<'_> {
    type Item = Result<(u64, WalRecord), WalError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            let seg = self.wal.segments.get(self.segment)?;
            if self.offset >= seg.frames.len() {
                self.segment += 1;
                self.offset = 0;
                continue;
            }
            match WalRecord::decode_frame(&seg.frames, self.offset) {
                Ok((seq, record, end)) => {
                    self.offset = end;
                    if seq < self.wal.checkpoint {
                        continue; // below the mark inside a kept segment
                    }
                    return Some(Ok((seq, record)));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn put(i: u64) -> WalRecord {
        WalRecord::Put {
            key: Bytes::from(format!("key-{i:04}")),
            value: Bytes::from(format!("val-{i}")),
        }
    }

    #[test]
    fn appends_assign_dense_sequence_numbers() {
        let mut wal = SegmentedWal::new(1 << 20);
        for i in 0..10 {
            assert_eq!(wal.append(&put(i)), i);
        }
        assert_eq!(wal.next_seq(), 10);
        assert_eq!(wal.pending(), 10);
        let got: Vec<u64> = wal.replay().map(|r| r.expect("clean").0).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rotation_seals_segments_at_the_byte_cap() {
        let mut wal = SegmentedWal::new(64);
        for i in 0..32 {
            wal.append(&put(i));
        }
        assert!(wal.segment_count() > 1, "64-byte cap must force rotation");
        assert!(wal.stats().rotations > 0);
        // Every record still replays, in order, across segments.
        let got: Vec<u64> = wal.replay().map(|r| r.expect("clean").0).collect();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn checkpoint_truncates_whole_segments_and_replay_skips_the_rest() {
        let mut wal = SegmentedWal::new(64);
        for i in 0..32 {
            wal.append(&put(i));
        }
        let before = wal.segment_count();
        let dropped = wal.checkpoint(20);
        assert!(dropped > 0, "some segments fall wholly below seq 20");
        assert!(wal.segment_count() < before);
        let got: Vec<u64> = wal.replay().map(|r| r.expect("clean").0).collect();
        assert_eq!(got, (20..32).collect::<Vec<_>>(), "replay starts exactly at the mark");
        // The mark never regresses.
        wal.checkpoint(5);
        assert_eq!(wal.checkpoint_seq(), 20);
    }

    #[test]
    fn full_checkpoint_empties_the_log_but_keeps_the_sequence() {
        let mut wal = SegmentedWal::new(64);
        for i in 0..8 {
            wal.append(&put(i));
        }
        wal.checkpoint(8);
        assert_eq!(wal.pending(), 0);
        assert_eq!(wal.replay().count(), 0);
        assert_eq!(wal.append(&put(99)), 8, "sequence numbering survives truncation");
    }

    #[test]
    fn mixed_record_kinds_replay_verbatim() {
        let mut wal = SegmentedWal::default();
        wal.append(&put(0));
        wal.append(&WalRecord::Remove { key: Bytes::from("key-0000") });
        wal.append(&WalRecord::Placement { partition: 3, snode: domus_core::SnodeId(7), rank: 1 });
        let records: Vec<WalRecord> = wal.replay().map(|r| r.expect("clean").1).collect();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[1], WalRecord::Remove { .. }));
        assert!(matches!(records[2], WalRecord::Placement { partition: 3, rank: 1, .. }));
    }
}

//! WAL record types and their byte-level framing.
//!
//! Every appended record becomes one **frame** in a segment's buffer:
//!
//! ```text
//! ┌────────────┬───────────┬───────────┬───────────────────┐
//! │ seq  (u64) │ len (u32) │ crc (u32) │ payload (len B)   │
//! └────────────┴───────────┴───────────┴───────────────────┘
//!                              └─ CRC-32 over the payload only
//! payload = [tag: u8][tag-specific fields, LE-encoded]
//! ```
//!
//! All integers are little-endian. The sequence number lives *outside*
//! the checksummed payload so replay can report *which* record is
//! corrupt even when the payload bytes are torn.

use crate::crc::crc32;
use bytes::Bytes;
use domus_core::SnodeId;

/// Payload tag for a KV put.
const TAG_PUT: u8 = 1;
/// Payload tag for a KV remove.
const TAG_REMOVE: u8 = 2;
/// Payload tag for a replica-placement note.
const TAG_PLACEMENT: u8 = 3;

/// One durable record: the unit a snode appends before mutating its
/// in-memory state, and the unit replayed after a crash-then-rejoin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A key/value write that reached this snode as a primary.
    Put {
        /// The application key, verbatim.
        key: Bytes,
        /// The value bytes stored under `key`.
        value: Bytes,
    },
    /// A key removal that reached this snode as a primary.
    Remove {
        /// The application key, verbatim.
        key: Bytes,
    },
    /// A replica-placement note: partition `partition`'s rank-`rank`
    /// copy was placed on `snode`. Replay uses these to seed the
    /// digest comparison, not to move data.
    Placement {
        /// The partition (bucket slot) whose copy moved.
        partition: u64,
        /// The snode now holding the copy.
        snode: SnodeId,
        /// The replica rank of the copy (0 = primary).
        rank: u8,
    },
}

/// Why a frame failed to decode during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The payload checksum did not match: the record is torn.
    Corrupt {
        /// Sequence number of the torn record.
        seq: u64,
    },
    /// The buffer ended mid-frame: a partial append.
    Truncated {
        /// Byte offset into the segment where the frame starts.
        offset: usize,
    },
    /// The payload tag is not a known record type.
    UnknownTag {
        /// Sequence number of the offending record.
        seq: u64,
        /// The unrecognised tag byte.
        tag: u8,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WalError::Corrupt { seq } => write!(f, "wal record {seq} failed its checksum"),
            WalError::Truncated { offset } => {
                write!(f, "wal segment truncated mid-frame at byte {offset}")
            }
            WalError::UnknownTag { seq, tag } => {
                write!(f, "wal record {seq} carries unknown tag {tag}")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn push_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    buf.extend_from_slice(data);
}

impl WalRecord {
    /// Serialise the payload (tag + fields, no frame header).
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            WalRecord::Put { key, value } => {
                buf.push(TAG_PUT);
                push_bytes(&mut buf, key);
                push_bytes(&mut buf, value);
            }
            WalRecord::Remove { key } => {
                buf.push(TAG_REMOVE);
                push_bytes(&mut buf, key);
            }
            WalRecord::Placement { partition, snode, rank } => {
                buf.push(TAG_PLACEMENT);
                buf.extend_from_slice(&partition.to_le_bytes());
                buf.extend_from_slice(&snode.0.to_le_bytes());
                buf.push(*rank);
            }
        }
        buf
    }

    /// Frame the record: header + payload, appended onto `buf`.
    /// Returns the number of bytes written.
    pub(crate) fn encode_frame(&self, seq: u64, buf: &mut Vec<u8>) -> usize {
        let payload = self.encode_payload();
        let before = buf.len();
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.len() - before
    }

    /// Decode one frame starting at `offset`. Returns the record, its
    /// sequence number and the offset one past the frame's end.
    pub(crate) fn decode_frame(
        buf: &[u8],
        offset: usize,
    ) -> Result<(u64, WalRecord, usize), WalError> {
        let header = buf.get(offset..offset + 16).ok_or(WalError::Truncated { offset })?;
        let seq = u64::from_le_bytes(header[0..8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice")) as usize;
        let want = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
        let start = offset + 16;
        let payload = buf.get(start..start + len).ok_or(WalError::Truncated { offset })?;
        if crc32(payload) != want {
            return Err(WalError::Corrupt { seq });
        }
        let record = Self::decode_payload(seq, payload)?;
        Ok((seq, record, start + len))
    }

    fn decode_payload(seq: u64, payload: &[u8]) -> Result<WalRecord, WalError> {
        let corrupt = WalError::Corrupt { seq };
        let (&tag, rest) = payload.split_first().ok_or(corrupt)?;
        let take = |rest: &[u8]| -> Result<(Bytes, usize), WalError> {
            let len =
                u32::from_le_bytes(rest.get(0..4).ok_or(corrupt)?.try_into().expect("4 bytes"))
                    as usize;
            let data = rest.get(4..4 + len).ok_or(corrupt)?;
            Ok((Bytes::copy_from_slice(data), 4 + len))
        };
        match tag {
            TAG_PUT => {
                let (key, used) = take(rest)?;
                let (value, _) = take(&rest[used..])?;
                Ok(WalRecord::Put { key, value })
            }
            TAG_REMOVE => {
                let (key, _) = take(rest)?;
                Ok(WalRecord::Remove { key })
            }
            TAG_PLACEMENT => {
                let partition =
                    u64::from_le_bytes(rest.get(0..8).ok_or(corrupt)?.try_into().expect("8"));
                let snode =
                    u32::from_le_bytes(rest.get(8..12).ok_or(corrupt)?.try_into().expect("4"));
                let rank = *rest.get(12).ok_or(corrupt)?;
                Ok(WalRecord::Placement { partition, snode: SnodeId(snode), rank })
            }
            other => Err(WalError::UnknownTag { seq, tag: other }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: WalRecord) {
        let mut buf = Vec::new();
        let n = rec.encode_frame(42, &mut buf);
        assert_eq!(n, buf.len());
        let (seq, got, end) = WalRecord::decode_frame(&buf, 0).expect("decode");
        assert_eq!(seq, 42);
        assert_eq!(got, rec);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(WalRecord::Put {
            key: Bytes::copy_from_slice(b"k-001"),
            value: Bytes::copy_from_slice(b"v"),
        });
        roundtrip(WalRecord::Remove { key: Bytes::copy_from_slice(b"") });
        roundtrip(WalRecord::Placement { partition: 7, snode: SnodeId(3), rank: 2 });
    }

    #[test]
    fn a_flipped_payload_byte_is_corrupt_not_garbage() {
        let rec = WalRecord::Put {
            key: Bytes::copy_from_slice(b"key"),
            value: Bytes::copy_from_slice(b"value"),
        };
        let mut buf = Vec::new();
        rec.encode_frame(9, &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert_eq!(WalRecord::decode_frame(&buf, 0), Err(WalError::Corrupt { seq: 9 }));
    }

    #[test]
    fn a_short_buffer_reports_truncation() {
        let rec = WalRecord::Remove { key: Bytes::copy_from_slice(b"key") };
        let mut buf = Vec::new();
        rec.encode_frame(1, &mut buf);
        buf.truncate(buf.len() - 2);
        assert_eq!(WalRecord::decode_frame(&buf, 0), Err(WalError::Truncated { offset: 0 }));
    }
}

//! The control-plane state machine: lease renewal, silent-failure
//! failover, and capacity-weighted hot-spot scheduling.
//!
//! A [`Router`] owns no data plane. It watches membership (the driver
//! notifies it of joins/leaves/crashes/renames), keeps the lease table,
//! and once per window — one deterministic [`Router::tick`] on the sim
//! clock — decides what should move:
//!
//! * **Failover.** Healthy snodes renew their leases every tick; a
//!   stalled snode silently stops. When its leases lapse, the tick
//!   emits [`RouteAction::Failover`] and the executor drives the same
//!   `fail_snode` machinery an explicit crash would — `VnodeMigrated` /
//!   `Transfer` events through the existing sinks, repair re-replicates
//!   the survivors' copies.
//! * **Hot-spot scheduling.** Per-window [`SnodeLoad`]s are judged
//!   against each snode's *declared capacity* (Mirrezaei-style: a node
//!   serving twice its capacity-weighted fair share is hot, no matter
//!   how many raw vnodes it hosts). Flagged snodes shed one vnode per
//!   tick ([`RouteAction::MoveVnode`]) toward the coldest peer until
//!   the overload factor drops under the threshold; the tick count from
//!   onset to cleared is the **convergence time** the `CHURN-ROUTE`
//!   experiment reports per backend.

use crate::lease::LeaseTable;
use domus_core::{SnodeId, SnodeLoad, VnodeId};
use domus_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Tunables for the control plane (all deterministic).
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Lease validity: a holder missing renewals for this long fails
    /// over. Pick ≥ 2 windows so one missed tick is not a death
    /// sentence.
    pub lease_ttl: SimTime,
    /// Overload factor (measured quota ÷ capacity-weighted fair share)
    /// beyond which a snode counts as hot. Must exceed 1.
    pub hot_threshold: f64,
    /// Consecutive hot ticks before the scheduler starts shedding —
    /// 1 reacts immediately, higher values ignore one-window spikes.
    pub hot_streak: u32,
    /// Vnode moves the scheduler may order per tick (bounds the churn
    /// the control plane itself injects).
    pub max_moves_per_tick: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            lease_ttl: SimTime::millis(75_000),
            hot_threshold: 2.0,
            hot_streak: 1,
            max_moves_per_tick: 2,
        }
    }
}

/// One decision the control plane wants executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteAction {
    /// A holder's leases lapsed: tear its vnodes down as a crash (the
    /// node is unreachable — its data plane cannot be drained
    /// gracefully) and let repair re-replicate.
    Failover {
        /// The silent snode.
        snode: SnodeId,
        /// The vnodes its lapsed leases covered.
        vnodes: Vec<VnodeId>,
    },
    /// Shed one vnode from a hot snode; when `to` is set, grow the
    /// coldest peer by one vnode in the same stroke so the population
    /// stays level and the load actually lands somewhere colder.
    MoveVnode {
        /// The overloaded snode to shrink.
        from: SnodeId,
        /// The underloaded snode to grow, when one exists.
        to: Option<SnodeId>,
    },
}

/// What one [`Router::tick`] observed and decided.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Decisions for the executor, failovers first.
    pub actions: Vec<RouteAction>,
    /// Leases renewed this tick (healthy holders).
    pub renewed: u64,
    /// Leases that lapsed this tick (the failover worklist).
    pub expired: u64,
    /// Snodes over the hot threshold this tick.
    pub hot: Vec<SnodeId>,
}

/// Lifetime totals of one router (monotone; sample per window and diff).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterTotals {
    /// Ticks run.
    pub ticks: u64,
    /// Leases renewed by healthy holders (over all ticks).
    pub leases_renewed: u64,
    /// Leases that lapsed (over all ticks).
    pub leases_expired: u64,
    /// Failover actions emitted.
    pub failovers: u64,
    /// Hot-spot moves emitted.
    pub moves: u64,
    /// Ticks with at least one hot snode.
    pub hot_windows: u64,
}

/// The control plane. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct Router {
    cfg: RouterConfig,
    leases: LeaseTable,
    /// Capacity each snode declared when it joined (its initial vnode
    /// enrollment) — the fixed basis hot-spot decisions are weighted by.
    declared: BTreeMap<SnodeId, f64>,
    /// Effective-capacity factor (1.0 = healthy; a degraded node serves
    /// the same quota on less machine, inflating its overload).
    factor: BTreeMap<SnodeId, f64>,
    /// Snodes injected as silently stalled: they stop renewing.
    stalled: BTreeSet<SnodeId>,
    /// Consecutive hot ticks per snode.
    streaks: BTreeMap<SnodeId, u32>,
    totals: RouterTotals,
    /// Tick index when the current hot episode started.
    hot_onset: Option<u64>,
    /// Completed hot episodes, each in ticks from onset to cleared.
    convergence: Vec<u64>,
}

impl Router {
    /// A router with no members yet.
    pub fn new(cfg: RouterConfig) -> Self {
        assert!(cfg.hot_threshold > 1.0, "a hot threshold ≤ 1 flags a perfectly balanced DHT");
        assert!(cfg.max_moves_per_tick > 0, "a scheduler that may never move cannot converge");
        Self {
            cfg,
            leases: LeaseTable::new(cfg.lease_ttl),
            declared: BTreeMap::new(),
            factor: BTreeMap::new(),
            stalled: BTreeSet::new(),
            streaks: BTreeMap::new(),
            totals: RouterTotals::default(),
            hot_onset: None,
            convergence: Vec::new(),
        }
    }

    /// The configuration the router runs under.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The live lease table.
    pub fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    /// Lifetime totals.
    pub fn totals(&self) -> RouterTotals {
        self.totals
    }

    /// Completed hot episodes, each in ticks from onset to cleared.
    pub fn convergence_windows(&self) -> &[u64] {
        &self.convergence
    }

    /// The longest hot episode, counting an episode still open at the
    /// last tick as ongoing — the number the CI gate bounds.
    pub fn worst_convergence(&self) -> u64 {
        let done = self.convergence.iter().copied().max().unwrap_or(0);
        match self.hot_onset {
            Some(onset) => done.max(self.totals.ticks - onset + 1),
            None => done,
        }
    }

    /// `true` while a hot episode is still open (imbalance not yet
    /// rebalanced under the threshold).
    pub fn unconverged(&self) -> bool {
        self.hot_onset.is_some()
    }

    /// `true` when `s` is marked silently stalled.
    pub fn is_stalled(&self, s: SnodeId) -> bool {
        self.stalled.contains(&s)
    }

    /// Declares (or re-declares) `s`'s capacity basis: its vnode
    /// enrollment at join time. First declaration wins — hot-spot moves
    /// later shrink the node's *quota*, not its capacity.
    pub fn note_capacity(&mut self, s: SnodeId, vnodes: u32) {
        self.declared.entry(s).or_insert(f64::from(vnodes.max(1)));
    }

    /// A vnode came up on `s`: grant its lease.
    pub fn note_join(&mut self, v: VnodeId, s: SnodeId, now: SimTime) {
        self.note_capacity(s, 1);
        self.leases.grant(v, s, now);
    }

    /// A vnode left gracefully: release its lease (and forget the snode
    /// entirely once its last vnode is gone).
    pub fn note_remove(&mut self, v: VnodeId) {
        if let Some(lease) = self.leases.release(v) {
            self.forget_if_empty(lease.holder);
        }
    }

    /// A survivor vnode was renamed by a group-merge migration.
    pub fn note_rename(&mut self, old: VnodeId, new: VnodeId) {
        self.leases.rename(old, new);
    }

    /// Drops a snode's capacity/stall/streak records once its last lease
    /// is gone — a departed node must not skew the fairness denominator.
    fn forget_if_empty(&mut self, s: SnodeId) {
        if !self.leases.iter().any(|(_, l)| l.holder == s) {
            self.declared.remove(&s);
            self.factor.remove(&s);
            self.stalled.remove(&s);
            self.streaks.remove(&s);
        }
    }

    /// A snode crashed (explicitly, or a failover was executed): release
    /// everything it held and forget it.
    pub fn note_fail(&mut self, s: SnodeId) {
        self.leases.release_holder(s);
        self.declared.remove(&s);
        self.factor.remove(&s);
        self.stalled.remove(&s);
        self.streaks.remove(&s);
    }

    /// Injects a **silent** stall: the data on `s` is unreachable but no
    /// crash notification ever arrives — the only signal is that `s`
    /// stops renewing. Failover happens via lease expiry, not here.
    pub fn inject_stall(&mut self, s: SnodeId) {
        self.stalled.insert(s);
    }

    /// Heals a stalled snode before its leases lapse (it resumes
    /// renewing on the next tick).
    pub fn heal(&mut self, s: SnodeId) {
        self.stalled.remove(&s);
    }

    /// Degrades `s`'s effective capacity to `factor` of its declared
    /// basis (0 < factor ≤ 1) — the deterministic hot-spot injection: the
    /// node keeps its quota but can only honestly serve a fraction.
    pub fn degrade(&mut self, s: SnodeId, factor: f64) {
        self.factor.insert(s, factor.clamp(0.01, 1.0));
    }

    /// A failover the executor could not perform (it would have emptied
    /// the DHT): push the holder's expiry out one TTL so the tick
    /// re-emits it later instead of looping every window.
    pub fn defer(&mut self, s: SnodeId, now: SimTime) {
        self.leases.renew_holder(s, now);
    }

    /// Checks lease safety against the authoritative roster (see
    /// [`LeaseTable::verify`]).
    pub fn verify<I>(&self, roster: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (VnodeId, SnodeId)>,
    {
        self.leases.verify(roster)
    }

    /// The capacity-weighted overload factor of every loaded snode:
    /// `quota / (effective_capacity / Σ effective_capacity)`. 1.0 is a
    /// perfectly fair node; [`RouterConfig::hot_threshold`] flags.
    pub fn overloads(&self, loads: &[SnodeLoad]) -> Vec<(SnodeId, f64)> {
        let eff = |l: &SnodeLoad| {
            let declared =
                self.declared.get(&l.snode).copied().unwrap_or_else(|| f64::from(l.vnodes.max(1)));
            declared * self.factor.get(&l.snode).copied().unwrap_or(1.0)
        };
        let total: f64 = loads.iter().map(eff).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        loads
            .iter()
            .map(|l| {
                let fair = eff(l) / total;
                (l.snode, if fair > 0.0 { l.quota / fair } else { f64::INFINITY })
            })
            .collect()
    }

    /// One control-plane window on the deterministic clock: healthy
    /// holders renew, lapsed leases become [`RouteAction::Failover`]s,
    /// and hot snodes (judged on `loads`) shed toward the coldest peer.
    /// The caller executes the actions, then reports the outcomes back
    /// through `note_fail` / `note_remove` / `note_join`.
    pub fn tick(&mut self, now: SimTime, loads: &[SnodeLoad]) -> TickReport {
        self.totals.ticks += 1;
        let mut report = TickReport::default();

        // 1. Renewal: every holder that is not stalled re-ups. Checked
        //    conversions throughout: a silent `as u64` truncation here
        //    would corrupt every per-window reconciliation downstream.
        let holders: BTreeSet<SnodeId> = self.leases.iter().map(|(_, l)| l.holder).collect();
        for &s in holders.iter().filter(|s| !self.stalled.contains(s)) {
            let renewed = self.leases.renew_holder(s, now);
            report.renewed = report
                .renewed
                .checked_add(u64::try_from(renewed).expect("lease count fits u64"))
                .expect("renewal total overflow");
        }
        self.totals.leases_renewed += report.renewed;

        // 2. Expiry → failover. Leases stay in the table until the
        //    executor confirms with `note_fail` (or defers). Failovers
        //    are counted where they are pushed — never as
        //    `actions.len()`, which silently absorbs any action pushed
        //    later in the tick (the hot-spot moves of step 4).
        for s in self.leases.expired_holders(now) {
            let vnodes: Vec<VnodeId> =
                self.leases.iter().filter(|(_, l)| l.holder == s).map(|(v, _)| v).collect();
            report.expired = report
                .expired
                .checked_add(u64::try_from(vnodes.len()).expect("lease count fits u64"))
                .expect("expiry total overflow");
            report.actions.push(RouteAction::Failover { snode: s, vnodes });
            self.totals.failovers += 1;
        }
        self.totals.leases_expired += report.expired;

        // 3. Hot-spot detection on capacity-weighted overload. Stalled
        //    and expiring snodes are the failover path's problem.
        let skip: BTreeSet<SnodeId> = report
            .actions
            .iter()
            .filter_map(|a| match a {
                RouteAction::Failover { snode, .. } => Some(*snode),
                _ => None,
            })
            .chain(self.stalled.iter().copied())
            .collect();
        let overloads = self.overloads(loads);
        let mut hot: Vec<(SnodeId, f64)> = overloads
            .iter()
            .copied()
            .filter(|(s, o)| !skip.contains(s) && *o > self.cfg.hot_threshold)
            .collect();
        report.hot = hot.iter().map(|(s, _)| *s).collect();
        self.streaks.retain(|s, _| report.hot.contains(s));
        for &(s, _) in &hot {
            *self.streaks.entry(s).or_insert(0) += 1;
        }

        // 4. Shedding: hottest first, bounded per tick, each toward the
        //    coldest peer (if any colder node exists to grow).
        hot.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let coldest = overloads
            .iter()
            .copied()
            .filter(|(s, _)| !skip.contains(s) && !report.hot.contains(s))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(s, _)| s);
        for &(s, _) in hot
            .iter()
            .filter(|(s, _)| self.streaks.get(s).copied().unwrap_or(0) >= self.cfg.hot_streak)
            .take(self.cfg.max_moves_per_tick)
        {
            report.actions.push(RouteAction::MoveVnode { from: s, to: coldest });
            self.totals.moves += 1;
        }

        // 5. Convergence bookkeeping: an episode opens on the first hot
        //    tick and closes on the first clear one.
        if report.hot.is_empty() {
            if let Some(onset) = self.hot_onset.take() {
                self.convergence.push(self.totals.ticks - onset);
            }
        } else {
            self.totals.hot_windows += 1;
            self.hot_onset.get_or_insert(self.totals.ticks);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::millis(v)
    }

    fn cfg() -> RouterConfig {
        RouterConfig { lease_ttl: ms(100), ..Default::default() }
    }

    /// Even loads over `n` snodes, one vnode each.
    fn flat_loads(n: u32) -> Vec<SnodeLoad> {
        (0..n)
            .map(|s| SnodeLoad { snode: SnodeId(s), vnodes: 1, quota: 1.0 / f64::from(n) })
            .collect()
    }

    fn join_fleet(r: &mut Router, n: u32, now: SimTime) {
        for s in 0..n {
            r.note_capacity(SnodeId(s), 1);
            r.note_join(VnodeId(s), SnodeId(s), now);
        }
    }

    #[test]
    fn healthy_fleet_renews_and_never_fails_over() {
        let mut r = Router::new(cfg());
        join_fleet(&mut r, 4, ms(0));
        for w in 1..=10u64 {
            let rep = r.tick(ms(w * 60), &flat_loads(4));
            assert!(rep.actions.is_empty(), "window {w}: no action expected");
            assert_eq!(rep.renewed, 4);
            assert_eq!(rep.expired, 0);
        }
        assert_eq!(r.totals().failovers, 0);
        assert_eq!(r.worst_convergence(), 0);
    }

    #[test]
    fn a_silent_stall_fails_over_exactly_after_the_ttl() {
        let mut r = Router::new(cfg()); // ttl 100ms, windows every 60ms
        join_fleet(&mut r, 4, ms(0));
        r.inject_stall(SnodeId(2));
        // 60ms: lease (expires at 100ms) still valid — no action.
        assert!(r.tick(ms(60), &flat_loads(4)).actions.is_empty());
        // 120ms: lapsed. Exactly one failover, naming the stalled snode.
        let rep = r.tick(ms(120), &flat_loads(4));
        assert_eq!(
            rep.actions,
            vec![RouteAction::Failover { snode: SnodeId(2), vnodes: vec![VnodeId(2)] }]
        );
        assert_eq!(rep.expired, 1);
        // The executor confirms; the lease table is clean again.
        r.note_fail(SnodeId(2));
        let roster = [0u32, 1, 3].map(|s| (VnodeId(s), SnodeId(s)));
        r.verify(roster).unwrap();
        assert!(r.tick(ms(180), &flat_loads(3)).actions.is_empty());
        assert_eq!(r.totals().failovers, 1);
        assert_eq!(r.totals().leases_expired, 1);
    }

    #[test]
    fn healing_before_expiry_cancels_the_failover() {
        let mut r = Router::new(cfg());
        join_fleet(&mut r, 3, ms(0));
        r.inject_stall(SnodeId(1));
        assert!(r.tick(ms(60), &flat_loads(3)).actions.is_empty());
        r.heal(SnodeId(1)); // resumes renewing at the 99ms tick
        assert!(r.tick(ms(99), &flat_loads(3)).actions.is_empty());
        assert!(r.tick(ms(160), &flat_loads(3)).actions.is_empty());
        assert_eq!(r.totals().failovers, 0);
    }

    #[test]
    fn a_degraded_snode_goes_hot_and_sheds_until_converged() {
        let mut r = Router::new(RouterConfig { max_moves_per_tick: 1, ..cfg() });
        join_fleet(&mut r, 5, ms(0));
        r.degrade(SnodeId(0), 0.25); // serves 1/5 quota on 1/4 capacity → ~4.2× fair
                                     // Window 1: flagged, one shed ordered toward the coldest peer.
        let rep = r.tick(ms(60), &flat_loads(5));
        assert_eq!(rep.hot, vec![SnodeId(0)]);
        assert_eq!(rep.actions.len(), 1);
        let RouteAction::MoveVnode { from, to } = rep.actions[0].clone() else {
            panic!("expected a move, got {:?}", rep.actions[0]);
        };
        assert_eq!(from, SnodeId(0));
        assert!(to.is_some_and(|s| s != SnodeId(0)));
        // The executor sheds: snode 0's quota drops to a fair share of
        // its *effective* capacity. Feed the post-move loads back in.
        let mut loads = flat_loads(5);
        loads[0].quota = 0.04;
        for l in &mut loads[1..] {
            l.quota = 0.24;
        }
        let rep = r.tick(ms(120), &loads);
        assert!(rep.hot.is_empty(), "after shedding the episode must close");
        assert!(rep.actions.is_empty());
        assert!(!r.unconverged());
        assert_eq!(r.convergence_windows(), &[1], "onset→cleared took one window");
        assert_eq!(r.totals().moves, 1);
        assert_eq!(r.totals().hot_windows, 1);
    }

    #[test]
    fn worst_convergence_counts_an_open_episode() {
        let mut r = Router::new(cfg());
        join_fleet(&mut r, 4, ms(0));
        r.degrade(SnodeId(3), 0.1);
        for w in 1..=3u64 {
            let rep = r.tick(ms(w * 60), &flat_loads(4));
            assert!(rep.hot.contains(&SnodeId(3)));
        }
        assert!(r.unconverged());
        assert_eq!(r.worst_convergence(), 3);
    }

    #[test]
    fn moves_are_bounded_per_tick() {
        let mut r = Router::new(RouterConfig { max_moves_per_tick: 2, ..cfg() });
        join_fleet(&mut r, 8, ms(0));
        for s in 0..4u32 {
            r.degrade(SnodeId(s), 0.2);
        }
        let rep = r.tick(ms(60), &flat_loads(8));
        assert_eq!(rep.hot.len(), 4, "all four degraded snodes are hot");
        assert_eq!(rep.actions.len(), 2, "but only two moves per tick");
    }
}

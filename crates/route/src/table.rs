//! Versioned shard maps: [`RouteTable`] and the client-side
//! [`RouteCache`].
//!
//! A `RouteTable` is the control plane's *unit of distribution*: one
//! immutable, versioned view of "which vnode (and so which snode) serves
//! each hash-space span". It wraps an [`EngineSnapshot`] pinned from the
//! serving plane — the version **is** the snapshot epoch, so versions are
//! monotone across publishes and comparable across clients.
//!
//! A `RouteCache` is what a client actually holds: the last table it
//! pinned, the cell it pins from, and a dirty flag fed by streamed
//! [`RebalanceEvent`]s. Every resolution repairs staleness in **at most
//! one round**: if the cell's epoch moved past the pinned version (or an
//! event invalidated the pin), the cache re-pins once and resolves on
//! the fresh table — the generalization of the per-read retry in
//! `KvService::get_routed` to any routing consumer.

use bytes::Bytes;
use domus_core::{
    DhtEngine, EngineSnapshot, RebalanceEvent, RebalanceSink, RouteStats, SnapshotCell, SnodeId,
    SnodeLoad, VnodeId,
};
use domus_hashspace::HashSpace;
use domus_kv::KvService;
use std::sync::Arc;

/// A monotone shard-map version — the serving-plane epoch of the
/// snapshot the table was derived from. Orders naturally: a larger
/// version supersedes a smaller one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RouteVersion(pub u64);

impl std::fmt::Display for RouteVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One immutable, versioned shard map.
///
/// A strict layer over [`EngineSnapshot`]: every resolution delegates to
/// the snapshot, so routing through a table at version `v` is *bitwise*
/// the routing of epoch-`v` snapshot — the `snapshot_consistency` suite
/// asserts exactly that. Cloning shares the underlying snapshot.
#[derive(Debug, Clone)]
pub struct RouteTable {
    snap: Arc<EngineSnapshot>,
}

impl RouteTable {
    /// Wraps an already-pinned snapshot.
    pub fn new(snap: Arc<EngineSnapshot>) -> Self {
        Self { snap }
    }

    /// Pins the current table from a serving-plane cell.
    pub fn pin(cell: &SnapshotCell) -> Self {
        Self { snap: cell.load() }
    }

    /// The table's version (the snapshot epoch).
    pub fn version(&self) -> RouteVersion {
        RouteVersion(self.snap.epoch())
    }

    /// `true` when `cell` has published a newer version.
    pub fn is_stale(&self, cell: &SnapshotCell) -> bool {
        cell.is_stale(&self.snap)
    }

    /// The wrapped snapshot (for APIs that want the raw view).
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snap
    }

    /// The hash space the table tiles.
    pub fn space(&self) -> HashSpace {
        self.snap.space()
    }

    /// `true` when no vnode exists at this version.
    pub fn is_empty(&self) -> bool {
        self.snap.is_empty()
    }

    /// Vnodes at this version.
    pub fn vnode_count(&self) -> usize {
        self.snap.vnode_count()
    }

    /// Distinct snodes at this version.
    pub fn snode_count(&self) -> usize {
        self.snap.snode_count()
    }

    /// Routes a hash point to its serving `(vnode, snode)`.
    pub fn lookup(&self, point: u64) -> Option<(VnodeId, SnodeId)> {
        self.snap.lookup(point)
    }

    /// The vnode owning a hash point.
    pub fn owner_of(&self, point: u64) -> Option<VnodeId> {
        self.snap.owner_of(point)
    }

    /// The replica chain of a point: the owner, then the first vnode of
    /// each subsequent distinct snode, up to `r` entries.
    pub fn replicas(&self, point: u64, r: usize) -> Vec<VnodeId> {
        self.snap.replicas(point, r)
    }

    /// Per-snode load at this version (vnodes hosted, quota share).
    pub fn loads(&self) -> &[SnodeLoad] {
        self.snap.loads()
    }

    /// The quota share of one snode, `None` when it hosts nothing.
    pub fn quota_of(&self, snode: SnodeId) -> Option<f64> {
        self.snap.quota_of(snode)
    }
}

/// A client-side route cache with ≤1-round stale-route repair.
///
/// Holds the last [`RouteTable`] pinned from a [`SnapshotCell`] plus a
/// dirty flag. [`RouteCache::lookup`] resolves against the pinned table
/// after at most one refresh: the pin is replaced exactly when the cell
/// published a newer version or a streamed event marked the cache dirty
/// (feed the cache as a [`RebalanceSink`], or call
/// [`RouteCache::invalidate`]). Every resolution lands in a shared
/// [`RouteStats`] block — pass the service's own block to
/// [`RouteCache::with_stats`] to tally cache and service reads together.
#[derive(Debug)]
pub struct RouteCache {
    cell: Arc<SnapshotCell>,
    pinned: Arc<EngineSnapshot>,
    dirty: bool,
    stats: Arc<RouteStats>,
}

impl RouteCache {
    /// A cache pinned to `cell`'s current version, with its own stats.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        Self::with_stats(cell, Arc::new(RouteStats::new()))
    }

    /// A cache recording into a caller-shared stat block.
    pub fn with_stats(cell: Arc<SnapshotCell>, stats: Arc<RouteStats>) -> Self {
        let pinned = cell.load();
        Self { cell, pinned, dirty: false, stats }
    }

    /// The version currently pinned.
    pub fn version(&self) -> RouteVersion {
        RouteVersion(self.pinned.epoch())
    }

    /// The pinned view as a [`RouteTable`] (shares the snapshot).
    pub fn table(&self) -> RouteTable {
        RouteTable::new(Arc::clone(&self.pinned))
    }

    /// The stat block resolutions are tallied into.
    pub fn stats(&self) -> &Arc<RouteStats> {
        &self.stats
    }

    /// Marks the pin suspect: the next resolution re-pins even if the
    /// epoch check alone would not force it. Streamed rebalance events
    /// call this through the [`RebalanceSink`] impl.
    pub fn invalidate(&mut self) {
        self.dirty = true;
    }

    /// Re-pins if (and only if) the pin is dirty or the cell moved on.
    /// Returns `true` when a refresh happened — the "stale" half of the
    /// hit/stale ratio.
    pub fn refresh(&mut self) -> bool {
        if self.dirty || self.cell.is_stale(&self.pinned) {
            self.pinned = self.cell.load();
            self.dirty = false;
            true
        } else {
            false
        }
    }

    /// Routes a hash point through the cache: at most one refresh, then
    /// a lookup on the pinned table. Records one read (stale iff a
    /// refresh happened) into the stat block.
    pub fn lookup(&mut self, point: u64) -> Option<(VnodeId, SnodeId)> {
        let refreshed = self.refresh();
        let hit = self.pinned.lookup(point);
        self.stats.record(u32::from(refreshed), hit.is_none());
        hit
    }

    /// A cache-routed KV read: delegates to [`KvService::get_routed`]
    /// with the cache's pin (the service records the read into *its*
    /// stat block — share one block via [`RouteCache::with_stats`] for a
    /// combined tally). The pin is left on the epoch the read settled
    /// on, so a read loop amortises one refresh across many keys.
    pub fn get<E: DhtEngine>(&mut self, svc: &KvService<E>, key: &[u8]) -> Option<Bytes> {
        self.dirty = false; // get_routed repairs staleness itself
        svc.get_routed(&mut self.pinned, key).value
    }
}

impl RebalanceSink for RouteCache {
    fn event(&mut self, _e: RebalanceEvent) {
        self.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_core::{DhtConfig, LocalDht, SnapshotBuilder};
    use domus_kv::KvStore;

    fn space() -> HashSpace {
        HashSpace::new(32)
    }

    fn grown(snodes: u32) -> (LocalDht, SnapshotBuilder, SnapshotCell) {
        let cfg = DhtConfig::new(space(), 4, 2).unwrap();
        let mut dht = LocalDht::with_seed(cfg, 2004);
        for s in 0..snodes {
            dht.create_vnode(SnodeId(s)).unwrap();
        }
        let builder = SnapshotBuilder::from_engine(&dht);
        let cell = SnapshotCell::new(builder.snapshot());
        (dht, builder, cell)
    }

    #[test]
    fn table_is_a_strict_layer_over_the_snapshot() {
        let (dht, _, cell) = grown(6);
        let table = RouteTable::pin(&cell);
        assert_eq!(table.version(), RouteVersion(0));
        assert_eq!(table.vnode_count(), 6);
        assert_eq!(table.snode_count(), 6);
        assert!(!table.is_empty());
        let snap = table.snapshot();
        for i in 0..512u64 {
            let point = table.space().fold(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            assert_eq!(table.lookup(point), snap.lookup(point), "table must delegate");
            assert_eq!(table.owner_of(point), snap.owner_of(point));
            assert_eq!(table.replicas(point, 2), snap.replicas(point, 2));
            // And the snapshot agrees with the live engine at this epoch.
            let (_, owner) = dht.lookup(point).unwrap();
            assert_eq!(table.owner_of(point), Some(owner));
        }
        assert_eq!(table.loads(), snap.loads());
        let q: f64 = table.loads().iter().map(|l| l.quota).sum();
        assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn versions_are_monotone_across_publishes() {
        let (mut dht, mut builder, cell) = grown(4);
        let mut last = RouteTable::pin(&cell).version();
        for s in 4..10u32 {
            let out = dht.create_vnode_with(SnodeId(s), &mut builder).unwrap();
            builder.note_create(out.vnode, SnodeId(s));
            builder.publish(&cell);
            let v = RouteTable::pin(&cell).version();
            assert!(v > last, "versions must be monotone: {v} after {last}");
            last = v;
        }
    }

    #[test]
    fn cache_repairs_staleness_in_one_round() {
        let (mut dht, mut builder, cell) = grown(4);
        let cell = Arc::new(cell);
        let mut cache = RouteCache::new(Arc::clone(&cell));
        let grid: Vec<u64> = (0..64u64).map(|i| i << 26).collect();
        for &p in &grid {
            cache.lookup(p);
        }
        let before = cache.stats().counters();
        assert_eq!(before.reads, 64);
        assert_eq!(before.stale_reads, 0, "a fresh pin never refreshes");
        // One membership change → exactly one refresh over the next sweep.
        let out = dht.create_vnode_with(SnodeId(9), &mut builder).unwrap();
        builder.note_create(out.vnode, SnodeId(9));
        builder.publish(&cell);
        for &p in &grid {
            let cached = cache.lookup(p);
            let (_, owner) = dht.lookup(p).unwrap();
            assert_eq!(cached.map(|(v, _)| v), Some(owner), "repaired route must be live");
        }
        let delta = cache.stats().counters().since(before);
        assert_eq!(delta.reads, 64);
        assert_eq!(delta.stale_reads, 1, "≤1-round repair: one refresh per epoch, not per read");
        assert_eq!(cache.version(), RouteVersion(cell.epoch()));
    }

    #[test]
    fn streamed_events_invalidate_the_cache() {
        let (mut dht, mut builder, cell) = grown(4);
        let cell = Arc::new(cell);
        let mut cache = RouteCache::new(Arc::clone(&cell));
        cache.lookup(0);
        // Stream the events of a membership change straight into the
        // cache (as a sink): the pin goes dirty even before a publish.
        let out = dht.create_vnode_with(SnodeId(5), &mut cache).unwrap();
        builder.note_create(out.vnode, SnodeId(5));
        let before = cache.stats().counters();
        builder.publish(&cell);
        cache.lookup(0);
        assert_eq!(cache.stats().counters().since(before).stale_reads, 1);
    }

    #[test]
    fn cache_routed_kv_reads_share_the_service_stat_block() {
        let cfg = DhtConfig::new(space(), 4, 2).unwrap();
        let mut store = KvStore::new(LocalDht::with_seed(cfg, 5));
        store.join(SnodeId(0)).unwrap();
        let svc = KvService::new(store);
        for i in 0..200u32 {
            svc.put(format!("k{i}"), format!("v{i}"));
        }
        let mut cache =
            RouteCache::with_stats(Arc::clone(svc.serve()), Arc::clone(svc.read_stats()));
        svc.join(SnodeId(1)).unwrap(); // stale the pin
        for i in 0..200u32 {
            assert!(cache.get(&svc, format!("k{i}").as_bytes()).is_some());
        }
        let c = svc.read_stats().counters();
        assert_eq!(c.reads, 200, "service and cache tally into one block");
        assert_eq!(c.misses, 0);
    }
}

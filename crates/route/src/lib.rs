//! # domus-route
//!
//! The dynamic routing & failover **control plane** over the domus DHT —
//! the part of the system that decides *where vnodes should live* when
//! snodes fail silently or load concentrates, layered strictly on top of
//! the `DhtEngine` trait and the `domus-core::serve` serving plane
//! (nothing here touches engine internals).
//!
//! Three pieces, one per module:
//!
//! | Module | Type | Role |
//! |--------|------|------|
//! | [`table`] | [`RouteTable`] / [`RouteCache`] | versioned shard maps; client caches with ≤1-round stale repair |
//! | [`lease`] | [`Lease`] / [`LeaseTable`] | expiring per-vnode ownership on a deterministic sim clock |
//! | [`router`] | [`Router`] | the per-window tick: renewal, failover, hot-spot scheduling |
//!
//! ## The model in one paragraph
//!
//! Every published `EngineSnapshot` epoch *is* a route version
//! ([`RouteVersion`]); clients pin a version in a [`RouteCache`] and
//! repair staleness in at most one refresh per epoch. Every live vnode
//! is covered by exactly one [`Lease`] naming its snode; healthy snodes
//! renew each [`Router::tick`], silent ones stop, and a lapsed lease
//! becomes a [`RouteAction::Failover`] that the executor drives through
//! the ordinary `fail_snode` + repair machinery — so at `R ≥ 2` a
//! silently-stalled snode loses zero keys. Per-window `SnodeLoad`s are
//! weighted by declared capacity; a snode serving more than
//! `hot_threshold ×` its fair share is hot and sheds one vnode per tick
//! ([`RouteAction::MoveVnode`]) toward the coldest peer until the
//! imbalance is bounded again.
//!
//! ## Quick start
//!
//! ```
//! use domus_core::{DhtConfig, DhtEngine, LocalDht, SnapshotBuilder, SnapshotCell, SnodeId};
//! use domus_hashspace::HashSpace;
//! use domus_route::{RouteCache, RouteTable, Router, RouterConfig};
//! use domus_sim::SimTime;
//! use std::sync::Arc;
//!
//! let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
//! let mut dht = LocalDht::with_seed(cfg, 2004);
//! let mut router = Router::new(RouterConfig::default());
//! let mut builder = SnapshotBuilder::new(dht.config().hash_space());
//! for s in 0..4u32 {
//!     let out = dht.create_vnode_with(SnodeId(s), &mut builder).unwrap();
//!     builder.note_create(out.vnode, SnodeId(s));
//!     router.note_join(out.vnode, SnodeId(s), SimTime::ZERO);
//! }
//! let cell = Arc::new(SnapshotCell::new(builder.snapshot()));
//!
//! // Clients route through a versioned table / cache…
//! let table = RouteTable::pin(&cell);
//! assert_eq!(table.snode_count(), 4);
//! let mut cache = RouteCache::new(Arc::clone(&cell));
//! assert_eq!(cache.lookup(42), table.lookup(42));
//!
//! // …while the control plane ticks the lease clock per window.
//! let report = router.tick(SimTime::millis(30_000), table.loads());
//! assert!(report.actions.is_empty(), "healthy fleet: nothing to do");
//! assert_eq!(report.renewed, 4);
//! ```
//!
//! The `ChurnDriver` in `domus-churn` embeds all of this behind
//! `with_router`; the `repro churn-route` experiment and
//! `examples/failover.rs` show the full loop end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lease;
pub mod router;
pub mod table;

pub use lease::{Lease, LeaseTable};
pub use router::{RouteAction, Router, RouterConfig, RouterTotals, TickReport};
pub use table::{RouteCache, RouteTable, RouteVersion};

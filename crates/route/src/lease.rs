//! Lease-based vnode ownership.
//!
//! Every live vnode is covered by exactly **one** lease naming the snode
//! that serves it — the map from vnode to lease is the table's key
//! structure, so "no two live leases on one vnode" holds by
//! construction, not by convention (`tests/property_route.rs` hammers
//! this). Leases expire on a deterministic sim clock: a holder that
//! keeps renewing (the healthy case) pushes its expiry forward every
//! tick; a holder that goes silent — a crash the cluster never heard
//! about, a stalled process — simply stops renewing, and after the TTL
//! its leases surface in [`LeaseTable::expired`] for the control plane
//! to fail over.

use domus_core::{SnodeId, VnodeId};
use domus_sim::SimTime;
use std::collections::BTreeMap;

/// One snode's claim on one vnode, valid until `expires_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The snode serving the vnode.
    pub holder: SnodeId,
    /// The instant the claim lapses unless renewed first.
    pub expires_at: SimTime,
    /// Renewals granted so far (0 = freshly granted).
    pub renewals: u64,
}

/// All live leases, keyed by vnode.
///
/// The key structure *is* the uniqueness invariant: a vnode maps to at
/// most one lease, and [`LeaseTable::grant`] replaces rather than
/// duplicates.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    ttl: SimTime,
    leases: BTreeMap<VnodeId, Lease>,
}

impl LeaseTable {
    /// An empty table granting leases of `ttl`.
    ///
    /// # Panics
    /// Panics when `ttl` is zero — a lease that expires the instant it
    /// is granted can never be renewed in time.
    pub fn new(ttl: SimTime) -> Self {
        assert!(ttl > SimTime::ZERO, "lease TTL must be positive");
        Self { ttl, leases: BTreeMap::new() }
    }

    /// The TTL every grant and renewal extends to.
    pub fn ttl(&self) -> SimTime {
        self.ttl
    }

    /// Live leases held.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// `true` when no lease is held.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// The lease covering `v`, if any.
    pub fn holder_of(&self, v: VnodeId) -> Option<&Lease> {
        self.leases.get(&v)
    }

    /// Iterates `(vnode, lease)` in vnode order.
    pub fn iter(&self) -> impl Iterator<Item = (VnodeId, &Lease)> {
        self.leases.iter().map(|(v, l)| (*v, l))
    }

    /// Grants (or re-grants) the lease on `v` to `snode`, valid for one
    /// TTL from `now`. Replaces any previous lease on `v` — the table
    /// never holds two.
    pub fn grant(&mut self, v: VnodeId, snode: SnodeId, now: SimTime) {
        self.leases.insert(v, Lease { holder: snode, expires_at: now + self.ttl, renewals: 0 });
    }

    /// Releases the lease on `v` (vnode removed or failed over).
    pub fn release(&mut self, v: VnodeId) -> Option<Lease> {
        self.leases.remove(&v)
    }

    /// Re-keys a lease after a `VnodeMigrated` rename: the holder and
    /// expiry carry over to the new handle.
    pub fn rename(&mut self, old: VnodeId, new: VnodeId) {
        if let Some(lease) = self.leases.remove(&old) {
            self.leases.insert(new, lease);
        }
    }

    /// Releases every lease held by `s` (snode gone), returning how many.
    pub fn release_holder(&mut self, s: SnodeId) -> usize {
        let before = self.leases.len();
        self.leases.retain(|_, l| l.holder != s);
        before - self.leases.len()
    }

    /// Renews every lease held by `s` to one TTL past `now`, returning
    /// how many. A silent snode is exactly one that stops calling this.
    pub fn renew_holder(&mut self, s: SnodeId, now: SimTime) -> usize {
        let mut renewed = 0;
        for lease in self.leases.values_mut().filter(|l| l.holder == s) {
            lease.expires_at = now + self.ttl;
            lease.renewals += 1;
            renewed += 1;
        }
        renewed
    }

    /// The leases that have lapsed at `now` (expiry ≤ now), in vnode
    /// order — the failover worklist.
    pub fn expired(&self, now: SimTime) -> Vec<(VnodeId, Lease)> {
        self.iter().filter(|(_, l)| l.expires_at <= now).map(|(v, l)| (v, *l)).collect()
    }

    /// Distinct holders with at least one lapsed lease at `now`.
    pub fn expired_holders(&self, now: SimTime) -> Vec<SnodeId> {
        let mut out: Vec<SnodeId> = Vec::new();
        for (_, l) in self.iter() {
            if l.expires_at <= now && !out.contains(&l.holder) {
                out.push(l.holder);
            }
        }
        out
    }

    /// Checks the table against the authoritative roster: every live
    /// vnode carries exactly one lease held by its hosting snode, and no
    /// lease covers a dead vnode. (Pairwise uniqueness needs no check —
    /// the map key guarantees it.)
    pub fn verify<I>(&self, roster: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (VnodeId, SnodeId)>,
    {
        let mut live = 0usize;
        for (v, s) in roster {
            live += 1;
            match self.leases.get(&v) {
                None => return Err(format!("live vnode {v:?} has no lease")),
                Some(l) if l.holder != s => {
                    return Err(format!(
                        "lease on {v:?} held by {:?} but hosted by {s:?}",
                        l.holder
                    ))
                }
                Some(_) => {}
            }
        }
        if live != self.leases.len() {
            return Err(format!(
                "{} leases cover {live} live vnodes — some lease outlived its vnode",
                self.leases.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::millis(v)
    }

    #[test]
    fn grant_renew_expire_lifecycle() {
        let mut t = LeaseTable::new(ms(100));
        t.grant(VnodeId(1), SnodeId(0), ms(0));
        t.grant(VnodeId(2), SnodeId(1), ms(0));
        assert_eq!(t.len(), 2);
        assert!(t.expired(ms(99)).is_empty());
        // Holder 0 renews at 80ms, holder 1 goes silent.
        assert_eq!(t.renew_holder(SnodeId(0), ms(80)), 1);
        let lapsed = t.expired(ms(100));
        assert_eq!(lapsed.len(), 1);
        assert_eq!(lapsed[0].0, VnodeId(2));
        assert_eq!(t.expired_holders(ms(100)), vec![SnodeId(1)]);
        // The renewed lease lives on to 180ms.
        assert!(t.holder_of(VnodeId(1)).unwrap().expires_at == ms(180));
        assert_eq!(t.holder_of(VnodeId(1)).unwrap().renewals, 1);
    }

    #[test]
    fn a_regrant_replaces_never_duplicates() {
        let mut t = LeaseTable::new(ms(50));
        t.grant(VnodeId(7), SnodeId(0), ms(0));
        t.grant(VnodeId(7), SnodeId(3), ms(10));
        assert_eq!(t.len(), 1, "the map key is the uniqueness invariant");
        assert_eq!(t.holder_of(VnodeId(7)).unwrap().holder, SnodeId(3));
    }

    #[test]
    fn rename_carries_the_lease() {
        let mut t = LeaseTable::new(ms(50));
        t.grant(VnodeId(1), SnodeId(0), ms(0));
        t.rename(VnodeId(1), VnodeId(9));
        assert!(t.holder_of(VnodeId(1)).is_none());
        assert_eq!(t.holder_of(VnodeId(9)).unwrap().holder, SnodeId(0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn verify_matches_roster() {
        let mut t = LeaseTable::new(ms(50));
        t.grant(VnodeId(1), SnodeId(0), ms(0));
        t.grant(VnodeId(2), SnodeId(1), ms(0));
        let roster = vec![(VnodeId(1), SnodeId(0)), (VnodeId(2), SnodeId(1))];
        t.verify(roster.clone()).unwrap();
        // A vnode without a lease is caught...
        t.release(VnodeId(2));
        assert!(t.verify(roster.clone()).is_err());
        // ...as is a lease that outlived its vnode...
        t.grant(VnodeId(2), SnodeId(1), ms(0));
        t.grant(VnodeId(3), SnodeId(2), ms(0));
        assert!(t.verify(roster.clone()).is_err());
        // ...and a holder mismatch.
        t.release(VnodeId(3));
        t.grant(VnodeId(2), SnodeId(5), ms(0));
        assert!(t.verify(roster).is_err());
    }

    #[test]
    fn release_holder_sweeps_only_that_snode() {
        let mut t = LeaseTable::new(ms(50));
        for i in 0..6u32 {
            t.grant(VnodeId(i), SnodeId(i % 2), ms(0));
        }
        assert_eq!(t.release_holder(SnodeId(0)), 3);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|(_, l)| l.holder == SnodeId(1)));
    }
}

//! The concurrent serving plane: epoch-numbered routing snapshots.
//!
//! Every mutation in this crate runs behind `&mut self` — the paper's
//! rebalancement algorithms are serial by construction. What a cluster
//! serving millions of lookups needs is for *reads* not to queue behind
//! that serialization. This module splits the two planes:
//!
//! * the **mutation plane** stays serialized: membership operations
//!   stream [`RebalanceEvent`]s exactly as before, and a
//!   [`SnapshotBuilder`] taps that stream to maintain the routing view
//!   incrementally (interval surgery per [`Transfer`](crate::Transfer),
//!   a rename per
//!   `VnodeMigrated` — no engine re-walk per event);
//! * the **serving plane** is an immutable [`EngineSnapshot`] — a flat,
//!   binary-searchable array of owner spans plus the vnode→snode map and
//!   a per-snode quota summary — published into a [`SnapshotCell`].
//!
//! Readers pin the current snapshot once (one brief read-lock to clone
//! the `Arc` — the safe-Rust stand-in for an arc-swap cell; `unsafe` is
//! forbidden workspace-wide) and then resolve any number of lookups
//! against that consistent epoch with **zero** locking and zero
//! allocation: the snapshot is immutable, so a pinned view can never be
//! torn by a concurrent rebalance. When the writer publishes epoch
//! `N+1`, readers detect staleness with one atomic load and re-pin.
//!
//! ```
//! use domus_core::{DhtConfig, DhtEngine, GlobalDht, SnodeId};
//! use domus_core::serve::{SnapshotBuilder, SnapshotCell};
//! use domus_hashspace::HashSpace;
//!
//! let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
//! let mut dht = GlobalDht::with_seed(cfg, 7);
//! let mut builder = SnapshotBuilder::new(HashSpace::new(32));
//! let cell = SnapshotCell::new(builder.snapshot());
//!
//! // The mutation plane applies churn and publishes each epoch...
//! for s in 0..4 {
//!     let out = dht.create_vnode_with(SnodeId(s), &mut builder).unwrap();
//!     builder.note_create(out.vnode, SnodeId(s));
//!     builder.publish(&cell);
//! }
//! // ...while readers pin an epoch and resolve lookups lock-free.
//! let snap = cell.load();
//! let (v, s) = snap.lookup(0xDEAD_BEEF).unwrap();
//! assert_eq!(dht.lookup(0xDEAD_BEEF).unwrap().1, v);
//! assert_eq!(dht.snode_of(v).unwrap(), s);
//! assert_eq!(snap.epoch(), 4);
//! ```

use crate::engine::DhtEngine;
use crate::ids::{SnodeId, VnodeId};
use crate::sink::{RebalanceEvent, RebalanceSink};
use domus_hashspace::HashSpace;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One maximal run of hash space `[start, end)` served by a single vnode.
///
/// Spans are the snapshot's routing unit: adjacent partitions with the
/// same owner are coalesced, so a snapshot usually holds fewer spans than
/// the engine holds partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnerSpan {
    /// First point of the span.
    pub start: u64,
    /// One past the last point (`u128`: the top span ends at `2^Bh`).
    pub end: u128,
    /// Owning vnode.
    pub vnode: VnodeId,
    /// Snode hosting the owning vnode.
    pub snode: SnodeId,
}

/// Per-snode serving summary: how many vnodes it hosts and the exact
/// fraction of the hash space it answers for at this epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnodeLoad {
    /// The snode.
    pub snode: SnodeId,
    /// Vnodes hosted.
    pub vnodes: u32,
    /// Fraction of the hash space served (Σ over snodes = 1).
    pub quota: f64,
}

/// An immutable, epoch-numbered view of the routing state.
///
/// Built either incrementally by a [`SnapshotBuilder`] or in one pass by
/// [`EngineSnapshot::from_engine`]; both constructions produce identical
/// spans for identical engine states. All methods take `&self` and touch
/// only immutable data — a pinned snapshot is safe to share across any
/// number of threads ([`Send`] + [`Sync`]) and every lookup is lock-free.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    epoch: u64,
    space: HashSpace,
    /// Sorted by `start`; tiles `[0, 2^Bh)` exactly when non-empty.
    spans: Vec<OwnerSpan>,
    /// Sorted by snode.
    loads: Vec<SnodeLoad>,
    vnodes: usize,
}

impl EngineSnapshot {
    /// An empty snapshot (no vnodes — every lookup misses).
    pub fn empty(space: HashSpace) -> Self {
        Self { epoch: 0, space, spans: Vec::new(), loads: Vec::new(), vnodes: 0 }
    }

    /// Captures the engine's current routing state in one pass
    /// (`O(P log P)`); the incremental path is [`SnapshotBuilder`].
    pub fn from_engine<E: DhtEngine + ?Sized>(engine: &E, epoch: u64) -> Self {
        let space = engine.config().hash_space();
        let mut raw: Vec<OwnerSpan> = Vec::new();
        let mut hosts: Vec<(VnodeId, SnodeId)> = Vec::new();
        engine.for_each_vnode(&mut |v| {
            let snode = engine.snode_of(v).expect("listed vnode is live");
            hosts.push((v, snode));
            for p in engine.partitions_of(v).expect("listed vnode has partitions") {
                raw.push(OwnerSpan { start: p.start(space), end: p.end(space), vnode: v, snode });
            }
        });
        raw.sort_unstable_by_key(|s| s.start);
        let spans = coalesce(raw);
        let loads = loads_of(&spans, hosts.iter().copied(), space);
        Self { epoch, space, spans, loads, vnodes: hosts.len() }
    }

    /// The epoch this view was published at (strictly increasing per
    /// membership operation under a [`SnapshotBuilder`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The hash space this snapshot routes.
    pub fn space(&self) -> HashSpace {
        self.space
    }

    /// `true` when the DHT had no vnodes at capture time.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Live vnodes at capture time.
    pub fn vnode_count(&self) -> usize {
        self.vnodes
    }

    /// Distinct snodes at capture time.
    pub fn snode_count(&self) -> usize {
        self.loads.len()
    }

    /// Coalesced owner spans, in hash-space order.
    pub fn spans(&self) -> &[OwnerSpan] {
        &self.spans
    }

    /// Per-snode load summary, sorted by snode.
    pub fn loads(&self) -> &[SnodeLoad] {
        &self.loads
    }

    /// Fraction of the space served by `snode` (`None` when it hosts no
    /// vnodes at this epoch).
    pub fn quota_of(&self, snode: SnodeId) -> Option<f64> {
        self.loads.binary_search_by_key(&snode, |l| l.snode).ok().map(|i| self.loads[i].quota)
    }

    /// Index of the span containing `point`.
    fn span_index(&self, point: u64) -> Option<usize> {
        if self.spans.is_empty() || !self.space.contains(point) {
            return None;
        }
        // Last span with start <= point; spans tile the space from 0.
        Some(self.spans.partition_point(|s| s.start <= point) - 1)
    }

    /// Routes a point to its owning `(vnode, snode)` — the serving-plane
    /// mirror of [`DhtEngine::lookup`]. Lock-free, `O(log spans)`.
    pub fn lookup(&self, point: u64) -> Option<(VnodeId, SnodeId)> {
        self.span_index(point).map(|i| (self.spans[i].vnode, self.spans[i].snode))
    }

    /// The owning vnode of a point.
    pub fn owner_of(&self, point: u64) -> Option<VnodeId> {
        self.lookup(point).map(|(v, _)| v)
    }

    /// Visits span owners in hash-space order starting at the span
    /// containing `point`, wrapping past the top of the space, until `f`
    /// returns `false` or every span was visited once — the same walk as
    /// [`DhtEngine::for_each_successor`], so the same vnode may be visited
    /// more than once and callers dedup. The first visit is the primary.
    pub fn for_each_successor(&self, point: u64, f: &mut dyn FnMut(VnodeId, SnodeId) -> bool) {
        let Some(first) = self.span_index(point) else { return };
        for off in 0..self.spans.len() {
            let s = &self.spans[(first + off) % self.spans.len()];
            if !f(s.vnode, s.snode) {
                return;
            }
        }
    }

    /// The replica chain of `point`: the owner, then the first vnode of
    /// each subsequent distinct snode along the successor walk, up to `r`
    /// entries — byte-for-byte the chain the replicated KV overlay places
    /// copies on, resolved against this pinned epoch.
    pub fn replicas(&self, point: u64, r: usize) -> Vec<VnodeId> {
        let mut out: Vec<VnodeId> = Vec::with_capacity(r);
        let mut snodes: Vec<SnodeId> = Vec::with_capacity(r);
        self.for_each_successor(point, &mut |v, s| {
            if !snodes.contains(&s) {
                snodes.push(s);
                out.push(v);
            }
            out.len() < r
        });
        out
    }
}

/// Merges adjacent same-vnode spans of a start-sorted list.
fn coalesce(raw: Vec<OwnerSpan>) -> Vec<OwnerSpan> {
    let mut out: Vec<OwnerSpan> = Vec::with_capacity(raw.len());
    for s in raw {
        match out.last_mut() {
            Some(prev) if prev.vnode == s.vnode && prev.end == s.start as u128 => {
                prev.end = s.end;
            }
            _ => out.push(s),
        }
    }
    out
}

/// Builds the per-snode summary from coalesced spans and the host map.
fn loads_of(
    spans: &[OwnerSpan],
    hosts: impl Iterator<Item = (VnodeId, SnodeId)>,
    space: HashSpace,
) -> Vec<SnodeLoad> {
    let mut by_snode: BTreeMap<SnodeId, SnodeLoad> = BTreeMap::new();
    for (_, snode) in hosts {
        by_snode.entry(snode).or_insert(SnodeLoad { snode, vnodes: 0, quota: 0.0 }).vnodes += 1;
    }
    let size = space.size() as f64;
    for s in spans {
        let load =
            by_snode.entry(s.snode).or_insert(SnodeLoad { snode: s.snode, vnodes: 0, quota: 0.0 });
        load.quota += (s.end - s.start as u128) as f64 / size;
    }
    by_snode.into_values().collect()
}

/// The published-snapshot cell readers pin epochs from.
///
/// `publish` swaps the current `Arc` under a write lock and bumps the
/// epoch counter; `load` clones the `Arc` under a read lock held for a
/// few instructions. [`SnapshotCell::epoch`] is a single atomic load, so
/// a reader's staleness check between lookups costs no lock at all.
/// (With `unsafe` forbidden workspace-wide this is the closest safe
/// analogue of an arc-swap cell; the pinned snapshot itself is immutable,
/// so everything after the pin is genuinely lock-free.)
#[derive(Debug)]
pub struct SnapshotCell {
    epoch: AtomicU64,
    cur: RwLock<Arc<EngineSnapshot>>,
}

impl SnapshotCell {
    /// A cell primed with `snap`.
    pub fn new(snap: EngineSnapshot) -> Self {
        Self { epoch: AtomicU64::new(snap.epoch()), cur: RwLock::new(Arc::new(snap)) }
    }

    /// Pins the current snapshot (cheap: one `Arc` clone under a brief
    /// read lock). Everything resolved against the returned value stays
    /// consistent to its epoch regardless of concurrent publishes.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.cur.read())
    }

    /// The epoch of the latest published snapshot (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// `true` when `snap` is older than the latest published epoch — the
    /// reader-side stale-route check.
    pub fn is_stale(&self, snap: &EngineSnapshot) -> bool {
        snap.epoch() < self.epoch()
    }

    /// Publishes a new snapshot. Writers call this at the end of a
    /// membership operation, before releasing whatever lock serializes
    /// their data plane, so "store state" and "published epoch" advance
    /// atomically from any reader's point of view.
    pub fn publish(&self, snap: EngineSnapshot) {
        let epoch = snap.epoch();
        let mut cur = self.cur.write();
        *cur = Arc::new(snap);
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// Shared routing-read statistics: reads, stale refreshes, misses.
///
/// One struct serves every consumer of the serving plane — a
/// `KvService` counts its `get_routed` retries here, a `ReplicatedStore`
/// its quorum-read retries, and a route cache its stale re-pins — so a
/// client that layers a cache over a service can hand the *same*
/// `Arc<RouteStats>` to both and read one coherent tally. All counters
/// are relaxed atomics; snapshot them with [`RouteStats::counters`] and
/// diff windows with [`RouteCounters::since`].
#[derive(Debug, Default)]
pub struct RouteStats {
    reads: AtomicU64,
    stale_reads: AtomicU64,
    stale_retries: AtomicU64,
    misses: AtomicU64,
}

impl RouteStats {
    /// A zeroed stat block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one routed read that needed `retries` stale-route
    /// refreshes and did (`miss == true`) or did not find its key.
    pub fn record(&self, retries: u32, miss: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if retries > 0 {
            self.stale_reads.fetch_add(1, Ordering::Relaxed);
            self.stale_retries.fetch_add(u64::from(retries), Ordering::Relaxed);
        }
        if miss {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn counters(&self) -> RouteCounters {
        RouteCounters {
            reads: self.reads.load(Ordering::Relaxed),
            stale_reads: self.stale_reads.load(Ordering::Relaxed),
            stale_retries: self.stale_retries.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// A plain copy of [`RouteStats`] counters, diffable across windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounters {
    /// Routed reads issued.
    pub reads: u64,
    /// Reads that needed at least one stale-route refresh.
    pub stale_reads: u64,
    /// Total stale-route refreshes (≥ `stale_reads`).
    pub stale_retries: u64,
    /// Reads that found no value.
    pub misses: u64,
}

impl RouteCounters {
    /// The delta accumulated since `prev` (a strictly earlier snapshot of
    /// the same stat block).
    pub fn since(&self, prev: RouteCounters) -> RouteCounters {
        RouteCounters {
            reads: self.reads - prev.reads,
            stale_reads: self.stale_reads - prev.stale_reads,
            stale_retries: self.stale_retries - prev.stale_retries,
            misses: self.misses - prev.misses,
        }
    }

    /// Fraction of reads answered without a stale refresh (1.0 when no
    /// reads happened — an idle cache is not a cold cache).
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            1.0 - self.stale_reads as f64 / self.reads as f64
        }
    }
}

/// Incrementally maintains the routing view from the event stream.
///
/// Feed it as (or tee'd into) the [`RebalanceSink`] of every membership
/// operation; each [`Transfer`] is `O(log spans)` interval surgery on a
/// boundary map, a `VnodeMigrated` is a rename, and everything else
/// leaves ownership untouched. After the operation, record the outcome
/// ([`SnapshotBuilder::note_create`] / [`SnapshotBuilder::note_remove`])
/// and [`SnapshotBuilder::publish`] the next epoch.
///
/// [`Transfer`]: crate::Transfer
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    space: HashSpace,
    /// Boundary map: the entry at key `k` owns `[k, next key)`; the last
    /// entry owns through `2^Bh`. Empty iff no vnodes exist. The lowest
    /// boundary is always 0 once seeded.
    owners: BTreeMap<u64, VnodeId>,
    hosts: BTreeMap<VnodeId, SnodeId>,
    epoch: u64,
}

impl SnapshotBuilder {
    /// A builder for an empty DHT on `space`.
    pub fn new(space: HashSpace) -> Self {
        Self { space, owners: BTreeMap::new(), hosts: BTreeMap::new(), epoch: 0 }
    }

    /// Seeds a builder from an engine's current state (epoch 0) — attach
    /// point for engines that already contain vnodes.
    pub fn from_engine<E: DhtEngine + ?Sized>(engine: &E) -> Self {
        let space = engine.config().hash_space();
        let mut b = Self::new(space);
        engine.for_each_vnode(&mut |v| {
            let snode = engine.snode_of(v).expect("listed vnode is live");
            b.hosts.insert(v, snode);
            for p in engine.partitions_of(v).expect("listed vnode has partitions") {
                b.owners.insert(p.start(space), v);
            }
        });
        b.normalize();
        b
    }

    /// Drops redundant boundaries (same owner as the preceding span).
    fn normalize(&mut self) {
        let mut last: Option<VnodeId> = None;
        self.owners.retain(|_, v| {
            let keep = last != Some(*v);
            last = Some(*v);
            keep
        });
    }

    /// The epoch the *next* [`SnapshotBuilder::publish`] will stamp minus
    /// one — i.e. the epoch of the state already published.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The owner in effect at `point` (pre-surgery helper).
    fn owner_at(&self, point: u64) -> Option<VnodeId> {
        self.owners.range(..=point).next_back().map(|(_, &v)| v)
    }

    /// Reassigns `[start, end)` to `to` — the effect of one transfer.
    fn assign(&mut self, start: u64, end: u128, to: VnodeId) {
        debug_assert!(end > start as u128 && end <= self.space.size());
        // Preserve the successor's ownership past `end` by pinning a
        // boundary there before the range is cleared.
        if end < self.space.size() {
            let e = end as u64;
            if let Some(owner) = self.owner_at(e) {
                self.owners.entry(e).or_insert(owner);
            }
            let doomed: Vec<u64> = self.owners.range(start..e).map(|(&k, _)| k).collect();
            for k in doomed {
                self.owners.remove(&k);
            }
        } else {
            let doomed: Vec<u64> = self.owners.range(start..).map(|(&k, _)| k).collect();
            for k in doomed {
                self.owners.remove(&k);
            }
        }
        self.owners.insert(start, to);
    }

    /// Applies a vnode rename (`VnodeMigrated`): coverage and host entry
    /// move from `old` to `new` under the same snode.
    fn rename(&mut self, old: VnodeId, new: VnodeId) {
        for v in self.owners.values_mut() {
            if *v == old {
                *v = new;
            }
        }
        if let Some(snode) = self.hosts.remove(&old) {
            self.hosts.insert(new, snode);
        }
    }

    /// Records a creation outcome: the new vnode's host. The first vnode
    /// of an empty DHT receives the whole space (its creation streams no
    /// transfers — there was nothing to hand over).
    pub fn note_create(&mut self, v: VnodeId, snode: SnodeId) {
        self.hosts.insert(v, snode);
        if self.owners.is_empty() {
            self.owners.insert(0, v);
        }
    }

    /// Records a removal outcome: the vnode's coverage was already drained
    /// by the operation's transfers; this drops its host entry.
    pub fn note_remove(&mut self, v: VnodeId) {
        self.hosts.remove(&v);
        debug_assert!(
            !self.owners.values().any(|&o| o == v),
            "removed vnode must have been drained by transfers"
        );
    }

    /// Records a crash outcome: every vnode `snode` hosted is gone. The
    /// failure operation already streamed the transfers that drained their
    /// coverage (and the renames that preserved survivors), so this only
    /// drops the dead host entries.
    pub fn note_fail(&mut self, snode: SnodeId) {
        self.hosts.retain(|_, s| *s != snode);
        debug_assert!(
            self.owners.values().all(|v| self.hosts.contains_key(v)),
            "crashed snode's coverage must have been drained by transfers"
        );
    }

    /// Builds the immutable snapshot of the current state at the current
    /// epoch (`O(spans)`).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut raw: Vec<OwnerSpan> = Vec::with_capacity(self.owners.len());
        let mut iter = self.owners.iter().peekable();
        while let Some((&start, &vnode)) = iter.next() {
            let end = iter.peek().map(|(&k, _)| k as u128).unwrap_or_else(|| self.space.size());
            let snode = *self.hosts.get(&vnode).expect("owning vnode has a host");
            raw.push(OwnerSpan { start, end, vnode, snode });
        }
        let spans = coalesce(raw);
        let loads = loads_of(&spans, self.hosts.iter().map(|(&v, &s)| (v, s)), self.space);
        EngineSnapshot {
            epoch: self.epoch,
            space: self.space,
            spans,
            loads,
            vnodes: self.hosts.len(),
        }
    }

    /// Advances the epoch and publishes the current state into `cell`.
    /// Returns the published epoch.
    pub fn publish(&mut self, cell: &SnapshotCell) -> u64 {
        self.epoch += 1;
        cell.publish(self.snapshot());
        self.epoch
    }
}

impl RebalanceSink for SnapshotBuilder {
    fn event(&mut self, e: RebalanceEvent) {
        match e {
            RebalanceEvent::Transfer(t) => {
                let (start, end) = (t.partition.start(self.space), t.partition.end(self.space));
                self.assign(start, end, t.to);
            }
            RebalanceEvent::VnodeMigrated { old, new } => self.rename(old, new),
            // Splits/merges subdivide or fuse partitions under the same
            // owner; group events alter structure, not ownership.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DhtConfig;
    use crate::global::GlobalDht;
    use crate::local::LocalDht;

    fn probe_points(space: HashSpace) -> Vec<u64> {
        let mut pts: Vec<u64> =
            (0..257u64).map(|i| ((space.size() - 1) as u64 / 256).saturating_mul(i)).collect();
        pts.push(space.max_point());
        pts
    }

    fn assert_parity<E: DhtEngine>(engine: &E, snap: &EngineSnapshot) {
        let space = engine.config().hash_space();
        for p in probe_points(space) {
            let want = engine.lookup(p).map(|(_, v)| v);
            assert_eq!(snap.owner_of(p), want, "owner parity at point {p}");
            if let Some(v) = want {
                assert_eq!(
                    snap.lookup(p).unwrap().1,
                    engine.snode_of(v).unwrap(),
                    "snode parity at point {p}"
                );
            }
        }
        // Span boundaries are the adversarial points.
        for s in snap.spans() {
            assert_eq!(engine.lookup(s.start).unwrap().1, s.vnode);
        }
        // The incremental build must equal the one-pass build exactly.
        let full = EngineSnapshot::from_engine(engine, snap.epoch());
        assert_eq!(snap.spans(), full.spans());
        assert_eq!(snap.loads(), full.loads());
        // Quotas sum to 1 over a non-empty snapshot.
        if !snap.is_empty() {
            let total: f64 = snap.loads().iter().map(|l| l.quota).sum();
            assert!((total - 1.0).abs() < 1e-9, "quota sum {total}");
        }
    }

    fn churn_engine<E: DhtEngine>(mut engine: E, seed: u64) {
        let mut b = SnapshotBuilder::new(engine.config().hash_space());
        let cell = SnapshotCell::new(b.snapshot());
        let mut x = seed | 1;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..120u32 {
            // The builder's host map is the live roster (renames and all),
            // so victims are drawn from it directly.
            let live: Vec<VnodeId> = b.hosts.keys().copied().collect();
            if live.len() < 4 || rnd() % 3 != 0 {
                let snode = SnodeId(rnd() as u32 % 10);
                let out = engine.create_vnode_with(snode, &mut b).unwrap();
                b.note_create(out.vnode, snode);
            } else {
                let victim = live[rnd() as usize % live.len()];
                engine.remove_vnode_with(victim, &mut b).unwrap();
                b.note_remove(victim);
            }
            let epoch = b.publish(&cell);
            assert_eq!(epoch, round as u64 + 1);
            assert_parity(&engine, &cell.load());
        }
        engine.check_invariants().unwrap();
    }

    #[test]
    fn builder_tracks_global_engine_through_churn() {
        for seed in [3u64, 77, 2024] {
            let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
            churn_engine(GlobalDht::with_seed(cfg, seed), seed);
        }
    }

    #[test]
    fn builder_tracks_local_engine_through_churn() {
        for seed in [5u64, 91, 4096] {
            let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
            churn_engine(LocalDht::with_seed(cfg, seed), seed);
        }
    }

    #[test]
    fn builder_tracks_snode_failures() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
        let mut dht = LocalDht::with_seed(cfg, 9);
        let mut b = SnapshotBuilder::new(HashSpace::new(32));
        for i in 0..12u32 {
            let snode = SnodeId(i % 4);
            let out = dht.create_vnode_with(snode, &mut b).unwrap();
            b.note_create(out.vnode, snode);
        }
        assert_parity(&dht, &b.snapshot());
        let out = dht.fail_snode(SnodeId(1), &mut b).unwrap();
        assert!(!out.vnodes.is_empty());
        b.note_fail(SnodeId(1));
        assert_parity(&dht, &b.snapshot());
        assert!(b.snapshot().quota_of(SnodeId(1)).is_none(), "failed snode serves nothing");
    }

    #[test]
    fn cell_publish_and_staleness() {
        let space = HashSpace::new(16);
        let mut b = SnapshotBuilder::new(space);
        let cell = SnapshotCell::new(b.snapshot());
        let pinned = cell.load();
        assert_eq!(pinned.epoch(), 0);
        assert!(!cell.is_stale(&pinned));
        b.note_create(VnodeId(0), SnodeId(0));
        b.publish(&cell);
        assert!(cell.is_stale(&pinned), "old pin must read stale");
        assert_eq!(cell.epoch(), 1);
        let fresh = cell.load();
        assert_eq!(fresh.lookup(7), Some((VnodeId(0), SnodeId(0))));
        assert_eq!(fresh.quota_of(SnodeId(0)), Some(1.0));
    }

    #[test]
    fn successor_walk_matches_engine() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
        let mut dht = GlobalDht::with_seed(cfg, 42);
        let mut b = SnapshotBuilder::new(HashSpace::new(32));
        for s in 0..6u32 {
            let out = dht.create_vnode_with(SnodeId(s % 3), &mut b).unwrap();
            b.note_create(out.vnode, SnodeId(s % 3));
        }
        let snap = b.snapshot();
        for point in probe_points(HashSpace::new(32)) {
            // Replica chains (dedup by snode) must agree walk-for-walk.
            let mut want: Vec<VnodeId> = Vec::new();
            let mut seen: Vec<SnodeId> = Vec::new();
            dht.for_each_successor(point, &mut |v| {
                let s = dht.snode_of(v).unwrap();
                if !seen.contains(&s) {
                    seen.push(s);
                    want.push(v);
                }
                want.len() < 3
            });
            assert_eq!(snap.replicas(point, 3), want, "replica chain at {point}");
        }
    }

    #[test]
    fn empty_snapshot_misses_everything() {
        let snap = EngineSnapshot::empty(HashSpace::new(8));
        assert!(snap.is_empty());
        assert_eq!(snap.lookup(0), None);
        assert_eq!(snap.replicas(17, 2), Vec::<VnodeId>::new());
        assert_eq!(snap.quota_of(SnodeId(0)), None);
    }
}

//! Internal state arenas: vnodes and groups/regions.
//!
//! Both engines (global and local) share this representation:
//!
//! * [`VnodeStore`] — a dense arena of [`VnodeState`]s. Handles are never
//!   reused; deleted vnodes leave tombstones so stale handles fail loudly.
//! * [`GroupState`] — one balancement *region*: the whole DHT for the
//!   global approach, one group for the local approach. It carries the
//!   paper's per-group facts (identifier, common splitlevel `l_g`, member
//!   list) plus two integer accumulators (`Σ Pv`, `Σ Pv²`) that make the
//!   quality metric `σ̄(Qv)` O(G) to sample instead of O(V) — the paper
//!   measures after *every* creation, so this is the hot path.

use crate::group_id::GroupId;
use crate::ids::{CanonicalName, SnodeId, VnodeId};
use domus_hashspace::Partition;

/// State of one virtual node.
#[derive(Debug, Clone)]
pub struct VnodeState {
    /// Canonical name `snode_id.vnode_id` (paper, footnote 2).
    pub name: CanonicalName,
    /// Slot of the owning group in the engine's group arena.
    pub group: u32,
    /// The partitions bound to this vnode — all at the group's splitlevel
    /// (invariant G3'). Order is insertion order; transfer policies index
    /// into it.
    pub partitions: Vec<Partition>,
    /// `false` once deleted (tombstone).
    pub alive: bool,
}

impl VnodeState {
    /// Partition count `Pv`.
    #[inline]
    pub fn count(&self) -> u64 {
        self.partitions.len() as u64
    }
}

/// Dense vnode arena.
#[derive(Debug, Clone, Default)]
pub struct VnodeStore {
    slots: Vec<VnodeState>,
    alive: usize,
    /// Per-snode counter for canonical names (`local` part).
    per_snode: Vec<u32>,
}

impl VnodeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vnode hosted by `snode`, assigned to group slot `group`,
    /// with no partitions yet.
    pub fn create(&mut self, snode: SnodeId, group: u32) -> VnodeId {
        let id = VnodeId(self.slots.len() as u32);
        if self.per_snode.len() <= snode.index() {
            self.per_snode.resize(snode.index() + 1, 0);
        }
        let local = self.per_snode[snode.index()];
        self.per_snode[snode.index()] += 1;
        self.slots.push(VnodeState {
            name: CanonicalName { snode, local },
            group,
            partitions: Vec::new(),
            alive: true,
        });
        self.alive += 1;
        id
    }

    /// Immutable access.
    ///
    /// # Panics
    /// Panics on an out-of-range handle.
    #[inline]
    pub fn get(&self, v: VnodeId) -> &VnodeState {
        &self.slots[v.index()]
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, v: VnodeId) -> &mut VnodeState {
        &mut self.slots[v.index()]
    }

    /// `true` iff the handle refers to a live vnode.
    pub fn is_alive(&self, v: VnodeId) -> bool {
        v.index() < self.slots.len() && self.slots[v.index()].alive
    }

    /// Tombstones a vnode (its partitions must already be redistributed).
    ///
    /// # Panics
    /// Panics if the vnode still owns partitions or is already dead.
    pub fn kill(&mut self, v: VnodeId) {
        let s = &mut self.slots[v.index()];
        assert!(s.alive, "double-kill of {v}");
        assert!(s.partitions.is_empty(), "killing {v} while it still owns partitions");
        s.alive = false;
        self.alive -= 1;
    }

    /// Number of live vnodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Total slots ever allocated (live + tombstones).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates live vnode handles in creation order.
    pub fn iter_alive(&self) -> impl Iterator<Item = VnodeId> + '_ {
        self.slots.iter().enumerate().filter(|(_, s)| s.alive).map(|(i, _)| VnodeId(i as u32))
    }
}

/// One balancement region: a *group* in the local approach, the entire DHT
/// in the global approach.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Group identifier (the root id for the global approach's single region).
    pub gid: GroupId,
    /// Common splitlevel `l_g` of every partition in the region (G3').
    pub level: u32,
    /// The splitlevel the region was born at; binary merges (deletion
    /// extension) never descend below it — below the birth level the
    /// region's partition set is not guaranteed to be sibling-closed.
    pub birth_level: u32,
    /// Member vnodes (order = admission order; used for deterministic
    /// tie-breaking).
    pub members: Vec<VnodeId>,
    /// `Σ Pv` over members — the region's partition count `P_g` (G2': a
    /// power of two).
    pub sum: u64,
    /// `Σ Pv²` over members — the σ̄(Qv) accumulator.
    pub sumsq: u64,
    /// Count histogram: `hist[c]` = members currently holding `c`
    /// partitions. Bounded by `Pmax + 1` slots at rest (counts live in
    /// `[Pmin, Pmax]`); kept exact through every accounting event so
    /// `max_count` — and thus the peak-quota metric — is O(Pmax) instead
    /// of an O(V_g) member rescan.
    pub hist: Vec<u32>,
    /// `false` once the group has split or merged away.
    pub alive: bool,
}

impl GroupState {
    /// A fresh region at `level` with identifier `gid` and no members.
    pub fn new(gid: GroupId, level: u32) -> Self {
        Self {
            gid,
            level,
            birth_level: level,
            members: Vec::new(),
            sum: 0,
            sumsq: 0,
            hist: Vec::new(),
            alive: true,
        }
    }

    #[inline]
    fn hist_slot(&mut self, count: u64) -> &mut u32 {
        let idx = count as usize;
        if self.hist.len() <= idx {
            self.hist.resize(idx + 1, 0);
        }
        &mut self.hist[idx]
    }

    /// The largest member partition count, off the histogram — O(Pmax).
    pub fn max_count(&self) -> u64 {
        self.hist.iter().rposition(|&n| n > 0).unwrap_or(0) as u64
    }

    /// Number of member vnodes `V_g`.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the region has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Registers a member with current partition count `count` in the
    /// accumulators.
    pub fn admit(&mut self, v: VnodeId, count: u64) {
        self.members.push(v);
        self.sum += count;
        self.sumsq += count * count;
        *self.hist_slot(count) += 1;
    }

    /// Removes a member with current partition count `count` from the
    /// accumulators.
    ///
    /// # Panics
    /// Panics if `v` is not a member.
    pub fn expel(&mut self, v: VnodeId, count: u64) {
        let pos = self.members.iter().position(|&m| m == v).expect("expel: not a member");
        self.members.remove(pos);
        self.sum -= count;
        self.sumsq -= count * count;
        self.hist[count as usize] -= 1;
    }

    /// Accounts for one partition moving from a member with count `from`
    /// (pre-move) to a member with count `to` (pre-move).
    #[inline]
    pub fn account_move(&mut self, from: u64, to: u64) {
        // Σ is unchanged; ΣPv² changes by (from−1)²−from² + (to+1)²−to².
        self.sumsq = self.sumsq + 2 * to + 1 - (2 * from - 1);
        self.hist[from as usize] -= 1;
        self.hist[from as usize - 1] += 1;
        self.hist[to as usize] -= 1;
        *self.hist_slot(to + 1) += 1;
    }

    /// Accounts for one partition arriving at a member with pre-move count
    /// `to` from *outside* the accumulators (the donor was already expelled).
    #[inline]
    pub fn account_gain(&mut self, to: u64) {
        self.sum += 1;
        self.sumsq += 2 * to + 1;
        self.hist[to as usize] -= 1;
        *self.hist_slot(to + 1) += 1;
    }

    /// Accounts for a binary split of every partition (counts double).
    pub fn account_split_all(&mut self) {
        self.level += 1;
        self.sum *= 2;
        self.sumsq *= 4;
        let old = std::mem::take(&mut self.hist);
        self.hist = vec![0; old.len() * 2];
        for (c, n) in old.into_iter().enumerate() {
            self.hist[c * 2] = n;
        }
    }

    /// Accounts for a binary merge of every partition pair (counts halve).
    pub fn account_merge_all(&mut self) {
        self.level -= 1;
        self.sum /= 2;
        self.sumsq /= 4;
        let old = std::mem::take(&mut self.hist);
        self.hist = vec![0; old.len() / 2 + 1];
        for (c, &n) in old.iter().enumerate() {
            debug_assert!(c % 2 == 0 || n == 0, "merge cascade requires even counts");
            self.hist[c / 2] += n;
        }
    }

    /// Recomputes `sum`/`sumsq`/`hist` from scratch (used after group
    /// splits, where members change wholesale).
    pub fn recompute(&mut self, vs: &VnodeStore) {
        self.sum = 0;
        self.sumsq = 0;
        self.hist.clear();
        for i in 0..self.members.len() {
            let c = vs.get(self.members[i]).count();
            self.sum += c;
            self.sumsq += c * c;
            *self.hist_slot(c) += 1;
        }
    }

    /// Empties the accumulators of a retired (split/merged-away) group.
    pub fn clear_accumulators(&mut self) {
        self.sum = 0;
        self.sumsq = 0;
        self.hist.clear();
    }

    /// The region's quota of `R_h` as `P_g / 2^l` (exact in f64 for the
    /// levels any simulation reaches).
    pub fn quota_f64(&self) -> f64 {
        self.sum as f64 / (self.level as f64).exp2()
    }

    /// Contribution of this region to `Σ_v Qv²`: `Σ Pv² / 4^l`.
    pub fn sumsq_quota_f64(&self) -> f64 {
        self.sumsq as f64 / (2.0 * self.level as f64).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_canonical_names_per_snode() {
        let mut vs = VnodeStore::new();
        let a = vs.create(SnodeId(0), 0);
        let b = vs.create(SnodeId(0), 0);
        let c = vs.create(SnodeId(1), 0);
        assert_eq!(vs.get(a).name.to_string(), "0.0");
        assert_eq!(vs.get(b).name.to_string(), "0.1");
        assert_eq!(vs.get(c).name.to_string(), "1.0");
        assert_eq!(vs.alive_count(), 3);
    }

    #[test]
    fn kill_tombstones_without_reuse() {
        let mut vs = VnodeStore::new();
        let a = vs.create(SnodeId(0), 0);
        vs.kill(a);
        assert!(!vs.is_alive(a));
        let b = vs.create(SnodeId(0), 0);
        assert_ne!(a, b, "handles are never reused");
        assert_eq!(vs.alive_count(), 1);
        assert_eq!(vs.capacity(), 2);
        assert_eq!(vs.iter_alive().collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    #[should_panic(expected = "still owns partitions")]
    fn kill_with_partitions_panics() {
        let mut vs = VnodeStore::new();
        let a = vs.create(SnodeId(0), 0);
        vs.get_mut(a).partitions.push(Partition::ROOT);
        vs.kill(a);
    }

    #[test]
    fn accumulators_track_moves() {
        let mut vs = VnodeStore::new();
        let mut g = GroupState::new(GroupId::FIRST, 3);
        let a = vs.create(SnodeId(0), 0);
        let b = vs.create(SnodeId(0), 0);
        // a holds 5, b holds 3 (synthetic counts via direct partition pushes
        // is unnecessary: accumulators are driven by the caller).
        g.admit(a, 5);
        g.admit(b, 3);
        assert_eq!(g.sum, 8);
        assert_eq!(g.sumsq, 34);
        g.account_move(5, 3); // a→b: counts become 4 and 4
        assert_eq!(g.sum, 8);
        assert_eq!(g.sumsq, 32);
        g.account_split_all();
        assert_eq!(g.level, 4);
        assert_eq!(g.sum, 16);
        assert_eq!(g.sumsq, 128);
        g.account_merge_all();
        assert_eq!(g.level, 3);
        assert_eq!(g.sum, 8);
        assert_eq!(g.sumsq, 32);
    }

    #[test]
    fn expel_updates_accumulators() {
        let mut g = GroupState::new(GroupId::FIRST, 3);
        g.admit(VnodeId(0), 4);
        g.admit(VnodeId(1), 6);
        g.expel(VnodeId(0), 4);
        assert_eq!(g.members, vec![VnodeId(1)]);
        assert_eq!(g.sum, 6);
        assert_eq!(g.sumsq, 36);
    }

    #[test]
    fn quota_f64_is_count_over_two_to_level() {
        let mut g = GroupState::new(GroupId::FIRST, 5);
        g.admit(VnodeId(0), 16);
        assert_eq!(g.quota_f64(), 0.5);
        assert_eq!(g.sumsq_quota_f64(), 256.0 / 1024.0);
    }
}

//! The balancement kernel shared by both approaches.
//!
//! This module implements the paper's creation algorithm (§2.5) and its
//! supporting cascades over one *region* (= the whole DHT for the global
//! approach, one group for the local approach):
//!
//! * [`seed_first`] — the first vnode of a DHT receives all `Pmin`
//!   partitions of the initial splitlevel `log2(Pmin)` (invariant G5 with
//!   `V = 1`).
//! * [`split_all`] — the split cascade: "all the older vnodes binary split
//!   their own partitions, doubling its number to `Pv = Pmax`" (§2.5). Runs
//!   when every member holds exactly `Pmin` partitions — which, by G5/G5',
//!   is exactly when the member count is a power of two.
//! * [`greedy_add`] — steps 1–4 of the printed algorithm: repeatedly take
//!   one partition from the most-loaded vnode and give it to the new vnode
//!   while that strictly decreases `σ(Pv)`.
//! * [`greedy_remove`] / [`merge_all`] / [`rebalance_spread`] — the inverse
//!   operations used by the deletion extension (not in the paper; see
//!   DESIGN.md §2 item 7).
//!
//! ## The O(1) σ-decrease test
//!
//! Step 4 of the paper's algorithm re-evaluates `σ(Pv, P̄v)` after a
//! hypothetical move. Moving one partition from a donor with count `m` to
//! the new vnode with count `c` changes `Σ(Pv − P̄)²` by
//! `((m−1)−P̄)² − (m−P̄)² + ((c+1)−P̄)² − (c−P̄)² = 2(c − m + 1)`
//! (the mean `P̄` is unchanged). The move strictly decreases σ iff this is
//! negative, i.e. **iff `c + 1 < m`**. `greedy_add` uses that test; the
//! equivalence is cross-checked against a literal σ recomputation in the
//! tests (and the ablation ABL-VICTIM exercises both phrasings).
//!
//! ## Why the greedy respects G4
//!
//! The donor is always a current maximum. The mean count during an addition
//! is `P_g/(V_g+1) ≥ Pmin`: if the cascade ran, `P_g = 2·V_g·Pmin` and
//! `2·V_g ≥ V_g + 1`; if it did not, some member held `> Pmin`, and since
//! every member held `≥ Pmin` with `P_g` a power of two, `P_g ≥ (V_g+1)·Pmin`
//! already. A maximum can only be drained to `⌈mean⌉ − 1 ≥ Pmin` before the
//! stop test fires, so no donor ever drops below `Pmin`, and the new vnode
//! stops at `≤ ⌈mean⌉ ≤ Pmax`. Debug assertions enforce both bounds.

use crate::config::{DhtConfig, VictimPartitionPolicy};
use crate::engine::Transfer;
use crate::errors::DhtError;
use crate::ids::VnodeId;
use crate::sink::LedgeredSink;
use crate::state::{GroupState, VnodeStore};
use domus_hashspace::{OwnerMap, Partition};
use domus_util::DomusRng;

/// Picks the index of the donor partition to hand over, per policy.
fn pick_partition<R: DomusRng>(len: usize, policy: VictimPartitionPolicy, rng: &mut R) -> usize {
    debug_assert!(len > 0);
    match policy {
        VictimPartitionPolicy::Random => rng.index(len),
        VictimPartitionPolicy::Last => len - 1,
        VictimPartitionPolicy::First => 0,
    }
}

/// Removes one partition from `donor` per policy, hands it to `recv`,
/// and emits the transfer (which also streams the ledger move).
fn move_one<R: DomusRng>(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    donor: VnodeId,
    recv: VnodeId,
    policy: VictimPartitionPolicy,
    rng: &mut R,
    sink: &mut LedgeredSink<'_>,
) {
    let donor_parts = &mut vs.get_mut(donor).partitions;
    let idx = pick_partition(donor_parts.len(), policy, rng);
    // `swap_remove` is O(1); `First` keeps FIFO semantics with `remove`.
    let p = if policy == VictimPartitionPolicy::First {
        donor_parts.remove(idx)
    } else {
        donor_parts.swap_remove(idx)
    };
    routing.transfer(p, recv).expect("donor's partition must be routed to it");
    vs.get_mut(recv).partitions.push(p);
    sink.transfer(
        Transfer { partition: p, from: donor, to: recv },
        vs.get(donor).name.snode,
        vs.get(recv).name.snode,
    );
}

/// Seeds the first vnode of a DHT: all `Pmin` partitions of splitlevel
/// `log2(Pmin)`, covering `R_h` exactly.
///
/// # Panics
/// Panics if the region already has members or the routing map is not empty.
pub fn seed_first(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    region: &mut GroupState,
    v: VnodeId,
    cfg: &DhtConfig,
) {
    assert!(region.is_empty(), "seed_first on a non-empty region");
    assert!(routing.is_empty(), "seed_first on a non-empty routing map");
    let level = cfg.initial_level();
    region.level = level;
    region.birth_level = level;
    let mut parts = Vec::with_capacity(cfg.pmin as usize);
    for p in Partition::all_at_level(level) {
        routing.insert(p, v).expect("tiling a fresh map cannot overlap");
        parts.push(p);
    }
    vs.get_mut(v).partitions = parts;
    region.admit(v, cfg.pmin);
}

/// `true` iff every member of the region holds exactly `Pmin` partitions —
/// the split-cascade trigger (equivalently, by G5/G5': the member count is
/// a power of two).
pub fn all_at_pmin(_vs: &VnodeStore, region: &GroupState, cfg: &DhtConfig) -> bool {
    // O(1) via the accumulators: all counts equal Pmin ⟺ Σ = V·Pmin and
    // Σ² = V·Pmin² (equal-sum with equal-sum-of-squares forces equality).
    let v = region.members.len() as u64;
    v > 0 && region.sum == v * cfg.pmin && region.sumsq == v * cfg.pmin * cfg.pmin
}

/// `true` iff every member of the region holds exactly `Pmax` partitions —
/// the merge-cascade trigger after a removal's redistribution. O(1), by
/// the same accumulator argument as [`all_at_pmin`].
pub fn all_at_pmax(region: &GroupState, cfg: &DhtConfig) -> bool {
    let v = region.members.len() as u64;
    let pmax = cfg.pmax();
    v > 0 && region.sum == v * pmax && region.sumsq == v * pmax * pmax
}

/// The split cascade: binary-splits every partition of the region, doubling
/// every member's count from `Pmin` to `Pmax` (§2.5). Returns the number of
/// partitions split.
///
/// When the region spans the whole routing map (the global approach; the
/// local approach while a single group exists) the cascade is one bulk
/// rebuild — `O(P)` instead of `P` individual tree surgeries.
pub fn split_all(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    region: &mut GroupState,
) -> Result<u64, DhtError> {
    let space = routing.space();
    if region.level >= space.bits() {
        return Err(DhtError::LevelOverflow { level: region.level, bits: space.bits() });
    }
    let whole_map = region.sum == routing.len() as u64;
    let mut split_count = 0u64;
    if whole_map {
        split_count = routing.split_all();
    }
    for &m in &region.members {
        let old = std::mem::take(&mut vs.get_mut(m).partitions);
        let mut fresh = Vec::with_capacity(old.len() * 2);
        for p in old {
            let (a, b) = if whole_map {
                p.split()
            } else {
                split_count += 1;
                routing.split(p).expect("member partition must be routed")
            };
            fresh.push(a);
            fresh.push(b);
        }
        vs.get_mut(m).partitions = fresh;
    }
    region.account_split_all();
    Ok(split_count)
}

/// Steps 1–4 of the paper's creation algorithm: `new` (already admitted to
/// the region with zero partitions) receives partitions one at a time from
/// the most-loaded member while `σ(Pv)` strictly decreases. Every handover
/// streams through `sink`.
///
/// Ties among equally-loaded donors are broken LIFO over admission order
/// (the paper's step-3 sort leaves ties unspecified).
pub fn greedy_add<R: DomusRng>(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    region: &mut GroupState,
    new: VnodeId,
    cfg: &DhtConfig,
    rng: &mut R,
    sink: &mut LedgeredSink<'_>,
) {
    debug_assert_eq!(vs.get(new).count(), 0, "greedy_add expects a fresh vnode");
    debug_assert!(region.members.contains(&new), "new vnode must be admitted first");

    // Bucket queue over partition counts: donors only ever step down one
    // bucket, so a single downward cursor visits each maximum in O(1).
    let max_count = region.members.iter().map(|&m| vs.get(m).count()).max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<VnodeId>> = vec![Vec::new(); max_count + 1];
    for &m in &region.members {
        if m != new {
            buckets[vs.get(m).count() as usize].push(m);
        }
    }
    let mut cur = max_count;
    let mut new_count = 0u64;
    loop {
        while cur > 0 && buckets[cur].is_empty() {
            cur -= 1;
        }
        if cur == 0 {
            break; // no donor holds a partition (single-member region)
        }
        // The σ-decrease test: move helps iff new_count + 1 < donor count.
        if new_count + 1 >= cur as u64 {
            break;
        }
        let donor = buckets[cur].pop().expect("cursor sits on a non-empty bucket");
        debug_assert!(
            cur as u64 > cfg.pmin,
            "greedy would drag a donor below Pmin: donor at {cur}, Pmin {}",
            cfg.pmin
        );
        move_one(vs, routing, donor, new, cfg.victim_partition, rng, sink);
        region.account_move(cur as u64, new_count);
        buckets[cur - 1].push(donor);
        new_count += 1;
    }
    debug_assert!(
        new_count <= cfg.pmax(),
        "new vnode overfilled: {new_count} > Pmax {}",
        cfg.pmax()
    );
}

/// Inverse of [`greedy_add`]: drains every partition of `victim` to the
/// least-loaded remaining members (each move is the σ-minimising choice),
/// then expels the victim from the region.
///
/// The caller guarantees at least one other member exists and — by the
/// power-of-two capacity argument in DESIGN.md §3 — the remaining members
/// can absorb everything within `Pmax`.
pub fn greedy_remove<R: DomusRng>(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    region: &mut GroupState,
    victim: VnodeId,
    cfg: &DhtConfig,
    rng: &mut R,
    sink: &mut LedgeredSink<'_>,
) {
    debug_assert!(region.members.len() >= 2, "greedy_remove needs a surviving member");
    let victim_count = vs.get(victim).count();
    region.expel(victim, victim_count);

    let max_possible = cfg.pmax() as usize + 1;
    let mut buckets: Vec<Vec<VnodeId>> = vec![Vec::new(); max_possible + 1];
    let mut cur = usize::MAX;
    for &m in &region.members {
        let c = vs.get(m).count() as usize;
        debug_assert!(c <= max_possible);
        buckets[c].push(m);
        cur = cur.min(c);
    }
    for _ in 0..victim_count {
        while buckets[cur].is_empty() {
            cur += 1;
        }
        let recv = buckets[cur].pop().expect("cursor sits on a non-empty bucket");
        move_one(vs, routing, victim, recv, cfg.victim_partition, rng, sink);
        region.account_gain(cur as u64);
        debug_assert!(
            (cur as u64) < cfg.pmax(),
            "redistribution overflowed Pmax — capacity argument violated"
        );
        buckets[cur + 1].push(recv);
    }
    debug_assert!(vs.get(victim).partitions.is_empty());
}

/// Error from [`merge_all`]: the region's partition set is not closed under
/// siblings at the current level, so a binary merge is impossible. By the
/// birth-level argument (DESIGN.md §3) this is unreachable from any legal
/// operation sequence; it exists to fail loudly instead of corrupting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotSiblingClosed {
    /// A parent index with only one present child.
    pub parent_index: u64,
}

/// The merge cascade (inverse of [`split_all`]): re-pairs sibling
/// partitions onto common owners with the fewest possible transfers
/// (streamed through `sink`), then binary-merges every pair, halving
/// every member's count. Returns the number of pairs merged.
///
/// Precondition: every member's count is even (callers invoke this at the
/// all-`Pmax` state) and the region sits above its birth level.
pub fn merge_all<R: DomusRng>(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    region: &mut GroupState,
    _cfg: &DhtConfig,
    _rng: &mut R,
    sink: &mut LedgeredSink<'_>,
) -> Result<u64, NotSiblingClosed> {
    // Note on the closure floor: a region created by a membership split is
    // only guaranteed sibling-closed above the level it was born at
    // (`birth_level`). The capacity arithmetic in the module docs shows
    // every *required* merge happens above that floor; the structural
    // validation below is the authoritative guard.
    // Gather every (parent index, child, owner) and sort: siblings become
    // adjacent, left child first — one flat buffer instead of a tree of
    // per-parent vectors.
    let mut children: Vec<(u64, Partition, VnodeId)> = Vec::with_capacity(region.sum as usize);
    for &m in &region.members {
        for &p in &vs.get(m).partitions {
            children.push((p.index() >> 1, p, m));
        }
    }
    children.sort_unstable_by_key(|&(parent, p, _)| (parent, p.index()));
    // Partitions are unique, so a parent index appears at most twice; the
    // set is sibling-closed iff every run of equal parents has length 2.
    let mut at = 0;
    while at < children.len() {
        let parent_index = children[at].0;
        if at + 1 >= children.len() || children[at + 1].0 != parent_index {
            return Err(NotSiblingClosed { parent_index });
        }
        at += 2;
    }

    // Capacity: each member keeps count/2 parents. Sorted by handle so the
    // any-member fallback scan below is deterministic (same order the old
    // BTreeMap-keyed bookkeeping iterated in).
    let mut capacity: Vec<(VnodeId, u64)> = region
        .members
        .iter()
        .map(|&m| {
            let c = vs.get(m).count();
            debug_assert!(c % 2 == 0, "merge_all requires even counts, {m} has {c}");
            (m, c / 2)
        })
        .collect();
    capacity.sort_unstable_by_key(|&(m, _)| m);
    let cap_slot = |capacity: &[(VnodeId, u64)], m: VnodeId| -> usize {
        capacity.binary_search_by_key(&m, |&(v, _)| v).expect("member has a capacity slot")
    };

    // Assignment passes: (1) both children same owner → free;
    // (2) one child's owner has capacity → one transfer;
    // (3) any member with capacity → two transfers.
    let pairs = children.len() / 2;
    let mut assignment: Vec<Option<VnodeId>> = vec![None; pairs];
    for (i, pair) in children.chunks_exact(2).enumerate() {
        let (a, b) = (pair[0].2, pair[1].2);
        if a == b {
            assignment[i] = Some(a);
            let slot = cap_slot(&capacity, a);
            capacity[slot].1 -= 1;
        }
    }
    for (i, pair) in children.chunks_exact(2).enumerate() {
        if assignment[i].is_some() {
            continue;
        }
        let (a, b) = (pair[0].2, pair[1].2);
        let sa = cap_slot(&capacity, a);
        if capacity[sa].1 > 0 {
            assignment[i] = Some(a);
            capacity[sa].1 -= 1;
        } else {
            let sb = cap_slot(&capacity, b);
            if capacity[sb].1 > 0 {
                assignment[i] = Some(b);
                capacity[sb].1 -= 1;
            }
        }
    }
    for slot in assignment.iter_mut().filter(|a| a.is_none()) {
        let any = capacity
            .iter_mut()
            .find(|(_, cap)| *cap > 0)
            .expect("total capacity equals total parents");
        *slot = Some(any.0);
        any.1 -= 1;
    }

    // Apply: route both children to the assignee, record the moves, merge.
    // A region spanning the whole map (global approach / single local
    // group) merges in one bulk rebuild; scattered groups use the in-place
    // per-pair surgery.
    let whole_map = region.sum == routing.len() as u64;
    for &m in &region.members {
        vs.get_mut(m).partitions.clear();
    }
    let mut replacement = Vec::with_capacity(if whole_map { pairs } else { 0 });
    for (i, pair) in children.chunks_exact(2).enumerate() {
        let owner = assignment[i].expect("every pair was assigned");
        for &(_, p, old_owner) in pair {
            if old_owner != owner {
                if !whole_map {
                    routing.transfer(p, owner).expect("child partition is routed");
                }
                sink.transfer(
                    Transfer { partition: p, from: old_owner, to: owner },
                    vs.get(old_owner).name.snode,
                    vs.get(owner).name.snode,
                );
            }
        }
        let merged = if whole_map {
            let parent = pair[0].1.parent().expect("mergeable partitions sit below the root");
            replacement.push((parent, owner));
            parent
        } else {
            routing.merge(pair[0].1, pair[1].1).expect("siblings with a common owner merge")
        };
        vs.get_mut(owner).partitions.push(merged);
    }
    if whole_map {
        // `children` was sorted by parent index at one common level, so the
        // parent list is in ascending hash-space order.
        routing.replace_all(replacement);
    }
    region.account_merge_all();
    Ok(pairs as u64)
}

/// Moves partitions from maxima to minima until the region's counts differ
/// by at most one (each move strictly decreases σ), streaming every move
/// through `sink`. Used after a group merge (deletion extension) to
/// re-legalise counts.
pub fn rebalance_spread<R: DomusRng>(
    vs: &mut VnodeStore,
    routing: &mut OwnerMap<VnodeId>,
    region: &mut GroupState,
    cfg: &DhtConfig,
    rng: &mut R,
    sink: &mut LedgeredSink<'_>,
) {
    // Each move from a current maximum to a current minimum strictly
    // reduces Σ(Pv)², so this terminates; the group-merge path that calls
    // this is rare enough that the O(V_g) scan per move is irrelevant.
    loop {
        let (mut cmin, mut vmin, mut cmax, mut vmax) = (u64::MAX, None, 0u64, None);
        for &m in &region.members {
            let c = vs.get(m).count();
            if c < cmin {
                cmin = c;
                vmin = Some(m);
            }
            if c > cmax {
                cmax = c;
                vmax = Some(m);
            }
        }
        if cmax.saturating_sub(cmin) <= 1 {
            break;
        }
        let (vmin, vmax) = (vmin.expect("non-empty"), vmax.expect("non-empty"));
        move_one(vs, routing, vmax, vmin, cfg.victim_partition, rng, sink);
        region.account_move(cmax, cmin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_id::GroupId;
    use crate::ledger::SnodeLedger;
    use crate::sink::{CollectReport, NullSink};
    use domus_hashspace::{HashSpace, Quota};
    use domus_util::Xoshiro256pp;

    fn setup(pmin: u64) -> (VnodeStore, OwnerMap<VnodeId>, GroupState, DhtConfig, Xoshiro256pp) {
        let cfg = DhtConfig::new(HashSpace::new(16), pmin, 1).unwrap();
        let vs = VnodeStore::new();
        let routing = OwnerMap::new(cfg.hash_space());
        let region = GroupState::new(GroupId::FIRST, cfg.initial_level());
        (vs, routing, region, cfg, Xoshiro256pp::seed_from_u64(1))
    }

    /// A ledger seeded from the region's current distribution, so the
    /// streamed moves have registered snodes to debit and credit.
    fn seeded_ledger(vs: &VnodeStore, region: &GroupState) -> SnodeLedger {
        let mut l = SnodeLedger::new();
        for &m in &region.members {
            let s = vs.get(m).name.snode;
            l.vnode_created(s);
            if vs.get(m).count() > 0 {
                l.gain(s, Quota::new(vs.get(m).count() as u128, region.level));
            }
        }
        l
    }

    #[test]
    fn seed_first_tiles_the_space_with_pmin_partitions() {
        let (mut vs, mut routing, mut region, cfg, _) = setup(8);
        let v = vs.create(crate::ids::SnodeId(0), 0);
        seed_first(&mut vs, &mut routing, &mut region, v, &cfg);
        assert_eq!(vs.get(v).count(), 8);
        assert_eq!(region.level, 3);
        assert_eq!(region.sum, 8);
        routing.verify_coverage().unwrap();
    }

    #[test]
    fn split_all_doubles_counts_and_advances_level() {
        let (mut vs, mut routing, mut region, cfg, _) = setup(4);
        let v = vs.create(crate::ids::SnodeId(0), 0);
        seed_first(&mut vs, &mut routing, &mut region, v, &cfg);
        let splits = split_all(&mut vs, &mut routing, &mut region).unwrap();
        assert_eq!(splits, 4);
        assert_eq!(vs.get(v).count(), 8);
        assert_eq!(region.level, 3);
        routing.verify_coverage().unwrap();
        // Partition lists agree with routing after the cascade.
        for &p in &vs.get(v).partitions {
            assert_eq!(routing.owner_of(p), Some(&v));
        }
    }

    #[test]
    fn split_all_errors_at_space_resolution() {
        let cfg = DhtConfig::new(HashSpace::new(4), 16, 1).unwrap();
        let mut vs = VnodeStore::new();
        let mut routing = OwnerMap::new(cfg.hash_space());
        let mut region = GroupState::new(GroupId::FIRST, cfg.initial_level());
        let v = vs.create(crate::ids::SnodeId(0), 0);
        seed_first(&mut vs, &mut routing, &mut region, v, &cfg);
        // Level 4 on a 4-bit space: no further splits possible.
        assert!(matches!(
            split_all(&mut vs, &mut routing, &mut region),
            Err(DhtError::LevelOverflow { .. })
        ));
    }

    #[test]
    fn greedy_add_stops_at_spread_one() {
        let (mut vs, mut routing, mut region, cfg, mut rng) = setup(4);
        let a = vs.create(crate::ids::SnodeId(0), 0);
        seed_first(&mut vs, &mut routing, &mut region, a, &cfg);
        split_all(&mut vs, &mut routing, &mut region).unwrap();
        let b = vs.create(crate::ids::SnodeId(1), 0);
        region.admit(b, 0);
        let mut ledger = seeded_ledger(&vs, &region);
        let mut collect = CollectReport::new();
        {
            let mut sink = LedgeredSink::new(&mut collect, &mut ledger);
            greedy_add(&mut vs, &mut routing, &mut region, b, &cfg, &mut rng, &mut sink);
        }
        let transfers = collect.transfers();
        assert_eq!(transfers.len(), 4, "[8,0] → [4,4]");
        assert_eq!(vs.get(a).count(), 4);
        assert_eq!(vs.get(b).count(), 4);
        assert!(transfers.iter().all(|t| t.from == a && t.to == b));
        assert!(ledger.total().is_one(), "streamed ledger moves conserve quota");
        assert_eq!(ledger.relstd_pct(), 0.0, "[4,4] over two snodes is perfectly even");
        routing.verify_coverage().unwrap();
    }

    #[test]
    fn all_at_pmin_uses_accumulators_correctly() {
        let (mut vs, mut routing, mut region, cfg, mut rng) = setup(4);
        let a = vs.create(crate::ids::SnodeId(0), 0);
        seed_first(&mut vs, &mut routing, &mut region, a, &cfg);
        assert!(all_at_pmin(&vs, &region, &cfg));
        split_all(&mut vs, &mut routing, &mut region).unwrap();
        assert!(!all_at_pmin(&vs, &region, &cfg), "counts are at Pmax now");
        let b = vs.create(crate::ids::SnodeId(1), 0);
        region.admit(b, 0);
        let mut ledger = seeded_ledger(&vs, &region);
        let mut null = NullSink;
        let mut sink = LedgeredSink::new(&mut null, &mut ledger);
        greedy_add(&mut vs, &mut routing, &mut region, b, &cfg, &mut rng, &mut sink);
        drop(sink);
        assert!(all_at_pmin(&vs, &region, &cfg), "[4,4] is all-at-Pmin again");
    }

    #[test]
    fn greedy_remove_then_merge_all_restores_seed_state() {
        let (mut vs, mut routing, mut region, cfg, mut rng) = setup(4);
        let a = vs.create(crate::ids::SnodeId(0), 0);
        seed_first(&mut vs, &mut routing, &mut region, a, &cfg);
        split_all(&mut vs, &mut routing, &mut region).unwrap();
        let b = vs.create(crate::ids::SnodeId(1), 0);
        region.admit(b, 0);
        let mut ledger = seeded_ledger(&vs, &region);
        let mut collect = CollectReport::new();
        {
            let mut sink = LedgeredSink::new(&mut collect, &mut ledger);
            greedy_add(&mut vs, &mut routing, &mut region, b, &cfg, &mut rng, &mut sink);
        }
        collect.clear();
        // Remove b: a absorbs everything → all at Pmax → merge cascade.
        {
            let mut sink = LedgeredSink::new(&mut collect, &mut ledger);
            greedy_remove(&mut vs, &mut routing, &mut region, b, &cfg, &mut rng, &mut sink);
        }
        assert_eq!(collect.transfers().len(), 4);
        vs.kill(b);
        assert_eq!(vs.get(a).count(), 8);
        collect.clear();
        let merges = {
            let mut sink = LedgeredSink::new(&mut collect, &mut ledger);
            merge_all(&mut vs, &mut routing, &mut region, &cfg, &mut rng, &mut sink).unwrap()
        };
        assert_eq!(merges, 4);
        assert!(collect.transfers().is_empty(), "single owner ⇒ all pairs co-located");
        assert_eq!(vs.get(a).count(), 4);
        assert_eq!(region.level, cfg.initial_level());
        assert!(ledger.total().is_one());
        routing.verify_coverage().unwrap();
    }

    #[test]
    fn merge_all_colocates_scattered_siblings() {
        // Hand-build a region where sibling partitions live on different
        // vnodes: merge_all must transfer to pair them up.
        let cfg = DhtConfig::new(HashSpace::new(8), 2, 1).unwrap();
        let mut vs = VnodeStore::new();
        let mut routing = OwnerMap::new(cfg.hash_space());
        let mut region = GroupState::new(GroupId::FIRST, 2);
        region.birth_level = 1;
        let a = vs.create(crate::ids::SnodeId(0), 0);
        let b = vs.create(crate::ids::SnodeId(1), 0);
        // Level-2 partitions 0..4: a gets {0, 2}, b gets {1, 3} — fully
        // interleaved, no co-located pair.
        for (i, owner) in [(0u64, a), (1, b), (2, a), (3, b)] {
            let p = Partition::new(2, i);
            routing.insert(p, owner).unwrap();
            vs.get_mut(owner).partitions.push(p);
        }
        region.admit(a, 2);
        region.admit(b, 2);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut ledger = seeded_ledger(&vs, &region);
        let mut collect = CollectReport::new();
        let merges = {
            let mut sink = LedgeredSink::new(&mut collect, &mut ledger);
            merge_all(&mut vs, &mut routing, &mut region, &cfg, &mut rng, &mut sink).unwrap()
        };
        assert_eq!(merges, 2);
        assert_eq!(collect.transfers().len(), 2, "each pair needs one co-location transfer");
        assert_eq!(vs.get(a).count(), 1);
        assert_eq!(vs.get(b).count(), 1);
        assert_eq!(region.level, 1);
        assert!(ledger.total().is_one(), "co-location moves conserve snode quota");
        routing.verify_coverage().unwrap();
    }

    #[test]
    fn merge_all_detects_unclosed_regions() {
        // A region holding only ONE child of a sibling pair cannot merge.
        let cfg = DhtConfig::new(HashSpace::new(8), 2, 1).unwrap();
        let mut vs = VnodeStore::new();
        let mut routing = OwnerMap::new(cfg.hash_space());
        let mut region = GroupState::new(GroupId::FIRST, 2);
        region.birth_level = 1;
        let a = vs.create(crate::ids::SnodeId(0), 0);
        // Partitions {0, 2}: siblings 1 and 3 are missing (owned by a
        // different region in a real structure). Pad coverage with a
        // stand-alone vnode outside the region so the map stays total.
        let outside = vs.create(crate::ids::SnodeId(9), 1);
        for (i, owner) in [(0u64, a), (1, outside), (2, a), (3, outside)] {
            let p = Partition::new(2, i);
            routing.insert(p, owner).unwrap();
            vs.get_mut(owner).partitions.push(p);
        }
        region.admit(a, 2);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut ledger = seeded_ledger(&vs, &region);
        let mut null = NullSink;
        let mut sink = LedgeredSink::new(&mut null, &mut ledger);
        let err =
            merge_all(&mut vs, &mut routing, &mut region, &cfg, &mut rng, &mut sink).unwrap_err();
        assert!(matches!(err, NotSiblingClosed { .. }));
    }

    #[test]
    fn rebalance_spread_levels_any_distribution() {
        let cfg = DhtConfig::new(HashSpace::new(10), 2, 1).unwrap();
        let mut vs = VnodeStore::new();
        let mut routing = OwnerMap::new(cfg.hash_space());
        let mut region = GroupState::new(GroupId::FIRST, 4);
        // Three vnodes with counts 10 / 4 / 2 at level 4 (16 partitions).
        let vels = [
            (vs.create(crate::ids::SnodeId(0), 0), 0u64..10),
            (vs.create(crate::ids::SnodeId(1), 0), 10..14),
            (vs.create(crate::ids::SnodeId(2), 0), 14..16),
        ];
        for (v, range) in vels {
            for i in range.clone() {
                let p = Partition::new(4, i);
                routing.insert(p, v).unwrap();
                vs.get_mut(v).partitions.push(p);
            }
            region.admit(v, range.end - range.start);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ledger = seeded_ledger(&vs, &region);
        {
            let mut null = NullSink;
            let mut sink = LedgeredSink::new(&mut null, &mut ledger);
            rebalance_spread(&mut vs, &mut routing, &mut region, &cfg, &mut rng, &mut sink);
        }
        let counts: Vec<u64> = region.members.iter().map(|&m| vs.get(m).count()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 16);
        routing.verify_coverage().unwrap();
    }
}

//! Error types for DHT operations.

use crate::ids::{SnodeId, VnodeId};

/// Errors returned by the DHT engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtError {
    /// The vnode handle does not exist or was deleted.
    UnknownVnode(VnodeId),
    /// A crash was requested for a snode that hosts no live vnodes.
    EmptySnode(SnodeId),
    /// The operation needs at least one vnode but the DHT is empty.
    Empty,
    /// Removing this vnode would leave the DHT empty — the model has no
    /// representation for a DHT with zero vnodes mid-lifetime.
    LastVnode,
    /// A binary split would push a group's splitlevel beyond `Bh` — the
    /// hash space cannot be divided more finely. Choose a larger `Bh` or a
    /// smaller `Pmin`/vnode count.
    LevelOverflow {
        /// The group's current splitlevel.
        level: u32,
        /// The space's bit width.
        bits: u32,
    },
    /// Configuration rejected (message explains which constraint failed).
    BadConfig(&'static str),
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::UnknownVnode(v) => write!(f, "unknown or deleted vnode {v}"),
            DhtError::EmptySnode(s) => write!(f, "snode {s} hosts no live vnodes"),
            DhtError::Empty => write!(f, "the DHT has no vnodes"),
            DhtError::LastVnode => write!(f, "cannot remove the last vnode of a DHT"),
            DhtError::LevelOverflow { level, bits } => {
                write!(f, "splitlevel {level} cannot be increased: hash space has only {bits} bits")
            }
            DhtError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for DhtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DhtError::UnknownVnode(VnodeId(7)).to_string().contains("v7"));
        assert!(DhtError::EmptySnode(SnodeId(3)).to_string().contains("s3"));
        assert!(DhtError::LevelOverflow { level: 64, bits: 64 }.to_string().contains("64 bits"));
        assert!(DhtError::BadConfig("pmin").to_string().contains("pmin"));
    }
}

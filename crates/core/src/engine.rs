//! The engine abstraction shared by the global and local approaches, plus
//! the operation reports consumed by the simulator and the KV layer.

use crate::config::DhtConfig;
use crate::errors::DhtError;
use crate::group_id::GroupId;
use crate::ids::{CanonicalName, SnodeId, VnodeId};
use crate::invariants::InvariantViolation;
use crate::record::Pdr;
use crate::stats::BalanceSnapshot;
use domus_hashspace::Partition;
use std::collections::BTreeSet;

/// One partition changing hands during a rebalancement event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The partition moved (at the region's splitlevel at transfer time).
    pub partition: Partition,
    /// Donor vnode.
    pub from: VnodeId,
    /// Receiving vnode.
    pub to: VnodeId,
}

/// A group split performed during a creation (§3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSplit {
    /// The full group that split.
    pub parent: GroupId,
    /// The 0-prefixed child.
    pub child0: GroupId,
    /// The 1-prefixed child.
    pub child1: GroupId,
}

/// Everything that happened while creating one vnode.
///
/// The distribution-quality experiments ignore this; the simulator prices
/// it (messages, makespan) and the KV layer replays `transfers` as data
/// migration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CreateReport {
    /// The group that received the vnode (root id for the global approach).
    pub group: Option<GroupId>,
    /// The random point `r ∈ R_h` drawn for victim selection (local only).
    pub lookup_point: Option<u64>,
    /// The victim vnode owning `r` (local only).
    pub victim: Option<VnodeId>,
    /// A group split, if the victim group was full.
    pub group_split: Option<GroupSplit>,
    /// Number of partitions binary-split by the split cascade (pre-split
    /// count; 0 when no cascade ran).
    pub partition_splits: u64,
    /// The partition transfers of the greedy reassignment, in order.
    pub transfers: Vec<Transfer>,
    /// Member count of the container group after the creation.
    pub group_size_after: usize,
}

/// Everything that happened while removing one vnode (deletion extension).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoveReport {
    /// Group the vnode was removed from.
    pub group: Option<GroupId>,
    /// Partition transfers (redistribution + any merge co-location moves).
    pub transfers: Vec<Transfer>,
    /// Number of partition pairs binary-merged (0 when no merge cascade).
    pub partition_merges: u64,
    /// A group merge `(a, b) → parent`, if one was required.
    pub group_merge: Option<(GroupId, GroupId, GroupId)>,
    /// A vnode internally migrated between groups to make the removal
    /// legal (old handle, new handle), if any.
    pub migrated: Option<(VnodeId, VnodeId)>,
}

/// Common interface of [`crate::GlobalDht`] and [`crate::LocalDht`].
///
/// Downstream layers (simulator, KV store, experiments) are generic over
/// this trait, so every experiment can run against either approach.
pub trait DhtEngine {
    /// The immutable configuration.
    fn config(&self) -> &DhtConfig;

    /// Number of live vnodes `V`.
    fn vnode_count(&self) -> usize;

    /// Number of live groups `G` (always 1 for the global approach).
    fn group_count(&self) -> usize;

    /// Creates a vnode hosted by `snode` and rebalances per the model.
    fn create_vnode(&mut self, snode: SnodeId) -> Result<(VnodeId, CreateReport), DhtError>;

    /// Removes a vnode and rebalances (deletion extension; see
    /// `DESIGN.md` §2 item 7).
    fn remove_vnode(&mut self, v: VnodeId) -> Result<RemoveReport, DhtError>;

    /// The vnode responsible for `point`, with the containing partition.
    fn lookup(&self, point: u64) -> Option<(Partition, VnodeId)>;

    /// Live vnode handles in creation order.
    fn vnodes(&self) -> Vec<VnodeId>;

    /// Canonical name of a vnode.
    fn name_of(&self, v: VnodeId) -> Result<CanonicalName, DhtError>;

    /// Hosting snode of a vnode.
    fn snode_of(&self, v: VnodeId) -> Result<SnodeId, DhtError>;

    /// The partitions currently bound to a vnode (owned snapshot: engines
    /// whose internal representation is not a flat list — e.g. the
    /// consistent-hashing adapter's interval maps — materialise it).
    fn partitions_of(&self, v: VnodeId) -> Result<Vec<Partition>, DhtError>;

    /// The partition count `Pv` of one vnode. Engines override this to
    /// avoid materialising the partition list when only the count is
    /// needed (the per-creation record loops).
    fn partition_count(&self, v: VnodeId) -> Result<u64, DhtError> {
        Ok(self.partitions_of(v)?.len() as u64)
    }

    /// The quota `Qv` of one vnode (exact partition-count over size form).
    fn quota_of(&self, v: VnodeId) -> Result<f64, DhtError>;

    /// All vnode quotas, in creation order (Σ = 1).
    fn quotas(&self) -> Vec<f64>;

    /// The paper's quality metric `σ̄(Qv, Q̄v)` in percent (§2.3/§3.5).
    fn vnode_quota_relstd_pct(&self) -> f64;

    /// The partition-distribution record visible to a lookup of `v`'s
    /// region: the GPDR for the global approach, the LPDR of `v`'s group
    /// for the local approach.
    fn pdr_of(&self, v: VnodeId) -> Result<Pdr, DhtError>;

    /// The *shape* of the record governing `v`'s region: `(entries,
    /// distinct participant snodes)` — all that event pricing needs from
    /// [`DhtEngine::pdr_of`]. The default materialises the record
    /// (O(record)); engines override it with incrementally-maintained
    /// counts so replay loops never rebuild a PDR per event.
    fn record_shape_of(&self, v: VnodeId) -> Result<(u64, u64), DhtError> {
        let pdr = self.pdr_of(v)?;
        let snodes: BTreeSet<SnodeId> = pdr.entries().iter().map(|e| e.vnode.snode).collect();
        Ok((pdr.len() as u64, snodes.len() as u64))
    }

    /// A point-in-time [`BalanceSnapshot`]. The default is the generic
    /// one-pass capture (O(V)); engines override it to sample from their
    /// incremental accumulators (O(S + G) for the model engines) so
    /// high-cadence observation windows never rescan the vnode map.
    fn balance_snapshot(&self) -> BalanceSnapshot
    where
        Self: Sized,
    {
        BalanceSnapshot::capture(self)
    }

    /// Verifies every model invariant; `Ok` on a healthy structure.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
}

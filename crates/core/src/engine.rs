//! The engine abstraction shared by the global and local approaches, plus
//! the operation surface consumed by the simulator and the KV layer.
//!
//! Membership operations stream typed [`RebalanceEvent`]s into a
//! caller-supplied [`RebalanceSink`] while they run
//! ([`DhtEngine::create_vnode_with`] / [`DhtEngine::remove_vnode_with`] /
//! the batched [`DhtEngine::apply`]); the legacy report-returning methods
//! remain as provided shims built on the [`crate::CollectReport`] sink.
//! The trait is dyn-compatible: `&mut dyn DhtEngine` drives any backend.

use crate::config::DhtConfig;
use crate::errors::DhtError;
use crate::group_id::GroupId;
use crate::ids::{CanonicalName, SnodeId, VnodeId};
use crate::invariants::InvariantViolation;
use crate::record::Pdr;
use crate::sink::{CollectReport, RebalanceEvent, RebalanceSink};
use crate::stats::BalanceSnapshot;
use domus_hashspace::Partition;
use std::collections::BTreeSet;

/// One partition changing hands during a rebalancement event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The partition moved (at the region's splitlevel at transfer time).
    pub partition: Partition,
    /// Donor vnode.
    pub from: VnodeId,
    /// Receiving vnode.
    pub to: VnodeId,
}

/// A group split performed during a creation (§3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSplit {
    /// The full group that split.
    pub parent: GroupId,
    /// The 0-prefixed child.
    pub child0: GroupId,
    /// The 1-prefixed child.
    pub child1: GroupId,
}

/// The scalar outcome of one vnode creation — everything that is a fact
/// about the *result* rather than a step of the rebalancement (those
/// stream through the sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreateOutcome {
    /// The created vnode's handle.
    pub vnode: VnodeId,
    /// The group that received the vnode (root id for the global
    /// approach and CH).
    pub group: Option<GroupId>,
    /// Member count of the container group after the creation.
    pub group_size_after: usize,
}

/// The scalar outcome of one vnode removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoveOutcome {
    /// Group the vnode was removed from.
    pub group: Option<GroupId>,
}

/// The scalar outcome of one snode crash ([`DhtEngine::fail_snode`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailOutcome {
    /// The failed snode's vnodes, by their handle at crash time, in the
    /// order they were torn down. Handles renamed mid-crash by a
    /// group-merge migration appear under the handle that was actually
    /// removed.
    pub vnodes: Vec<VnodeId>,
    /// Renames a group-merge migration applied while the crash was being
    /// absorbed, as `(old, new)` — survivors keep their data under a new
    /// handle; renamed vnodes of the failed snode were torn down too.
    pub renames: Vec<(VnodeId, VnodeId)>,
}

/// The scalar outcome of one snode rejoin ([`DhtEngine::rejoin_snode`]) —
/// the control-plane counterpart of [`FailOutcome`]: the handles the
/// returning snode was re-enrolled under. What the rejoining snode does
/// with its recovered durable state (WAL replay, digest repair) is the
/// data plane's business, layered above (see `domus-kv`'s
/// `ReplicatedStore::rejoin_snode`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RejoinOutcome {
    /// The re-enrolled vnodes' handles, in creation order. Fresh handles:
    /// a rejoin never resurrects the crashed incarnation's ids.
    pub vnodes: Vec<VnodeId>,
}

/// Observes [`RebalanceEvent::VnodeMigrated`] renames passing through a
/// removal, forwarding everything — shared by [`DhtEngine::apply`] and
/// [`DhtEngine::fail_snode`], whose pending-op patching must follow the
/// rename.
struct RenameWatch<'a> {
    out: &'a mut dyn RebalanceSink,
    renamed: Option<(VnodeId, VnodeId)>,
}

impl RebalanceSink for RenameWatch<'_> {
    fn event(&mut self, e: RebalanceEvent) {
        if let RebalanceEvent::VnodeMigrated { old, new } = e {
            self.renamed = Some((old, new));
        }
        self.out.event(e);
    }
}

/// One membership operation for [`DhtEngine::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhtOp {
    /// Create a vnode hosted by the snode.
    Create(SnodeId),
    /// Remove the vnode.
    Remove(VnodeId),
}

/// The result of one [`DhtEngine::apply`] batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// Handles of the vnodes created, in op order.
    pub created: Vec<VnodeId>,
    /// Removals applied.
    pub removed: usize,
    /// Ops that failed, as `(op index, error)` — the batch continues past
    /// failures (a dead handle in a bulk decommission is routine).
    pub failed: Vec<(usize, DhtError)>,
}

impl BatchOutcome {
    /// `true` when every op applied.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Ops applied successfully.
    pub fn applied(&self) -> usize {
        self.created.len() + self.removed
    }
}

/// Everything that happened while creating one vnode.
///
/// Legacy materialised view: the streaming surface
/// ([`DhtEngine::create_vnode_with`]) emits the same facts as
/// [`RebalanceEvent`]s without allocating; this struct remains for
/// consumers that want the event list as data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CreateReport {
    /// The group that received the vnode (root id for the global approach).
    pub group: Option<GroupId>,
    /// The random point `r ∈ R_h` drawn for victim selection (local only).
    pub lookup_point: Option<u64>,
    /// The victim vnode owning `r` (local only).
    pub victim: Option<VnodeId>,
    /// A group split, if the victim group was full.
    pub group_split: Option<GroupSplit>,
    /// Number of partitions binary-split by the split cascade (pre-split
    /// count; 0 when no cascade ran).
    pub partition_splits: u64,
    /// The partition transfers of the greedy reassignment, in order.
    pub transfers: Vec<Transfer>,
    /// Member count of the container group after the creation.
    pub group_size_after: usize,
}

/// Everything that happened while removing one vnode (deletion extension).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoveReport {
    /// Group the vnode was removed from.
    pub group: Option<GroupId>,
    /// Partition transfers (redistribution + any merge co-location moves).
    pub transfers: Vec<Transfer>,
    /// Number of partition pairs binary-merged (0 when no merge cascade).
    pub partition_merges: u64,
    /// A group merge `(a, b) → parent`, if one was required.
    pub group_merge: Option<(GroupId, GroupId, GroupId)>,
    /// A vnode internally migrated between groups to make the removal
    /// legal (old handle, new handle), if any.
    pub migrated: Option<(VnodeId, VnodeId)>,
}

/// Common interface of [`crate::GlobalDht`], [`crate::LocalDht`] and the
/// `domus-ch` Consistent-Hashing adapter.
///
/// Downstream layers (simulator, KV store, churn replay, experiments)
/// are generic over this trait — or hold a `&mut dyn DhtEngine` — so
/// every experiment runs against any backend.
pub trait DhtEngine {
    /// The immutable configuration.
    fn config(&self) -> &DhtConfig;

    /// Number of live vnodes `V`.
    fn vnode_count(&self) -> usize;

    /// Number of live groups `G` (always 1 for the global approach).
    fn group_count(&self) -> usize;

    /// Creates a vnode hosted by `snode` and rebalances per the model,
    /// streaming every rebalancement step into `sink` as it happens.
    ///
    /// ```
    /// use domus_core::{CountOnly, DhtConfig, DhtEngine, GlobalDht, SnodeId};
    /// use domus_hashspace::HashSpace;
    ///
    /// let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
    /// let mut dht = GlobalDht::with_seed(cfg, 1);
    /// let mut counts = CountOnly::default();
    /// let first = dht.create_vnode_with(SnodeId(0), &mut counts).unwrap();
    /// assert_eq!(counts.transfers, 0, "nobody to take from");
    /// dht.create_vnode_with(SnodeId(1), &mut counts).unwrap();
    /// assert!(counts.transfers > 0, "the second vnode pulls partitions");
    /// # assert_eq!(first.group_size_after, 1);
    /// ```
    fn create_vnode_with(
        &mut self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<CreateOutcome, DhtError>;

    /// Removes a vnode and rebalances (deletion extension; see
    /// `DESIGN.md` §2 item 7), streaming every rebalancement step into
    /// `sink` as it happens.
    fn remove_vnode_with(
        &mut self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<RemoveOutcome, DhtError>;

    /// Creates a vnode, materialising the event stream as a
    /// [`CreateReport`] (compatibility shim over
    /// [`DhtEngine::create_vnode_with`]).
    fn create_vnode(&mut self, snode: SnodeId) -> Result<(VnodeId, CreateReport), DhtError> {
        let mut collect = CollectReport::new();
        let outcome = self.create_vnode_with(snode, &mut collect)?;
        Ok((outcome.vnode, collect.into_create_report(&outcome)))
    }

    /// Removes a vnode, materialising the event stream as a
    /// [`RemoveReport`] (compatibility shim over
    /// [`DhtEngine::remove_vnode_with`]).
    fn remove_vnode(&mut self, v: VnodeId) -> Result<RemoveReport, DhtError> {
        let mut collect = CollectReport::new();
        let outcome = self.remove_vnode_with(v, &mut collect)?;
        Ok(collect.into_remove_report(&outcome))
    }

    /// Applies a batch of membership operations through one sink.
    ///
    /// The batch continues past per-op failures (recorded in
    /// [`BatchOutcome::failed`]); a removal that internally migrates a
    /// vnode emits [`RebalanceEvent::VnodeMigrated`], and `apply` patches
    /// both the *remaining* `Remove` ops of the batch and any
    /// already-recorded [`BatchOutcome::created`] handle to the renamed
    /// vnode — the same bookkeeping every replay roster performs, so the
    /// returned handles are all live.
    ///
    /// ```
    /// use domus_core::{DhtConfig, DhtEngine, DhtOp, LocalDht, NullSink, SnodeId};
    /// use domus_hashspace::HashSpace;
    ///
    /// let cfg = DhtConfig::new(HashSpace::new(32), 4, 2).unwrap();
    /// let mut dht = LocalDht::with_seed(cfg, 3);
    /// let ops: Vec<DhtOp> = (0..6).map(|s| DhtOp::Create(SnodeId(s))).collect();
    /// let batch = dht.apply(&ops, &mut NullSink);
    /// assert!(batch.is_complete());
    /// assert_eq!(batch.created.len(), 6);
    /// assert_eq!(dht.vnode_count(), 6);
    /// ```
    fn apply(&mut self, ops: &[DhtOp], sink: &mut dyn RebalanceSink) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        let mut pending: Vec<DhtOp> = ops.to_vec();
        let mut i = 0;
        while i < pending.len() {
            let op = pending[i];
            match op {
                DhtOp::Create(s) => match self.create_vnode_with(s, sink) {
                    Ok(o) => outcome.created.push(o.vnode),
                    Err(e) => outcome.failed.push((i, e)),
                },
                DhtOp::Remove(v) => {
                    let mut watch = RenameWatch { out: sink, renamed: None };
                    match self.remove_vnode_with(v, &mut watch) {
                        Ok(_) => outcome.removed += 1,
                        Err(e) => outcome.failed.push((i, e)),
                    }
                    if let Some((old, new)) = watch.renamed {
                        for later in pending.iter_mut().skip(i + 1) {
                            if *later == DhtOp::Remove(old) {
                                *later = DhtOp::Remove(new);
                            }
                        }
                        // A handle created earlier in this batch may be the
                        // one retired; keep the returned handles live.
                        for created in &mut outcome.created {
                            if *created == old {
                                *created = new;
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        outcome
    }

    /// The vnode responsible for `point`, with the containing partition.
    fn lookup(&self, point: u64) -> Option<(Partition, VnodeId)>;

    /// Visits the owners of successive partitions in hash-space order,
    /// starting at the partition containing `point` and wrapping past the
    /// top of the space, until `f` returns `false` or every partition has
    /// been visited once — the successor walk a cluster-aware replica
    /// placer probes for followers. The first visit is always the point's
    /// owner (the primary); the same vnode may be visited more than once
    /// (one visit per partition), so callers dedup by vnode or snode.
    ///
    /// The default walks partition by partition through [`DhtEngine::lookup`]
    /// (`O(log P)` per step on any backend); the model engines override it
    /// with a direct scan of their routing map.
    fn for_each_successor(&self, point: u64, f: &mut dyn FnMut(VnodeId) -> bool) {
        let Some((first, v)) = self.lookup(point) else { return };
        if !f(v) {
            return;
        }
        let space = self.config().hash_space();
        let start = first.start(space);
        let mut cursor = first.end(space);
        loop {
            let next = if cursor >= space.size() { 0 } else { cursor as u64 };
            if next == start {
                return; // wrapped all the way around
            }
            let Some((p, v)) = self.lookup(next) else { return };
            if !f(v) {
                return;
            }
            cursor = p.end(space);
        }
    }

    /// The live vnodes hosted by `s`, in creation order.
    fn vnodes_of_snode(&self, s: SnodeId) -> Vec<VnodeId> {
        let mut out = Vec::new();
        self.for_each_vnode(&mut |v| {
            if self.snode_of(v) == Ok(s) {
                out.push(v);
            }
        });
        out
    }

    /// Crashes a snode: every vnode it hosts is removed **ungracefully**,
    /// streaming the resulting rebalancement into `sink`.
    ///
    /// Control-plane-wise this is a sequence of removals (routing must
    /// stay total, so the failed vnodes' partitions transfer to
    /// survivors); the crash semantics live in the *data plane* — a
    /// replicated store layered on the engine treats the streamed
    /// transfers out of a failed vnode as **lost** rather than migrated
    /// (see `domus-kv`'s `ReplicatedStore::fail_snode_with`), which is
    /// exactly what distinguishes this path from per-vnode
    /// [`DhtEngine::remove_vnode_with`] driven by a graceful leave.
    ///
    /// Fails with [`DhtError::EmptySnode`] when `s` hosts nothing and
    /// [`DhtError::LastVnode`] when the crash would empty the DHT; both
    /// are checked before anything mutates. Mid-crash group-merge
    /// migrations renaming a pending victim are followed (the replacement
    /// lives on the same failed snode, so it is torn down too) and
    /// reported in [`FailOutcome::renames`].
    fn fail_snode(
        &mut self,
        s: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<FailOutcome, DhtError> {
        let mut victims = self.vnodes_of_snode(s);
        if victims.is_empty() {
            return Err(DhtError::EmptySnode(s));
        }
        if victims.len() == self.vnode_count() {
            return Err(DhtError::LastVnode);
        }
        let mut outcome = FailOutcome::default();
        let mut i = 0;
        while i < victims.len() {
            let v = victims[i];
            let mut watch = RenameWatch { out: sink, renamed: None };
            self.remove_vnode_with(v, &mut watch)?;
            outcome.vnodes.push(v);
            if let Some((old, new)) = watch.renamed {
                outcome.renames.push((old, new));
                // The replacement is hosted by the same snode as the
                // retired handle; a renamed pending victim stays a victim.
                for pending in &mut victims[i + 1..] {
                    if *pending == old {
                        *pending = new;
                    }
                }
            }
            i += 1;
        }
        Ok(outcome)
    }

    /// Re-enrols a previously crashed snode with `vnodes` fresh vnodes,
    /// streaming the rebalancement of each enrolment into `sink` — the
    /// inverse of [`DhtEngine::fail_snode`], sized by the vnode count
    /// recorded at crash time.
    ///
    /// Control-plane-wise this is a sequence of creations under fresh
    /// handles (crashed incarnations are never resurrected — their
    /// partitions were redistributed at crash time and routing moved
    /// on). The *data* plane decides what the returning snode recovers:
    /// a WAL-backed store replays its durable log into the re-enrolled
    /// placement instead of being rebuilt wholesale from replicas.
    ///
    /// Fails with [`DhtError::EmptySnode`] when `vnodes` is zero —
    /// mirroring [`DhtEngine::fail_snode`]'s refusal to crash a snode
    /// that hosts nothing. A mid-sequence creation error propagates;
    /// vnodes already enrolled stay live (the caller sees them in the
    /// engine, exactly like a partially applied [`DhtEngine::apply`]).
    fn rejoin_snode(
        &mut self,
        s: SnodeId,
        vnodes: usize,
        sink: &mut dyn RebalanceSink,
    ) -> Result<RejoinOutcome, DhtError> {
        if vnodes == 0 {
            return Err(DhtError::EmptySnode(s));
        }
        let mut outcome = RejoinOutcome::default();
        for _ in 0..vnodes {
            let created = self.create_vnode_with(s, sink)?;
            outcome.vnodes.push(created.vnode);
        }
        Ok(outcome)
    }

    /// Visits every live vnode handle, in creation order — the
    /// allocation-free primitive behind [`DhtEngine::vnodes`].
    fn for_each_vnode(&self, f: &mut dyn FnMut(VnodeId));

    /// Live vnode handles in creation order (owned snapshot; hot loops
    /// should prefer [`DhtEngine::for_each_vnode`]).
    fn vnodes(&self) -> Vec<VnodeId> {
        let mut out = Vec::with_capacity(self.vnode_count());
        self.for_each_vnode(&mut |v| out.push(v));
        out
    }

    /// Canonical name of a vnode.
    fn name_of(&self, v: VnodeId) -> Result<CanonicalName, DhtError>;

    /// Hosting snode of a vnode.
    fn snode_of(&self, v: VnodeId) -> Result<SnodeId, DhtError>;

    /// The partitions currently bound to a vnode (owned snapshot: engines
    /// whose internal representation is not a flat list — e.g. the
    /// consistent-hashing adapter's interval maps — materialise it).
    fn partitions_of(&self, v: VnodeId) -> Result<Vec<Partition>, DhtError>;

    /// The partition count `Pv` of one vnode. Engines override this to
    /// avoid materialising the partition list when only the count is
    /// needed (the per-creation record loops).
    fn partition_count(&self, v: VnodeId) -> Result<u64, DhtError> {
        Ok(self.partitions_of(v)?.len() as u64)
    }

    /// The quota `Qv` of one vnode (exact partition-count over size form).
    fn quota_of(&self, v: VnodeId) -> Result<f64, DhtError>;

    /// Visits every vnode quota, in creation order — the allocation-free
    /// primitive behind [`DhtEngine::quotas`]. Engines override it to
    /// skip the per-vnode liveness re-check of the generic path.
    fn for_each_quota(&self, f: &mut dyn FnMut(f64)) {
        let mut err = None;
        self.for_each_vnode(&mut |v| match self.quota_of(v) {
            Ok(q) => f(q),
            Err(e) => err = Some(e),
        });
        debug_assert!(err.is_none(), "a listed vnode has a quota");
    }

    /// All vnode quotas, in creation order (Σ = 1; owned snapshot — hot
    /// loops should prefer [`DhtEngine::for_each_quota`]).
    fn quotas(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.vnode_count());
        self.for_each_quota(&mut |q| out.push(q));
        out
    }

    /// The paper's quality metric `σ̄(Qv, Q̄v)` in percent (§2.3/§3.5).
    fn vnode_quota_relstd_pct(&self) -> f64;

    /// The partition-distribution record visible to a lookup of `v`'s
    /// region: the GPDR for the global approach, the LPDR of `v`'s group
    /// for the local approach.
    fn pdr_of(&self, v: VnodeId) -> Result<Pdr, DhtError>;

    /// The *shape* of the record governing `v`'s region: `(entries,
    /// distinct participant snodes)` — all that event pricing needs from
    /// [`DhtEngine::pdr_of`]. The default materialises the record
    /// (O(record)); engines override it with incrementally-maintained
    /// counts so replay loops never rebuild a PDR per event.
    fn record_shape_of(&self, v: VnodeId) -> Result<(u64, u64), DhtError> {
        let pdr = self.pdr_of(v)?;
        let snodes: BTreeSet<SnodeId> = pdr.entries().iter().map(|e| e.vnode.snode).collect();
        Ok((pdr.len() as u64, snodes.len() as u64))
    }

    /// A point-in-time [`BalanceSnapshot`]. The default is the generic
    /// one-pass capture (O(V)); engines override it to sample from their
    /// incremental accumulators (O(S + G) for the model engines) so
    /// high-cadence observation windows never rescan the vnode map.
    fn balance_snapshot(&self) -> BalanceSnapshot {
        BalanceSnapshot::capture(self)
    }

    /// Verifies every model invariant; `Ok` on a healthy structure.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
}

//! The **global approach** (§2 of the paper; the base model of ref. \[7\]).
//!
//! One replicated GPDR covers every vnode; every snode participates in
//! every creation, so creations are serial and require global knowledge.
//! The balancement algorithm itself is the shared kernel in
//! [`crate::balance`], run over a single region that spans the entire DHT.
//!
//! Because all partitions share one size `S = 2^Bh / P` (invariant G3),
//! `σ̄(Qv) = σ̄(Pv)` here (§2.4) — the engine exposes both, and the test
//! suite confirms they coincide.

use crate::balance;
use crate::config::DhtConfig;
use crate::engine::{CreateOutcome, DhtEngine, RemoveOutcome};
use crate::errors::DhtError;
use crate::group_id::GroupId;
use crate::ids::{CanonicalName, SnodeId, VnodeId};
use crate::invariants::{self, InvariantViolation};
use crate::ledger::SnodeLedger;
use crate::record::{Pdr, PdrEntry};
use crate::sink::{LedgeredSink, RebalanceEvent, RebalanceSink};
use crate::state::{GroupState, VnodeStore};
use crate::stats::BalanceSnapshot;
use domus_hashspace::{OwnerMap, Partition, Quota};
use domus_metrics::relstd::rel_std_dev_counts_pct;
use domus_util::{DomusRng, Xoshiro256pp};

/// A DHT balanced with the global approach.
///
/// ```
/// use domus_core::{DhtConfig, GlobalDht, DhtEngine, SnodeId};
/// use domus_hashspace::HashSpace;
///
/// let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
/// let mut dht = GlobalDht::with_seed(cfg, 42);
/// for s in 0..8 {
///     dht.create_vnode(SnodeId(s)).unwrap();
/// }
/// // V = 8 is a power of two: invariant G5 says perfect balance.
/// assert_eq!(dht.vnode_quota_relstd_pct(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalDht<R: DomusRng = Xoshiro256pp> {
    cfg: DhtConfig,
    vs: VnodeStore,
    region: GroupState,
    routing: OwnerMap<VnodeId>,
    ledger: SnodeLedger,
    rng: R,
}

impl GlobalDht<Xoshiro256pp> {
    /// A DHT seeded from a single `u64` (deterministic).
    pub fn with_seed(cfg: DhtConfig, seed: u64) -> Self {
        Self::with_rng(cfg, Xoshiro256pp::seed_from_u64(seed))
    }
}

impl<R: DomusRng> GlobalDht<R> {
    /// A DHT using the supplied RNG stream.
    pub fn with_rng(cfg: DhtConfig, rng: R) -> Self {
        let space = cfg.hash_space();
        Self {
            cfg,
            vs: VnodeStore::new(),
            region: GroupState::new(GroupId::FIRST, cfg.initial_level()),
            routing: OwnerMap::new(space),
            ledger: SnodeLedger::new(),
            rng,
        }
    }

    /// The incremental per-snode quota ledger.
    pub fn ledger(&self) -> &SnodeLedger {
        &self.ledger
    }

    /// `σ̄(Pv, P̄v)` in percent — the count-based shortcut metric of §2.4,
    /// valid only in the global approach.
    pub fn partition_count_relstd_pct(&self) -> f64 {
        let counts: Vec<u64> =
            self.region.members.iter().map(|&m| self.vs.get(m).count()).collect();
        rel_std_dev_counts_pct(&counts)
    }

    /// The common splitlevel `l` of all partitions.
    pub fn splitlevel(&self) -> u32 {
        self.region.level
    }

    /// The replicated GPDR (§2.1.4) as every snode would see it.
    pub fn gpdr(&self) -> Pdr {
        Pdr::new(
            self.region
                .members
                .iter()
                .map(|&m| PdrEntry {
                    vnode: self.vs.get(m).name,
                    partitions: self.vs.get(m).count(),
                })
                .collect(),
        )
    }

    fn ensure_alive(&self, v: VnodeId) -> Result<(), DhtError> {
        if self.vs.is_alive(v) {
            Ok(())
        } else {
            Err(DhtError::UnknownVnode(v))
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("invariant violated after GlobalDht operation: {e}");
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check(&self) {}
}

impl<R: DomusRng> DhtEngine for GlobalDht<R> {
    fn config(&self) -> &DhtConfig {
        &self.cfg
    }

    fn vnode_count(&self) -> usize {
        self.vs.alive_count()
    }

    fn group_count(&self) -> usize {
        1
    }

    fn create_vnode_with(
        &mut self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<CreateOutcome, DhtError> {
        if self.vs.alive_count() == 0 {
            let v = self.vs.create(snode, 0);
            balance::seed_first(&mut self.vs, &mut self.routing, &mut self.region, v, &self.cfg);
            self.ledger.vnode_created(snode);
            self.ledger.gain(snode, Quota::ONE);
            self.debug_check();
            return Ok(CreateOutcome {
                vnode: v,
                group: Some(self.region.gid),
                group_size_after: 1,
            });
        }

        // §2.5: when V is a power of two every vnode holds Pmin (G5), and
        // the handover would drop a vnode below Pmin — so every older vnode
        // binary-splits its partitions first.
        if balance::all_at_pmin(&self.vs, &self.region, &self.cfg) {
            let count = balance::split_all(&mut self.vs, &mut self.routing, &mut self.region)?;
            sink.event(RebalanceEvent::PartitionSplit { count });
        }
        let v = self.vs.create(snode, 0);
        self.region.admit(v, 0);
        self.ledger.vnode_created(snode);
        {
            let mut ls = LedgeredSink::new(sink, &mut self.ledger);
            balance::greedy_add(
                &mut self.vs,
                &mut self.routing,
                &mut self.region,
                v,
                &self.cfg,
                &mut self.rng,
                &mut ls,
            );
        }
        self.debug_check();
        Ok(CreateOutcome {
            vnode: v,
            group: Some(self.region.gid),
            group_size_after: self.region.len(),
        })
    }

    fn remove_vnode_with(
        &mut self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<RemoveOutcome, DhtError> {
        self.ensure_alive(v)?;
        if self.vs.alive_count() == 1 {
            return Err(DhtError::LastVnode);
        }
        {
            let mut ls = LedgeredSink::new(sink, &mut self.ledger);
            balance::greedy_remove(
                &mut self.vs,
                &mut self.routing,
                &mut self.region,
                v,
                &self.cfg,
                &mut self.rng,
                &mut ls,
            );
        }
        self.vs.kill(v);
        // If redistribution saturated everyone at Pmax, the member count is
        // a power of two (capacity arithmetic — DESIGN.md §3) and G5
        // requires the merge cascade back to Pmin.
        if balance::all_at_pmax(&self.region, &self.cfg) {
            let pairs = {
                let mut ls = LedgeredSink::new(sink, &mut self.ledger);
                balance::merge_all(
                    &mut self.vs,
                    &mut self.routing,
                    &mut self.region,
                    &self.cfg,
                    &mut self.rng,
                    &mut ls,
                )
                .expect("the global region spans R_h and is sibling-closed at every level")
            };
            sink.event(RebalanceEvent::PartitionMerge { pairs });
        }
        self.ledger.vnode_killed(self.vs.get(v).name.snode);
        self.debug_check();
        Ok(RemoveOutcome { group: Some(self.region.gid) })
    }

    fn lookup(&self, point: u64) -> Option<(Partition, VnodeId)> {
        self.routing.lookup(point).map(|(p, &v)| (p, v))
    }

    fn for_each_successor(&self, point: u64, f: &mut dyn FnMut(VnodeId) -> bool) {
        for (_, &v) in self.routing.successors(point) {
            if !f(v) {
                return;
            }
        }
    }

    fn for_each_vnode(&self, f: &mut dyn FnMut(VnodeId)) {
        self.vs.iter_alive().for_each(f);
    }

    fn name_of(&self, v: VnodeId) -> Result<CanonicalName, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).name)
    }

    fn snode_of(&self, v: VnodeId) -> Result<SnodeId, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).name.snode)
    }

    fn partitions_of(&self, v: VnodeId) -> Result<Vec<Partition>, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).partitions.clone())
    }

    fn partition_count(&self, v: VnodeId) -> Result<u64, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).count())
    }

    fn quota_of(&self, v: VnodeId) -> Result<f64, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).count() as f64 / (self.region.level as f64).exp2())
    }

    fn for_each_quota(&self, f: &mut dyn FnMut(f64)) {
        let denom = (self.region.level as f64).exp2();
        self.vs.iter_alive().for_each(|v| f(self.vs.get(v).count() as f64 / denom));
    }

    fn vnode_quota_relstd_pct(&self) -> f64 {
        let v = self.vs.alive_count() as f64;
        if v == 0.0 {
            return 0.0;
        }
        // σ̄² = V·ΣQv² − 1 with Qv = Pv/2^l (module docs of `state`).
        let sum_sq_q = self.region.sumsq_quota_f64();
        100.0 * (v * sum_sq_q - 1.0).max(0.0).sqrt()
    }

    fn pdr_of(&self, v: VnodeId) -> Result<Pdr, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.gpdr())
    }

    fn record_shape_of(&self, v: VnodeId) -> Result<(u64, u64), DhtError> {
        self.ensure_alive(v)?;
        // GPDR shape: every live vnode is an entry, every hosting snode a
        // participant — both maintained incrementally, O(1).
        Ok((self.region.len() as u64, self.ledger.snode_count() as u64))
    }

    fn balance_snapshot(&self) -> BalanceSnapshot {
        let v = self.vs.alive_count();
        let max_quota = self.region.max_count() as f64 / (self.region.level as f64).exp2();
        BalanceSnapshot {
            vnodes: v,
            groups: 1,
            snodes: self.ledger.snode_count(),
            vnode_relstd_pct: self.vnode_quota_relstd_pct(),
            snode_relstd_pct: self.ledger.relstd_pct(),
            max_quota_over_ideal: max_quota * v as f64,
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        invariants::check(
            &self.cfg,
            &self.vs,
            std::slice::from_ref(&self.region),
            &self.routing,
            &self.ledger,
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_hashspace::HashSpace;
    use domus_metrics::rel_std_dev_pct;

    fn cfg(pmin: u64) -> DhtConfig {
        DhtConfig::new(HashSpace::new(32), pmin, 1).unwrap()
    }

    fn grow(pmin: u64, n: usize, seed: u64) -> GlobalDht {
        let mut dht = GlobalDht::with_seed(cfg(pmin), seed);
        for i in 0..n {
            dht.create_vnode(SnodeId(i as u32)).unwrap();
        }
        dht
    }

    #[test]
    fn first_vnode_owns_everything() {
        let dht = grow(8, 1, 1);
        assert_eq!(dht.vnode_count(), 1);
        assert_eq!(dht.splitlevel(), 3);
        let v = dht.vnodes()[0];
        assert_eq!(dht.partition_count(v).unwrap() as usize, 8);
        assert_eq!(dht.quota_of(v).unwrap(), 1.0);
        dht.check_invariants().unwrap();
    }

    #[test]
    fn powers_of_two_are_perfectly_balanced() {
        // Invariant G5: at V ∈ {1, 2, 4, 8, ...} every vnode holds Pmin.
        let mut dht = GlobalDht::with_seed(cfg(8), 7);
        for i in 0..64u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
            let v = dht.vnode_count() as u64;
            if v.is_power_of_two() {
                for &m in &dht.vnodes() {
                    assert_eq!(
                        dht.partition_count(m).unwrap(),
                        8,
                        "V={v}: all vnodes must hold Pmin"
                    );
                }
                assert_eq!(dht.vnode_quota_relstd_pct(), 0.0, "V={v}");
            }
        }
    }

    #[test]
    fn quota_metric_equals_count_metric() {
        // §2.4: in the global approach σ̄(Qv) = σ̄(Pv).
        for n in [3usize, 5, 7, 11, 150] {
            let dht = grow(16, n, 3);
            let a = dht.vnode_quota_relstd_pct();
            let b = dht.partition_count_relstd_pct();
            assert!((a - b).abs() < 1e-9, "V={n}: σ̄(Qv)={a} σ̄(Pv)={b}");
        }
    }

    #[test]
    fn incremental_metric_matches_direct_computation() {
        let dht = grow(32, 37, 5);
        let direct = rel_std_dev_pct(dht.quotas());
        let inc = dht.vnode_quota_relstd_pct();
        assert!((direct - inc).abs() < 1e-9, "direct {direct} vs incremental {inc}");
    }

    #[test]
    fn invariants_hold_through_growth() {
        let mut dht = GlobalDht::with_seed(cfg(4), 11);
        for i in 0..100u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
            dht.check_invariants().unwrap_or_else(|e| panic!("after vnode {i}: {e}"));
        }
    }

    #[test]
    fn lookup_total_and_consistent() {
        let dht = grow(8, 13, 17);
        let space = dht.config().hash_space();
        for point in (0..space.max_point()).step_by((space.size() / 64) as usize) {
            let (p, v) = dht.lookup(point).expect("space fully covered");
            assert!(p.contains(point, space));
            assert!(dht.partitions_of(v).unwrap().contains(&p));
        }
    }

    #[test]
    fn remove_restores_balance_and_invariants() {
        let mut dht = grow(8, 9, 23);
        let victims = dht.vnodes();
        // Delete back down to 1 vnode, checking invariants at each size.
        for &v in victims.iter().take(8) {
            dht.remove_vnode(v).unwrap();
            dht.check_invariants().unwrap_or_else(|e| panic!("after removing {v}: {e}"));
        }
        assert_eq!(dht.vnode_count(), 1);
        // The lone survivor owns everything again at the initial level.
        let survivor = dht.vnodes()[0];
        assert_eq!(dht.quota_of(survivor).unwrap(), 1.0);
        assert_eq!(dht.splitlevel(), dht.config().initial_level());
    }

    #[test]
    fn removing_last_vnode_is_refused() {
        let mut dht = grow(8, 1, 1);
        let v = dht.vnodes()[0];
        assert_eq!(dht.remove_vnode(v), Err(DhtError::LastVnode));
    }

    #[test]
    fn removing_unknown_vnode_is_refused() {
        let mut dht = grow(8, 2, 1);
        assert_eq!(dht.remove_vnode(VnodeId(999)), Err(DhtError::UnknownVnode(VnodeId(999))));
        let v = dht.vnodes()[0];
        dht.remove_vnode(v).unwrap();
        assert_eq!(dht.remove_vnode(v), Err(DhtError::UnknownVnode(v)));
    }

    #[test]
    fn create_delete_churn_preserves_invariants() {
        let mut dht = GlobalDht::with_seed(cfg(4), 99);
        let mut live = Vec::new();
        for i in 0..40u32 {
            let (v, _) = dht.create_vnode(SnodeId(i % 5)).unwrap();
            live.push(v);
            if i % 3 == 2 {
                let victim = live.remove((i as usize * 7) % live.len());
                dht.remove_vnode(victim).unwrap();
            }
            dht.check_invariants().unwrap_or_else(|e| panic!("step {i}: {e}"));
        }
    }

    #[test]
    fn gpdr_reflects_distribution() {
        let dht = grow(8, 5, 31);
        let gpdr = dht.gpdr();
        assert_eq!(gpdr.len(), 5);
        assert_eq!(gpdr.total_partitions(), 1 << dht.splitlevel());
        let victim = gpdr.victim().unwrap();
        let max = gpdr.entries().iter().map(|e| e.partitions).max().unwrap();
        assert_eq!(victim.partitions, max);
    }

    #[test]
    fn sawtooth_between_powers_of_two() {
        // σ̄ rises right after a power of two and returns to 0 at the next.
        let mut dht = GlobalDht::with_seed(cfg(32), 2);
        dht.create_vnode(SnodeId(0)).unwrap();
        let mut prev = 0.0;
        for i in 1..16u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
            let v = dht.vnode_count() as u64;
            let m = dht.vnode_quota_relstd_pct();
            if v.is_power_of_two() {
                assert_eq!(m, 0.0, "V={v}");
            } else {
                assert!(m > 0.0, "V={v} should be imbalanced, got {m}");
            }
            prev = m;
        }
        let _ = prev;
    }

    #[test]
    fn transfers_reported_match_quota_motion() {
        let mut dht = grow(8, 4, 41);
        let (_, report) = dht.create_vnode(SnodeId(9)).unwrap();
        // V went 4 → 5 through a power of two: a split cascade must have run
        // and the new vnode received everything it owns via transfers.
        assert!(report.partition_splits > 0);
        let new = *dht.vnodes().last().unwrap();
        assert_eq!(
            report.transfers.iter().filter(|t| t.to == new).count(),
            dht.partition_count(new).unwrap() as usize
        );
        assert!(report.transfers.iter().all(|t| t.to == new));
    }
}

//! Heterogeneous cluster management on top of a DHT engine.
//!
//! The motivating feature of the model (§1): "the share of a DHT handled by
//! each cluster node is a function of the amount of the computational
//! resources it enrolls in the DHT", and that enrollment "is allowed to
//! change dynamically". A node's *enrollment level* (§2.1.2) maps to the
//! number of vnodes its snode hosts; quota then follows enrollment because
//! every vnode converges to `≈ 1/V` of `R_h`.
//!
//! [`Cluster`] wraps any [`DhtEngine`] and exposes node-level operations:
//! join with a weight, change weight (grow/shrink enrollment), leave — all
//! implemented with the engine's create/remove primitives.

use crate::engine::{CreateReport, DhtEngine, RemoveReport};
use crate::errors::DhtError;
use crate::ids::{SnodeId, VnodeId};
use domus_metrics::rel_std_dev_pct;
use std::collections::BTreeMap;

/// Maps an enrollment weight to a vnode count.
///
/// `vnodes = max(1, round(weight × unit))` where `unit` is the vnode count
/// of a weight-1.0 node. The paper leaves the mapping abstract ("a function
/// of the amount of the computational resources"); a linear map with a
/// configurable unit is the natural instantiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnrollmentPolicy {
    /// vnodes hosted by a weight-1.0 node.
    pub unit: u32,
}

impl Default for EnrollmentPolicy {
    fn default() -> Self {
        Self { unit: 4 }
    }
}

impl EnrollmentPolicy {
    /// The vnode count for `weight`.
    pub fn vnodes_for(&self, weight: f64) -> u32 {
        assert!(weight > 0.0 && weight.is_finite(), "enrollment weight must be positive");
        ((weight * self.unit as f64).round() as u32).max(1)
    }
}

/// Per-node bookkeeping.
#[derive(Debug, Clone)]
struct NodeInfo {
    weight: f64,
    vnodes: Vec<VnodeId>,
}

/// A heterogeneous cluster driving a DHT engine.
#[derive(Debug, Clone)]
pub struct Cluster<E: DhtEngine> {
    engine: E,
    policy: EnrollmentPolicy,
    nodes: BTreeMap<SnodeId, NodeInfo>,
    next_snode: u32,
}

impl<E: DhtEngine> Cluster<E> {
    /// Wraps an engine with the default enrollment policy.
    pub fn new(engine: E) -> Self {
        Self::with_policy(engine, EnrollmentPolicy::default())
    }

    /// Wraps an engine with an explicit policy.
    pub fn with_policy(engine: E, policy: EnrollmentPolicy) -> Self {
        Self { engine, policy, nodes: BTreeMap::new(), next_snode: 0 }
    }

    /// Immutable access to the underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The enrollment policy.
    pub fn policy(&self) -> EnrollmentPolicy {
        self.policy
    }

    /// Number of cluster nodes currently enrolled.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The snodes currently enrolled, in id order.
    pub fn nodes(&self) -> Vec<SnodeId> {
        self.nodes.keys().copied().collect()
    }

    /// A node's enrollment weight.
    pub fn weight_of(&self, s: SnodeId) -> Option<f64> {
        self.nodes.get(&s).map(|n| n.weight)
    }

    /// A node's current vnode handles.
    pub fn vnodes_of(&self, s: SnodeId) -> Option<&[VnodeId]> {
        self.nodes.get(&s).map(|n| n.vnodes.as_slice())
    }

    /// Enrolls a new node with `weight`, creating its vnodes one at a time
    /// (each creation is a full model balancement event).
    pub fn join(&mut self, weight: f64) -> Result<(SnodeId, Vec<CreateReport>), DhtError> {
        let s = SnodeId(self.next_snode);
        self.next_snode += 1;
        let n = self.policy.vnodes_for(weight);
        let mut reports = Vec::with_capacity(n as usize);
        let mut vnodes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (v, rep) = self.engine.create_vnode(s)?;
            vnodes.push(v);
            reports.push(rep);
        }
        self.nodes.insert(s, NodeInfo { weight, vnodes });
        Ok((s, reports))
    }

    /// Applies a removal's side effects to the handle bookkeeping: the
    /// deletion extension may internally *migrate* a vnode (remove `old`,
    /// re-create it as `new` under the same snode in another group), which
    /// retires the old handle.
    fn absorb_report(&mut self, report: &RemoveReport) {
        if let Some((old, new)) = report.migrated {
            for info in self.nodes.values_mut() {
                if let Some(slot) = info.vnodes.iter_mut().find(|v| **v == old) {
                    *slot = new;
                    return;
                }
            }
        }
    }

    /// Changes a node's enrollment (on-line re-enrollment, §2.1.2: "that
    /// amount may change in result of on-line disk repartitioning or
    /// hot-swapping mechanisms"). Creates or removes vnodes to match.
    pub fn set_weight(&mut self, s: SnodeId, weight: f64) -> Result<(), DhtError> {
        let target = {
            let info = self.nodes.get_mut(&s).ok_or(DhtError::UnknownVnode(VnodeId(u32::MAX)))?;
            info.weight = weight;
            self.policy.vnodes_for(weight) as usize
        };
        while self.nodes[&s].vnodes.len() < target {
            let (v, _) = self.engine.create_vnode(s)?;
            self.nodes.get_mut(&s).expect("checked").vnodes.push(v);
        }
        while self.nodes[&s].vnodes.len() > target {
            let v = self.nodes.get_mut(&s).expect("checked").vnodes.pop().expect("non-empty");
            let report = self.engine.remove_vnode(v)?;
            self.absorb_report(&report);
        }
        Ok(())
    }

    /// Withdraws a node entirely, removing all its vnodes.
    pub fn leave(&mut self, s: SnodeId) -> Result<Vec<RemoveReport>, DhtError> {
        let info = self.nodes.remove(&s).ok_or(DhtError::UnknownVnode(VnodeId(u32::MAX)))?;
        let mut reports = Vec::with_capacity(info.vnodes.len());
        let mut pending: Vec<VnodeId> = info.vnodes;
        while let Some(v) = pending.pop() {
            let report = self.engine.remove_vnode(v)?;
            // A migration may have renamed one of this node's own pending
            // vnodes; patch the local work list as well as other nodes'.
            if let Some((old, new)) = report.migrated {
                for slot in pending.iter_mut() {
                    if *slot == old {
                        *slot = new;
                    }
                }
            }
            self.absorb_report(&report);
            reports.push(report);
        }
        Ok(reports)
    }

    /// Per-node quotas `(snode, Qn)` in id order — `Qn` is the sum of the
    /// node's vnode quotas (the figure-9 abstraction over both models).
    pub fn node_quotas(&self) -> Vec<(SnodeId, f64)> {
        self.nodes
            .iter()
            .map(|(&s, info)| {
                let q = info
                    .vnodes
                    .iter()
                    .map(|&v| self.engine.quota_of(v).expect("cluster-tracked vnode is alive"))
                    .sum();
                (s, q)
            })
            .collect()
    }

    /// `σ̄(Qn, Q̄n)` in percent: the node-level balancement quality.
    pub fn node_quota_relstd_pct(&self) -> f64 {
        rel_std_dev_pct(self.node_quotas().into_iter().map(|(_, q)| q))
    }

    /// Quota per unit of weight, for heterogeneity verification: a
    /// well-balanced heterogeneous cluster has nearly equal values here.
    pub fn quota_per_weight(&self) -> Vec<(SnodeId, f64)> {
        self.node_quotas().into_iter().map(|(s, q)| (s, q / self.nodes[&s].weight)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DhtConfig;
    use crate::local::LocalDht;
    use domus_hashspace::HashSpace;

    fn cluster() -> Cluster<LocalDht> {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
        Cluster::with_policy(LocalDht::with_seed(cfg, 9), EnrollmentPolicy { unit: 4 })
    }

    #[test]
    fn enrollment_policy_rounds_and_floors() {
        let p = EnrollmentPolicy { unit: 4 };
        assert_eq!(p.vnodes_for(1.0), 4);
        assert_eq!(p.vnodes_for(2.0), 8);
        assert_eq!(p.vnodes_for(0.1), 1, "at least one vnode");
        assert_eq!(p.vnodes_for(1.6), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_weight_rejected() {
        EnrollmentPolicy::default().vnodes_for(-1.0);
    }

    #[test]
    fn quota_follows_weight() {
        let mut c = cluster();
        for _ in 0..6 {
            c.join(1.0).unwrap();
        }
        let (big, _) = c.join(3.0).unwrap();
        // The weight-3 node hosts 3× the vnodes and so ~3× the quota.
        let quotas = c.node_quotas();
        let big_q = quotas.iter().find(|(s, _)| *s == big).unwrap().1;
        let small_q: f64 =
            quotas.iter().filter(|(s, _)| *s != big).map(|(_, q)| q).sum::<f64>() / 6.0;
        let ratio = big_q / small_q;
        assert!((2.0..=4.5).contains(&ratio), "quota ratio {ratio}, want ≈3");
        c.engine().check_invariants().unwrap();
    }

    #[test]
    fn quota_per_weight_is_flat() {
        let mut c = cluster();
        for w in [1.0, 2.0, 1.0, 4.0, 1.0, 2.0, 1.0, 1.0] {
            c.join(w).unwrap();
        }
        let qpw: Vec<f64> = c.quota_per_weight().into_iter().map(|(_, q)| q).collect();
        let spread = rel_std_dev_pct(qpw.iter().copied());
        assert!(spread < 35.0, "quota-per-weight relative spread {spread}% too wide");
    }

    #[test]
    fn set_weight_grows_and_shrinks() {
        let mut c = cluster();
        let (s, _) = c.join(1.0).unwrap();
        c.join(1.0).unwrap();
        assert_eq!(c.vnodes_of(s).unwrap().len(), 4);
        c.set_weight(s, 2.0).unwrap();
        assert_eq!(c.vnodes_of(s).unwrap().len(), 8);
        c.set_weight(s, 0.5).unwrap();
        assert_eq!(c.vnodes_of(s).unwrap().len(), 2);
        c.engine().check_invariants().unwrap();
    }

    #[test]
    fn leave_removes_all_vnodes() {
        let mut c = cluster();
        let (a, _) = c.join(1.0).unwrap();
        let (b, _) = c.join(2.0).unwrap();
        let before = c.engine().vnode_count();
        assert_eq!(before, 12);
        let reports = c.leave(b).unwrap();
        assert_eq!(reports.len(), 8);
        assert_eq!(c.engine().vnode_count(), 4);
        assert_eq!(c.node_count(), 1);
        assert!(c.vnodes_of(a).is_some());
        c.engine().check_invariants().unwrap();
    }

    #[test]
    fn homogeneous_cluster_balances_nodes() {
        let mut c = cluster();
        for _ in 0..12 {
            c.join(1.0).unwrap();
        }
        let spread = c.node_quota_relstd_pct();
        assert!(spread < 30.0, "homogeneous node spread {spread}%");
    }
}

//! Identifiers for the model's entities (§2.1 of the paper).
//!
//! *snodes* are the active software entities hosted by cluster nodes;
//! *vnodes* are the balancement units they manage. In the records (GPDR /
//! LPDR) "vnodes are identified by their canonical name, which follows the
//! generic format `snode_id.vnode_id`" (footnote 2) — where `vnode_id` is
//! local to the snode. Internally the engines address vnodes by a dense
//! arena handle ([`VnodeId`]) and keep the canonical name alongside.

/// Handle of a software node (dense index into the cluster's snode arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnodeId(pub u32);

/// Handle of a virtual node (dense index into the DHT's vnode arena).
///
/// Handles are never reused: a deleted vnode's slot stays tombstoned, so a
/// stale `VnodeId` can be detected instead of silently aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VnodeId(pub u32);

impl SnodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VnodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl domus_hashspace::OwnerKey for VnodeId {
    #[inline]
    fn dense(&self) -> usize {
        self.index()
    }
}

impl std::fmt::Display for SnodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for VnodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Canonical vnode name `snode_id.vnode_id` (paper, footnote 2): the snode
/// handle plus the vnode's index *local to that snode*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalName {
    /// Hosting snode.
    pub snode: SnodeId,
    /// Index of the vnode within its snode (0-based creation order).
    pub local: u32,
}

impl std::fmt::Display for CanonicalName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.snode.0, self.local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SnodeId(3).to_string(), "s3");
        assert_eq!(VnodeId(17).to_string(), "v17");
        assert_eq!(CanonicalName { snode: SnodeId(2), local: 5 }.to_string(), "2.5");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(VnodeId(1) < VnodeId(2));
        assert!(SnodeId(0) < SnodeId(1));
        let a = CanonicalName { snode: SnodeId(1), local: 9 };
        let b = CanonicalName { snode: SnodeId(2), local: 0 };
        assert!(a < b, "snode dominates the canonical-name order");
    }
}

//! The **local approach** (§3 of the paper — its primary contribution).
//!
//! The vnode set is fully divided into *groups* (invariant L1) whose sizes
//! are bounded by `Vmin ≤ V_g ≤ Vmax = 2·Vmin` (L2). Each group balances
//! independently with the same greedy algorithm as the global approach,
//! over its own LPDR; balancement events in different groups may run
//! simultaneously (the simulator in `domus-sim` prices exactly that).
//!
//! Creation of a vnode (§3.6): draw a random point `r ∈ R_h`, look up the
//! vnode owning the partition containing `r` (the *victim vnode*), and use
//! its group (the *victim group*) as the container. A full victim group
//! (`V_g = Vmax`) first splits into two groups of `Vmin` randomly-selected
//! members (§3.7); the split assigns identifiers by the binary-prefix
//! scheme of §3.7.1 and one of the two halves is chosen at random as the
//! container.
//!
//! A law this implementation leans on (checked by the invariant suite): a
//! group's quota of `R_h` is exactly `2^-depth(gid)`. It holds because a
//! full group is perfectly balanced internally (G5' at `Vmax`, a power of
//! two), so splitting its membership in equal halves also splits its quota
//! in equal halves, and nothing else ever moves quota across group borders.

use crate::balance;
use crate::config::{ContainerChoice, DhtConfig};
use crate::engine::{CreateOutcome, DhtEngine, GroupSplit, RemoveOutcome};
use crate::errors::DhtError;
use crate::group_id::GroupId;
use crate::ids::{CanonicalName, SnodeId, VnodeId};
use crate::invariants::{self, InvariantViolation};
use crate::ledger::SnodeLedger;
use crate::record::{Pdr, PdrEntry};
use crate::sink::{LedgeredSink, RebalanceEvent, RebalanceSink};
use crate::state::{GroupState, VnodeStore};
use crate::stats::BalanceSnapshot;
use domus_hashspace::{OwnerMap, Partition, Quota};
use domus_util::{DomusRng, Xoshiro256pp};

/// A DHT balanced with the local approach.
///
/// ```
/// use domus_core::{DhtConfig, LocalDht, DhtEngine, SnodeId};
/// use domus_hashspace::HashSpace;
///
/// // Pmin = Vmin = 4 on a 32-bit space.
/// let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
/// let mut dht = LocalDht::with_seed(cfg, 7);
/// for s in 0..32 {
///     dht.create_vnode(SnodeId(s)).unwrap();
/// }
/// assert!(dht.group_count() >= 2, "32 vnodes exceed one group's Vmax = 8");
/// assert!(dht.vnode_quota_relstd_pct() < 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct LocalDht<R: DomusRng = Xoshiro256pp> {
    pub(crate) cfg: DhtConfig,
    pub(crate) vs: VnodeStore,
    pub(crate) groups: Vec<GroupState>,
    pub(crate) routing: OwnerMap<VnodeId>,
    pub(crate) ledger: SnodeLedger,
    pub(crate) rng: R,
    /// Slots of the live groups, ascending (fresh slots are always
    /// appended at the end of the arena, so pushes preserve the order).
    /// Retired slots stay in `groups` as tombstones; every hot iteration
    /// walks this list instead of the ever-growing arena.
    pub(crate) live_slots: Vec<u32>,
}

/// The ideal number of groups for `v` vnodes (figure 7's `G_ideal`):
/// doubles every time `V` crosses a power-of-two multiple of `Vmax` —
/// `2^⌈log2(V/Vmax)⌉`, and 1 while a single group suffices.
pub fn ideal_group_count(v: u64, vmax: u64) -> u64 {
    if v <= vmax {
        1
    } else {
        let groups = v.div_ceil(vmax);
        domus_util::bits::next_power_of_two(groups)
    }
}

impl LocalDht<Xoshiro256pp> {
    /// A DHT seeded from a single `u64` (deterministic).
    pub fn with_seed(cfg: DhtConfig, seed: u64) -> Self {
        Self::with_rng(cfg, Xoshiro256pp::seed_from_u64(seed))
    }
}

impl<R: DomusRng> LocalDht<R> {
    /// A DHT using the supplied RNG stream.
    pub fn with_rng(cfg: DhtConfig, rng: R) -> Self {
        let space = cfg.hash_space();
        Self {
            cfg,
            vs: VnodeStore::new(),
            groups: Vec::new(),
            routing: OwnerMap::new(space),
            ledger: SnodeLedger::new(),
            rng,
            live_slots: Vec::new(),
        }
    }

    /// The incremental per-snode quota ledger.
    pub fn ledger(&self) -> &SnodeLedger {
        &self.ledger
    }

    /// Live groups as `(identifier, member count, splitlevel)` in slot
    /// order.
    pub fn group_table(&self) -> Vec<(GroupId, usize, u32)> {
        self.live_groups().map(|g| (g.gid, g.len(), g.level)).collect()
    }

    /// The live groups, in ascending slot order.
    pub(crate) fn live_groups(&self) -> impl Iterator<Item = &GroupState> {
        self.live_slots.iter().map(|&s| &self.groups[s as usize])
    }

    /// Retires a group slot from the live list.
    pub(crate) fn retire_slot(&mut self, slot: u32) {
        let at = self.live_slots.binary_search(&slot).expect("retired slot was live");
        self.live_slots.remove(at);
    }

    /// The LPDR (§3.2) of the group identified by `gid`.
    pub fn lpdr(&self, gid: GroupId) -> Option<Pdr> {
        let g = self.live_groups().find(|g| g.gid == gid)?;
        Some(Pdr::new(
            g.members
                .iter()
                .map(|&m| PdrEntry {
                    vnode: self.vs.get(m).name,
                    partitions: self.vs.get(m).count(),
                })
                .collect(),
        ))
    }

    /// The group a vnode currently belongs to.
    pub fn group_of(&self, v: VnodeId) -> Result<GroupId, DhtError> {
        if !self.vs.is_alive(v) {
            return Err(DhtError::UnknownVnode(v));
        }
        Ok(self.groups[self.vs.get(v).group as usize].gid)
    }

    /// `σ̄(Qg, Q̄g)` in percent — figure 8's quality of balancement *between
    /// groups*, measured against the ideal average quota `Q̄g = 1/G`.
    pub fn group_quota_relstd_pct(&self) -> f64 {
        let g = self.live_slots.len() as f64;
        if g == 0.0 {
            return 0.0;
        }
        let ideal = 1.0 / g;
        let sum_sq_dev: f64 = self
            .live_groups()
            .map(|gr| {
                let d = gr.quota_f64() - ideal;
                d * d
            })
            .sum();
        // σ̄ = σ/Q̄g = G·sqrt(Σd²/G) = sqrt(G·Σd²).
        100.0 * (g * sum_sq_dev).sqrt()
    }

    /// Quotas of the live groups, in slot order (Σ = 1).
    pub fn group_quotas(&self) -> Vec<f64> {
        self.live_groups().map(|g| g.quota_f64()).collect()
    }

    /// Splits the full group in `slot` into two `Vmin`-member halves with
    /// identifiers inherited per §3.7.1. Returns the two child slots.
    ///
    /// No partition changes hands, so neither vnode quotas nor the snode
    /// ledger move.
    fn split_group(&mut self, slot: u32) -> (u32, u32) {
        let parent = &mut self.groups[slot as usize];
        debug_assert_eq!(parent.len() as u64, self.cfg.vmax(), "only full groups split");
        parent.alive = false;
        let level = parent.level;
        let (gid0, gid1) = parent.gid.split();
        let mut members = std::mem::take(&mut parent.members);
        parent.clear_accumulators();

        // "two groups, each one with Vmin vnodes, randomly selected from the
        // original victim group" (§3.7) — or admission-order halves under
        // the ABL-SPLITSEL ablation policy.
        if self.cfg.split_selection == crate::config::SplitSelection::RandomHalves {
            self.rng.shuffle(&mut members);
        }
        let half = self.cfg.vmin as usize;

        let slot0 = self.groups.len() as u32;
        let slot1 = slot0 + 1;
        let mut child0 = GroupState::new(gid0, level);
        let mut child1 = GroupState::new(gid1, level);
        for (i, &m) in members.iter().enumerate() {
            let count = self.vs.get(m).count();
            if i < half {
                self.vs.get_mut(m).group = slot0;
                child0.admit(m, count);
            } else {
                self.vs.get_mut(m).group = slot1;
                child1.admit(m, count);
            }
        }
        self.groups.push(child0);
        self.groups.push(child1);
        self.retire_slot(slot);
        self.live_slots.push(slot0);
        self.live_slots.push(slot1);
        (slot0, slot1)
    }

    pub(crate) fn ensure_alive(&self, v: VnodeId) -> Result<(), DhtError> {
        if self.vs.is_alive(v) {
            Ok(())
        } else {
            Err(DhtError::UnknownVnode(v))
        }
    }

    /// Admits a brand-new vnode into group `slot` and runs the paper's
    /// balancement (split cascade + greedy handover), streaming every
    /// step into `sink`. Shared by creation and by the deletion
    /// extension's internal migration.
    pub(crate) fn admit_into_group(
        &mut self,
        snode: SnodeId,
        slot: u32,
        sink: &mut dyn RebalanceSink,
    ) -> Result<CreateOutcome, DhtError> {
        if balance::all_at_pmin(&self.vs, &self.groups[slot as usize], &self.cfg) {
            let count = balance::split_all(
                &mut self.vs,
                &mut self.routing,
                &mut self.groups[slot as usize],
            )?;
            sink.event(RebalanceEvent::PartitionSplit { count });
        }
        let v = self.vs.create(snode, slot);
        self.ledger.vnode_created(snode);
        self.groups[slot as usize].admit(v, 0);
        {
            let Self { vs, groups, routing, ledger, rng, cfg, .. } = self;
            let mut ls = LedgeredSink::new(sink, ledger);
            balance::greedy_add(vs, routing, &mut groups[slot as usize], v, cfg, rng, &mut ls);
        }
        Ok(CreateOutcome {
            vnode: v,
            group: Some(self.groups[slot as usize].gid),
            group_size_after: self.groups[slot as usize].len(),
        })
    }

    #[cfg(debug_assertions)]
    pub(crate) fn debug_check(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("invariant violated after LocalDht operation: {e}");
        }
    }

    #[cfg(not(debug_assertions))]
    pub(crate) fn debug_check(&self) {}
}

impl<R: DomusRng> DhtEngine for LocalDht<R> {
    fn config(&self) -> &DhtConfig {
        &self.cfg
    }

    fn vnode_count(&self) -> usize {
        self.vs.alive_count()
    }

    fn group_count(&self) -> usize {
        self.live_slots.len()
    }

    fn create_vnode_with(
        &mut self,
        snode: SnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<CreateOutcome, DhtError> {
        // First vnode: create group 0 and seed it (§3.7 case a).
        if self.vs.alive_count() == 0 {
            let slot = self.groups.len() as u32;
            self.groups.push(GroupState::new(GroupId::FIRST, self.cfg.initial_level()));
            self.live_slots.push(slot);
            let v = self.vs.create(snode, slot);
            balance::seed_first(
                &mut self.vs,
                &mut self.routing,
                &mut self.groups[slot as usize],
                v,
                &self.cfg,
            );
            self.ledger.vnode_created(snode);
            self.ledger.gain(snode, Quota::ONE);
            self.debug_check();
            return Ok(CreateOutcome {
                vnode: v,
                group: Some(GroupId::FIRST),
                group_size_after: 1,
            });
        }

        // §3.6: random point → victim vnode → victim group.
        let r = self.cfg.hash_space().random_point(&mut self.rng);
        let (_, &victim) = self.routing.lookup(r).expect("R_h is fully covered");
        let victim_slot = self.vs.get(victim).group;
        sink.event(RebalanceEvent::LookupProbe { point: r, victim });

        // §3.7 case b: a full victim group splits before admitting.
        let container_slot = if self.groups[victim_slot as usize].len() as u64 == self.cfg.vmax() {
            let parent_gid = self.groups[victim_slot as usize].gid;
            let (slot0, slot1) = self.split_group(victim_slot);
            sink.event(RebalanceEvent::GroupSplit(GroupSplit {
                parent: parent_gid,
                child0: self.groups[slot0 as usize].gid,
                child1: self.groups[slot1 as usize].gid,
            }));
            match self.cfg.container_choice {
                // "One of these two groups will then be randomly chosen to
                // be the container of the new vnode."
                ContainerChoice::RandomHalf => {
                    if self.rng.coin() {
                        slot1
                    } else {
                        slot0
                    }
                }
                // Ablation: the half that kept the victim vnode.
                ContainerChoice::OwningHalf => self.vs.get(victim).group,
            }
        } else {
            victim_slot
        };

        let outcome = self.admit_into_group(snode, container_slot, sink)?;
        self.debug_check();
        Ok(outcome)
    }

    fn remove_vnode_with(
        &mut self,
        v: VnodeId,
        sink: &mut dyn RebalanceSink,
    ) -> Result<RemoveOutcome, DhtError> {
        crate::deletion::remove_local(self, v, sink)
    }

    fn lookup(&self, point: u64) -> Option<(Partition, VnodeId)> {
        self.routing.lookup(point).map(|(p, &v)| (p, v))
    }

    fn for_each_successor(&self, point: u64, f: &mut dyn FnMut(VnodeId) -> bool) {
        for (_, &v) in self.routing.successors(point) {
            if !f(v) {
                return;
            }
        }
    }

    fn for_each_vnode(&self, f: &mut dyn FnMut(VnodeId)) {
        self.vs.iter_alive().for_each(f);
    }

    fn name_of(&self, v: VnodeId) -> Result<CanonicalName, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).name)
    }

    fn snode_of(&self, v: VnodeId) -> Result<SnodeId, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).name.snode)
    }

    fn partitions_of(&self, v: VnodeId) -> Result<Vec<Partition>, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).partitions.clone())
    }

    fn partition_count(&self, v: VnodeId) -> Result<u64, DhtError> {
        self.ensure_alive(v)?;
        Ok(self.vs.get(v).count())
    }

    fn quota_of(&self, v: VnodeId) -> Result<f64, DhtError> {
        self.ensure_alive(v)?;
        let level = self.groups[self.vs.get(v).group as usize].level;
        Ok(self.vs.get(v).count() as f64 / (level as f64).exp2())
    }

    fn for_each_quota(&self, f: &mut dyn FnMut(f64)) {
        self.vs.iter_alive().for_each(|v| {
            let level = self.groups[self.vs.get(v).group as usize].level;
            f(self.vs.get(v).count() as f64 / (level as f64).exp2())
        });
    }

    fn vnode_quota_relstd_pct(&self) -> f64 {
        let v = self.vs.alive_count() as f64;
        if v == 0.0 {
            return 0.0;
        }
        let sum_sq_q: f64 =
            self.groups.iter().filter(|g| g.alive).map(GroupState::sumsq_quota_f64).sum();
        100.0 * (v * sum_sq_q - 1.0).max(0.0).sqrt()
    }

    fn pdr_of(&self, v: VnodeId) -> Result<Pdr, DhtError> {
        self.ensure_alive(v)?;
        let gid = self.groups[self.vs.get(v).group as usize].gid;
        Ok(self.lpdr(gid).expect("vnode's group is alive"))
    }

    fn record_shape_of(&self, v: VnodeId) -> Result<(u64, u64), DhtError> {
        self.ensure_alive(v)?;
        // LPDR shape: one entry per group member, one participant per
        // distinct hosting snode. `V_g ≤ Vmax`, so the snode dedup over a
        // small sorted scratch vector beats building the record.
        let g = &self.groups[self.vs.get(v).group as usize];
        let mut snodes: Vec<SnodeId> =
            g.members.iter().map(|&m| self.vs.get(m).name.snode).collect();
        snodes.sort_unstable();
        snodes.dedup();
        Ok((g.len() as u64, snodes.len() as u64))
    }

    fn balance_snapshot(&self) -> BalanceSnapshot {
        let v = self.vs.alive_count();
        let max_quota = self
            .live_groups()
            .map(|g| g.max_count() as f64 / (g.level as f64).exp2())
            .fold(0.0f64, f64::max);
        BalanceSnapshot {
            vnodes: v,
            groups: self.live_slots.len(),
            snodes: self.ledger.snode_count(),
            vnode_relstd_pct: self.vnode_quota_relstd_pct(),
            snode_relstd_pct: self.ledger.relstd_pct(),
            max_quota_over_ideal: max_quota * v as f64,
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        invariants::check(&self.cfg, &self.vs, &self.groups, &self.routing, &self.ledger, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_hashspace::HashSpace;
    use domus_metrics::rel_std_dev_pct;

    fn cfg(pmin: u64, vmin: u64) -> DhtConfig {
        DhtConfig::new(HashSpace::new(32), pmin, vmin).unwrap()
    }

    fn grow(c: DhtConfig, n: usize, seed: u64) -> LocalDht {
        let mut dht = LocalDht::with_seed(c, seed);
        for i in 0..n {
            dht.create_vnode(SnodeId(i as u32)).unwrap();
        }
        dht
    }

    #[test]
    fn single_group_until_vmax() {
        let mut dht = LocalDht::with_seed(cfg(4, 4), 1);
        for i in 0..8u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
            assert_eq!(dht.group_count(), 1, "one group while V ≤ Vmax");
        }
        // The 9th vnode forces the first split (victim group full).
        let (_, report) = dht.create_vnode(SnodeId(8)).unwrap();
        assert_eq!(dht.group_count(), 2);
        let split = report.group_split.expect("split must be reported");
        assert_eq!(split.parent, GroupId::FIRST);
    }

    #[test]
    fn group_sizes_respect_l2() {
        let dht = grow(cfg(4, 4), 100, 3);
        for (gid, size, _) in dht.group_table() {
            assert!((4..=8).contains(&size), "{gid} has {size} members");
        }
    }

    #[test]
    fn group_quota_law() {
        // Q_g = 2^-depth — the invariant checker verifies it, but assert
        // the observable too.
        let dht = grow(cfg(4, 4), 64, 5);
        for (i, (gid, _, _)) in dht.group_table().iter().enumerate() {
            let q = dht.group_quotas()[i];
            let expected = 0.5f64.powi(gid.depth_quota_log2() as i32);
            assert!((q - expected).abs() < 1e-12, "{gid}: quota {q} vs {expected}");
        }
    }

    #[test]
    fn invariants_hold_through_growth() {
        let mut dht = LocalDht::with_seed(cfg(4, 2), 7);
        for i in 0..120u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
            dht.check_invariants().unwrap_or_else(|e| panic!("after vnode {i}: {e}"));
        }
        assert!(dht.group_count() > 1);
    }

    #[test]
    fn incremental_metric_matches_direct() {
        let dht = grow(cfg(8, 4), 75, 11);
        let direct = rel_std_dev_pct(dht.quotas());
        let inc = dht.vnode_quota_relstd_pct();
        assert!((direct - inc).abs() < 1e-9, "direct {direct} incremental {inc}");
    }

    #[test]
    fn lookup_routes_every_point() {
        let dht = grow(cfg(4, 4), 30, 13);
        let space = dht.config().hash_space();
        for point in (0..space.max_point()).step_by((space.size() / 128) as usize) {
            let (p, v) = dht.lookup(point).expect("full coverage");
            assert!(p.contains(point, space));
            assert!(dht.partitions_of(v).unwrap().contains(&p));
        }
    }

    #[test]
    fn lpdr_covers_only_the_group() {
        let dht = grow(cfg(4, 4), 40, 17);
        for (gid, size, level) in dht.group_table() {
            let lpdr = dht.lpdr(gid).unwrap();
            assert_eq!(lpdr.len(), size);
            // G2': the group's partition total is a power of two, and it
            // matches quota·2^level.
            let total = lpdr.total_partitions();
            assert!(total.is_power_of_two());
            let _ = level;
        }
    }

    #[test]
    fn vmin_512_behaves_like_global_until_huge() {
        // With Vmin = 512 and 100 vnodes there is exactly one group, so the
        // quality must match the global approach step for step (§4.2).
        use crate::global::GlobalDht;
        let c_local = cfg(32, 512);
        let c_global = cfg(32, 1);
        let mut local = LocalDht::with_seed(c_local, 23);
        let mut global = GlobalDht::with_seed(c_global, 23);
        for i in 0..100u32 {
            local.create_vnode(SnodeId(i)).unwrap();
            global.create_vnode(SnodeId(i)).unwrap();
            let a = local.vnode_quota_relstd_pct();
            let b = global.vnode_quota_relstd_pct();
            assert!((a - b).abs() < 1e-9, "V={}: local {a} vs global {b}", i + 1);
        }
        assert_eq!(local.group_count(), 1);
    }

    #[test]
    fn ideal_group_count_doubles_at_power_boundaries() {
        let vmax = 64;
        assert_eq!(ideal_group_count(1, vmax), 1);
        assert_eq!(ideal_group_count(64, vmax), 1);
        assert_eq!(ideal_group_count(65, vmax), 2);
        assert_eq!(ideal_group_count(128, vmax), 2);
        assert_eq!(ideal_group_count(129, vmax), 4);
        assert_eq!(ideal_group_count(1024, vmax), 16);
        assert_eq!(ideal_group_count(1025, vmax), 32);
    }

    #[test]
    fn report_carries_victim_and_point() {
        let mut dht = grow(cfg(4, 4), 5, 29);
        let (_, report) = dht.create_vnode(SnodeId(99)).unwrap();
        let r = report.lookup_point.expect("victim point drawn");
        let victim = report.victim.expect("victim vnode identified");
        // The victim owned the point at selection time; it may have handed
        // that very partition over since, but it must still exist.
        assert!(dht.config().hash_space().contains(r));
        assert!(dht.vnodes().contains(&victim) || !dht.vnodes().is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = grow(cfg(4, 4), 60, 77);
        let b = grow(cfg(4, 4), 60, 77);
        assert_eq!(a.quotas(), b.quotas());
        assert_eq!(
            a.group_table().iter().map(|t| t.0).collect::<Vec<_>>(),
            b.group_table().iter().map(|t| t.0).collect::<Vec<_>>()
        );
        let c = grow(cfg(4, 4), 60, 78);
        // A different seed virtually surely yields a different trajectory.
        assert_ne!(a.group_quotas(), c.group_quotas());
    }

    #[test]
    fn owning_half_policy_keeps_victims_group() {
        let c = cfg(4, 2).with_container_choice(ContainerChoice::OwningHalf);
        let mut dht = LocalDht::with_seed(c, 31);
        for i in 0..50u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
        }
        dht.check_invariants().unwrap();
        // Behavioural check happens in the ablation experiment; here we
        // assert the policy runs and preserves the invariants.
        assert!(dht.group_count() > 1);
    }
}

//! Partition Distribution Records: the GPDR (§2.1.4) and LPDR (§3.2).
//!
//! "The GPDR is a table that registers the number of partitions per each
//! vnode of the DHT"; an LPDR "may be viewed as a downsized version of the
//! GPDR, having its same basic structure". [`Pdr`] is that table — a
//! snapshot of `(canonical name, partition count)` rows. The engines keep
//! richer internal state; `Pdr` is the *protocol-visible* record: it is
//! what the simulator prices when it synchronises records across snodes
//! (SIM-MSGS, SIM-MEM) and what the paper's algorithm sorts in step 3.

use crate::ids::CanonicalName;

/// One row of a PDR: a vnode and its partition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdrEntry {
    /// The vnode's canonical name (`snode_id.vnode_id`).
    pub vnode: CanonicalName,
    /// Its partition count `Pv`.
    pub partitions: u64,
}

/// A Partition Distribution Record (global or local).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pdr {
    entries: Vec<PdrEntry>,
}

impl Pdr {
    /// Builds a record from rows.
    pub fn new(entries: Vec<PdrEntry>) -> Self {
        Self { entries }
    }

    /// The rows, in the engine's member order.
    pub fn entries(&self) -> &[PdrEntry] {
        &self.entries
    }

    /// Number of rows (vnodes covered by the record).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the record is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total partitions registered (`P` / `P_g`).
    pub fn total_partitions(&self) -> u64 {
        self.entries.iter().map(|e| e.partitions).sum()
    }

    /// Rows sorted by partition count (descending), ties by canonical name —
    /// the paper's step 3 ("sort the entrances … and find the vnode with
    /// more partitions").
    pub fn sorted_by_load(&self) -> Vec<PdrEntry> {
        let mut rows = self.entries.clone();
        rows.sort_by(|a, b| b.partitions.cmp(&a.partitions).then(a.vnode.cmp(&b.vnode)));
        rows
    }

    /// The most-loaded vnode (the paper's "victim vnode" in step 3).
    pub fn victim(&self) -> Option<PdrEntry> {
        self.sorted_by_load().into_iter().next()
    }

    /// Serialized wire size in bytes under the simulator's encoding model:
    /// each row is a fixed 12-byte record (4-byte snode, 4-byte local id,
    /// 4-byte count) — used by SIM-MSGS/SIM-MEM cost accounting.
    pub fn wire_size_bytes(&self) -> u64 {
        12 * self.entries.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SnodeId;

    fn name(s: u32, l: u32) -> CanonicalName {
        CanonicalName { snode: SnodeId(s), local: l }
    }

    #[test]
    fn totals_and_sizes() {
        let pdr = Pdr::new(vec![
            PdrEntry { vnode: name(0, 0), partitions: 5 },
            PdrEntry { vnode: name(1, 0), partitions: 6 },
            PdrEntry { vnode: name(0, 1), partitions: 5 },
        ]);
        assert_eq!(pdr.len(), 3);
        assert_eq!(pdr.total_partitions(), 16);
        assert_eq!(pdr.wire_size_bytes(), 36);
    }

    #[test]
    fn sorting_matches_paper_step_3() {
        let pdr = Pdr::new(vec![
            PdrEntry { vnode: name(1, 0), partitions: 5 },
            PdrEntry { vnode: name(0, 0), partitions: 6 },
            PdrEntry { vnode: name(0, 1), partitions: 6 },
        ]);
        let sorted = pdr.sorted_by_load();
        // Most-loaded first; ties broken by canonical name.
        assert_eq!(sorted[0].vnode, name(0, 0));
        assert_eq!(sorted[1].vnode, name(0, 1));
        assert_eq!(sorted[2].vnode, name(1, 0));
        assert_eq!(pdr.victim().unwrap().vnode, name(0, 0));
    }

    #[test]
    fn empty_record() {
        let pdr = Pdr::default();
        assert!(pdr.is_empty());
        assert_eq!(pdr.victim(), None);
        assert_eq!(pdr.total_partitions(), 0);
    }
}

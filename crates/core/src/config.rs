//! DHT configuration: the model parameters `Pmin`, `Vmin` and the policies
//! the paper leaves open.
//!
//! "Once set, `Pmin` and `Vmin` remain constant for the lifetime of a DHT"
//! (§4.1.2) — [`DhtConfig`] is therefore immutable after construction and
//! validated eagerly.

use crate::errors::DhtError;
use domus_hashspace::HashSpace;
use domus_util::bits::is_power_of_two;

/// Which partition a donor vnode hands over in a transfer.
///
/// The paper's algorithm says only "choose a victim partition from it"
/// (§2.5, step 4a) — the choice does not affect quotas (all partitions of a
/// group share one size), but it does affect data-migration locality, so it
/// is exposed as a policy (ablation ABL-VICTIM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPartitionPolicy {
    /// A uniformly random partition of the donor (default; matches the
    /// paper's stochastic spirit).
    #[default]
    Random,
    /// The donor's most recently acquired partition (LIFO; cheapest list op).
    Last,
    /// The donor's oldest partition (FIFO).
    First,
}

/// Which of the two halves of a just-split group receives the new vnode.
///
/// §3.7: "One of these two groups will then be randomly chosen to be the
/// container of the new vnode." The alternative — the half that inherited
/// the partition containing the random point `r` — is kept for ablation
/// ABL-CONTAINER.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContainerChoice {
    /// Uniformly random half (the paper's rule).
    #[default]
    RandomHalf,
    /// The half whose member owns the victim point `r`.
    OwningHalf,
}

/// How a full group's members are divided between the two halves of a
/// split.
///
/// §3.7: "each one with Vmin vnodes, randomly selected from the original
/// victim group". The deterministic alternative (first `Vmin` members by
/// admission order stay together) is kept for ablation ABL-SPLITSEL — it
/// concentrates co-resident vnodes and measurably changes how many LPDRs
/// each snode must replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitSelection {
    /// Uniformly random halves (the paper's rule).
    #[default]
    RandomHalves,
    /// Admission-order halves (oldest `Vmin` members form child 0).
    AdmissionOrder,
}

/// Immutable parameters of a DHT instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhtConfig {
    /// The hash range `R_h` (`Bh` bits).
    pub space: HashSpaceConfig,
    /// `Pmin`: minimum partitions per vnode; a power of two (invariant G4).
    pub pmin: u64,
    /// `Vmin`: minimum vnodes per group; a power of two (invariant L2).
    /// Ignored by the global approach.
    pub vmin: u64,
    /// Donor-partition selection policy.
    pub victim_partition: VictimPartitionPolicy,
    /// Container-group selection policy after a group split.
    pub container_choice: ContainerChoice,
    /// Membership-selection policy for group splits.
    pub split_selection: SplitSelection,
}

/// Plain-data stand-in for [`HashSpace`] (just the bit width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashSpaceConfig {
    /// `Bh`.
    pub bits: u32,
}

impl From<HashSpace> for HashSpaceConfig {
    fn from(s: HashSpace) -> Self {
        Self { bits: s.bits() }
    }
}

impl HashSpaceConfig {
    /// The concrete space.
    pub fn space(&self) -> HashSpace {
        HashSpace::new(self.bits)
    }
}

impl DhtConfig {
    /// A configuration over the full 64-bit space with the paper's reference
    /// parameters `Pmin = Vmin = 32` (§4.1.2: the θ-optimal choice).
    pub fn paper_default() -> Self {
        Self::new(HashSpace::full(), 32, 32).expect("reference parameters are valid")
    }

    /// A validated configuration.
    ///
    /// Constraints: `pmin` and `vmin` are powers of two (invariants G4/L2)
    /// and `pmin` must be representable in the space (`log2(pmin) <= Bh`).
    pub fn new(space: HashSpace, pmin: u64, vmin: u64) -> Result<Self, DhtError> {
        if !is_power_of_two(pmin) {
            return Err(DhtError::BadConfig("Pmin must be a power of two (invariant G4)"));
        }
        if !is_power_of_two(vmin) {
            return Err(DhtError::BadConfig("Vmin must be a power of two (invariant L2)"));
        }
        if u64::from(space.bits()) < pmin.trailing_zeros() as u64 {
            return Err(DhtError::BadConfig("Pmin exceeds the hash-space resolution"));
        }
        Ok(Self {
            space: space.into(),
            pmin,
            vmin,
            victim_partition: VictimPartitionPolicy::default(),
            container_choice: ContainerChoice::default(),
            split_selection: SplitSelection::default(),
        })
    }

    /// Overrides the group-split membership policy.
    pub fn with_split_selection(mut self, s: SplitSelection) -> Self {
        self.split_selection = s;
        self
    }

    /// Overrides the donor-partition policy.
    pub fn with_victim_partition(mut self, p: VictimPartitionPolicy) -> Self {
        self.victim_partition = p;
        self
    }

    /// Overrides the container-group policy.
    pub fn with_container_choice(mut self, c: ContainerChoice) -> Self {
        self.container_choice = c;
        self
    }

    /// `Pmax = 2·Pmin` (invariant G4).
    #[inline]
    pub fn pmax(&self) -> u64 {
        2 * self.pmin
    }

    /// `Vmax = 2·Vmin` (invariant L2).
    #[inline]
    pub fn vmax(&self) -> u64 {
        2 * self.vmin
    }

    /// The hash space.
    #[inline]
    pub fn hash_space(&self) -> HashSpace {
        self.space.space()
    }

    /// `log2(Pmin)`: the splitlevel of a fresh single-vnode group.
    #[inline]
    pub fn initial_level(&self) -> u32 {
        self.pmin.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_parameters() {
        let c = DhtConfig::paper_default();
        assert_eq!(c.pmin, 32);
        assert_eq!(c.vmin, 32);
        assert_eq!(c.pmax(), 64);
        assert_eq!(c.vmax(), 64);
        assert_eq!(c.hash_space().bits(), 64);
        assert_eq!(c.initial_level(), 5);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let s = HashSpace::new(32);
        assert!(matches!(DhtConfig::new(s, 12, 32), Err(DhtError::BadConfig(_))));
        assert!(matches!(DhtConfig::new(s, 32, 12), Err(DhtError::BadConfig(_))));
        assert!(DhtConfig::new(s, 1, 1).is_ok(), "1 is a valid power of two");
    }

    #[test]
    fn rejects_pmin_finer_than_space() {
        let s = HashSpace::new(4);
        assert!(DhtConfig::new(s, 16, 1).is_ok());
        assert!(matches!(DhtConfig::new(s, 32, 1), Err(DhtError::BadConfig(_))));
    }

    #[test]
    fn builder_overrides() {
        let c = DhtConfig::paper_default()
            .with_victim_partition(VictimPartitionPolicy::Last)
            .with_container_choice(ContainerChoice::OwningHalf);
        assert_eq!(c.victim_partition, VictimPartitionPolicy::Last);
        assert_eq!(c.container_choice, ContainerChoice::OwningHalf);
    }
}

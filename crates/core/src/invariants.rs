//! The model's invariant checker.
//!
//! Verifies every invariant of §2.2 (G1–G5) and §3.3 (L1, L2, G1'–G5') of
//! the paper, plus the structural consistency of the engine internals
//! (routing ↔ partition lists ↔ accumulators ↔ group membership). Used by
//! unit, integration and property tests, and — behind `debug_assertions` —
//! after every mutating engine operation.
//!
//! The checks are deliberately exhaustive (O(V·P)); production callers
//! sample them, tests run them after every step.

use crate::config::DhtConfig;
use crate::group_id::GroupId;
use crate::ids::{SnodeId, VnodeId};
use crate::ledger::SnodeLedger;
use crate::state::{GroupState, VnodeStore};
use domus_hashspace::{OwnerMap, Quota};
use domus_util::bits::is_power_of_two;
use std::collections::BTreeMap;

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// G1/G1': the partitions do not tile `R_h` (gap/overlap/size mismatch).
    Coverage(String),
    /// A vnode's partition is not routed to it, or vice versa.
    RoutingMismatch {
        /// The vnode involved.
        vnode: VnodeId,
        /// Human-readable detail.
        detail: String,
    },
    /// G2': a region's total partition count is not a power of two.
    TotalNotPowerOfTwo {
        /// The group.
        gid: GroupId,
        /// The offending total.
        total: u64,
    },
    /// G3': a member holds a partition not at the group's splitlevel.
    WrongLevel {
        /// The group.
        gid: GroupId,
        /// The vnode holding the partition.
        vnode: VnodeId,
        /// Expected splitlevel.
        expected: u32,
        /// Found splitlevel.
        found: u32,
    },
    /// G4': a vnode's partition count is outside `[Pmin, Pmax]`.
    CountOutOfBounds {
        /// The vnode.
        vnode: VnodeId,
        /// Its count.
        count: u64,
        /// Allowed bounds.
        bounds: (u64, u64),
    },
    /// G5': member count is a power of two but not every member holds Pmin.
    PowerOfTwoNotUniform {
        /// The group.
        gid: GroupId,
        /// Its member count.
        members: usize,
    },
    /// L2: a group's member count is outside `[Vmin, Vmax]`.
    GroupSizeOutOfBounds {
        /// The group.
        gid: GroupId,
        /// Its member count.
        members: usize,
        /// Allowed bounds.
        bounds: (u64, u64),
    },
    /// L1 (structural): a vnode is claimed by zero or multiple groups, or
    /// its back-pointer disagrees.
    MembershipMismatch {
        /// The vnode.
        vnode: VnodeId,
        /// Detail.
        detail: String,
    },
    /// Group identifiers are not prefix-free (uniqueness scheme broken).
    GroupIdsNotPrefixFree {
        /// A group whose id is an ancestor of another live id.
        ancestor: GroupId,
        /// The descendant id.
        descendant: GroupId,
    },
    /// A group's quota differs from `2^-depth(gid)` (the split-in-halves
    /// law the deletion extension relies on).
    GroupQuotaDrift {
        /// The group.
        gid: GroupId,
        /// Detail.
        detail: String,
    },
    /// The `Σ Pv` / `Σ Pv²` accumulators disagree with recomputation.
    AccumulatorDrift {
        /// The group.
        gid: GroupId,
        /// Detail.
        detail: String,
    },
    /// The incremental snode ledger disagrees with a per-vnode
    /// recomputation.
    LedgerDrift {
        /// Detail.
        detail: String,
    },
    /// The vnode quotas do not sum exactly to 1.
    QuotaSumNotOne {
        /// The exact sum found, rendered.
        found: String,
    },
    /// Derived theorem (see `balance` module docs): between operations,
    /// partition counts within a region differ by at most one. Not a paper
    /// invariant, but every algorithm in the model preserves it, and the
    /// G5' argument depends on it.
    SpreadTooWide {
        /// The group.
        gid: GroupId,
        /// Smallest and largest member counts found.
        min_max: (u64, u64),
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Coverage(d) => write!(f, "G1 coverage violated: {d}"),
            Self::RoutingMismatch { vnode, detail } => {
                write!(f, "routing mismatch at {vnode}: {detail}")
            }
            Self::TotalNotPowerOfTwo { gid, total } => {
                write!(f, "G2' violated in {gid}: P_g = {total} is not a power of two")
            }
            Self::WrongLevel { gid, vnode, expected, found } => write!(
                f,
                "G3' violated in {gid}: {vnode} holds a level-{found} partition, expected {expected}"
            ),
            Self::CountOutOfBounds { vnode, count, bounds } => write!(
                f,
                "G4' violated: {vnode} holds {count} partitions, outside [{}, {}]",
                bounds.0, bounds.1
            ),
            Self::PowerOfTwoNotUniform { gid, members } => write!(
                f,
                "G5' violated in {gid}: {members} members (a power of two) but counts not all Pmin"
            ),
            Self::GroupSizeOutOfBounds { gid, members, bounds } => write!(
                f,
                "L2 violated: {gid} has {members} members, outside [{}, {}]",
                bounds.0, bounds.1
            ),
            Self::MembershipMismatch { vnode, detail } => {
                write!(f, "L1 violated at {vnode}: {detail}")
            }
            Self::GroupIdsNotPrefixFree { ancestor, descendant } => {
                write!(f, "group ids not prefix-free: {ancestor} is an ancestor of {descendant}")
            }
            Self::GroupQuotaDrift { gid, detail } => {
                write!(f, "group quota law violated in {gid}: {detail}")
            }
            Self::AccumulatorDrift { gid, detail } => {
                write!(f, "accumulator drift in {gid}: {detail}")
            }
            Self::LedgerDrift { detail } => write!(f, "snode ledger drift: {detail}"),
            Self::QuotaSumNotOne { found } => write!(f, "vnode quotas sum to {found}, not 1"),
            Self::SpreadTooWide { gid, min_max } => write!(
                f,
                "count spread in {gid} exceeds 1: min {} max {}",
                min_max.0, min_max.1
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Runs the full invariant suite over engine internals.
///
/// `groups` is the group arena (dead slots included — they are skipped);
/// `single_region` relaxes L2 and the quota law for the global approach
/// (whose one region is not a paper "group").
pub fn check(
    cfg: &DhtConfig,
    vs: &VnodeStore,
    groups: &[GroupState],
    routing: &OwnerMap<VnodeId>,
    ledger: &SnodeLedger,
    single_region: bool,
) -> Result<(), InvariantViolation> {
    let live: Vec<&GroupState> = groups.iter().filter(|g| g.alive).collect();

    // An empty DHT (no vnodes ever created) is trivially healthy; the
    // coverage invariant only binds once R_h has an owner.
    if vs.alive_count() == 0 {
        return if routing.is_empty() {
            Ok(())
        } else {
            Err(InvariantViolation::Coverage("routing entries without live vnodes".into()))
        };
    }

    // --- G1/G1': exact tiling of R_h.
    routing.verify_coverage().map_err(|e| InvariantViolation::Coverage(e.to_string()))?;

    // --- The routing map's owner index agrees with its entries.
    routing.verify_index().map_err(|e| InvariantViolation::Coverage(e.to_string()))?;

    // --- Routing ↔ partition-list agreement, in both directions.
    let mut total_listed = 0usize;
    for v in vs.iter_alive() {
        for &p in &vs.get(v).partitions {
            total_listed += 1;
            match routing.owner_of(p) {
                Some(&owner) if owner == v => {}
                other => {
                    return Err(InvariantViolation::RoutingMismatch {
                        vnode: v,
                        detail: format!("partition {p} routed to {other:?}"),
                    });
                }
            }
        }
    }
    if total_listed != routing.len() {
        return Err(InvariantViolation::RoutingMismatch {
            vnode: VnodeId(u32::MAX),
            detail: format!("{} partitions listed, {} routed", total_listed, routing.len()),
        });
    }

    // --- L1 structural: each live vnode in exactly one live group, with a
    //     consistent back-pointer.
    let mut seen = vec![0u32; vs.capacity()];
    for (slot, g) in groups.iter().enumerate() {
        if !g.alive {
            continue;
        }
        for &m in &g.members {
            if !vs.is_alive(m) {
                return Err(InvariantViolation::MembershipMismatch {
                    vnode: m,
                    detail: format!("dead vnode listed in {}", g.gid),
                });
            }
            seen[m.index()] += 1;
            if vs.get(m).group != slot as u32 {
                return Err(InvariantViolation::MembershipMismatch {
                    vnode: m,
                    detail: format!("back-pointer {} but listed in slot {slot}", vs.get(m).group),
                });
            }
        }
    }
    for v in vs.iter_alive() {
        if seen[v.index()] != 1 {
            return Err(InvariantViolation::MembershipMismatch {
                vnode: v,
                detail: format!("member of {} groups", seen[v.index()]),
            });
        }
    }

    // --- Per-group invariants.
    for g in &live {
        // G3': every partition at the group's level.
        for &m in &g.members {
            for &p in &vs.get(m).partitions {
                if p.level() != g.level {
                    return Err(InvariantViolation::WrongLevel {
                        gid: g.gid,
                        vnode: m,
                        expected: g.level,
                        found: p.level(),
                    });
                }
            }
        }
        // G4': counts within [Pmin, Pmax] (trivially relaxed for a
        // single-vnode DHT, where V = 1 forces Pv = Pmin anyway).
        for &m in &g.members {
            let c = vs.get(m).count();
            if c < cfg.pmin || c > cfg.pmax() {
                return Err(InvariantViolation::CountOutOfBounds {
                    vnode: m,
                    count: c,
                    bounds: (cfg.pmin, cfg.pmax()),
                });
            }
        }
        // G2': P_g a power of two.
        let total: u64 = g.members.iter().map(|&m| vs.get(m).count()).sum();
        if !is_power_of_two(total) {
            return Err(InvariantViolation::TotalNotPowerOfTwo { gid: g.gid, total });
        }
        // G5': power-of-two member count ⇒ all counts = Pmin.
        if is_power_of_two(g.members.len() as u64)
            && g.members.iter().any(|&m| vs.get(m).count() != cfg.pmin)
        {
            return Err(InvariantViolation::PowerOfTwoNotUniform {
                gid: g.gid,
                members: g.members.len(),
            });
        }
        // Spread theorem: counts within the region differ by at most 1.
        let min = g.members.iter().map(|&m| vs.get(m).count()).min().unwrap_or(0);
        let max = g.members.iter().map(|&m| vs.get(m).count()).max().unwrap_or(0);
        if max - min > 1 {
            return Err(InvariantViolation::SpreadTooWide { gid: g.gid, min_max: (min, max) });
        }
        // Accumulators.
        let sum: u64 = total;
        let sumsq: u64 = g.members.iter().map(|&m| vs.get(m).count().pow(2)).sum();
        if g.sum != sum || g.sumsq != sumsq {
            return Err(InvariantViolation::AccumulatorDrift {
                gid: g.gid,
                detail: format!(
                    "stored (Σ={}, Σ²={}) recomputed (Σ={sum}, Σ²={sumsq})",
                    g.sum, g.sumsq
                ),
            });
        }
        // Count histogram.
        let mut hist: Vec<u32> = Vec::new();
        for &m in &g.members {
            let c = vs.get(m).count() as usize;
            if hist.len() <= c {
                hist.resize(c + 1, 0);
            }
            hist[c] += 1;
        }
        let stored_trim = g.hist.iter().rposition(|&n| n > 0).map(|i| &g.hist[..=i]).unwrap_or(&[]);
        let fresh_trim = hist.iter().rposition(|&n| n > 0).map(|i| &hist[..=i]).unwrap_or(&[]);
        if stored_trim != fresh_trim {
            return Err(InvariantViolation::AccumulatorDrift {
                gid: g.gid,
                detail: format!("histogram stored {stored_trim:?} recomputed {fresh_trim:?}"),
            });
        }
        // L2 and the quota law are local-approach specific.
        if !single_region {
            let (vmin, vmax) = (cfg.vmin, cfg.vmax());
            let n = g.members.len() as u64;
            let exempt_first_group = live.len() == 1 && g.gid == GroupId::FIRST;
            if exempt_first_group {
                // §3.7: "1 ≤ V0 ≤ Vmax … the sole exception to invariant L2".
                if n == 0 || n > vmax {
                    return Err(InvariantViolation::GroupSizeOutOfBounds {
                        gid: g.gid,
                        members: g.members.len(),
                        bounds: (1, vmax),
                    });
                }
            } else if n < vmin || n > vmax {
                return Err(InvariantViolation::GroupSizeOutOfBounds {
                    gid: g.gid,
                    members: g.members.len(),
                    bounds: (vmin, vmax),
                });
            }
            // Quota law: Q_g = 2^-(len(gid)-1), i.e. P_g · 2^depth = 2^level.
            let depth = g.gid.depth_quota_log2();
            let lhs = (total as u128) << depth;
            if g.level > 127 || lhs != (1u128 << g.level) {
                return Err(InvariantViolation::GroupQuotaDrift {
                    gid: g.gid,
                    detail: format!(
                        "P_g = {total}, depth = {depth}, level = {} (expected P_g·2^depth = 2^level)",
                        g.level
                    ),
                });
            }
        }
    }

    // --- Prefix-freeness of live group ids.
    if !single_region {
        for a in &live {
            for b in &live {
                if a.gid != b.gid && a.gid.is_ancestor_of(&b.gid) {
                    return Err(InvariantViolation::GroupIdsNotPrefixFree {
                        ancestor: a.gid,
                        descendant: b.gid,
                    });
                }
            }
        }
    }

    // --- Exact quota sum: Σ_v Qv = 1.
    if vs.alive_count() > 0 {
        let mut sum = Quota::ZERO;
        for g in &live {
            // Members' quotas: count / 2^level each.
            let counts: u64 = g.members.iter().map(|&m| vs.get(m).count()).sum();
            sum = sum + Quota::of_partitions(counts, g.level);
        }
        if !sum.is_one() {
            return Err(InvariantViolation::QuotaSumNotOne { found: sum.to_string() });
        }
    }

    // --- The incremental snode ledger matches a per-vnode recomputation.
    let mut fresh: BTreeMap<SnodeId, (Quota, u32)> = BTreeMap::new();
    for g in &live {
        for &m in &g.members {
            let s = vs.get(m).name.snode;
            let e = fresh.entry(s).or_insert((Quota::ZERO, 0));
            e.0 = e.0 + Quota::of_partitions(vs.get(m).count(), g.level);
            e.1 += 1;
        }
    }
    if ledger.snode_count() != fresh.len() {
        return Err(InvariantViolation::LedgerDrift {
            detail: format!("{} snodes ledgered, {} found", ledger.snode_count(), fresh.len()),
        });
    }
    for (s, share) in ledger.iter() {
        match fresh.get(&s) {
            Some(&(q, n)) if q == share.quota && n == share.vnodes => {}
            found => {
                return Err(InvariantViolation::LedgerDrift {
                    detail: format!("snode {s}: ledgered {share:?}, recomputed {found:?}"),
                });
            }
        }
    }
    if !ledger.total().is_one() {
        return Err(InvariantViolation::LedgerDrift {
            detail: format!("shares total {} ≠ 1", ledger.total()),
        });
    }

    Ok(())
}

//! vnode deletion for the local approach (extension).
//!
//! The paper's base model admits deletion ("cluster nodes may dynamically
//! join *or leave* the DHT", §1; partition counts fluctuate "during the
//! creation *or deletion* of vnodes", §2.1.3) but this paper only details
//! creation. This module implements the inverse operations such that every
//! invariant of §2.2/§3.3 — including the derived spread-≤-1 theorem —
//! still holds after every removal. Policy, in order of preference:
//!
//! 1. **Intra-group removal** (`V_g > Vmin`, or the single-group case):
//!    drain the victim's partitions to the least-loaded members; if that
//!    saturates everyone at `Pmax` (which the power-of-two arithmetic shows
//!    happens exactly when the surviving count is a power of two), run the
//!    merge cascade back to `Pmin` — the exact inverse of §2.5's split
//!    cascade.
//! 2. **Sibling group merge** (`V_g = Vmin` and the trie sibling is a live
//!    leaf with `Vmin` members): re-fuse the two halves into their parent
//!    identifier. Trie siblings always carry equal quotas (`2^-depth`), so
//!    the merged partition total stays a power of two (G2'); levels are
//!    harmonised upward and counts re-levelled.
//! 3. **Internal vnode migration** (`V_g = Vmin`, sibling unavailable, but
//!    some group exceeds `Vmin`): move one vnode from the largest group
//!    into the victim's group (remove there + re-create here), restoring
//!    headroom; then case 1 applies.
//! 4. **Deepest-pair merge** (every group sits at exactly `Vmin`): merge
//!    the deepest leaf with its sibling — which the trie structure
//!    guarantees is also a leaf — producing a `Vmax` group that either
//!    contains the victim (case 1) or can donate a vnode (case 3).

use crate::balance;
use crate::engine::RemoveOutcome;
use crate::errors::DhtError;
use crate::group_id::GroupId;
use crate::ids::VnodeId;
use crate::local::LocalDht;
use crate::sink::{LedgeredSink, RebalanceEvent, RebalanceSink};
use domus_util::DomusRng;

/// Entry point used by [`LocalDht::remove_vnode_with`]. Every quota
/// motion (drain, cascades, migration) streams through `sink` in
/// chronological order, ledgered as it happens.
pub(crate) fn remove_local<R: DomusRng>(
    dht: &mut LocalDht<R>,
    v: VnodeId,
    sink: &mut dyn RebalanceSink,
) -> Result<RemoveOutcome, DhtError> {
    dht.ensure_alive(v)?;
    if dht.vs.alive_count() == 1 {
        return Err(DhtError::LastVnode);
    }
    let snode = dht.vs.get(v).name.snode;
    let outcome = remove_local_inner(dht, v, sink)?;
    dht.ledger.vnode_killed(snode);
    dht.debug_check();
    Ok(outcome)
}

/// The removal state machine, without the victim's ledger kill or the
/// final invariant sweep (both owned by [`remove_local`]).
fn remove_local_inner<R: DomusRng>(
    dht: &mut LocalDht<R>,
    v: VnodeId,
    sink: &mut dyn RebalanceSink,
) -> Result<RemoveOutcome, DhtError> {
    let slot = dht.vs.get(v).group;
    let outcome = RemoveOutcome { group: Some(dht.groups[slot as usize].gid) };

    let vg = dht.groups[slot as usize].len() as u64;
    if dht.live_slots.len() == 1 || vg > dht.cfg.vmin {
        intra_group_remove(dht, slot, v, sink);
        return Ok(outcome);
    }

    // V_g == Vmin with other groups around: make room first.
    let gid = dht.groups[slot as usize].gid;
    let sibling_slot = gid.sibling().and_then(|sib| find_live_group(dht, sib));
    if let Some(sib) = sibling_slot {
        if dht.groups[sib as usize].len() as u64 == dht.cfg.vmin {
            let merged = merge_groups(dht, slot, sib, sink)?;
            intra_group_remove(dht, merged, v, sink);
            return Ok(outcome);
        }
    }
    if let Some(donor) = find_donor_group(dht, slot) {
        migrate_one(dht, donor, slot, sink)?;
        intra_group_remove(dht, dht.vs.get(v).group, v, sink);
        return Ok(outcome);
    }

    // Every live group is at Vmin: merge the deepest sibling pair.
    let (a, b) = deepest_sibling_pair(dht);
    let merged = merge_groups(dht, a, b, sink)?;
    let v_slot = dht.vs.get(v).group;
    if v_slot == merged {
        intra_group_remove(dht, merged, v, sink);
    } else {
        migrate_one(dht, merged, v_slot, sink)?;
        intra_group_remove(dht, dht.vs.get(v).group, v, sink);
    }
    Ok(outcome)
}

/// Case 1: drain, kill, and run the merge cascade if it saturated `Pmax`.
fn intra_group_remove<R: DomusRng>(
    dht: &mut LocalDht<R>,
    slot: u32,
    v: VnodeId,
    sink: &mut dyn RebalanceSink,
) {
    {
        let LocalDht { vs, groups, routing, ledger, rng, cfg, .. } = dht;
        let mut ls = LedgeredSink::new(sink, ledger);
        balance::greedy_remove(vs, routing, &mut groups[slot as usize], v, cfg, rng, &mut ls);
    }
    dht.vs.kill(v);
    let saturated = balance::all_at_pmax(&dht.groups[slot as usize], &dht.cfg);
    if saturated {
        let pairs = {
            let LocalDht { vs, groups, routing, ledger, rng, cfg, .. } = dht;
            let mut ls = LedgeredSink::new(sink, ledger);
            balance::merge_all(vs, routing, &mut groups[slot as usize], cfg, rng, &mut ls)
                .expect("saturation only occurs above the region's closure floor (DESIGN.md §3)")
        };
        sink.event(RebalanceEvent::PartitionMerge { pairs });
    }
}

/// Finds the live-group slot with identifier `gid`, if any.
fn find_live_group<R: DomusRng>(dht: &LocalDht<R>, gid: GroupId) -> Option<u32> {
    dht.live_slots.iter().copied().find(|&s| dht.groups[s as usize].gid == gid)
}

/// Picks the largest group (ties: smallest identifier value, then slot)
/// that can legally lose a member — excluding `except`.
fn find_donor_group<R: DomusRng>(dht: &LocalDht<R>, except: u32) -> Option<u32> {
    let mut best: Option<(usize, u64, u32)> = None; // (len, gid value, slot)
    for &i in &dht.live_slots {
        let g = &dht.groups[i as usize];
        if i == except || g.len() as u64 <= dht.cfg.vmin {
            continue;
        }
        let cand = (g.len(), g.gid.value(), i);
        best = match best {
            None => Some(cand),
            Some(b) if cand.0 > b.0 || (cand.0 == b.0 && cand.1 < b.1) => Some(cand),
            keep => keep,
        };
    }
    best.map(|(_, _, slot)| slot)
}

/// When every group sits at `Vmin`, the deepest leaf's sibling must itself
/// be a live leaf (a deeper descendant would contradict depth maximality).
fn deepest_sibling_pair<R: DomusRng>(dht: &LocalDht<R>) -> (u32, u32) {
    let deepest = dht
        .live_slots
        .iter()
        .map(|&i| (i, &dht.groups[i as usize]))
        .max_by_key(|(i, g)| (g.gid.len(), u32::MAX - i))
        .map(|(i, _)| i)
        .expect("at least one live group");
    let gid = dht.groups[deepest as usize].gid;
    let sib = gid.sibling().expect("a deepest group below the root has a sibling");
    let sib_slot = find_live_group(dht, sib)
        .expect("the sibling of a deepest leaf is a leaf (prefix-freeness)");
    (deepest, sib_slot)
}

/// Case 2/4: fuse two sibling groups back into their parent identifier.
///
/// Returns the merged group's slot. Levels are harmonised to the higher of
/// the two (splitting the lower side's partitions — streamed as
/// `PartitionSplit` events, which the legacy report never recorded),
/// members are pooled, and counts are re-levelled to spread ≤ 1 — which
/// the equal-quota law places inside `[Pmin, Pmax]`.
fn merge_groups<R: DomusRng>(
    dht: &mut LocalDht<R>,
    a: u32,
    b: u32,
    sink: &mut dyn RebalanceSink,
) -> Result<u32, DhtError> {
    let gid_a = dht.groups[a as usize].gid;
    let gid_b = dht.groups[b as usize].gid;
    debug_assert_eq!(gid_a.sibling(), Some(gid_b), "only trie siblings merge");
    let parent_gid = gid_a.parent().expect("sibling implies a parent");

    let target = dht.groups[a as usize].level.max(dht.groups[b as usize].level);
    for slot in [a, b] {
        while dht.groups[slot as usize].level < target {
            let count =
                balance::split_all(&mut dht.vs, &mut dht.routing, &mut dht.groups[slot as usize])?;
            sink.event(RebalanceEvent::PartitionSplit { count });
        }
    }

    let merged_slot = dht.groups.len() as u32;
    let birth = dht.groups[a as usize].birth_level.min(dht.groups[b as usize].birth_level);
    let mut merged = crate::state::GroupState::new(parent_gid, target);
    merged.birth_level = birth;
    for slot in [a, b] {
        let members = std::mem::take(&mut dht.groups[slot as usize].members);
        dht.groups[slot as usize].alive = false;
        dht.groups[slot as usize].clear_accumulators();
        for m in members {
            dht.vs.get_mut(m).group = merged_slot;
            let count = dht.vs.get(m).count();
            merged.admit(m, count);
        }
    }
    dht.groups.push(merged);
    dht.retire_slot(a);
    dht.retire_slot(b);
    dht.live_slots.push(merged_slot);
    sink.event(RebalanceEvent::GroupMerge { left: gid_a, right: gid_b, parent: parent_gid });

    // Harmonisation may have pushed the raised side past Pmax; re-level.
    {
        let LocalDht { vs, groups, routing, ledger, rng, cfg, .. } = dht;
        let mut ls = LedgeredSink::new(sink, ledger);
        balance::rebalance_spread(
            vs,
            routing,
            &mut groups[merged_slot as usize],
            cfg,
            rng,
            &mut ls,
        );
    }
    Ok(merged_slot)
}

/// Case 3: migrate one vnode from `donor` into `dest` (remove + re-create
/// under the same snode), announcing the handle change as a
/// `VnodeMigrated` event.
fn migrate_one<R: DomusRng>(
    dht: &mut LocalDht<R>,
    donor: u32,
    dest: u32,
    sink: &mut dyn RebalanceSink,
) -> Result<(), DhtError> {
    let w = *dht.groups[donor as usize].members.last().expect("donor group is non-empty");
    let snode = dht.vs.get(w).name.snode;
    intra_group_remove(dht, donor, w, sink);
    let outcome = dht.admit_into_group(snode, dest, sink)?;
    // The re-creation was ledgered by the admission path; balance the
    // kill of the retired handle.
    dht.ledger.vnode_killed(snode);
    sink.event(RebalanceEvent::VnodeMigrated { old: w, new: outcome.vnode });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DhtConfig;
    use crate::engine::DhtEngine;
    use crate::ids::SnodeId;
    use domus_hashspace::HashSpace;

    fn cfg(pmin: u64, vmin: u64) -> DhtConfig {
        DhtConfig::new(HashSpace::new(32), pmin, vmin).unwrap()
    }

    fn grow(c: DhtConfig, n: usize, seed: u64) -> LocalDht {
        let mut dht = LocalDht::with_seed(c, seed);
        for i in 0..n {
            dht.create_vnode(SnodeId(i as u32)).unwrap();
        }
        dht
    }

    #[test]
    fn grow_then_shrink_to_one() {
        let mut dht = grow(cfg(4, 2), 40, 3);
        while dht.vnode_count() > 1 {
            let victims = dht.vnodes();
            let v = victims[victims.len() / 2];
            dht.remove_vnode(v).unwrap_or_else(|e| panic!("removing {v}: {e}"));
            dht.check_invariants().unwrap_or_else(|e| panic!("V={} : {e}", dht.vnode_count()));
        }
        assert_eq!(dht.vnode_count(), 1);
        assert_eq!(dht.group_count(), 1);
        let survivor = dht.vnodes()[0];
        assert_eq!(dht.quota_of(survivor).unwrap(), 1.0);
    }

    #[test]
    fn removal_reports_group_merge_when_forced() {
        // Vmin = 2: groups split early; shrinking forces sibling merges.
        let mut dht = grow(cfg(4, 2), 30, 5);
        assert!(dht.group_count() >= 4);
        let mut merges_seen = 0;
        while dht.vnode_count() > 2 {
            let v = dht.vnodes()[0];
            let rep = dht.remove_vnode(v).unwrap();
            if rep.group_merge.is_some() {
                merges_seen += 1;
            }
        }
        assert!(merges_seen > 0, "shrinking this far must merge groups");
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut dht = LocalDht::with_seed(cfg(4, 2), 11);
        let mut step = 0u32;
        for round in 0..6 {
            for i in 0..20u32 {
                dht.create_vnode(SnodeId(i % 7)).unwrap();
                step += 1;
                dht.check_invariants().unwrap_or_else(|e| panic!("create step {step}: {e}"));
            }
            for _ in 0..15 {
                let vnodes = dht.vnodes();
                let v = vnodes[(step as usize * 13) % vnodes.len()];
                dht.remove_vnode(v).unwrap();
                step += 1;
                dht.check_invariants().unwrap_or_else(|e| panic!("remove step {step}: {e}"));
            }
            let _ = round;
        }
        assert!(dht.vnode_count() >= 30);
    }

    #[test]
    fn migration_is_reported_when_it_happens() {
        // Drive a configuration into the migration path: many equal groups,
        // then delete from one group repeatedly so its sibling disappears.
        let mut dht = grow(cfg(4, 2), 64, 17);
        let mut migrations = 0;
        let mut merges = 0;
        while dht.vnode_count() > 4 {
            let v = *dht.vnodes().last().unwrap();
            let rep = dht.remove_vnode(v).unwrap();
            if rep.migrated.is_some() {
                migrations += 1;
            }
            if rep.group_merge.is_some() {
                merges += 1;
            }
        }
        // Both mechanisms exist; at least merges must fire on a shrink this
        // deep, and the combined machinery must keep the structure legal.
        assert!(merges > 0);
        let _ = migrations;
        dht.check_invariants().unwrap();
    }

    #[test]
    fn partition_merges_reverse_split_cascades() {
        let mut dht = grow(cfg(8, 1), 8, 23);
        let mut merge_events = 0;
        while dht.vnode_count() > 1 {
            let v = dht.vnodes()[0];
            let rep = dht.remove_vnode(v).unwrap();
            merge_events += (rep.partition_merges > 0) as u32;
        }
        assert!(merge_events > 0, "shrinking to 1 vnode must merge partitions back");
        // Survivor ends at the initial level with Pmin partitions.
        let v = dht.vnodes()[0];
        assert_eq!(dht.partition_count(v).unwrap(), 8);
    }

    #[test]
    fn remove_unknown_and_last_errors() {
        let mut dht = grow(cfg(4, 2), 1, 29);
        let v = dht.vnodes()[0];
        assert_eq!(dht.remove_vnode(v), Err(DhtError::LastVnode));
        assert!(matches!(dht.remove_vnode(VnodeId(404)), Err(DhtError::UnknownVnode(_))));
    }

    #[test]
    fn deterministic_shrink() {
        let shrink = |seed| {
            let mut dht = grow(cfg(4, 2), 50, seed);
            for _ in 0..30 {
                let v = dht.vnodes()[0];
                dht.remove_vnode(v).unwrap();
            }
            dht.quotas()
        };
        assert_eq!(shrink(41), shrink(41));
    }
}

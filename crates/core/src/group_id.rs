//! Group identifiers: the decentralized binary-prefix scheme of §3.7.1.
//!
//! "The first group is group 0₂; when the first group becomes full, it
//! splits in groups 0₂ and 1₂. Afterward, each time a group splits, the
//! resulting groups inherit its binary identifier, prefixed either by the
//! binary digit 0 or 1. By following this scheme, only the snode that
//! coordinates the splitting of a group needs to be involved in the
//! definition of the identifiers for the resulting groups."
//!
//! An identifier is therefore a binary string; the set of identifiers of
//! live groups is *prefix-free* (it is the leaf set of a binary trie), which
//! is what guarantees global uniqueness with purely local decisions. A side
//! effect the deletion extension exploits: a group's quota is exactly
//! `2^-len(gid)` (each split halves the parent's quota — see
//! `domus_core::local`), so trie *siblings always have equal quotas* and can
//! be merged back losslessly.

/// A group identifier: a binary string of up to 64 digits.
///
/// `bits` holds the digit string interpreted MSB-first (the figure-3
/// convention: the split prepends a digit on the most-significant side), so
/// the base-10 value shown in the paper's figure is just `bits` itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId {
    bits: u64,
    len: u8,
}

impl GroupId {
    /// The first group of a DHT: `0₂` (a single binary digit zero).
    pub const FIRST: GroupId = GroupId { bits: 0, len: 1 };

    /// The identifier with digit string `bits` (MSB-first) of length `len`.
    ///
    /// # Panics
    /// Panics if `len == 0`, `len > 64`, or `bits` has set bits beyond `len`.
    pub fn new(bits: u64, len: u8) -> Self {
        assert!((1..=64).contains(&len), "group id length must be 1..=64, got {len}");
        if len < 64 {
            assert!(bits < (1u64 << len), "bits {bits:#b} exceed length {len}");
        }
        Self { bits, len }
    }

    /// The digit string as an integer (the paper's base-10 reading).
    #[inline]
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// Number of binary digits — also the group's depth in the split trie,
    /// minus the root convention: `FIRST` has length 1 and depth 0 splits.
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the degenerate zero-length id (never constructed).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The two identifiers produced when this group splits: the inherited
    /// string prefixed by `0` and by `1` (§3.7.1).
    ///
    /// # Panics
    /// Panics if the identifier is already 64 digits long.
    pub fn split(&self) -> (GroupId, GroupId) {
        assert!(self.len < 64, "group id cannot grow beyond 64 digits");
        let len = self.len + 1;
        (
            GroupId { bits: self.bits, len },                  // 0-prefixed
            GroupId { bits: self.bits | 1 << (len - 1), len }, // 1-prefixed
        )
    }

    /// The sibling identifier (same parent, other prefix digit), or `None`
    /// for [`GroupId::FIRST`] (group 0 before any split has no sibling).
    pub fn sibling(&self) -> Option<GroupId> {
        if self.len <= 1 {
            None
        } else {
            Some(GroupId { bits: self.bits ^ (1 << (self.len - 1)), len: self.len })
        }
    }

    /// The parent identifier (drop the most significant digit), or `None`
    /// for ids of length 1.
    pub fn parent(&self) -> Option<GroupId> {
        if self.len <= 1 {
            None
        } else {
            let len = self.len - 1;
            Some(GroupId { bits: self.bits & !(1 << (self.len - 1)), len })
        }
    }

    /// `true` iff `self` is a strict prefix-ancestor of `other` in the trie
    /// (i.e. `other`'s digit string ends with `self`'s — splits *prepend*).
    pub fn is_ancestor_of(&self, other: &GroupId) -> bool {
        if self.len >= other.len {
            return false;
        }
        let mask = if self.len == 64 { u64::MAX } else { (1u64 << self.len) - 1 };
        other.bits & mask == self.bits
    }

    /// The group's quota of the hash range: `2^-len` relative to the first
    /// group's full range — see the module docs.
    pub fn depth_quota_log2(&self) -> u32 {
        (self.len - 1) as u32
    }
}

impl std::fmt::Display for GroupId {
    /// Renders like figure 3: binary digits then the base-10 value,
    /// e.g. `010(2)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:0>width$b}({})", self.bits, self.bits, width = self.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn figure_3_sequence() {
        // 0 → {0, 1} → {00, 10, 01, 11} → {000, 100, 010, 110, 001, 101, 011, 111}
        let g0 = GroupId::FIRST;
        assert_eq!(g0.to_string(), "0(0)");
        let (a, b) = g0.split();
        assert_eq!(a.to_string(), "00(0)");
        assert_eq!(b.to_string(), "10(2)");
        let (a0, a1) = a.split();
        let (b0, b1) = b.split();
        assert_eq!(a0.to_string(), "000(0)");
        assert_eq!(a1.to_string(), "100(4)");
        assert_eq!(b0.to_string(), "010(2)");
        assert_eq!(b1.to_string(), "110(6)");
        // The figure's base-10 values at depth 3: 0,4,2,6,1,5,3,7.
        let (c0, c1) = g0.split().1.split().0.split();
        let _ = (c0, c1);
        let depth3: Vec<u64> = [a0, a1, b0, b1].iter().map(|g| g.value()).collect();
        assert_eq!(depth3, vec![0, 4, 2, 6]);
    }

    #[test]
    fn split_children_are_siblings_with_common_parent() {
        let g = GroupId::new(0b10, 2);
        let (c0, c1) = g.split();
        assert_eq!(c0.sibling(), Some(c1));
        assert_eq!(c1.sibling(), Some(c0));
        assert_eq!(c0.parent(), Some(g));
        assert_eq!(c1.parent(), Some(g));
    }

    #[test]
    fn first_group_has_no_relatives() {
        assert_eq!(GroupId::FIRST.sibling(), None);
        assert_eq!(GroupId::FIRST.parent(), None);
    }

    #[test]
    fn uniqueness_through_arbitrary_split_cascades() {
        // Split every leaf repeatedly: all ids at all times must be unique
        // and prefix-free.
        let mut leaves = vec![GroupId::FIRST];
        for round in 0..6 {
            let mut next = Vec::new();
            for (i, g) in leaves.iter().enumerate() {
                if (i + round) % 2 == 0 {
                    let (a, b) = g.split();
                    next.push(a);
                    next.push(b);
                } else {
                    next.push(*g);
                }
            }
            leaves = next;
            let set: HashSet<GroupId> = leaves.iter().copied().collect();
            assert_eq!(set.len(), leaves.len(), "duplicate gid after round {round}");
            for a in &leaves {
                for b in &leaves {
                    if a != b {
                        assert!(!a.is_ancestor_of(b), "{a} is an ancestor of {b}: not prefix-free");
                    }
                }
            }
        }
    }

    #[test]
    fn ancestor_relation() {
        let g = GroupId::FIRST;
        let (c0, c1) = g.split();
        let (gc0, _) = c0.split();
        assert!(g.is_ancestor_of(&c0));
        assert!(g.is_ancestor_of(&gc0));
        assert!(c0.is_ancestor_of(&gc0));
        assert!(!c1.is_ancestor_of(&gc0));
        assert!(!c0.is_ancestor_of(&c0), "not a strict ancestor of itself");
        assert!(!gc0.is_ancestor_of(&c0));
    }

    #[test]
    fn depth_quota_halves_per_split() {
        let g = GroupId::FIRST;
        assert_eq!(g.depth_quota_log2(), 0); // quota 1
        let (a, _) = g.split();
        assert_eq!(a.depth_quota_log2(), 1); // quota 1/2
        let (aa, _) = a.split();
        assert_eq!(aa.depth_quota_log2(), 2); // quota 1/4
    }

    #[test]
    #[should_panic(expected = "exceed length")]
    fn overlong_bits_rejected() {
        let _ = GroupId::new(0b100, 2);
    }
}

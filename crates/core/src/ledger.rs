//! Exact per-snode quota accounting.
//!
//! The figure-9 metric `σ̄(Qn)` and the churn driver's per-window
//! [`crate::BalanceSnapshot`] both need the quota handled by each
//! *physical* node. Recomputing that means a pass over every live vnode —
//! O(V) per sample. The ledger instead tracks each snode's exact
//! [`Quota`] incrementally: every partition [`crate::Transfer`] moves
//! `1/2^l` between two snodes (O(log S) per transfer), split/merge
//! cascades and group splits move nothing (per-vnode quotas are
//! unchanged), and creations/removals only seed or drain whole shares.
//! Sampling then costs O(S) over the snodes, with the same exact dyadic
//! arithmetic the invariant checker uses — no float drift to accumulate.

use crate::ids::SnodeId;
use domus_hashspace::Quota;
use domus_util::FxHashMap;

/// One snode's aggregate: its exact quota and its live-vnode count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnodeShare {
    /// Sum of the snode's vnode quotas (exact).
    pub quota: Quota,
    /// Live vnodes hosted by the snode.
    pub vnodes: u32,
}

/// Incremental per-snode quota ledger. Entries exist exactly for the
/// snodes hosting at least one live vnode.
///
/// Mutations go through a flat hash map (snode ids are sparse, so a
/// dense arena is out; the deterministic `Fx` hasher keeps each update
/// to one multiply-mix probe). Read-side iteration sorts by snode id, so
/// everything user-visible remains reproducible and in the same order a
/// from-scratch `BTreeMap` aggregation would yield.
#[derive(Debug, Clone, Default)]
pub struct SnodeLedger {
    map: FxHashMap<SnodeId, SnodeShare>,
}

impl SnodeLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one new (partition-less) vnode on `snode`.
    pub fn vnode_created(&mut self, snode: SnodeId) {
        self.map.entry(snode).or_insert(SnodeShare { quota: Quota::ZERO, vnodes: 0 }).vnodes += 1;
    }

    /// Unregisters a (drained) vnode of `snode`, evicting the entry when
    /// it was the snode's last.
    pub fn vnode_killed(&mut self, snode: SnodeId) {
        let share = self.map.get_mut(&snode).expect("killed vnode's snode is ledgered");
        share.vnodes -= 1;
        if share.vnodes == 0 {
            debug_assert!(share.quota.is_zero(), "last vnode of {snode} died owning quota");
            self.map.remove(&snode);
        }
    }

    /// Credits `q` to `snode`.
    pub fn gain(&mut self, snode: SnodeId, q: Quota) {
        let share = self.map.get_mut(&snode).expect("gaining snode is ledgered");
        share.quota = share.quota + q;
    }

    /// Debits `q` from `snode`.
    pub fn lose(&mut self, snode: SnodeId, q: Quota) {
        let share = self.map.get_mut(&snode).expect("losing snode is ledgered");
        share.quota = share.quota.checked_sub(q).expect("snode quota underflow");
    }

    /// Moves `q` from one snode to another (no-op when they coincide —
    /// an intra-snode partition transfer does not change `Qn`).
    pub fn move_quota(&mut self, from: SnodeId, to: SnodeId, q: Quota) {
        if from == to {
            return;
        }
        self.lose(from, q);
        self.gain(to, q);
    }

    /// Number of snodes hosting at least one live vnode — O(1).
    pub fn snode_count(&self) -> usize {
        self.map.len()
    }

    /// `(snode, share)` pairs in snode order (sorted on demand).
    pub fn iter(&self) -> impl Iterator<Item = (SnodeId, SnodeShare)> + '_ {
        let mut out: Vec<(SnodeId, SnodeShare)> =
            self.map.iter().map(|(&s, &share)| (s, share)).collect();
        out.sort_unstable_by_key(|&(s, _)| s);
        out.into_iter()
    }

    /// Per-snode quotas as `f64`, in snode order (the same order the
    /// from-scratch [`crate::stats::snode_quotas`] map yields).
    pub fn quotas_f64(&self) -> impl Iterator<Item = f64> + '_ {
        self.iter().map(|(_, s)| s.quota.to_f64())
    }

    /// `σ̄(Qn, Q̄n)` in percent over the ledgered snodes — O(S log S)
    /// (one sort, so the float accumulation order is reproducible).
    pub fn relstd_pct(&self) -> f64 {
        domus_metrics::rel_std_dev_pct(self.quotas_f64())
    }

    /// Exact total of all shares (1 whenever the DHT is non-empty).
    pub fn total(&self) -> Quota {
        self.map.values().map(|s| s.quota).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_move_kill_lifecycle() {
        let mut l = SnodeLedger::new();
        l.vnode_created(SnodeId(0));
        l.gain(SnodeId(0), Quota::ONE);
        assert_eq!(l.snode_count(), 1);
        assert!(l.total().is_one());

        l.vnode_created(SnodeId(1));
        l.move_quota(SnodeId(0), SnodeId(1), Quota::new(1, 1));
        assert!(l.total().is_one());
        let shares: Vec<_> = l.iter().collect();
        assert_eq!(shares[0].1.quota, Quota::new(1, 1));
        assert_eq!(shares[1].1.quota, Quota::new(1, 1));
        assert_eq!(l.relstd_pct(), 0.0);

        l.move_quota(SnodeId(1), SnodeId(0), Quota::new(1, 1));
        l.vnode_killed(SnodeId(1));
        assert_eq!(l.snode_count(), 1);
        assert!(l.total().is_one());
    }

    #[test]
    fn intra_snode_moves_are_free() {
        let mut l = SnodeLedger::new();
        l.vnode_created(SnodeId(3));
        l.vnode_created(SnodeId(3));
        l.gain(SnodeId(3), Quota::ONE);
        l.move_quota(SnodeId(3), SnodeId(3), Quota::new(1, 2));
        assert!(l.total().is_one());
        l.vnode_killed(SnodeId(3));
        assert_eq!(l.snode_count(), 1, "one vnode left on the snode");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn overdraining_panics() {
        let mut l = SnodeLedger::new();
        l.vnode_created(SnodeId(0));
        l.gain(SnodeId(0), Quota::new(1, 2));
        l.lose(SnodeId(0), Quota::ONE);
    }

    #[test]
    fn relstd_matches_direct_computation() {
        let mut l = SnodeLedger::new();
        for (s, num) in [(0u32, 1u128), (1, 2), (2, 1)] {
            l.vnode_created(SnodeId(s));
            l.gain(SnodeId(s), Quota::new(num, 2));
        }
        let direct = domus_metrics::rel_std_dev_pct([0.25, 0.5, 0.25]);
        assert!((l.relstd_pct() - direct).abs() < 1e-12);
    }
}

//! The streaming rebalance-event surface.
//!
//! The engines used to narrate each membership operation *after the
//! fact*, heap-allocating a [`CreateReport`]/[`RemoveReport`] per event
//! that every consumer (simulator pricing, churn replay, KV migration)
//! then re-walked. This module inverts that: operations emit typed
//! [`RebalanceEvent`]s into a caller-supplied [`RebalanceSink`] *while
//! they run*, so consumers react in-line and the hot path allocates
//! nothing per event.
//!
//! * [`NullSink`] — discard everything (pure throughput).
//! * [`CountOnly`] — tally events per kind, no payloads retained.
//! * [`CollectReport`] — reconstitute the legacy report structs; the
//!   compatibility shim [`crate::DhtEngine::create_vnode`] /
//!   [`crate::DhtEngine::remove_vnode`] is built on it, and the
//!   `sink_parity` golden test asserts the reconstruction is
//!   field-identical to the pre-redesign inline reports.
//! * [`Tee`] — fan one event stream out to two sinks.
//!
//! ```
//! use domus_core::{CountOnly, DhtConfig, DhtEngine, GlobalDht, SnodeId};
//! use domus_hashspace::HashSpace;
//!
//! let cfg = DhtConfig::new(HashSpace::new(32), 4, 1).unwrap();
//! let mut dht = GlobalDht::with_seed(cfg, 7);
//! let mut counts = CountOnly::default();
//! for s in 0..8 {
//!     dht.create_vnode_with(SnodeId(s), &mut counts).unwrap();
//! }
//! // 8 creations moved partitions and split through two power-of-two
//! // boundaries — all observed live, nothing was materialised.
//! assert!(counts.transfers > 0 && counts.partition_splits > 0);
//! ```

use crate::engine::{CreateOutcome, CreateReport, GroupSplit, RemoveOutcome, RemoveReport};
use crate::group_id::GroupId;
use crate::ids::{SnodeId, VnodeId};
use crate::ledger::SnodeLedger;
use crate::Transfer;
use domus_hashspace::Quota;

/// One rebalancement step, emitted while a membership operation runs.
///
/// The variants cover everything the legacy reports recorded — plus the
/// level-harmonisation splits of group merges, which the old
/// [`RemoveReport`] silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebalanceEvent {
    /// One partition changed hands (greedy handover, drain, co-location).
    Transfer(Transfer),
    /// A split cascade binary-split `count` partitions (§2.5).
    PartitionSplit {
        /// Partitions split (pre-split count).
        count: u64,
    },
    /// A merge cascade binary-merged `pairs` sibling pairs (deletion
    /// extension; the inverse of the split cascade).
    PartitionMerge {
        /// Sibling pairs merged.
        pairs: u64,
    },
    /// A full group split into two `Vmin`-member halves (§3.7).
    GroupSplit(GroupSplit),
    /// Two sibling groups re-fused into their parent identifier
    /// (deletion extension).
    GroupMerge {
        /// The 0-prefixed child that merged.
        left: GroupId,
        /// The 1-prefixed child that merged.
        right: GroupId,
        /// The parent identifier the pair fused into.
        parent: GroupId,
    },
    /// A vnode was internally migrated between groups to make a removal
    /// legal: the `old` handle was retired and re-created as `new` under
    /// the same snode.
    VnodeMigrated {
        /// The retired handle.
        old: VnodeId,
        /// The replacement handle.
        new: VnodeId,
    },
    /// The victim-selection lookup of the local approach (§3.6): a random
    /// point routed to the vnode whose group contains the creation.
    LookupProbe {
        /// The random point `r ∈ R_h`.
        point: u64,
        /// The vnode owning the partition containing `r`.
        victim: VnodeId,
    },
}

/// A consumer of [`RebalanceEvent`]s.
///
/// Engines call [`RebalanceSink::event`] once per rebalancement step, in
/// the exact order the steps happen. Implementations must not call back
/// into the engine (it is mutably borrowed for the whole operation).
pub trait RebalanceSink {
    /// Observes one event.
    fn event(&mut self, e: RebalanceEvent);
}

impl<S: RebalanceSink + ?Sized> RebalanceSink for &mut S {
    fn event(&mut self, e: RebalanceEvent) {
        (**self).event(e);
    }
}

/// Discards every event — the allocation-free hot path for replay loops
/// that only need the operation's outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl RebalanceSink for NullSink {
    fn event(&mut self, _: RebalanceEvent) {}
}

/// Tallies events per kind without retaining payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountOnly {
    /// `Transfer` events seen.
    pub transfers: u64,
    /// Partitions split (sum of `PartitionSplit::count`).
    pub partition_splits: u64,
    /// Sibling pairs merged (sum of `PartitionMerge::pairs`).
    pub partition_merges: u64,
    /// `GroupSplit` events seen.
    pub group_splits: u64,
    /// `GroupMerge` events seen.
    pub group_merges: u64,
    /// `VnodeMigrated` events seen.
    pub migrations: u64,
    /// `LookupProbe` events seen.
    pub probes: u64,
}

impl CountOnly {
    /// Sum of every counter — a cheap "how much rebalancement happened"
    /// scalar (cascade counters contribute their partition counts).
    pub fn total(&self) -> u64 {
        self.transfers
            + self.partition_splits
            + self.partition_merges
            + self.group_splits
            + self.group_merges
            + self.migrations
            + self.probes
    }
}

impl RebalanceSink for CountOnly {
    fn event(&mut self, e: RebalanceEvent) {
        match e {
            RebalanceEvent::Transfer(_) => self.transfers += 1,
            RebalanceEvent::PartitionSplit { count } => self.partition_splits += count,
            RebalanceEvent::PartitionMerge { pairs } => self.partition_merges += pairs,
            RebalanceEvent::GroupSplit(_) => self.group_splits += 1,
            RebalanceEvent::GroupMerge { .. } => self.group_merges += 1,
            RebalanceEvent::VnodeMigrated { .. } => self.migrations += 1,
            RebalanceEvent::LookupProbe { .. } => self.probes += 1,
        }
    }
}

/// Forwards every event to both sinks, in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: RebalanceSink, B: RebalanceSink> RebalanceSink for Tee<A, B> {
    fn event(&mut self, e: RebalanceEvent) {
        self.0.event(e);
        self.1.event(e);
    }
}

/// Reconstitutes the legacy report structs from the event stream.
///
/// The compatibility shim ([`crate::DhtEngine::create_vnode`] /
/// [`crate::DhtEngine::remove_vnode`]) runs every operation through one
/// of these; call [`CollectReport::clear`] between operations to reuse
/// the transfer buffer's capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectReport {
    lookup_point: Option<u64>,
    victim: Option<VnodeId>,
    group_split: Option<GroupSplit>,
    partition_splits: u64,
    partition_merges: u64,
    group_merge: Option<(GroupId, GroupId, GroupId)>,
    migrated: Option<(VnodeId, VnodeId)>,
    transfers: Vec<Transfer>,
}

impl CollectReport {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The transfers observed so far, in emission order.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Resets for the next operation, keeping the transfer buffer's
    /// capacity.
    pub fn clear(&mut self) {
        self.lookup_point = None;
        self.victim = None;
        self.group_split = None;
        self.partition_splits = 0;
        self.partition_merges = 0;
        self.group_merge = None;
        self.migrated = None;
        self.transfers.clear();
    }

    /// Assembles the legacy [`CreateReport`] for a finished creation.
    pub fn into_create_report(self, outcome: &CreateOutcome) -> CreateReport {
        CreateReport {
            group: outcome.group,
            lookup_point: self.lookup_point,
            victim: self.victim,
            group_split: self.group_split,
            partition_splits: self.partition_splits,
            transfers: self.transfers,
            group_size_after: outcome.group_size_after,
        }
    }

    /// Assembles the legacy [`RemoveReport`] for a finished removal.
    ///
    /// Level-harmonisation `PartitionSplit`s (emitted by group merges)
    /// are dropped, exactly as the legacy report dropped them.
    pub fn into_remove_report(self, outcome: &RemoveOutcome) -> RemoveReport {
        RemoveReport {
            group: outcome.group,
            transfers: self.transfers,
            partition_merges: self.partition_merges,
            group_merge: self.group_merge,
            migrated: self.migrated,
        }
    }
}

impl RebalanceSink for CollectReport {
    fn event(&mut self, e: RebalanceEvent) {
        match e {
            RebalanceEvent::Transfer(t) => self.transfers.push(t),
            RebalanceEvent::PartitionSplit { count } => self.partition_splits += count,
            RebalanceEvent::PartitionMerge { pairs } => self.partition_merges += pairs,
            RebalanceEvent::GroupSplit(s) => self.group_split = Some(s),
            RebalanceEvent::GroupMerge { left, right, parent } => {
                self.group_merge = Some((left, right, parent));
            }
            RebalanceEvent::VnodeMigrated { old, new } => self.migrated = Some((old, new)),
            RebalanceEvent::LookupProbe { point, victim } => {
                self.lookup_point = Some(point);
                self.victim = Some(victim);
            }
        }
    }
}

/// Backend-implementation helper: forwards events to a caller sink while
/// streaming the engine's [`SnodeLedger`] update for every transfer.
///
/// Consecutive transfers between the same snode pair are coalesced into
/// one exact [`Quota`] move (the run structure drains, cascades and CH
/// claims naturally produce), so the ledger is touched once per run —
/// the same cost profile the materialised-list replay had before the
/// streaming redesign. The pending run is flushed on drop.
pub struct LedgeredSink<'a> {
    out: &'a mut dyn RebalanceSink,
    ledger: &'a mut SnodeLedger,
    run: Option<(SnodeId, SnodeId, Quota)>,
}

impl<'a> LedgeredSink<'a> {
    /// Wraps a caller sink and the ledger to stream into.
    pub fn new(out: &'a mut dyn RebalanceSink, ledger: &'a mut SnodeLedger) -> Self {
        Self { out, ledger, run: None }
    }

    /// Emits one transfer, moving its quota from the donor's hosting
    /// snode to the receiver's.
    pub fn transfer(&mut self, t: Transfer, from_snode: SnodeId, to_snode: SnodeId) {
        match &mut self.run {
            Some((f, s, q)) if *f == from_snode && *s == to_snode => {
                *q = *q + t.partition.quota();
            }
            run => {
                if let Some((f, s, q)) = run.take() {
                    self.ledger.move_quota(f, s, q);
                }
                *run = Some((from_snode, to_snode, t.partition.quota()));
            }
        }
        self.out.event(RebalanceEvent::Transfer(t));
    }

    /// Applies the pending coalesced run to the ledger. Called
    /// automatically on drop; call explicitly before reading the ledger
    /// mid-operation.
    pub fn flush(&mut self) {
        if let Some((f, s, q)) = self.run.take() {
            self.ledger.move_quota(f, s, q);
        }
    }
}

impl Drop for LedgeredSink<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domus_hashspace::Partition;

    fn t(level: u32, index: u64, from: u32, to: u32) -> Transfer {
        Transfer { partition: Partition::new(level, index), from: VnodeId(from), to: VnodeId(to) }
    }

    #[test]
    fn tee_forwards_to_both_in_order() {
        let mut tee = Tee(CountOnly::default(), CollectReport::new());
        tee.event(RebalanceEvent::Transfer(t(3, 0, 0, 1)));
        tee.event(RebalanceEvent::PartitionSplit { count: 4 });
        tee.event(RebalanceEvent::Transfer(t(3, 1, 0, 1)));
        assert_eq!(tee.0.transfers, 2);
        assert_eq!(tee.0.partition_splits, 4);
        assert_eq!(tee.1.transfers(), &[t(3, 0, 0, 1), t(3, 1, 0, 1)]);
    }

    #[test]
    fn collect_report_roundtrips_every_field() {
        let mut c = CollectReport::new();
        c.event(RebalanceEvent::LookupProbe { point: 99, victim: VnodeId(4) });
        c.event(RebalanceEvent::GroupSplit(GroupSplit {
            parent: GroupId::FIRST,
            child0: GroupId::FIRST.split().0,
            child1: GroupId::FIRST.split().1,
        }));
        c.event(RebalanceEvent::PartitionSplit { count: 8 });
        c.event(RebalanceEvent::Transfer(t(4, 2, 1, 7)));
        let rep = c.into_create_report(&CreateOutcome {
            vnode: VnodeId(7),
            group: Some(GroupId::FIRST.split().0),
            group_size_after: 3,
        });
        assert_eq!(rep.lookup_point, Some(99));
        assert_eq!(rep.victim, Some(VnodeId(4)));
        assert_eq!(rep.partition_splits, 8);
        assert_eq!(rep.transfers, vec![t(4, 2, 1, 7)]);
        assert_eq!(rep.group_size_after, 3);
        assert!(rep.group_split.is_some());
    }

    #[test]
    fn clear_keeps_capacity_and_resets_fields() {
        let mut c = CollectReport::new();
        for i in 0..64 {
            c.event(RebalanceEvent::Transfer(t(8, i, 0, 1)));
        }
        c.event(RebalanceEvent::PartitionMerge { pairs: 2 });
        let cap = c.transfers.capacity();
        c.clear();
        assert_eq!(c, CollectReport::new());
        assert_eq!(c.transfers.capacity(), cap, "clear must keep the buffer");
    }

    #[test]
    fn null_sink_ignores_everything() {
        let mut n = NullSink;
        n.event(RebalanceEvent::PartitionMerge { pairs: 5 });
        n.event(RebalanceEvent::VnodeMigrated { old: VnodeId(0), new: VnodeId(1) });
        assert_eq!(n, NullSink);
    }
}

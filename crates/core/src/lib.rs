//! # domus-core
//!
//! A cluster-oriented Distributed Hash Table with dynamic balancement
//! across heterogeneous nodes — a from-scratch implementation of
//!
//! > J. Rufino, A. Alves, J. Exposto, A. Pina, *"A cluster oriented model
//! > for dynamically balanced DHTs"*, IPDPS 2004,
//!
//! covering both the **global approach** (the base model of the authors'
//! earlier PDCN'04 paper, summarised in §2) and the **local approach**
//! (this paper's contribution, §3), plus a deletion extension that makes
//! the model fully elastic.
//!
//! ## Model in one paragraph
//!
//! The hash range `R_h = [0, 2^Bh)` is tiled by power-of-two-sized
//! *partitions*; *vnodes* own between `Pmin` and `2·Pmin` partitions each
//! and *snodes* (one per cluster node) host vnodes in proportion to the
//! resources the node enrolls. Creating a vnode triggers a greedy handover
//! of partitions from the most-loaded vnodes — globally (one GPDR, serial,
//! exact) or within a bounded *group* of `Vmin..2·Vmin` vnodes (LPDRs,
//! parallel, slightly less exact). Groups split when full, inheriting
//! binary-prefix identifiers, so the structure needs no central
//! coordination.
//!
//! ## Crate map
//!
//! | Module | Paper section | Contents |
//! |--------|---------------|----------|
//! | [`config`] | §2.2, §3.3, §4.1.2 | `Pmin`/`Vmin` parameters and policies |
//! | [`ids`] | §2.1 | snode/vnode identifiers, canonical names |
//! | [`group_id`] | §3.7.1 | decentralized binary-prefix group identifiers |
//! | [`record`] | §2.1.4, §3.2 | GPDR/LPDR tables |
//! | [`balance`] | §2.5 | the greedy reassignment kernel + cascades |
//! | [`global`] | §2 | [`GlobalDht`] |
//! | [`local`] | §3 | [`LocalDht`], group split, victim selection |
//! | `deletion` | extension | vnode removal, group merges, migration |
//! | [`cluster`] | §1, §2.1.2 | heterogeneous enrollment on any engine |
//! | [`invariants`] | §2.2, §3.3 | exhaustive invariant checker |
//! | [`engine`] | — | the [`DhtEngine`] trait + operation reports |
//! | [`serve`] | — | the concurrent serving plane: epoch snapshots |
//! | [`stats`] | §4.3 | per-snode quota metrics |
//!
//! ## Quick start
//!
//! ```
//! use domus_core::{DhtConfig, LocalDht, DhtEngine, SnodeId};
//! use domus_hashspace::HashSpace;
//!
//! // The paper's reference parameterization is Pmin = Vmin = 32; use a
//! // smaller DHT here to keep the doctest fast.
//! let cfg = DhtConfig::new(HashSpace::new(32), 8, 4).unwrap();
//! let mut dht = LocalDht::with_seed(cfg, 0xD0);
//!
//! // Three cluster nodes enroll four vnodes each.
//! for round in 0..4 {
//!     for snode in 0..3 {
//!         dht.create_vnode(SnodeId(snode)).unwrap();
//!     }
//!     let _ = round;
//! }
//!
//! // Every point of the hash range routes to exactly one vnode...
//! let (partition, owner) = dht.lookup(0xDEAD_BEEF).unwrap();
//! assert!(dht.partitions_of(owner).unwrap().contains(&partition));
//! // ...and the quality of balancement is the paper's σ̄(Qv) metric.
//! assert!(dht.vnode_quota_relstd_pct() < 40.0);
//! # dht.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod cluster;
pub mod config;
mod deletion;
pub mod engine;
pub mod errors;
pub mod global;
pub mod group_id;
pub mod ids;
pub mod invariants;
pub mod ledger;
pub mod local;
pub mod record;
pub mod serve;
pub mod sink;
pub mod state;
pub mod stats;

pub use cluster::{Cluster, EnrollmentPolicy};
pub use config::{ContainerChoice, DhtConfig, SplitSelection, VictimPartitionPolicy};
pub use engine::{
    BatchOutcome, CreateOutcome, CreateReport, DhtEngine, DhtOp, FailOutcome, GroupSplit,
    RejoinOutcome, RemoveOutcome, RemoveReport, Transfer,
};
pub use errors::DhtError;
pub use global::GlobalDht;
pub use group_id::GroupId;
pub use ids::{CanonicalName, SnodeId, VnodeId};
pub use invariants::InvariantViolation;
pub use ledger::{SnodeLedger, SnodeShare};
pub use local::{ideal_group_count, LocalDht};
pub use record::{Pdr, PdrEntry};
pub use serve::{
    EngineSnapshot, OwnerSpan, RouteCounters, RouteStats, SnapshotBuilder, SnapshotCell, SnodeLoad,
};
pub use sink::{
    CollectReport, CountOnly, LedgeredSink, NullSink, RebalanceEvent, RebalanceSink, Tee,
};
pub use stats::{snode_count, snode_quota_relstd_pct, snode_quotas, BalanceSnapshot};

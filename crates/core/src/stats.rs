//! Engine-independent statistics helpers.

use crate::engine::DhtEngine;
use crate::ids::SnodeId;
use domus_metrics::rel_std_dev_pct;
use std::collections::BTreeMap;

/// Per-snode quotas: the sum of each snode's vnode quotas, keyed by snode.
pub fn snode_quotas<E: DhtEngine + ?Sized>(dht: &E) -> BTreeMap<SnodeId, f64> {
    let mut out: BTreeMap<SnodeId, f64> = BTreeMap::new();
    dht.for_each_vnode(&mut |v| {
        let s = dht.snode_of(v).expect("live vnode has an snode");
        *out.entry(s).or_insert(0.0) += dht.quota_of(v).expect("live vnode has a quota");
    });
    out
}

/// `σ̄(Qn, Q̄n)` in percent over physical nodes — the figure-9 comparison
/// metric ("we define Qn as the quota of R_h handled by each physical node").
pub fn snode_quota_relstd_pct<E: DhtEngine + ?Sized>(dht: &E) -> f64 {
    rel_std_dev_pct(snode_quotas(dht).into_values())
}

/// Number of distinct physical nodes currently hosting vnodes.
pub fn snode_count<E: DhtEngine + ?Sized>(dht: &E) -> usize {
    snode_quotas(dht).len()
}

/// A point-in-time balance/shape sample of an engine — everything the
/// churn driver records per observation window, gathered in **one pass**
/// over the live vnodes (cheap enough to sample at a high cadence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceSnapshot {
    /// Live vnodes `V`.
    pub vnodes: usize,
    /// Live groups `G` (1 for the global approach and CH).
    pub groups: usize,
    /// Distinct physical nodes hosting at least one vnode.
    pub snodes: usize,
    /// The paper's quality metric `σ̄(Qv, Q̄v)` in percent.
    pub vnode_relstd_pct: f64,
    /// `σ̄(Qn, Q̄n)` in percent over physical nodes.
    pub snode_relstd_pct: f64,
    /// Peak-to-ideal ratio `max(Qv) · V`: the worst vnode's load relative
    /// to a perfectly balanced DHT (1.0 = perfect). This is the quantity a
    /// capacity planner provisions for.
    pub max_quota_over_ideal: f64,
}

impl BalanceSnapshot {
    /// Captures the snapshot from a live engine with one generic pass
    /// over the vnodes — the O(V) *oracle*. Hot-cadence callers (the
    /// churn driver's window sampling) should use
    /// [`DhtEngine::balance_snapshot`], which the engines override with
    /// their incremental accumulators; the property suite asserts the two
    /// agree.
    pub fn capture<E: DhtEngine + ?Sized>(dht: &E) -> Self {
        let mut per_snode: BTreeMap<SnodeId, f64> = BTreeMap::new();
        let mut quotas = Vec::with_capacity(dht.vnode_count());
        let mut max_q = 0.0f64;
        dht.for_each_vnode(&mut |v| {
            let q = dht.quota_of(v).expect("live vnode has a quota");
            let s = dht.snode_of(v).expect("live vnode has an snode");
            *per_snode.entry(s).or_insert(0.0) += q;
            if q > max_q {
                max_q = q;
            }
            quotas.push(q);
        });
        Self {
            vnodes: quotas.len(),
            groups: dht.group_count(),
            snodes: per_snode.len(),
            vnode_relstd_pct: rel_std_dev_pct(quotas.iter().copied()),
            snode_relstd_pct: rel_std_dev_pct(per_snode.into_values()),
            max_quota_over_ideal: max_q * quotas.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DhtConfig;
    use crate::global::GlobalDht;
    use crate::local::LocalDht;
    use domus_hashspace::HashSpace;

    #[test]
    fn snode_quotas_sum_to_one() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
        let mut dht = LocalDht::with_seed(cfg, 3);
        for i in 0..20u32 {
            dht.create_vnode(SnodeId(i % 5)).unwrap();
        }
        let q = snode_quotas(&dht);
        assert_eq!(q.len(), 5);
        let total: f64 = q.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balance_snapshot_agrees_with_piecewise_metrics() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
        let mut dht = LocalDht::with_seed(cfg, 7);
        for i in 0..24u32 {
            dht.create_vnode(SnodeId(i % 6)).unwrap();
        }
        let snap = BalanceSnapshot::capture(&dht);
        assert_eq!(snap.vnodes, 24);
        assert_eq!(snap.groups, dht.group_count());
        assert_eq!(snap.snodes, 6);
        assert!((snap.vnode_relstd_pct - dht.vnode_quota_relstd_pct()).abs() < 1e-9);
        assert!((snap.snode_relstd_pct - snode_quota_relstd_pct(&dht)).abs() < 1e-9);
        let max_q = dht.quotas().into_iter().fold(0.0f64, f64::max);
        assert!((snap.max_quota_over_ideal - max_q * 24.0).abs() < 1e-9);
        assert!(snap.max_quota_over_ideal >= 1.0 - 1e-9, "peak load is never below ideal");
        assert_eq!(snode_count(&dht), 6);
    }

    #[test]
    fn one_vnode_per_snode_matches_vnode_metric() {
        // The figure-9 setup: homogeneous nodes, one vnode per snode —
        // σ̄(Qn) coincides with σ̄(Qv).
        let cfg = DhtConfig::new(HashSpace::new(32), 8, 1).unwrap();
        let mut dht = GlobalDht::with_seed(cfg, 5);
        for i in 0..17u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
        }
        let a = snode_quota_relstd_pct(&dht);
        let b = dht.vnode_quota_relstd_pct();
        assert!((a - b).abs() < 1e-9, "σ̄(Qn)={a} σ̄(Qv)={b}");
    }
}

//! Engine-independent statistics helpers.

use crate::engine::DhtEngine;
use crate::ids::SnodeId;
use domus_metrics::rel_std_dev_pct;
use std::collections::BTreeMap;

/// Per-snode quotas: the sum of each snode's vnode quotas, keyed by snode.
pub fn snode_quotas<E: DhtEngine>(dht: &E) -> BTreeMap<SnodeId, f64> {
    let mut out: BTreeMap<SnodeId, f64> = BTreeMap::new();
    for v in dht.vnodes() {
        let s = dht.snode_of(v).expect("live vnode has an snode");
        *out.entry(s).or_insert(0.0) += dht.quota_of(v).expect("live vnode has a quota");
    }
    out
}

/// `σ̄(Qn, Q̄n)` in percent over physical nodes — the figure-9 comparison
/// metric ("we define Qn as the quota of R_h handled by each physical node").
pub fn snode_quota_relstd_pct<E: DhtEngine>(dht: &E) -> f64 {
    rel_std_dev_pct(snode_quotas(dht).into_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DhtConfig;
    use crate::global::GlobalDht;
    use crate::local::LocalDht;
    use domus_hashspace::HashSpace;

    #[test]
    fn snode_quotas_sum_to_one() {
        let cfg = DhtConfig::new(HashSpace::new(32), 4, 4).unwrap();
        let mut dht = LocalDht::with_seed(cfg, 3);
        for i in 0..20u32 {
            dht.create_vnode(SnodeId(i % 5)).unwrap();
        }
        let q = snode_quotas(&dht);
        assert_eq!(q.len(), 5);
        let total: f64 = q.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_vnode_per_snode_matches_vnode_metric() {
        // The figure-9 setup: homogeneous nodes, one vnode per snode —
        // σ̄(Qn) coincides with σ̄(Qv).
        let cfg = DhtConfig::new(HashSpace::new(32), 8, 1).unwrap();
        let mut dht = GlobalDht::with_seed(cfg, 5);
        for i in 0..17u32 {
            dht.create_vnode(SnodeId(i)).unwrap();
        }
        let a = snode_quota_relstd_pct(&dht);
        let b = dht.vnode_quota_relstd_pct();
        assert!((a - b).abs() < 1e-9, "σ̄(Qn)={a} σ̄(Qv)={b}");
    }
}

//! **FIG6** — Figure 6 of the paper: degradation of `σ̄(Qv)` as `Vmin`
//! shrinks, at fixed `Pmin = 32`, for `Vmin ∈ {8, 16, 32, 64, 128, 256,
//! 512}`.
//!
//! Expected shape: monotone degradation with smaller `Vmin`; the
//! `Vmin = 512` curve coincides with the global approach because `Vmax =
//! 1024` means one group for the whole run (§4.2) — the harness overlays
//! the actual global-approach curve to make the coincidence visible.

use crate::output::{canonical_samples, print_plot, sample_points, write_csv};
use crate::runner::{average_runs, global_growth, local_growth};
use crate::{Ctx, ExpReport};
use domus_core::DhtConfig;
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};

/// The fixed fine-grain parameter of figure 6.
pub const PMIN: u64 = 32;

/// Runs the `Vmin` sweep plus the global-approach reference.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("FIG6");
    let space = HashSpace::full();
    let vmins: Vec<u64> =
        [8u64, 16, 32, 64, 128, 256, 512].into_iter().filter(|&v| v * 2 <= ctx.n as u64).collect();

    let mut curves = Vec::new();
    for &vmin in &vmins {
        let cfg = DhtConfig::new(space, PMIN, vmin).expect("powers of two");
        let label = format!("fig6-{vmin}");
        curves.push(
            average_runs(
                &format!("Vmin={vmin}"),
                &label,
                &ctx.seeds,
                ctx.runs,
                ctx.n,
                move |seed| local_growth(cfg, ctx.n, seed).iter().map(|g| g.vnode_relstd).collect(),
            )
            .mean_series(),
        );
    }
    // Global-approach overlay (same Pmin). Deterministic given counts, so a
    // single run suffices, but averaging keeps the pipeline uniform.
    let gcfg = DhtConfig::new(space, PMIN, 1).expect("powers of two");
    let global = average_runs(
        "global approach",
        "fig6-global",
        &ctx.seeds,
        ctx.runs.min(4),
        ctx.n,
        move |seed| global_growth(gcfg, ctx.n, seed),
    )
    .mean_series();
    curves.push(global.clone());

    let path = write_csv(ctx, "fig6_sigma_qv_vmin_sweep", "vnodes", &curves);
    rep.note(format!("csv: {}", path.display()));

    print_plot(
        "Figure 6 — σ̄(Qv) when Pmin = 32, Vmin sweep",
        &curves,
        "quality of the balancement (%)",
        "overall number of vnodes",
        Some(25.0),
    );

    let samples = canonical_samples(ctx.n);
    let headers: Vec<String> =
        std::iter::once("V".to_string()).chain(curves.iter().map(|c| c.name.clone())).collect();
    let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &x in &samples {
        let mut row = vec![format!("{x:.0}")];
        for c in &curves {
            row.push(num(sample_points(c, &[x]).first().map(|&(_, y)| y).unwrap_or(f64::NAN), 2));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    // Degradation summary + the Vmin=512 ≡ global coincidence.
    for (vmin, c) in vmins.iter().zip(&curves) {
        rep.note(format!(
            "Vmin={vmin}: σ̄ at V={} is {:.2}%",
            ctx.n,
            c.last_y().unwrap_or(f64::NAN)
        ));
    }
    if vmins.contains(&(ctx.n as u64 / 2)) {
        let big = &curves[vmins.len() - 1];
        let max_gap =
            big.y.iter().zip(&global.y).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        rep.note(format!(
            "largest |Vmin={} − global| gap over the whole run: {:.3} pp (paper: curves coincide)",
            ctx.n / 2,
            max_gap
        ));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{global_growth, local_growth};

    #[test]
    fn single_group_vmin_matches_global_exactly() {
        // At quick scale: Vmin = n/2 keeps one group; the σ̄ series must be
        // identical to the global approach step for step.
        let space = HashSpace::full();
        let n = 96;
        let local_cfg = DhtConfig::new(space, PMIN, 64).unwrap();
        let global_cfg = DhtConfig::new(space, PMIN, 1).unwrap();
        let a: Vec<f64> = local_growth(local_cfg, n, 5).iter().map(|g| g.vnode_relstd).collect();
        let b = global_growth(global_cfg, n, 99);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 1e-9, "V={}: local {x} global {y}", i + 1);
        }
    }

    #[test]
    fn smaller_vmin_degrades_quality() {
        let ctx =
            Ctx { runs: 6, n: 128, ..Ctx::quick(std::env::temp_dir().join("domus-fig6-test")) };
        let space = HashSpace::full();
        let end = |vmin: u64| {
            let cfg = DhtConfig::new(space, PMIN, vmin).unwrap();
            average_runs("t", &format!("t{vmin}"), &ctx.seeds, ctx.runs, ctx.n, move |seed| {
                local_growth(cfg, ctx.n, seed).iter().map(|g| g.vnode_relstd).collect()
            })
            .mean_series()
            .last_y()
            .unwrap()
        };
        let coarse = end(8);
        let fine = end(32);
        assert!(coarse > fine, "Vmin=8 ({coarse:.2}) must be worse than Vmin=32 ({fine:.2})");
    }
}

//! Multi-run growth simulations, parallelised over runs.
//!
//! §4 of the paper: "In all simulations performed, 1024 vnodes were
//! consecutively created and, after the creation of each vnode, the metric
//! under analysis was measured. All the results presented are averages of
//! 100 runs of the same test, in order to account for the random choice of
//! a victim group." This module is that harness: one seeded engine per
//! `(experiment, run)` pair, per-creation sampling, Welford aggregation
//! across runs on worker threads.

use domus_ch::ChRing;
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use domus_metrics::series::MultiRunSeries;
use domus_util::SeedSequence;

/// Everything sampled after one creation in a local-approach run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GrowthSample {
    /// `σ̄(Qv)` percent.
    pub vnode_relstd: f64,
    /// Live group count `G_real`.
    pub groups: f64,
    /// `σ̄(Qg)` percent (against ideal `1/G`).
    pub group_relstd: f64,
}

/// Grows a local-approach DHT to `n` vnodes, sampling after each creation.
pub fn local_growth(cfg: DhtConfig, n: usize, seed: u64) -> Vec<GrowthSample> {
    let mut dht = LocalDht::with_seed(cfg, seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        dht.create_vnode(SnodeId(i as u32)).expect("growth cannot fail at these scales");
        out.push(GrowthSample {
            vnode_relstd: dht.vnode_quota_relstd_pct(),
            groups: dht.group_count() as f64,
            group_relstd: dht.group_quota_relstd_pct(),
        });
    }
    out
}

/// Grows a global-approach DHT to `n` vnodes, sampling `σ̄(Qv)`.
pub fn global_growth(cfg: DhtConfig, n: usize, seed: u64) -> Vec<f64> {
    let mut dht = GlobalDht::with_seed(cfg, seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        dht.create_vnode(SnodeId(i as u32)).expect("growth cannot fail at these scales");
        out.push(dht.vnode_quota_relstd_pct());
    }
    out
}

/// Grows a consistent-hashing ring to `n` nodes with `k` virtual servers
/// each, sampling `σ̄(Qn)` after each join.
pub fn ch_growth(space: HashSpace, k: u32, n: usize, seed: u64) -> Vec<f64> {
    let mut ring = ChRing::with_seed(space, k, seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        ring.join();
        out.push(ring.node_quota_relstd_pct());
    }
    out
}

/// Averages `runs` seeded executions of `one_run` over an x grid of
/// `1..=n`, fanning runs out across worker threads (run `r` uses the
/// deterministic stream `seeds.stream(label, r)` — results are independent
/// of the thread count).
pub fn average_runs<F>(
    name: &str,
    label: &str,
    seeds: &SeedSequence,
    runs: u64,
    n: usize,
    one_run: F,
) -> MultiRunSeries
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(runs as usize)
        .max(1);
    let next = std::sync::atomic::AtomicU64::new(0);
    let mut partials: Vec<MultiRunSeries> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let one_run = &one_run;
                scope.spawn(move || {
                    let mut acc = MultiRunSeries::over_counts(name, n);
                    loop {
                        let r = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if r >= runs {
                            break;
                        }
                        let seed = derive_seed(seeds, label, r);
                        acc.record_run(&one_run(seed));
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("runner thread panicked"));
        }
    });
    let mut total = MultiRunSeries::over_counts(name, n);
    for p in &partials {
        total.merge(p);
    }
    total
}

/// Derives the run seed for `(label, run_index)` from the experiment master
/// seed — one u64 drawn from the dedicated stream.
pub fn derive_seed(seeds: &SeedSequence, label: &str, run: u64) -> u64 {
    use domus_util::DomusRng;
    seeds.stream(label, run).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DhtConfig {
        DhtConfig::new(HashSpace::new(32), 4, 4).unwrap()
    }

    #[test]
    fn local_growth_samples_every_step() {
        let s = local_growth(small_cfg(), 50, 1);
        assert_eq!(s.len(), 50);
        assert_eq!(s[0].vnode_relstd, 0.0, "a single vnode is perfectly balanced");
        assert_eq!(s[0].groups, 1.0);
        assert!(s.iter().all(|x| x.vnode_relstd.is_finite()));
    }

    #[test]
    fn global_growth_is_zero_at_powers_of_two() {
        let s = global_growth(small_cfg(), 64, 2);
        for v in [1usize, 2, 4, 8, 16, 32, 64] {
            assert_eq!(s[v - 1], 0.0, "V={v}");
        }
    }

    #[test]
    fn averaging_is_thread_schedule_stable() {
        // Per-run results are seed-determined; only the Welford merge order
        // varies with scheduling, so repeated means agree to ~1 ulp.
        let seeds = SeedSequence::new(42);
        let cfg = small_cfg();
        let a = average_runs("t", "x", &seeds, 8, 30, |s| {
            local_growth(cfg, 30, s).iter().map(|g| g.vnode_relstd).collect()
        });
        let b = average_runs("t", "x", &seeds, 8, 30, |s| {
            local_growth(cfg, 30, s).iter().map(|g| g.vnode_relstd).collect()
        });
        for (x, y) in a.mean_series().y.iter().zip(&b.mean_series().y) {
            assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
        assert_eq!(a.runs(), 8);
    }

    #[test]
    fn ch_growth_shrinks_with_more_points() {
        let space = HashSpace::full();
        let rough = ch_growth(space, 8, 64, 5);
        let fine = ch_growth(space, 64, 64, 5);
        assert!(fine.last().unwrap() < rough.last().unwrap());
    }
}

//! **FIG9** — Figure 9 of the paper: comparison with Consistent Hashing.
//!
//! Homogeneous physical nodes join one at a time (1 → 1024); the metric is
//! `σ̄(Qn)` over node quotas. For the local approach there is one vnode per
//! snode, so `σ̄(Qn) = σ̄(Qv)`. CH is run with 32 and 64 virtual servers per
//! node (the model's `Pv` fluctuates in `[32, 64]`, so both ends are
//! shown); the local approach with `Pmin = 32` sweeps
//! `Vmin ∈ {32, 64, 128, 256, 512}`.
//!
//! Expected shape: CH sits near `100/√k`% (≈17.7% for k = 32, ≈12.5% for
//! k = 64); the local approach beats both for every swept `Vmin`, more so
//! for larger `Vmin` — while small `Vmin` narrows the margin, which is the
//! paper's "choose Vmin carefully" conclusion.

use crate::output::{canonical_samples, print_plot, sample_points, write_csv};
use crate::runner::{average_runs, ch_growth, local_growth};
use crate::{Ctx, ExpReport};
use domus_core::DhtConfig;
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};

/// Fixed fine-grain parameter for the local curves.
pub const PMIN: u64 = 32;

/// Runs the comparison.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("FIG9");
    let space = HashSpace::full();
    let mut curves = Vec::new();

    for k in [32u32, 64] {
        let label = format!("fig9-ch-{k}");
        curves.push(
            average_runs(
                &format!("CH, {k} partitions/node"),
                &label,
                &ctx.seeds,
                ctx.runs,
                ctx.n,
                move |seed| ch_growth(space, k, ctx.n, seed),
            )
            .mean_series(),
        );
    }

    let vmins: Vec<u64> =
        [32u64, 64, 128, 256, 512].into_iter().filter(|&v| v * 2 <= ctx.n as u64).collect();
    for &vmin in &vmins {
        let cfg = DhtConfig::new(space, PMIN, vmin).expect("powers of two");
        let label = format!("fig9-local-{vmin}");
        curves.push(
            average_runs(
                &format!("local approach, Vmin={vmin}"),
                &label,
                &ctx.seeds,
                ctx.runs,
                ctx.n,
                move |seed| {
                    // One vnode per snode: each growth step IS a node join.
                    local_growth(cfg, ctx.n, seed).iter().map(|g| g.vnode_relstd).collect()
                },
            )
            .mean_series(),
        );
    }

    let path = write_csv(ctx, "fig9_ch_comparison", "nodes", &curves);
    rep.note(format!("csv: {}", path.display()));

    print_plot(
        "Figure 9 — σ̄(Qn): local approach vs Consistent Hashing",
        &curves,
        "quality of the balancement (%)",
        "overall number of cluster nodes",
        Some(20.0),
    );

    let samples = canonical_samples(ctx.n);
    let headers: Vec<String> =
        std::iter::once("N".to_string()).chain(curves.iter().map(|c| c.name.clone())).collect();
    let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &x in &samples {
        let mut row = vec![format!("{x:.0}")];
        for c in &curves {
            row.push(num(sample_points(c, &[x]).first().map(|&(_, y)| y).unwrap_or(f64::NAN), 2));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    // Who wins at the end state?
    let ch32 = curves[0].last_y().unwrap_or(f64::NAN);
    let ch64 = curves[1].last_y().unwrap_or(f64::NAN);
    rep.note(format!(
        "CH end-state σ̄(Qn): k=32 → {ch32:.2}% (theory 100/√32 = 17.68), k=64 → {ch64:.2}% (theory 12.50)"
    ));
    for (i, &vmin) in vmins.iter().enumerate() {
        let local = curves[2 + i].last_y().unwrap_or(f64::NAN);
        let verdict = if local < ch64 {
            "beats both CH curves"
        } else if local < ch32 {
            "beats CH-32 only"
        } else {
            "loses to CH"
        };
        rep.note(format!("local Vmin={vmin}: {local:.2}% — {verdict}"));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_with_large_vmin_beats_ch_at_smoke_scale() {
        let space = HashSpace::full();
        let n = 128;
        let runs = 8;
        let seeds = domus_util::SeedSequence::new(5);
        let ch =
            average_runs("ch", "t-ch", &seeds, runs, n, move |seed| ch_growth(space, 32, n, seed))
                .mean_series();
        let cfg = DhtConfig::new(space, 32, 64).unwrap();
        let local = average_runs("local", "t-local", &seeds, runs, n, move |seed| {
            local_growth(cfg, n, seed).iter().map(|g| g.vnode_relstd).collect()
        })
        .mean_series();
        let ch_end = ch.last_y().unwrap();
        let local_end = local.last_y().unwrap();
        assert!(local_end < ch_end, "local (Vmin=64) {local_end:.2}% must beat CH-32 {ch_end:.2}%");
    }
}

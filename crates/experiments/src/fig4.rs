//! **FIG4** — Figure 4 of the paper: `σ̄(Qv)` vs overall number of vnodes
//! for `(Pmin, Vmin) ∈ {(8,8), (16,16), (32,32), (64,64), (128,128)}`,
//! averaged over 100 runs.
//!
//! Expected shape (paper §4.1/§4.1.1): two zones per curve — zone 1
//! (`V ≤ Vmax`) identical to the global approach; zone 2 a sudden increase
//! to a stable plateau once groups multiply; larger `Pmin = Vmin` →
//! uniformly lower plateau, ordering 8 > 16 > 32 > 64 > 128.

use crate::output::{canonical_samples, print_plot, sample_points, write_csv};
use crate::runner::{average_runs, local_growth};
use crate::{Ctx, ExpReport};
use domus_core::DhtConfig;
use domus_hashspace::HashSpace;
use domus_metrics::series::Series;
use domus_metrics::table::{num, Table};

/// Result bundle: one averaged curve per diagonal `(Pmin, Vmin)` value.
pub struct Fig4Data {
    /// The diagonal values actually swept.
    pub values: Vec<u64>,
    /// One run-averaged `σ̄(Qv)` curve per value, same order.
    pub curves: Vec<Series>,
}

/// Runs the sweep and returns the curves (shared with FIG5 and CLAIM-30).
pub fn compute(ctx: &Ctx) -> Fig4Data {
    let values = ctx.diagonal_values();
    let space = HashSpace::full();
    let curves = values
        .iter()
        .map(|&pv| {
            let cfg = DhtConfig::new(space, pv, pv).expect("powers of two");
            let label = format!("fig4-{pv}");
            average_runs(
                &format!("(Pmin,Vmin)=({pv},{pv})"),
                &label,
                &ctx.seeds,
                ctx.runs,
                ctx.n,
                move |seed| local_growth(cfg, ctx.n, seed).iter().map(|g| g.vnode_relstd).collect(),
            )
            .mean_series()
        })
        .collect();
    Fig4Data { values, curves }
}

/// Full experiment: compute, emit CSV + plot + table, summarise.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("FIG4");
    let data = compute(ctx);
    let path = write_csv(ctx, "fig4_sigma_qv_diagonal", "vnodes", &data.curves);
    rep.note(format!("csv: {}", path.display()));

    print_plot(
        "Figure 4 — σ̄(Qv) when Pmin = Vmin",
        &data.curves,
        "quality of the balancement (%)",
        "overall number of vnodes",
        Some(25.0),
    );

    let samples = canonical_samples(ctx.n);
    let mut t = Table::new(
        &std::iter::once("V".to_string())
            .chain(data.values.iter().map(|v| format!("({v},{v})")))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    for &x in &samples {
        let mut row = vec![format!("{x:.0}")];
        for c in &data.curves {
            let pt = sample_points(c, &[x]);
            row.push(num(pt.first().map(|&(_, y)| y).unwrap_or(f64::NAN), 2));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    for (v, c) in data.values.iter().zip(&data.curves) {
        let plateau = c.mean_y_in((4 * v + 1) as f64, ctx.n as f64);
        let end = c.last_y().unwrap_or(f64::NAN);
        rep.note(format!(
            "(Pmin,Vmin)=({v},{v}): plateau mean {:.2}% | value at V={} : {:.2}%",
            plateau, ctx.n, end
        ));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_ordering_matches_paper() {
        // Smoke scale: bigger (Pmin,Vmin) → lower plateau.
        let ctx =
            Ctx { runs: 6, n: 160, ..Ctx::quick(std::env::temp_dir().join("domus-fig4-test")) };
        let data = compute(&ctx);
        assert!(data.values.len() >= 2);
        let plateaus: Vec<f64> = data
            .values
            .iter()
            .zip(&data.curves)
            .map(|(v, c)| c.mean_y_in((4 * v + 1) as f64, ctx.n as f64))
            .collect();
        for w in plateaus.windows(2) {
            assert!(w[0] > w[1], "plateaus must decrease with (Pmin,Vmin): {plateaus:?}");
        }
    }
}

//! **BENCH-SUMMARY** — the machine-readable perf trajectory.
//!
//! Replays one deterministic churn storm (a large initial fleet plus
//! sustained Poisson churn and a correlated failure) through all three
//! backends, control-plane only — the same hot path as the
//! `churn_driver` criterion bench — and writes `BENCH_churn.json` with
//! events/sec per backend. The committed copy at the repo root is the
//! baseline later PRs must beat; CI re-runs this command and uploads the
//! fresh file as an artifact so per-PR regressions are visible.
//!
//! The *membership trajectory* is deterministic (same seed ⇒ same
//! stream, same final population); the timings are wall-clock and
//! machine-dependent, which is why the JSON also records the seed and
//! scale — comparisons are only meaningful on the same machine, which is
//! exactly how the before/after numbers in the committed file were
//! produced.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChEngine;
use domus_churn::{Capacity, ChurnDriver, DriverConfig, EventStream, Lifetime, Process, Scenario};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};
use domus_sim::SimTime;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// One backend's measurement.
pub struct BackendBench {
    /// Backend key (`local` / `global` / `ch`).
    pub name: &'static str,
    /// Replay throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock replay time in milliseconds.
    pub elapsed_ms: f64,
    /// Live vnodes at the horizon.
    pub final_vnodes: usize,
}

/// The whole measurement: scale, seed, and per-backend numbers.
pub struct BenchSummary {
    /// Seed the stream was compiled from.
    pub seed: u64,
    /// Initial-fleet snodes (each hosting 2 vnodes).
    pub fleet_nodes: usize,
    /// Vnodes present right after the fleet joins.
    pub initial_vnodes: usize,
    /// Events in the replayed stream.
    pub events: usize,
    /// Per-backend measurements, in report order.
    pub backends: Vec<BackendBench>,
}

/// The benchmark scenario: `fleet` snodes × 2 vnodes at t = 0, then a
/// sustained Poisson storm and a correlated failure — the population
/// stays near `2 · fleet` for the whole run, so the throughput is
/// measured *at* that scale, not on the way up from zero.
fn scenario(fleet: usize) -> Scenario {
    let horizon = SimTime::millis(600_000);
    Scenario::new(horizon)
        .with(Process::InitialFleet { nodes: fleet as u32, capacity: Capacity::Fixed(2) })
        .with(Process::Poisson {
            rate_per_s: 2.0,
            lifetime: Lifetime::Pareto { min: SimTime::millis(30_000), alpha: 1.5 },
            capacity: Capacity::Uniform { lo: 1, hi: 2 },
        })
        .with(Process::GroupFailure { at: SimTime::millis(420_000), fraction: 0.1 })
}

fn replay<E: DhtEngine>(engine: E, stream: &EventStream) -> (f64, f64, usize) {
    let started = Instant::now();
    let outcome = ChurnDriver::new(engine, DriverConfig::default()).run(stream);
    let elapsed = started.elapsed().as_secs_f64();
    (stream.len() as f64 / elapsed, elapsed * 1e3, outcome.final_balance.vnodes)
}

/// Runs the measurement at `ctx.n` fleet snodes (2 vnodes each).
/// `events` truncates the stream (smoke/tests).
pub fn compute(ctx: &Ctx, events: Option<usize>) -> BenchSummary {
    let fleet = ctx.n;
    let seed = derive_seed(&ctx.seeds, "bench-churn", 0);
    let mut stream = scenario(fleet).build(seed);
    if let Some(n) = events {
        stream.truncate(n);
    }
    let space = HashSpace::full();
    let (pmin, vmin) = (32, 32);

    let mut backends = Vec::new();
    for name in ["local", "global", "ch"] {
        let (events_per_sec, elapsed_ms, final_vnodes) = match name {
            "local" => replay(
                LocalDht::with_seed(DhtConfig::new(space, pmin, vmin).expect("config"), seed),
                &stream,
            ),
            "global" => replay(
                GlobalDht::with_seed(DhtConfig::new(space, pmin, 1).expect("config"), seed),
                &stream,
            ),
            _ => replay(
                ChEngine::with_seed(DhtConfig::new(space, pmin, 1).expect("config"), 32, seed),
                &stream,
            ),
        };
        backends.push(BackendBench { name, events_per_sec, elapsed_ms, final_vnodes });
    }
    BenchSummary {
        seed,
        fleet_nodes: fleet,
        initial_vnodes: fleet * 2,
        events: stream.len(),
        backends,
    }
}

/// Renders the summary as the `BENCH_churn.json` document. `baseline` is
/// the `"backends"` JSON object of a previous run, embedded verbatim so
/// before/after live in one file.
pub fn to_json(s: &BenchSummary, baseline: Option<&str>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n  \"bench\": \"churn_driver\",\n");
    out.push_str(&format!("  \"seed\": {},\n", s.seed));
    out.push_str(&format!("  \"fleet_nodes\": {},\n", s.fleet_nodes));
    out.push_str(&format!("  \"initial_vnodes\": {},\n", s.initial_vnodes));
    out.push_str(&format!("  \"events\": {},\n", s.events));
    out.push_str("  \"backends\": {\n");
    for (i, b) in s.backends.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"events_per_sec\": {:.1}, \"elapsed_ms\": {:.1}, \"final_vnodes\": {}}}{}\n",
            b.name,
            b.events_per_sec,
            b.elapsed_ms,
            b.final_vnodes,
            if i + 1 < s.backends.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(base);
    }
    out.push_str("\n}\n");
    out
}

/// Extracts the `"backends"` object (balanced braces) from a previous
/// `BENCH_churn.json`, for embedding as the new file's baseline.
pub fn extract_backends(json: &str) -> Option<String> {
    let at = json.find("\"backends\"")?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls `events_per_sec` for one backend out of a backends JSON object.
pub fn events_per_sec_of(backends_json: &str, backend: &str) -> Option<f64> {
    let key = format!("\"{backend}\"");
    let at = backends_json.find(&key)?;
    let tail = &backends_json[at..];
    let field = tail.find("\"events_per_sec\"")?;
    let colon = field + tail[field..].find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs the measurement, writes `BENCH_churn.json` into `ctx.out_dir`
/// and — when `baseline_path` points at a previous file — embeds and
/// compares against it. With `gate_pct = Some(p)` the process exits
/// non-zero when any backend's events/sec falls more than `p` percent
/// below the baseline — the CI regression gate for the churn hot path.
pub fn run(
    ctx: &Ctx,
    events: Option<usize>,
    baseline_path: Option<&Path>,
    gate_pct: Option<f64>,
) -> ExpReport {
    let mut rep = ExpReport::new("BENCH-SUMMARY");
    let s = compute(ctx, events);
    let baseline = baseline_path
        .and_then(|p| fs::read_to_string(p).ok())
        .and_then(|json| extract_backends(&json));

    println!(
        "\n── BENCH-SUMMARY — {} events over {} initial vnodes (seed {}) ──",
        s.events, s.initial_vnodes, s.seed
    );
    let speedups: Vec<Option<f64>> = s
        .backends
        .iter()
        .map(|b| {
            baseline
                .as_deref()
                .and_then(|base| events_per_sec_of(base, b.name))
                .map(|prev| b.events_per_sec / prev)
        })
        .collect();
    let mut t = Table::new(&["backend", "events/sec", "elapsed ms", "final vnodes", "vs baseline"]);
    for (b, speedup) in s.backends.iter().zip(&speedups) {
        t.row(&[
            b.name.into(),
            num(b.events_per_sec, 1),
            num(b.elapsed_ms, 1),
            b.final_vnodes.to_string(),
            speedup.map(|x| format!("{x:.2}x")).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());

    fs::create_dir_all(&ctx.out_dir).expect("results dir");
    let path = ctx.out_dir.join("BENCH_churn.json");
    fs::write(&path, to_json(&s, baseline.as_deref())).expect("write BENCH_churn.json");
    println!("written to {}", path.display());

    for (b, speedup) in s.backends.iter().zip(&speedups) {
        let vs = speedup.map(|x| format!(" ({x:.2}x baseline)")).unwrap_or_default();
        rep.note(format!(
            "{}: {:.0} events/sec at {} vnodes{vs}",
            b.name, b.events_per_sec, s.initial_vnodes
        ));
    }

    if let Some(pct) = gate_pct {
        let floor = 1.0 - pct / 100.0;
        // A missing baseline (bad path, corrupt file, renamed backend) is
        // a gate failure, not a pass — a silent None must never let a
        // regression ship.
        let problems: Vec<String> = s
            .backends
            .iter()
            .zip(&speedups)
            .filter_map(|(b, sp)| match sp {
                None => Some(format!("{}: no baseline events/sec to compare against", b.name)),
                Some(x) if *x < floor => Some(format!("{} regressed to {x:.2}x baseline", b.name)),
                Some(_) => None,
            })
            .collect();
        if problems.is_empty() {
            rep.note(format!("gate: no backend regressed more than {pct}% vs baseline"));
        } else {
            eprintln!("BENCH-SUMMARY gate ({pct}% floor) FAILED: {}", problems.join("; "));
            rep.note(format!("gate FAILED: {}", problems.join("; ")));
            rep.failed = true;
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_backends_and_rates() {
        let s = BenchSummary {
            seed: 7,
            fleet_nodes: 16,
            initial_vnodes: 32,
            events: 100,
            backends: vec![
                BackendBench {
                    name: "local",
                    events_per_sec: 1234.5,
                    elapsed_ms: 81.0,
                    final_vnodes: 30,
                },
                BackendBench {
                    name: "ch",
                    events_per_sec: 999.0,
                    elapsed_ms: 100.1,
                    final_vnodes: 30,
                },
            ],
        };
        let json = to_json(&s, None);
        let backends = extract_backends(&json).expect("backends object");
        assert_eq!(events_per_sec_of(&backends, "local"), Some(1234.5));
        assert_eq!(events_per_sec_of(&backends, "ch"), Some(999.0));
        // Embedding as baseline nests cleanly and stays extractable.
        let nested = to_json(&s, Some(&backends));
        let outer = extract_backends(&nested).expect("outer backends first");
        assert_eq!(events_per_sec_of(&outer, "local"), Some(1234.5));
        assert!(nested.contains("\"baseline\""));
    }

    #[test]
    fn gate_flags_missing_and_regressed_baselines() {
        let mut ctx = Ctx::quick(std::env::temp_dir().join("domus-benchsum-gate"));
        ctx.n = 8;
        fs::create_dir_all(&ctx.out_dir).unwrap();

        // Missing baseline with the gate on is a failure, never a pass.
        let rep = run(&ctx, Some(40), Some(Path::new("/nonexistent/BENCH.json")), Some(15.0));
        assert!(rep.failed, "a missing baseline must fail the gate");

        // A floor-low baseline: every backend is a massive speedup → pass.
        let base = ctx.out_dir.join("base.json");
        let backends = |rate: &str| {
            format!(
                "{{\"backends\": {{\"local\": {{\"events_per_sec\": {rate}}}, \
                 \"global\": {{\"events_per_sec\": {rate}}}, \
                 \"ch\": {{\"events_per_sec\": {rate}}}}}}}"
            )
        };
        fs::write(&base, backends("0.1")).unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(!rep.failed, "huge speedups must pass the gate");

        // An unreachable baseline rate → every backend regresses → fail.
        fs::write(&base, backends("999999999999.0")).unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(rep.failed, "a >15% regression must fail the gate");
        assert!(rep.summary.iter().any(|l| l.contains("gate FAILED")));
    }

    #[test]
    fn smoke_measurement_runs_all_backends() {
        let mut ctx = Ctx::quick(std::env::temp_dir().join("domus-benchsum-test"));
        ctx.n = 8; // tiny fleet: this is an API smoke test, not a benchmark
        let rep = run(&ctx, Some(60), None, None);
        assert_eq!(rep.id, "BENCH-SUMMARY");
        assert_eq!(rep.summary.len(), 3);
        let json = std::fs::read_to_string(ctx.out_dir.join("BENCH_churn.json")).unwrap();
        for name in ["local", "global", "ch"] {
            let backends = extract_backends(&json).unwrap();
            assert!(events_per_sec_of(&backends, name).unwrap() > 0.0, "{name} measured");
        }
    }
}

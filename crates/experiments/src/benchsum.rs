//! **BENCH-SUMMARY** — the machine-readable perf trajectory.
//!
//! Replays one deterministic churn storm (a large initial fleet plus
//! sustained Poisson churn and a correlated failure) through all three
//! backends, control-plane only — the same hot path as the
//! `churn_driver` criterion bench — and writes `BENCH_churn.json` with
//! events/sec per backend. The committed copy at the repo root is the
//! baseline later PRs must beat; CI re-runs this command and uploads the
//! fresh file as an artifact so per-PR regressions are visible.
//!
//! The *membership trajectory* is deterministic (same seed ⇒ same
//! stream, same final population); the timings are wall-clock and
//! machine-dependent, which is why the JSON also records the seed and
//! scale — comparisons are only meaningful on the same machine, which is
//! exactly how the before/after numbers in the committed file were
//! produced.
//!
//! Besides the mutation-plane events/sec, each backend is measured on
//! the **serving plane**: a crash-storm scenario replays into the
//! replicated overlay (R = 2) while 1 and then 8 paced reader threads
//! resolve quorum gets against pinned epoch snapshots. Readers are
//! closed-loop clients (fixed burst + pause), so reads/sec is sustained
//! offered load — it must scale linearly with the reader count (the
//! `read_scaling` field), with flat p99 latency and **zero** read
//! errors through the crashes. The gate covers reads/sec, p99 and the
//! zero-error invariant alongside the events/sec floor.
//!
//! Schema 3 adds the **routing control plane**: the hot-spot/stall
//! scenario replays with the `domus-route` router riding an R = 2
//! overlay, and the JSON records per backend how many windows the
//! hot-spot rebalance took to converge, the deterministic cache probe's
//! hit rate, the lease-expiry failover count, and the lease-safety
//! violation count. Unlike the wall-clock rates these are sim-clock
//! deterministic, so the gate holds them tight: convergence may not
//! regress past the percentage floor, and a single lease-safety
//! violation or routed key loss fails the gate outright.
//!
//! Schema 4 adds the **durability tier**: the crash-then-rejoin drill
//! replays at R = 2 with every crashed snode coming back by replaying
//! its segmented write-ahead log, and the JSON records per backend the
//! total WAL replay wall time, the bytes digest-driven anti-entropy
//! shipped, and the longest below-quorum streak in windows. The gate
//! hardens two invariants absolutely: a WAL-durable key still missing
//! after the last rejoin fails outright (`wal_keys_unrecovered`), and
//! the serving plane's stale-retry rate must stay under a fixed ceiling
//! (retries are only counted when the route actually moved, so the
//! figure is a real route-movement rate, not publish noise).

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChEngine;
use domus_churn::{Capacity, ChurnDriver, DriverConfig, EventStream, Lifetime, Process, Scenario};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};
use domus_route::RouterConfig;
use domus_sim::SimTime;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

/// One backend's measurement.
pub struct BackendBench {
    /// Backend key (`local` / `global` / `ch`).
    pub name: &'static str,
    /// Replay throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock replay time in milliseconds.
    pub elapsed_ms: f64,
    /// Live vnodes at the horizon.
    pub final_vnodes: usize,
    /// Serving-plane reads/sec with one reader thread.
    pub reads_per_sec_1: f64,
    /// Serving-plane reads/sec with eight reader threads.
    pub reads_per_sec_8: f64,
    /// `reads_per_sec_8 / reads_per_sec_1` — the scaling factor.
    pub read_scaling: f64,
    /// Median read latency (8-reader run), nanoseconds.
    pub read_p50_ns: u64,
    /// p99 read latency (8-reader run), nanoseconds.
    pub read_p99_ns: u64,
    /// Stale-route retries per read (8-reader run).
    pub stale_rate: f64,
    /// Reads the snapshot plane failed to serve, summed over both runs.
    /// Must be zero: R = 2 with per-window repair loses nothing.
    pub read_errors: u64,
    /// Windows the hot-spot rebalance took to converge (routed run).
    pub route_convergence_windows: u64,
    /// Deterministic cache-probe hit rate over the routed run.
    pub route_cache_hit_rate: f64,
    /// Lease-expiry failovers executed in the routed run.
    pub route_failovers: u64,
    /// Lease-safety violations in the routed run. Must be zero.
    pub lease_violations: u64,
    /// Keys lost through the routed failover at R = 2. Must be zero.
    pub route_keys_lost: u64,
    /// Crashed snodes that rejoined by replaying their WAL (drill run).
    pub wal_rejoins: u64,
    /// Total WAL replay wall time across the drill's rejoins, ms.
    pub wal_replay_ms: f64,
    /// Bytes shipped by digest-driven anti-entropy over the drill.
    pub repair_bytes: u64,
    /// Longest below-quorum streak in the drill, windows.
    pub time_to_full_quorum_windows: u64,
    /// WAL-durable keys still missing after the drill's last rejoin.
    /// Must be zero — the WAL-loss hard gate.
    pub wal_keys_unrecovered: u64,
}

/// The whole measurement: scale, seed, and per-backend numbers.
pub struct BenchSummary {
    /// Seed the stream was compiled from.
    pub seed: u64,
    /// Initial-fleet snodes (each hosting 2 vnodes).
    pub fleet_nodes: usize,
    /// Vnodes present right after the fleet joins.
    pub initial_vnodes: usize,
    /// Events in the replayed stream.
    pub events: usize,
    /// Per-backend measurements, in report order.
    pub backends: Vec<BackendBench>,
}

/// The benchmark scenario: `fleet` snodes × 2 vnodes at t = 0, then a
/// sustained Poisson storm and a correlated failure — the population
/// stays near `2 · fleet` for the whole run, so the throughput is
/// measured *at* that scale, not on the way up from zero.
fn scenario(fleet: usize) -> Scenario {
    let horizon = SimTime::millis(600_000);
    Scenario::new(horizon)
        .with(Process::InitialFleet { nodes: fleet as u32, capacity: Capacity::Fixed(2) })
        .with(Process::Poisson {
            rate_per_s: 2.0,
            lifetime: Lifetime::Pareto { min: SimTime::millis(30_000), alpha: 1.5 },
            capacity: Capacity::Uniform { lo: 1, hi: 2 },
        })
        .with(Process::GroupFailure { at: SimTime::millis(420_000), fraction: 0.1 })
}

fn replay<E: DhtEngine + Send + Sync>(engine: E, stream: &EventStream) -> (f64, f64, usize) {
    let started = Instant::now();
    let outcome = ChurnDriver::new(engine, DriverConfig::default()).run(stream);
    let elapsed = started.elapsed().as_secs_f64();
    (stream.len() as f64 / elapsed, elapsed * 1e3, outcome.final_balance.vnodes)
}

/// The serving-plane scenario: a small fleet under mild sustained churn
/// with one crash per observation window, so the end-of-window repair
/// always runs between failures and R = 2 provably loses no copies —
/// every read must succeed even while routes move under the readers.
fn read_scenario() -> Scenario {
    Scenario::new(SimTime::millis(120_000))
        .with(Process::InitialFleet { nodes: 12, capacity: Capacity::Fixed(1) })
        .with(Process::Poisson {
            rate_per_s: 1.0,
            lifetime: Lifetime::Forever,
            capacity: Capacity::Fixed(1),
        })
        .with(Process::CrashStorm {
            at: SimTime::millis(40_000),
            crashes: 1,
            spread: SimTime::ZERO,
        })
        .with(Process::CrashStorm {
            at: SimTime::millis(80_000),
            crashes: 1,
            spread: SimTime::ZERO,
        })
}

/// One serving-plane measurement: replay the crash-storm stream into the
/// replicated overlay (R = 2) while `readers` paced threads resolve
/// quorum gets against pinned snapshots. The pacing (32-read burst, 2 ms
/// pause) keeps each reader a closed-loop client well below CPU
/// saturation, so aggregate reads/sec is offered load and must scale
/// linearly with the thread count; the writer pace stretches the replay
/// so read windows sample steady state.
fn read_replay<E: DhtEngine + Send + Sync>(
    engine: E,
    stream: &EventStream,
    readers: usize,
) -> (f64, u64, u64, f64, u64) {
    let outcome = ChurnDriver::with_replication(engine, DriverConfig::default(), 2_000, 16, 2)
        .with_readers(readers)
        .with_reader_pacing(32, Duration::from_millis(2))
        .with_writer_pace(Duration::from_millis(8))
        .run(stream);
    assert_eq!(outcome.totals.keys_lost, 0, "R=2 with per-window repair must lose nothing");
    (
        outcome.totals.reads_per_sec,
        outcome.totals.read_p50_ns,
        outcome.totals.read_p99_ns,
        outcome.totals.stale_rate,
        outcome.totals.read_errors,
    )
}

/// The control-plane measurement: the hot-spot/stall scenario replays
/// with the router riding an R = 2 overlay. Every number here is
/// sim-clock deterministic (same seed ⇒ same convergence, same hit
/// rate), so unlike the wall-clock rates these compare exactly across
/// machines.
fn route_replay<E: DhtEngine + Send + Sync>(
    engine: E,
    stream: &EventStream,
) -> (u64, f64, u64, u64, u64) {
    let outcome = ChurnDriver::with_replication(engine, DriverConfig::default(), 2_000, 16, 2)
        .with_router(RouterConfig::default())
        .run(stream);
    (
        outcome.totals.route_convergence,
        outcome.totals.cache_hit_rate,
        outcome.totals.failovers,
        outcome.totals.lease_violations,
        outcome.totals.keys_lost,
    )
}

/// The durability-tier measurement: the crash-then-rejoin drill at
/// R = 2. The trajectory (rejoins, repair bytes, quorum-gap windows,
/// missing keys) is sim-clock deterministic; only the replay wall time
/// is machine-dependent. `paired` says whether every crash in the
/// (possibly truncated) stream is answered by a rejoin — only then is a
/// missing key a durability failure rather than a node that simply
/// never came back.
fn wal_replay<E: DhtEngine + Send + Sync>(
    engine: E,
    stream: &EventStream,
    paired: bool,
) -> (u64, f64, u64, u64, u64) {
    const ENTRIES: u64 = 2_000;
    let outcome =
        ChurnDriver::with_replication(engine, DriverConfig::default(), ENTRIES, 16, 2).run(stream);
    let final_keys = outcome.samples.last().map(|s| s.keys_total).unwrap_or(0);
    let unrecovered = if paired { ENTRIES.saturating_sub(final_keys) } else { 0 };
    (
        outcome.totals.rejoins,
        outcome.totals.wal_replay_ms,
        outcome.totals.repair_bytes,
        outcome.totals.time_to_full_quorum_windows,
        unrecovered,
    )
}

/// The serving-plane half of one backend's measurement: crash-storm
/// runs at 1 and 8 reader threads (fresh engine per run — each
/// measurement starts from the same empty state).
fn read_bench<E: DhtEngine + Send + Sync>(
    make: impl Fn() -> E,
    read_stream: &EventStream,
) -> (f64, f64, f64, u64, u64, f64, u64) {
    let (reads_per_sec_1, _, _, _, errors_1) = read_replay(make(), read_stream, 1);
    let (reads_per_sec_8, read_p50_ns, read_p99_ns, stale_rate, errors_8) =
        read_replay(make(), read_stream, 8);
    let scaling = if reads_per_sec_1 > 0.0 { reads_per_sec_8 / reads_per_sec_1 } else { 0.0 };
    (
        reads_per_sec_1,
        reads_per_sec_8,
        scaling,
        read_p50_ns,
        read_p99_ns,
        stale_rate,
        errors_1 + errors_8,
    )
}

/// Runs the measurement at `ctx.n` fleet snodes (2 vnodes each).
/// `events` truncates the stream (smoke/tests).
///
/// All three mutation-plane replays run first, back to back — they are
/// single-threaded and cache-sensitive, and the multi-threaded read
/// benches would perturb them; the serving-plane passes follow.
pub fn compute(ctx: &Ctx, events: Option<usize>) -> BenchSummary {
    let fleet = ctx.n;
    let seed = derive_seed(&ctx.seeds, "bench-churn", 0);
    let mut stream = scenario(fleet).build(seed);
    let mut read_stream = read_scenario().build(seed ^ 0x5EAD);
    let mut route_stream = Scenario::hotspot_failover().build(seed ^ 0x707E);
    let mut wal_stream = Scenario::durability(1.0).build(seed ^ 0x3A1);
    if let Some(n) = events {
        stream.truncate(n);
        read_stream.truncate(n);
        route_stream.truncate(n);
        wal_stream.truncate(n);
    }
    let wal_paired = {
        use domus_churn::EventKind;
        let count = |pred: fn(&EventKind) -> bool| {
            wal_stream.events().iter().filter(|e| pred(&e.kind)).count()
        };
        count(|k| matches!(k, EventKind::CrashRank { .. }))
            == count(|k| matches!(k, EventKind::RejoinRank { .. }))
    };
    let space = HashSpace::full();
    let (pmin, vmin) = (32, 32);
    let local = || LocalDht::with_seed(DhtConfig::new(space, pmin, vmin).expect("config"), seed);
    let global = || GlobalDht::with_seed(DhtConfig::new(space, pmin, 1).expect("config"), seed);
    let ch = || ChEngine::with_seed(DhtConfig::new(space, pmin, 1).expect("config"), 32, seed);

    let mutation: Vec<(f64, f64, usize)> =
        vec![replay(local(), &stream), replay(global(), &stream), replay(ch(), &stream)];
    let reads = vec![
        read_bench(local, &read_stream),
        read_bench(global, &read_stream),
        read_bench(ch, &read_stream),
    ];
    let routes = vec![
        route_replay(local(), &route_stream),
        route_replay(global(), &route_stream),
        route_replay(ch(), &route_stream),
    ];
    let wals = vec![
        wal_replay(local(), &wal_stream, wal_paired),
        wal_replay(global(), &wal_stream, wal_paired),
        wal_replay(ch(), &wal_stream, wal_paired),
    ];

    let mut backends = Vec::new();
    for ((((name, m), r), rt), wal) in
        ["local", "global", "ch"].into_iter().zip(mutation).zip(reads).zip(routes).zip(wals)
    {
        let (events_per_sec, elapsed_ms, final_vnodes) = m;
        let (
            reads_per_sec_1,
            reads_per_sec_8,
            read_scaling,
            read_p50_ns,
            read_p99_ns,
            stale_rate,
            read_errors,
        ) = r;
        let (
            route_convergence_windows,
            route_cache_hit_rate,
            route_failovers,
            lease_violations,
            route_keys_lost,
        ) = rt;
        let (
            wal_rejoins,
            wal_replay_ms,
            repair_bytes,
            time_to_full_quorum_windows,
            wal_keys_unrecovered,
        ) = wal;
        backends.push(BackendBench {
            name,
            events_per_sec,
            elapsed_ms,
            final_vnodes,
            reads_per_sec_1,
            reads_per_sec_8,
            read_scaling,
            read_p50_ns,
            read_p99_ns,
            stale_rate,
            read_errors,
            route_convergence_windows,
            route_cache_hit_rate,
            route_failovers,
            lease_violations,
            route_keys_lost,
            wal_rejoins,
            wal_replay_ms,
            repair_bytes,
            time_to_full_quorum_windows,
            wal_keys_unrecovered,
        });
    }
    BenchSummary {
        seed,
        fleet_nodes: fleet,
        initial_vnodes: fleet * 2,
        events: stream.len(),
        backends,
    }
}

/// Renders the summary as the `BENCH_churn.json` document. `baseline` is
/// the `"backends"` JSON object of a previous run, embedded verbatim so
/// before/after live in one file.
pub fn to_json(s: &BenchSummary, baseline: Option<&str>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 4,\n  \"bench\": \"churn_driver\",\n");
    out.push_str(&format!("  \"seed\": {},\n", s.seed));
    out.push_str(&format!("  \"fleet_nodes\": {},\n", s.fleet_nodes));
    out.push_str(&format!("  \"initial_vnodes\": {},\n", s.initial_vnodes));
    out.push_str(&format!("  \"events\": {},\n", s.events));
    out.push_str("  \"backends\": {\n");
    for (i, b) in s.backends.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"events_per_sec\": {:.1}, \"elapsed_ms\": {:.1}, \"final_vnodes\": {}, \
             \"reads_per_sec_1\": {:.1}, \"reads_per_sec_8\": {:.1}, \"read_scaling\": {:.2}, \
             \"read_p50_ns\": {}, \"read_p99_ns\": {}, \"stale_rate\": {:.4}, \"read_errors\": {}, \
             \"route_convergence_windows\": {}, \"route_cache_hit_rate\": {:.4}, \
             \"route_failovers\": {}, \"lease_violations\": {}, \"route_keys_lost\": {}, \
             \"wal_rejoins\": {}, \"wal_replay_ms\": {:.3}, \"repair_bytes\": {}, \
             \"time_to_full_quorum_windows\": {}, \"wal_keys_unrecovered\": {}}}{}\n",
            b.name,
            b.events_per_sec,
            b.elapsed_ms,
            b.final_vnodes,
            b.reads_per_sec_1,
            b.reads_per_sec_8,
            b.read_scaling,
            b.read_p50_ns,
            b.read_p99_ns,
            b.stale_rate,
            b.read_errors,
            b.route_convergence_windows,
            b.route_cache_hit_rate,
            b.route_failovers,
            b.lease_violations,
            b.route_keys_lost,
            b.wal_rejoins,
            b.wal_replay_ms,
            b.repair_bytes,
            b.time_to_full_quorum_windows,
            b.wal_keys_unrecovered,
            if i + 1 < s.backends.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(base);
    }
    out.push_str("\n}\n");
    out
}

/// Extracts the `"backends"` object (balanced braces) from a previous
/// `BENCH_churn.json`, for embedding as the new file's baseline.
pub fn extract_backends(json: &str) -> Option<String> {
    let at = json.find("\"backends\"")?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls one numeric `field` for one backend out of a backends JSON
/// object. The search is scoped to the backend's own `{...}` span so a
/// field name never matches inside a neighbouring backend's object.
pub fn field_of(backends_json: &str, backend: &str, field: &str) -> Option<f64> {
    let key = format!("\"{backend}\"");
    let at = backends_json.find(&key)?;
    let open = at + backends_json[at..].find('{')?;
    let close = open + backends_json[open..].find('}')?;
    let obj = &backends_json[open..=close];
    let needle = format!("\"{field}\"");
    let f = obj.find(&needle)?;
    let colon = f + obj[f..].find(':')?;
    let rest = obj[colon + 1..].trim_start();
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `events_per_sec` for one backend out of a backends JSON object.
pub fn events_per_sec_of(backends_json: &str, backend: &str) -> Option<f64> {
    field_of(backends_json, backend, "events_per_sec")
}

/// Runs the measurement, writes `BENCH_churn.json` into `ctx.out_dir`
/// and — when `baseline_path` points at a previous file — embeds and
/// compares against it. With `gate_pct = Some(p)` the process exits
/// non-zero when any backend's events/sec falls more than `p` percent
/// below the baseline — the CI regression gate for the churn hot path.
pub fn run(
    ctx: &Ctx,
    events: Option<usize>,
    baseline_path: Option<&Path>,
    gate_pct: Option<f64>,
) -> ExpReport {
    let mut rep = ExpReport::new("BENCH-SUMMARY");
    let s = compute(ctx, events);
    let baseline = baseline_path
        .and_then(|p| fs::read_to_string(p).ok())
        .and_then(|json| extract_backends(&json));

    println!(
        "\n── BENCH-SUMMARY — {} events over {} initial vnodes (seed {}) ──",
        s.events, s.initial_vnodes, s.seed
    );
    let speedups: Vec<Option<f64>> = s
        .backends
        .iter()
        .map(|b| {
            baseline
                .as_deref()
                .and_then(|base| events_per_sec_of(base, b.name))
                .map(|prev| b.events_per_sec / prev)
        })
        .collect();
    let mut t = Table::new(&["backend", "events/sec", "elapsed ms", "final vnodes", "vs baseline"]);
    for (b, speedup) in s.backends.iter().zip(&speedups) {
        t.row(&[
            b.name.into(),
            num(b.events_per_sec, 1),
            num(b.elapsed_ms, 1),
            b.final_vnodes.to_string(),
            speedup.map(|x| format!("{x:.2}x")).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());

    let mut rt = Table::new(&[
        "backend",
        "reads/s ×1",
        "reads/s ×8",
        "scaling",
        "p50 ns",
        "p99 ns",
        "stale rate",
        "read errors",
    ]);
    for b in &s.backends {
        rt.row(&[
            b.name.into(),
            num(b.reads_per_sec_1, 1),
            num(b.reads_per_sec_8, 1),
            format!("{:.2}x", b.read_scaling),
            b.read_p50_ns.to_string(),
            b.read_p99_ns.to_string(),
            num(b.stale_rate, 4),
            b.read_errors.to_string(),
        ]);
    }
    println!("{}", rt.render());

    let mut ct = Table::new(&[
        "backend",
        "convergence (windows)",
        "cache hit rate",
        "failovers",
        "lease violations",
        "keys lost",
    ]);
    for b in &s.backends {
        ct.row(&[
            b.name.into(),
            b.route_convergence_windows.to_string(),
            num(b.route_cache_hit_rate, 4),
            b.route_failovers.to_string(),
            b.lease_violations.to_string(),
            b.route_keys_lost.to_string(),
        ]);
    }
    println!("{}", ct.render());

    let mut wt = Table::new(&[
        "backend",
        "wal rejoins",
        "wal replay ms",
        "repair bytes",
        "quorum gap (windows)",
        "keys unrecovered",
    ]);
    for b in &s.backends {
        wt.row(&[
            b.name.into(),
            b.wal_rejoins.to_string(),
            num(b.wal_replay_ms, 3),
            b.repair_bytes.to_string(),
            b.time_to_full_quorum_windows.to_string(),
            b.wal_keys_unrecovered.to_string(),
        ]);
    }
    println!("{}", wt.render());

    fs::create_dir_all(&ctx.out_dir).expect("results dir");
    let path = ctx.out_dir.join("BENCH_churn.json");
    fs::write(&path, to_json(&s, baseline.as_deref())).expect("write BENCH_churn.json");
    println!("written to {}", path.display());

    for (b, speedup) in s.backends.iter().zip(&speedups) {
        let vs = speedup.map(|x| format!(" ({x:.2}x baseline)")).unwrap_or_default();
        rep.note(format!(
            "{}: {:.0} events/sec at {} vnodes{vs}",
            b.name, b.events_per_sec, s.initial_vnodes
        ));
        rep.note(format!(
            "{}: serving plane {:.0} reads/s ×1 → {:.0} reads/s ×8 ({:.2}x), p99 {} ns, stale {:.4}, {} read errors",
            b.name,
            b.reads_per_sec_1,
            b.reads_per_sec_8,
            b.read_scaling,
            b.read_p99_ns,
            b.stale_rate,
            b.read_errors
        ));
        rep.note(format!(
            "{}: control plane converged in {} window(s), cache hit rate {:.4}, {} failover(s), {} lease violations, {} routed keys lost",
            b.name,
            b.route_convergence_windows,
            b.route_cache_hit_rate,
            b.route_failovers,
            b.lease_violations,
            b.route_keys_lost
        ));
        rep.note(format!(
            "{}: durability tier replayed {} rejoin(s) in {:.3} ms, shipped {} repair bytes, quorum gap {} window(s), {} keys unrecovered",
            b.name,
            b.wal_rejoins,
            b.wal_replay_ms,
            b.repair_bytes,
            b.time_to_full_quorum_windows,
            b.wal_keys_unrecovered
        ));
    }

    if let Some(pct) = gate_pct {
        let floor = 1.0 - pct / 100.0;
        // The p99 ceiling is looser than the throughput floor: tail
        // latency on a shared CI box is far noisier than sustained rates.
        let p99_ceiling = 1.0 + 3.0 * pct / 100.0;
        // A missing baseline (bad path, corrupt file, renamed backend or
        // a pre-read-plane schema) is a gate failure, not a pass — a
        // silent None must never let a regression ship.
        let mut problems: Vec<String> = s
            .backends
            .iter()
            .zip(&speedups)
            .filter_map(|(b, sp)| match sp {
                None => Some(format!("{}: no baseline events/sec to compare against", b.name)),
                Some(x) if *x < floor => Some(format!("{} regressed to {x:.2}x baseline", b.name)),
                Some(_) => None,
            })
            .collect();
        for b in &s.backends {
            if b.read_errors > 0 {
                problems.push(format!(
                    "{}: {} read errors — the serving plane must never fail a read",
                    b.name, b.read_errors
                ));
            }
            match baseline.as_deref().and_then(|base| field_of(base, b.name, "reads_per_sec_8")) {
                None => problems
                    .push(format!("{}: no baseline reads_per_sec_8 to compare against", b.name)),
                Some(prev) if b.reads_per_sec_8 < prev * floor => problems.push(format!(
                    "{} read throughput regressed to {:.2}x baseline",
                    b.name,
                    b.reads_per_sec_8 / prev
                )),
                Some(_) => {}
            }
            match baseline.as_deref().and_then(|base| field_of(base, b.name, "read_p99_ns")) {
                None => {
                    problems.push(format!("{}: no baseline read_p99_ns to compare against", b.name))
                }
                Some(prev) if (b.read_p99_ns as f64) > prev * p99_ceiling => {
                    problems.push(format!(
                        "{} read p99 blew past the ceiling: {} ns vs {prev:.0} ns baseline",
                        b.name, b.read_p99_ns
                    ))
                }
                Some(_) => {}
            }
            // The control plane gates absolutely, not statistically: its
            // numbers are sim-clock deterministic, so a single
            // lease-safety violation or routed key loss is a hard fail,
            // and convergence may not slow past the percentage floor.
            if b.lease_violations > 0 {
                problems.push(format!(
                    "{}: {} lease-safety violation(s) — no vnode may ever carry two live leases",
                    b.name, b.lease_violations
                ));
            }
            if b.route_keys_lost > 0 {
                problems.push(format!(
                    "{}: {} key(s) lost through the routed failover at R=2",
                    b.name, b.route_keys_lost
                ));
            }
            match baseline
                .as_deref()
                .and_then(|base| field_of(base, b.name, "route_convergence_windows"))
            {
                None => problems.push(format!(
                    "{}: no baseline route_convergence_windows to compare against",
                    b.name
                )),
                Some(prev) if (b.route_convergence_windows as f64) > prev * (1.0 + pct / 100.0) => {
                    problems.push(format!(
                        "{} hot-spot convergence regressed: {} windows vs {prev:.0} baseline",
                        b.name, b.route_convergence_windows
                    ))
                }
                Some(_) => {}
            }
            // The durability tier's hard gate: a WAL-durable key still
            // missing after the drill's last rejoin is an absolute
            // failure — durability is a contract, not a statistic.
            if b.wal_keys_unrecovered > 0 {
                problems.push(format!(
                    "{}: {} WAL-durable key(s) unrecovered after the rejoin drill",
                    b.name, b.wal_keys_unrecovered
                ));
            }
            // Stale retries are counted only when the route actually
            // moved (the double-counting fix), so the rate is a real
            // route-movement figure and can hold a fixed ceiling.
            const STALE_CEILING: f64 = 0.25;
            if b.stale_rate > STALE_CEILING {
                problems.push(format!(
                    "{}: stale-retry rate {:.4} blew the {STALE_CEILING} ceiling",
                    b.name, b.stale_rate
                ));
            }
            match baseline
                .as_deref()
                .and_then(|base| field_of(base, b.name, "time_to_full_quorum_windows"))
            {
                None => problems.push(format!(
                    "{}: no baseline time_to_full_quorum_windows to compare against",
                    b.name
                )),
                Some(prev)
                    if (b.time_to_full_quorum_windows as f64) > prev * (1.0 + pct / 100.0) =>
                {
                    problems.push(format!(
                        "{} time-to-full-quorum regressed: {} windows vs {prev:.0} baseline",
                        b.name, b.time_to_full_quorum_windows
                    ))
                }
                Some(_) => {}
            }
        }
        if problems.is_empty() {
            rep.note(format!(
                "gate: no backend regressed more than {pct}% vs baseline (both planes)"
            ));
        } else {
            eprintln!("BENCH-SUMMARY gate ({pct}% floor) FAILED: {}", problems.join("; "));
            rep.note(format!("gate FAILED: {}", problems.join("; ")));
            rep.failed = true;
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &'static str, events_per_sec: f64, reads_8: f64) -> BackendBench {
        BackendBench {
            name,
            events_per_sec,
            elapsed_ms: 81.0,
            final_vnodes: 30,
            reads_per_sec_1: reads_8 / 7.5,
            reads_per_sec_8: reads_8,
            read_scaling: 7.5,
            read_p50_ns: 750,
            read_p99_ns: 4_100,
            stale_rate: 0.0021,
            read_errors: 0,
            route_convergence_windows: 2,
            route_cache_hit_rate: 0.9912,
            route_failovers: 1,
            lease_violations: 0,
            route_keys_lost: 0,
            wal_rejoins: 3,
            wal_replay_ms: 1.25,
            repair_bytes: 48_000,
            time_to_full_quorum_windows: 2,
            wal_keys_unrecovered: 0,
        }
    }

    #[test]
    fn json_roundtrips_backends_and_rates() {
        let s = BenchSummary {
            seed: 7,
            fleet_nodes: 16,
            initial_vnodes: 32,
            events: 100,
            backends: vec![bench("local", 1234.5, 90_000.0), bench("ch", 999.0, 80_000.0)],
        };
        let json = to_json(&s, None);
        let backends = extract_backends(&json).expect("backends object");
        assert_eq!(events_per_sec_of(&backends, "local"), Some(1234.5));
        assert_eq!(events_per_sec_of(&backends, "ch"), Some(999.0));
        // The read-plane fields roundtrip per backend — scoped to each
        // backend's own object, not whichever match comes first.
        assert_eq!(field_of(&backends, "local", "reads_per_sec_8"), Some(90_000.0));
        assert_eq!(field_of(&backends, "ch", "reads_per_sec_8"), Some(80_000.0));
        assert_eq!(field_of(&backends, "ch", "read_p99_ns"), Some(4_100.0));
        assert_eq!(field_of(&backends, "ch", "read_errors"), Some(0.0));
        assert_eq!(field_of(&backends, "ch", "route_convergence_windows"), Some(2.0));
        assert_eq!(field_of(&backends, "local", "route_cache_hit_rate"), Some(0.9912));
        assert_eq!(field_of(&backends, "local", "lease_violations"), Some(0.0));
        assert_eq!(field_of(&backends, "ch", "wal_rejoins"), Some(3.0));
        assert_eq!(field_of(&backends, "local", "wal_replay_ms"), Some(1.25));
        assert_eq!(field_of(&backends, "local", "repair_bytes"), Some(48_000.0));
        assert_eq!(field_of(&backends, "ch", "time_to_full_quorum_windows"), Some(2.0));
        assert_eq!(field_of(&backends, "ch", "wal_keys_unrecovered"), Some(0.0));
        assert_eq!(field_of(&backends, "ch", "no_such_field"), None);
        // Embedding as baseline nests cleanly and stays extractable.
        let nested = to_json(&s, Some(&backends));
        let outer = extract_backends(&nested).expect("outer backends first");
        assert_eq!(events_per_sec_of(&outer, "local"), Some(1234.5));
        assert!(nested.contains("\"baseline\""));
    }

    #[test]
    fn gate_flags_missing_and_regressed_baselines() {
        let mut ctx = Ctx::quick(std::env::temp_dir().join("domus-benchsum-gate"));
        ctx.n = 8;
        fs::create_dir_all(&ctx.out_dir).unwrap();

        // Missing baseline with the gate on is a failure, never a pass.
        let rep = run(&ctx, Some(40), Some(Path::new("/nonexistent/BENCH.json")), Some(15.0));
        assert!(rep.failed, "a missing baseline must fail the gate");

        // A floor-low baseline: every backend is a massive speedup → pass.
        // (p99 ceilings compare the other way, so the pass case needs a
        // sky-high latency baseline.)
        let base = ctx.out_dir.join("base.json");
        let backends = |rate: &str, p99: &str, conv: &str| {
            let one = |n: &str| {
                format!(
                    "\"{n}\": {{\"events_per_sec\": {rate}, \
                     \"reads_per_sec_8\": {rate}, \"read_p99_ns\": {p99}, \
                     \"route_convergence_windows\": {conv}, \
                     \"time_to_full_quorum_windows\": {conv}}}"
                )
            };
            format!("{{\"backends\": {{{}, {}, {}}}}}", one("local"), one("global"), one("ch"))
        };
        fs::write(&base, backends("0.1", "999999999999", "999999")).unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(!rep.failed, "huge speedups must pass the gate");

        // An unreachable baseline rate → every backend regresses → fail.
        fs::write(&base, backends("999999999999.0", "999999999999", "999999")).unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(rep.failed, "a >15% regression must fail the gate");
        assert!(rep.summary.iter().any(|l| l.contains("gate FAILED")));

        // A 1 ns p99 baseline: throughput sails, the latency ceiling
        // trips → fail on the read plane alone.
        fs::write(&base, backends("0.1", "1", "999999")).unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(rep.failed, "a blown p99 ceiling must fail the gate");
        assert!(rep.summary.iter().any(|l| l.contains("p99")));

        // A zero-window convergence baseline: any measured convergence
        // regresses past the floor → fail on the control plane alone.
        fs::write(&base, backends("0.1", "999999999999", "0")).unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(rep.failed, "a convergence regression must fail the gate");
        assert!(rep.summary.iter().any(|l| l.contains("convergence")));

        // A schema-1 baseline (no read fields): the gate must demand the
        // read-plane fields, never skip them.
        fs::write(
            &base,
            "{\"backends\": {\"local\": {\"events_per_sec\": 0.1}, \
             \"global\": {\"events_per_sec\": 0.1}, \"ch\": {\"events_per_sec\": 0.1}}}",
        )
        .unwrap();
        let rep = run(&ctx, Some(40), Some(base.as_path()), Some(15.0));
        assert!(rep.failed, "a baseline without read-plane fields must fail the gate");
        assert!(rep.summary.iter().any(|l| l.contains("reads_per_sec_8")));
    }

    #[test]
    fn smoke_measurement_runs_all_backends() {
        let mut ctx = Ctx::quick(std::env::temp_dir().join("domus-benchsum-test"));
        ctx.n = 8; // tiny fleet: this is an API smoke test, not a benchmark
        let rep = run(&ctx, Some(60), None, None);
        assert_eq!(rep.id, "BENCH-SUMMARY");
        assert_eq!(
            rep.summary.len(),
            12,
            "one mutation + one serving + one control + one durability note per backend"
        );
        let json = std::fs::read_to_string(ctx.out_dir.join("BENCH_churn.json")).unwrap();
        for name in ["local", "global", "ch"] {
            let backends = extract_backends(&json).unwrap();
            assert!(events_per_sec_of(&backends, name).unwrap() > 0.0, "{name} measured");
            assert!(field_of(&backends, name, "reads_per_sec_1").unwrap() > 0.0);
            assert!(field_of(&backends, name, "reads_per_sec_8").unwrap() > 0.0);
            assert_eq!(
                field_of(&backends, name, "read_errors"),
                Some(0.0),
                "{name}: the serving plane must never fail a read"
            );
            assert!(field_of(&backends, name, "route_convergence_windows").is_some());
            assert_eq!(
                field_of(&backends, name, "lease_violations"),
                Some(0.0),
                "{name}: lease safety must hold in the routed replay"
            );
            assert_eq!(
                field_of(&backends, name, "route_keys_lost"),
                Some(0.0),
                "{name}: the routed failover must lose nothing at R=2"
            );
            assert!(field_of(&backends, name, "wal_rejoins").is_some());
            assert_eq!(
                field_of(&backends, name, "wal_keys_unrecovered"),
                Some(0.0),
                "{name}: WAL durability must hold in the rejoin drill"
            );
        }
    }
}

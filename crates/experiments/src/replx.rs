//! **CHURN-REPL** — durability and quorum availability under crash
//! failures, with cluster-aware replication.
//!
//! The CHURN experiment measures balancement under *graceful* churn: a
//! leave migrates its data out, so "availability" is owner stability,
//! never durability. This experiment turns the failures ungraceful: one
//! seeded scenario mixes sustained Poisson churn with memoryless
//! single-node crashes and a correlated crash storm, and the identical
//! stream (fingerprint-checked) replays through all three backends with
//! the [`domus_kv::ReplicatedStore`] overlay at R = 1, 2 and 3. Per
//! backend it writes `results/churn_repl_<backend>.csv` (the R = 2 run)
//! with per-window durability (`keys_lost` / `keys_total`), quorum-read
//! availability, and anti-entropy repair volume; the summary table sweeps
//! the replication factor.
//!
//! Exact loss accounting is part of the contract: for every backend and
//! every R, the surviving keys plus the accounted crash losses must cover
//! the loaded population — a key may die, but never silently.
//!
//! With `--rejoin` the experiment runs the **durability drill** instead:
//! the crash-then-rejoin scenario ([`Scenario::durability`]) replays at
//! R = 2, every crashed snode comes back by replaying its segmented
//! write-ahead log, and the contract hardens — zero WAL-durable keys
//! may be missing once the last rejoin has replayed, and digest-driven
//! anti-entropy must ship strictly fewer bytes than a digest-less full
//! rebuild of the same ranges.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChEngine;
use domus_churn::{ChurnDriver, ChurnOutcome, DriverConfig, EventStream, Scenario};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};
use domus_sim::SimTime;
use std::fs;
use std::io::BufWriter;

/// The replication factors the sweep runs.
pub const FACTORS: [usize; 3] = [1, 2, 3];

/// One `(backend, R)` cell of the sweep.
pub struct ReplCell {
    /// Backend name (`local`/`global`/`ch`).
    pub backend: &'static str,
    /// Replication factor.
    pub r: usize,
    /// Keys loaded at the first join.
    pub entries: u64,
    /// The replay outcome.
    pub outcome: ChurnOutcome,
}

/// The full sweep on one stream.
pub struct ReplComparison {
    /// Events replayed per run.
    pub events: usize,
    /// The stream fingerprint every run replayed.
    pub fingerprint: u64,
    /// All `(backend, R)` cells, backend-major.
    pub cells: Vec<ReplCell>,
}

/// Compiles the crash scenario and replays it per backend × R.
pub fn compute(ctx: &Ctx, events: Option<usize>) -> ReplComparison {
    let paper_scale = ctx.n >= 512;
    let intensity = if paper_scale { 1.0 } else { 0.5 };
    let entries: u64 = if paper_scale { 10_000 } else { 2_000 };
    let (pmin, vmin) = if paper_scale { (32, 32) } else { (8, 8) };
    let seed = derive_seed(&ctx.seeds, "churn-repl", 0);
    let space = HashSpace::full();

    let build_stream = || {
        let mut s = Scenario::crashy(intensity).build(seed);
        if let Some(n) = events {
            s.truncate(n);
        }
        s
    };
    let reference = build_stream();
    let cfg = DriverConfig {
        window: SimTime((reference.horizon().nanos() / 20).max(1)),
        ..DriverConfig::default()
    };

    fn replay<E: DhtEngine + Send + Sync>(
        engine: E,
        cfg: DriverConfig,
        entries: u64,
        r: usize,
        stream: &EventStream,
    ) -> ChurnOutcome {
        ChurnDriver::with_replication(engine, cfg, entries, 16, r).run(stream)
    }

    let mut cells = Vec::new();
    for name in ["local", "global", "ch"] {
        for r in FACTORS {
            let stream = build_stream();
            assert_eq!(
                stream.fingerprint(),
                reference.fingerprint(),
                "seeded stream must be identical for every backend and R"
            );
            let outcome = match name {
                "local" => replay(
                    LocalDht::with_seed(
                        DhtConfig::new(space, pmin, vmin).expect("powers of two"),
                        seed,
                    ),
                    cfg,
                    entries,
                    r,
                    &stream,
                ),
                "global" => replay(
                    GlobalDht::with_seed(
                        DhtConfig::new(space, pmin, 1).expect("powers of two"),
                        seed,
                    ),
                    cfg,
                    entries,
                    r,
                    &stream,
                ),
                _ => replay(
                    ChEngine::with_seed(
                        DhtConfig::new(space, pmin, 1).expect("powers of two"),
                        32,
                        seed ^ 0xCC,
                    ),
                    cfg,
                    entries,
                    r,
                    &stream,
                ),
            };
            cells.push(ReplCell { backend: name, r, entries, outcome });
        }
    }
    ReplComparison { events: reference.len(), fingerprint: reference.fingerprint(), cells }
}

/// One backend's crash-then-rejoin drill (always R = 2).
pub struct RejoinCell {
    /// Backend name (`local`/`global`/`ch`).
    pub backend: &'static str,
    /// Keys loaded at the first join.
    pub entries: u64,
    /// The replay outcome.
    pub outcome: ChurnOutcome,
}

/// The rejoin drill on one stream.
pub struct RejoinComparison {
    /// Events replayed per run.
    pub events: usize,
    /// The stream fingerprint every run replayed.
    pub fingerprint: u64,
    /// Crash events in the stream.
    pub crashes: usize,
    /// Rejoin events in the stream (every crash the horizon still
    /// covers is paired with one).
    pub rejoins: usize,
    /// One cell per backend.
    pub cells: Vec<RejoinCell>,
}

/// Compiles the durability drill and replays it per backend at R = 2.
pub fn compute_rejoin(ctx: &Ctx, events: Option<usize>) -> RejoinComparison {
    use domus_churn::EventKind;

    let paper_scale = ctx.n >= 512;
    let intensity = if paper_scale { 1.0 } else { 0.5 };
    let entries: u64 = if paper_scale { 10_000 } else { 2_000 };
    let (pmin, vmin) = if paper_scale { (32, 32) } else { (8, 8) };
    let seed = derive_seed(&ctx.seeds, "churn-repl-rejoin", 0);
    let space = HashSpace::full();

    let build_stream = || {
        let mut s = Scenario::durability(intensity).build(seed);
        if let Some(n) = events {
            s.truncate(n);
        }
        s
    };
    let reference = build_stream();
    let crashes =
        reference.events().iter().filter(|e| matches!(e.kind, EventKind::CrashRank { .. })).count();
    let rejoins = reference
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RejoinRank { .. }))
        .count();
    let cfg = DriverConfig {
        window: SimTime((reference.horizon().nanos() / 20).max(1)),
        ..DriverConfig::default()
    };

    let mut cells = Vec::new();
    for name in ["local", "global", "ch"] {
        let stream = build_stream();
        assert_eq!(
            stream.fingerprint(),
            reference.fingerprint(),
            "seeded stream must be identical for every backend"
        );
        let outcome = match name {
            "local" => ChurnDriver::with_replication(
                LocalDht::with_seed(
                    DhtConfig::new(space, pmin, vmin).expect("powers of two"),
                    seed,
                ),
                cfg,
                entries,
                16,
                2,
            )
            .run(&stream),
            "global" => ChurnDriver::with_replication(
                GlobalDht::with_seed(DhtConfig::new(space, pmin, 1).expect("powers of two"), seed),
                cfg,
                entries,
                16,
                2,
            )
            .run(&stream),
            _ => ChurnDriver::with_replication(
                ChEngine::with_seed(
                    DhtConfig::new(space, pmin, 1).expect("powers of two"),
                    32,
                    seed ^ 0xCC,
                ),
                cfg,
                entries,
                16,
                2,
            )
            .run(&stream),
        };
        cells.push(RejoinCell { backend: name, entries, outcome });
    }
    RejoinComparison {
        events: reference.len(),
        fingerprint: reference.fingerprint(),
        crashes,
        rejoins,
        cells,
    }
}

/// Runs the `--rejoin` durability drill: per-backend CSVs, table, and
/// the WAL-durability contract.
pub fn run_rejoin(ctx: &Ctx, events: Option<usize>) -> ExpReport {
    let mut rep = ExpReport::new("CHURN-REPL-REJOIN");
    let cmp = compute_rejoin(ctx, events);

    fs::create_dir_all(&ctx.out_dir).expect("create results dir");
    for cell in &cmp.cells {
        let path = ctx.out_dir.join(format!("churn_repl_rejoin_{}.csv", cell.backend));
        let file = fs::File::create(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
        cell.outcome.write_csv(BufWriter::new(file)).expect("write rejoin csv");
    }

    println!(
        "\n── CHURN-REPL --rejoin — {} events ({} crashes, {} rejoins), stream fingerprint {:016x} ──",
        cmp.events, cmp.crashes, cmp.rejoins, cmp.fingerprint
    );
    let mut t = Table::new(&[
        "system",
        "crashes",
        "rejoins",
        "wal replay ms",
        "repair bytes",
        "full-rebuild bytes",
        "savings",
        "quorum gap (windows)",
        "keys missing",
    ]);
    for cell in &cmp.cells {
        let o = &cell.outcome;
        let final_keys = o.samples.last().map(|s| s.keys_total).unwrap_or(0);
        let missing = cell.entries.saturating_sub(final_keys);
        let savings = if o.totals.repair_bytes_full > 0 {
            1.0 - o.totals.repair_bytes as f64 / o.totals.repair_bytes_full as f64
        } else {
            0.0
        };
        t.row(&[
            label(cell.backend).into(),
            o.totals.crashes.to_string(),
            o.totals.rejoins.to_string(),
            num(o.totals.wal_replay_ms, 3),
            o.totals.repair_bytes.to_string(),
            o.totals.repair_bytes_full.to_string(),
            format!("{:.1}%", savings * 100.0),
            o.totals.time_to_full_quorum_windows.to_string(),
            missing.to_string(),
        ]);
    }
    println!("{}", t.render());

    // The WAL-durability contract. Every crash the stream pairs with a
    // rejoin replays its log; when all of them are paired the store must
    // end complete — zero acknowledged keys missing, on every backend.
    let fully_paired = cmp.crashes == cmp.rejoins;
    for cell in &cmp.cells {
        let o = &cell.outcome;
        let final_keys = o.samples.last().map(|s| s.keys_total).unwrap_or(0);
        if cmp.rejoins > 0 {
            assert!(
                o.totals.rejoins >= 1,
                "{}: the stream carries rejoins but none executed",
                cell.backend
            );
        }
        if fully_paired {
            assert_eq!(
                final_keys, cell.entries,
                "{}: WAL-durable keys missing after the last rejoin",
                cell.backend
            );
        }
        assert_eq!(o.totals.lost_lookups, 0, "{}: unaccounted probe loss", cell.backend);
        if o.totals.repair_bytes_full > 0 {
            assert!(
                o.totals.repair_bytes < o.totals.repair_bytes_full,
                "{}: digest repair must undercut the full-rebuild baseline ({} vs {})",
                cell.backend,
                o.totals.repair_bytes,
                o.totals.repair_bytes_full
            );
        }
    }

    rep.note(format!(
        "durability drill: {} events ({} crash/rejoin pairs, fingerprint {:016x}) × 3 backends at R=2; zero WAL-durable keys missing",
        cmp.events, cmp.rejoins, cmp.fingerprint
    ));
    for cell in &cmp.cells {
        let o = &cell.outcome;
        let savings = if o.totals.repair_bytes_full > 0 {
            1.0 - o.totals.repair_bytes as f64 / o.totals.repair_bytes_full as f64
        } else {
            0.0
        };
        rep.note(format!(
            "{}: {} rejoins replayed in {:.3} ms total; digest repair shipped {} of {} full-rebuild bytes ({:.1}% saved); quorum gap {} window(s)",
            cell.backend,
            o.totals.rejoins,
            o.totals.wal_replay_ms,
            o.totals.repair_bytes,
            o.totals.repair_bytes_full,
            savings * 100.0,
            o.totals.time_to_full_quorum_windows
        ));
    }
    rep
}

/// Runs the CHURN-REPL experiment: sweep, CSVs, table, summary.
pub fn run(ctx: &Ctx, events: Option<usize>) -> ExpReport {
    let mut rep = ExpReport::new("CHURN-REPL");
    let cmp = compute(ctx, events);

    fs::create_dir_all(&ctx.out_dir).expect("create results dir");
    for cell in &cmp.cells {
        if cell.r == 2 {
            let path = ctx.out_dir.join(format!("churn_repl_{}.csv", cell.backend));
            let file = fs::File::create(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
            cell.outcome.write_csv(BufWriter::new(file)).expect("write churn-repl csv");
        }
    }

    println!(
        "\n── CHURN-REPL — {} events, stream fingerprint {:016x} ──",
        cmp.events, cmp.fingerprint
    );
    let mut t = Table::new(&[
        "system",
        "R",
        "crashes",
        "keys",
        "lost",
        "durability",
        "mean quorum avail",
        "repaired copies",
        "copies moved",
    ]);
    for cell in &cmp.cells {
        let o = &cell.outcome;
        let final_keys = o.samples.last().map(|s| s.keys_total).unwrap_or(0);
        t.row(&[
            label(cell.backend).into(),
            cell.r.to_string(),
            o.totals.crashes.to_string(),
            final_keys.to_string(),
            o.totals.keys_lost.to_string(),
            num(final_keys as f64 / cell.entries as f64, 4),
            num(o.totals.mean_quorum_availability, 4),
            o.totals.repaired.to_string(),
            o.totals.entries_migrated.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Contract: losses are exactly accounted on every backend at every R
    // (a key may die with its replicas, but never silently), and nothing
    // readable ever went missing outside that accounting.
    for cell in &cmp.cells {
        let o = &cell.outcome;
        let final_keys = o.samples.last().map(|s| s.keys_total).unwrap_or(0);
        assert_eq!(
            final_keys + o.totals.keys_lost,
            cell.entries,
            "{} R={}: loss accounting must be exact",
            cell.backend,
            cell.r
        );
        assert_eq!(
            o.totals.lost_lookups, 0,
            "{} R={}: unaccounted probe loss",
            cell.backend, cell.r
        );
    }

    let loss_of = |backend: &str, r: usize| {
        cmp.cells
            .iter()
            .find(|c| c.backend == backend && c.r == r)
            .expect("cell ran")
            .outcome
            .totals
            .keys_lost
    };
    rep.note(format!(
        "identical crash stream: {} events (fingerprint {:016x}) × 3 backends × R∈{{1,2,3}}; loss accounting exact everywhere",
        cmp.events, cmp.fingerprint
    ));
    rep.note(format!(
        "keys lost (local approach): R=1 {} / R=2 {} / R=3 {} of {} keys",
        loss_of("local", 1),
        loss_of("local", 2),
        loss_of("local", 3),
        cmp.cells[0].entries
    ));
    let quorum_of = |backend: &str, r: usize| {
        cmp.cells
            .iter()
            .find(|c| c.backend == backend && c.r == r)
            .expect("cell ran")
            .outcome
            .totals
            .mean_quorum_availability
    };
    rep.note(format!(
        "mean quorum availability at R=2: local {:.4} / global {:.4} / CH {:.4}",
        quorum_of("local", 2),
        quorum_of("global", 2),
        quorum_of("ch", 2)
    ));
    rep
}

fn label(backend: &str) -> &'static str {
    match backend {
        "local" => "model (local approach)",
        "global" => "model (global approach)",
        _ => "Consistent Hashing k=32",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_ctx(dir: &str) -> Ctx {
        Ctx::quick(std::env::temp_dir().join(dir))
    }

    #[test]
    fn churn_repl_runs_and_accounts_losses() {
        let ctx = smoke_ctx("domus-replx-smoke");
        let rep = run(&ctx, Some(150));
        assert_eq!(rep.id, "CHURN-REPL");
        assert!(rep.summary.iter().any(|l| l.contains("loss accounting exact")));
        for name in ["local", "global", "ch"] {
            let csv = std::fs::read_to_string(ctx.out_dir.join(format!("churn_repl_{name}.csv")))
                .expect("per-backend CSV written");
            assert!(csv.starts_with("window,t_ms,"));
            assert!(csv.lines().next().unwrap().contains("quorum_availability"));
        }
    }

    #[test]
    fn rejoin_drill_recovers_every_wal_durable_key() {
        let ctx = smoke_ctx("domus-replx-rejoin");
        let rep = run_rejoin(&ctx, None);
        assert_eq!(rep.id, "CHURN-REPL-REJOIN");
        assert!(rep.summary.iter().any(|l| l.contains("zero WAL-durable keys missing")));
        for name in ["local", "global", "ch"] {
            let csv =
                std::fs::read_to_string(ctx.out_dir.join(format!("churn_repl_rejoin_{name}.csv")))
                    .expect("per-backend rejoin CSV written");
            assert!(csv.starts_with("window,t_ms,"));
            let header = csv.lines().next().unwrap();
            assert!(header.contains("wal_replay_ms"));
            assert!(header.contains("repair_bytes"));
            assert!(header.contains("quorum_gap_windows"));
        }
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let ctx = smoke_ctx("domus-replx-det");
        let a = compute(&ctx, Some(120));
        let b = compute(&ctx, Some(120));
        assert_eq!(a.fingerprint, b.fingerprint);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!((ca.backend, ca.r), (cb.backend, cb.r));
            assert_eq!(ca.outcome.csv_string(), cb.outcome.csv_string());
        }
    }
}

//! In-text claims of §4.1/§4.1.1/§4.2, each reproduced as its own
//! experiment (ids CLAIM-PV, CLAIM-30, CLAIM-8K, CLAIM-Z1, CLAIM-G512 in
//! DESIGN.md §4).

use crate::fig4::{compute as fig4_compute, Fig4Data};
use crate::output::write_csv;
use crate::runner::{average_runs, derive_seed, global_growth, local_growth};
use crate::{Ctx, ExpReport};
use domus_core::DhtConfig;
use domus_hashspace::HashSpace;
use domus_metrics::series::Series;
use domus_metrics::table::{num, Table};

/// **CLAIM-PV** — §4.1(b): "increasing Pmin beyond the same value of Vmin
/// decreases σ̄(Qv) by a very marginal amount". Full `Pmin × Vmin` grid,
/// reporting end-state σ̄.
pub fn claim_pv(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("CLAIM-PV");
    let space = HashSpace::full();
    let values: Vec<u64> = ctx.diagonal_values();
    let runs = (ctx.runs / 2).max(3);

    let mut grid: Vec<Vec<f64>> = Vec::new();
    for &pmin in &values {
        let mut row = Vec::new();
        for &vmin in &values {
            let cfg = DhtConfig::new(space, pmin, vmin).expect("powers of two");
            let label = format!("claim-pv-{pmin}-{vmin}");
            let end = average_runs("cell", &label, &ctx.seeds, runs, ctx.n, move |seed| {
                local_growth(cfg, ctx.n, seed).iter().map(|g| g.vnode_relstd).collect()
            })
            .mean_series()
            .last_y()
            .expect("non-empty");
            row.push(end);
        }
        grid.push(row);
    }

    let headers: Vec<String> = std::iter::once("Pmin \\ Vmin".to_string())
        .chain(values.iter().map(u64::to_string))
        .collect();
    let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, &pmin) in values.iter().enumerate() {
        let mut row = vec![pmin.to_string()];
        row.extend(grid[i].iter().map(|&x| num(x, 2)));
        t.row(&row);
    }
    println!("\n── CLAIM-PV — σ̄(Qv) at V={} over the Pmin × Vmin grid ──", ctx.n);
    println!("{}", t.render());

    // Quantify the claim: for each Vmin column, how much does raising Pmin
    // above the diagonal help, relative to the gain from raising Vmin?
    let mut max_pmin_gain = 0.0f64;
    for (j, &vmin) in values.iter().enumerate() {
        let diag_i = values.iter().position(|&p| p == vmin).expect("diagonal");
        let diag = grid[diag_i][j];
        for row in grid.iter().skip(diag_i + 1) {
            max_pmin_gain = max_pmin_gain.max(diag - row[j]);
        }
    }
    let diag_first = grid[0][0];
    let diag_last = grid[values.len() - 1][values.len() - 1];
    rep.note(format!(
        "max gain from Pmin > Vmin: {max_pmin_gain:.2} pp — vs {:.2} pp from walking the diagonal ({} → {})",
        diag_first - diag_last,
        values[0],
        values[values.len() - 1]
    ));

    let rows: Vec<Series> = values
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            Series::new(
                format!("Pmin={p}"),
                values.iter().map(|&v| v as f64).collect(),
                grid[i].clone(),
            )
        })
        .collect();
    let path = write_csv(ctx, "claim_pv_grid", "vmin", &rows);
    rep.note(format!("csv: {}", path.display()));
    rep
}

/// **CLAIM-30** — §4.1.1: "each time Pmin and Vmin double, σ̄(Qv)
/// decreases by nearly 30%." Ratios of consecutive zone-2 plateaus from
/// the FIG4 sweep.
pub fn claim_30(ctx: &Ctx, fig4: Option<&Fig4Data>) -> ExpReport {
    let mut rep = ExpReport::new("CLAIM-30");
    let owned;
    let data = match fig4 {
        Some(d) => d,
        None => {
            owned = fig4_compute(ctx);
            &owned
        }
    };
    let plateaus: Vec<f64> = data
        .values
        .iter()
        .zip(&data.curves)
        .map(|(v, c)| c.mean_y_in((4 * v + 1) as f64, ctx.n as f64))
        .collect();

    let mut t = Table::new(&["doubling", "plateau before %", "plateau after %", "ratio", "drop %"]);
    let mut drops = Vec::new();
    for i in 1..plateaus.len() {
        let ratio = plateaus[i] / plateaus[i - 1];
        drops.push(100.0 * (1.0 - ratio));
        t.row(&[
            format!("({0},{0}) → ({1},{1})", data.values[i - 1], data.values[i]),
            num(plateaus[i - 1], 2),
            num(plateaus[i], 2),
            num(ratio, 3),
            num(100.0 * (1.0 - ratio), 1),
        ]);
    }
    println!("\n── CLAIM-30 — σ̄ drop per (Pmin,Vmin) doubling ──");
    println!("{}", t.render());
    let mean_drop = drops.iter().sum::<f64>() / drops.len().max(1) as f64;
    rep.note(format!("mean drop per doubling: {mean_drop:.1}% (paper: \"nearly 30%\")"));
    rep
}

/// **CLAIM-8K** — §4.1.1: "after a sudden increase, σ̄(Qv) remains
/// relatively stable (this observation was confirmed by additional tests
/// made with 8192 vnodes)."
pub fn claim_8k(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("CLAIM-8K");
    let n = if ctx.n >= 1024 { 8192 } else { ctx.n * 4 };
    let runs = (ctx.runs / 5).max(2);
    let (pmin, vmin) = if ctx.n >= 512 { (32, 32) } else { (8, 8) };
    let cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");
    let curve = average_runs("σ̄(Qv)", "claim-8k", &ctx.seeds, runs, n, move |seed| {
        local_growth(cfg, n, seed).iter().map(|g| g.vnode_relstd).collect()
    })
    .mean_series();

    let path = write_csv(ctx, "claim_8k_stability", "vnodes", std::slice::from_ref(&curve));
    rep.note(format!("csv: {}", path.display()));

    let mut t = Table::new(&["V", "σ̄(Qv) %"]);
    let mut v = 4 * vmin as usize * 2;
    while v <= n {
        if let Some(i) = curve.x.iter().position(|&x| x == v as f64) {
            t.row(&[v.to_string(), num(curve.y[i], 2)]);
        }
        v *= 2;
    }
    println!("\n── CLAIM-8K — σ̄(Qv) stability out to {n} vnodes (Pmin=Vmin={vmin}) ──");
    println!("{}", t.render());

    // Stability: over the second half of the run, the curve must stay
    // within a narrow band.
    let tail_lo = curve.mean_y_in(n as f64 / 2.0, n as f64 * 0.75);
    let tail_hi = curve.mean_y_in(n as f64 * 0.75, n as f64);
    rep.note(format!(
        "second-zone tail means: [{tail_lo:.2}%, {tail_hi:.2}%] — drift {:.2} pp over the last half",
        (tail_hi - tail_lo).abs()
    ));
    rep
}

/// **CLAIM-Z1** — §4.1.1: in zone 1 (`1 ≤ V ≤ Vmax`) the local curve
/// "matches the one under the global approach, for the same value of
/// Pmin" — exactly, since a single group runs the identical algorithm.
pub fn claim_zone1(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("CLAIM-Z1");
    let (pmin, vmin) = if ctx.n >= 128 { (32u64, 32u64) } else { (8, 8) };
    let n = (2 * vmin) as usize; // zone 1 exactly
    let local_cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");
    let global_cfg = DhtConfig::new(HashSpace::full(), pmin, 1).expect("powers of two");

    let mut max_gap = 0.0f64;
    for run in 0..ctx.runs.min(20) {
        let seed_l = derive_seed(&ctx.seeds, "claim-z1-l", run);
        let seed_g = derive_seed(&ctx.seeds, "claim-z1-g", run);
        let l: Vec<f64> =
            local_growth(local_cfg, n, seed_l).iter().map(|g| g.vnode_relstd).collect();
        let g = global_growth(global_cfg, n, seed_g);
        for (a, b) in l.iter().zip(&g) {
            max_gap = max_gap.max((a - b).abs());
        }
    }
    println!("\n── CLAIM-Z1 — zone 1 equivalence (V ≤ Vmax = {}) ──", 2 * vmin);
    println!(
        "max |local − global| over {} runs × {n} creations: {max_gap:.3e} pp",
        ctx.runs.min(20)
    );
    rep.note(format!(
        "zone-1 max deviation local vs global (independent seeds): {max_gap:.3e} pp — identical, as §4.1.1 predicts"
    ));
    rep
}

/// **CLAIM-G512** — §4.2: "when Vmin = 512, there will be only one group
/// (once Vmax = 1024), and so the values of σ̄(Qv) match those of the
/// global approach" — over the full run.
pub fn claim_g512(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("CLAIM-G512");
    let n = ctx.n;
    let vmin = (n as u64) / 2;
    let pmin = 32u64.min(vmin);
    let local_cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");
    let global_cfg = DhtConfig::new(HashSpace::full(), pmin, 1).expect("powers of two");

    let seed = derive_seed(&ctx.seeds, "claim-g512", 0);
    let l: Vec<f64> = local_growth(local_cfg, n, seed).iter().map(|g| g.vnode_relstd).collect();
    let g = global_growth(global_cfg, n, seed ^ 0x5555);
    let max_gap = l.iter().zip(&g).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("\n── CLAIM-G512 — Vmin = {vmin} single-group equivalence over V = 1..{n} ──");
    println!("max |local − global| : {max_gap:.3e} pp");
    rep.note(format!(
        "Vmin={vmin}: max deviation from the global approach over the full run: {max_gap:.3e} pp (paper: curves match)"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone1_gap_is_zero() {
        let ctx = Ctx::quick(std::env::temp_dir().join("domus-claims-test"));
        let rep = claim_zone1(&ctx);
        // The note embeds the measured gap; the property itself is asserted
        // here directly.
        let (pmin, vmin) = (8u64, 8u64);
        let n = 16;
        let l_cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).unwrap();
        let g_cfg = DhtConfig::new(HashSpace::full(), pmin, 1).unwrap();
        let l: Vec<f64> = local_growth(l_cfg, n, 1).iter().map(|g| g.vnode_relstd).collect();
        let g = global_growth(g_cfg, n, 2);
        for (a, b) in l.iter().zip(&g) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(!rep.summary.is_empty());
    }
}

//! **HET** — the motivating feature (§1): heterogeneous enrollment. Quota
//! per node must track enrollment weight, and dynamic re-enrollment
//! (§2.1.2) must re-balance on-line.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_core::{Cluster, DhtConfig, DhtEngine, EnrollmentPolicy, LocalDht};
use domus_hashspace::HashSpace;
use domus_metrics::rel_std_dev_pct;
use domus_metrics::table::{num, Table};

/// Runs the heterogeneity experiment.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("HET");
    let cfg = DhtConfig::new(HashSpace::full(), 8, 8).expect("powers of two");
    let seed = derive_seed(&ctx.seeds, "het", 0);
    let mut cluster =
        Cluster::with_policy(LocalDht::with_seed(cfg, seed), EnrollmentPolicy { unit: 8 });

    // A three-generation cluster: old (w=1), mid (w=2), new (w=4) machines.
    let weights = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 4.0, 4.0, 1.0, 2.0, 4.0];
    for &w in &weights {
        cluster.join(w).expect("join");
    }

    println!("\n── HET — heterogeneous enrollment ──");
    let mut t = Table::new(&["snode", "weight", "vnodes", "quota %", "quota/weight %"]);
    for (s, q) in cluster.node_quotas() {
        let w = cluster.weight_of(s).expect("known node");
        let v = cluster.vnodes_of(s).expect("known node").len();
        t.row(&[s.to_string(), num(w, 1), v.to_string(), num(100.0 * q, 2), num(100.0 * q / w, 2)]);
    }
    println!("{}", t.render());

    let qpw: Vec<f64> = cluster.quota_per_weight().into_iter().map(|(_, q)| q).collect();
    let flatness = rel_std_dev_pct(qpw.iter().copied());
    rep.note(format!(
        "quota-per-weight relative spread across {} heterogeneous nodes: {flatness:.2}%",
        weights.len()
    ));

    // Dynamic re-enrollment: quadruple one node's weight and verify its
    // quota share follows.
    let target = cluster.nodes()[0];
    let before = cluster.node_quotas().iter().find(|(s, _)| *s == target).expect("node").1;
    cluster.set_weight(target, 4.0).expect("re-enroll");
    let after = cluster.node_quotas().iter().find(|(s, _)| *s == target).expect("node").1;
    rep.note(format!(
        "dynamic re-enrollment 1.0 → 4.0: quota {:.2}% → {:.2}% (×{:.1})",
        100.0 * before,
        100.0 * after,
        after / before
    ));
    cluster.engine().check_invariants().expect("invariants after re-enrollment");

    // Withdrawal: the heaviest node leaves; quotas repartition to 100%.
    let heavy = cluster.nodes()[7];
    cluster.leave(heavy).expect("leave");
    let total: f64 = cluster.node_quotas().iter().map(|(_, q)| q).sum();
    rep.note(format!("after the heaviest node leaves, quota total = {total:.6} (must be 1.0)"));
    cluster.engine().check_invariants().expect("invariants after leave");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn het_experiment_is_self_consistent() {
        let ctx = Ctx::quick(std::env::temp_dir().join("domus-het-test"));
        let rep = run(&ctx);
        assert_eq!(rep.id, "HET");
        assert!(rep.summary.iter().any(|l| l.contains("re-enrollment")));
    }
}

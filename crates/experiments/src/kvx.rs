//! **KV-MIGRATE** — end-to-end data-migration cost (DESIGN.md §4).
//!
//! Loads a uniform key population, then grows and shrinks the cluster,
//! measuring what fraction of the stored data each maintenance event
//! moves. The information-theoretic floor for a join is `≈ 1/V` of the
//! data (whatever the newcomer ends up owning must move); both the model
//! and CH sit near that floor on joins — the model's edge is the *balance
//! achieved per byte moved*, which this experiment reports alongside.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChRing;
use domus_core::{DhtConfig, DhtEngine, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use domus_kv::{KvStore, UniformKeys};
use domus_metrics::table::{num, Table};

/// Runs the migration experiment.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("KV-MIGRATE");
    let entries = if ctx.n >= 512 { 40_000u64 } else { 8_000 };
    let start_vnodes = 8usize;
    let end_vnodes = if ctx.n >= 512 { 64usize } else { 24 };
    let space = HashSpace::full();
    let seed = derive_seed(&ctx.seeds, "kv-migrate", 0);

    // --- The model (local approach, Pmin = Vmin = 32 scaled down).
    let (pmin, vmin) = if ctx.n >= 512 { (32, 32) } else { (8, 8) };
    let cfg = DhtConfig::new(space, pmin, vmin).expect("powers of two");
    let mut kv = KvStore::new(LocalDht::with_seed(cfg, seed));
    for s in 0..start_vnodes {
        kv.join(SnodeId(s as u32)).expect("join");
    }
    let keys = UniformKeys::new(entries);
    for i in 0..entries {
        kv.put(keys.key_at(i), domus_kv::workload::value_of(16, i));
    }

    let mut moved_fracs = Vec::new();
    for s in start_vnodes..end_vnodes {
        let (_, mig) = kv.join(SnodeId(s as u32)).expect("join");
        moved_fracs.push(mig.entries as f64 / entries as f64);
    }
    kv.verify_placement().expect("placement after joins");
    let mean_join_frac = moved_fracs.iter().sum::<f64>() / moved_fracs.len() as f64;
    let floor: f64 = (start_vnodes..end_vnodes).map(|v| 1.0 / (v + 1) as f64).sum::<f64>()
        / (end_vnodes - start_vnodes) as f64;

    // Storage balance achieved (relative spread of entries per vnode).
    let counts: Vec<f64> =
        kv.entries_per_vnode().into_iter().map(|(_, n)| n as f64).collect();
    let model_balance = domus_metrics::rel_std_dev_pct(counts.iter().copied());

    // --- CH reference: quota claimed by each join = data fraction moved.
    let mut ring = ChRing::with_seed(space, 32, seed ^ 0xCC);
    let mut ch_nodes = Vec::new();
    for _ in 0..start_vnodes {
        ch_nodes.push(ring.join());
    }
    let mut ch_fracs = Vec::new();
    for _ in start_vnodes..end_vnodes {
        let n = ring.join();
        ch_fracs.push(ring.quota_of(n));
        ch_nodes.push(n);
    }
    let ch_mean_frac = ch_fracs.iter().sum::<f64>() / ch_fracs.len() as f64;
    let ch_balance = ring.node_quota_relstd_pct();

    // --- Shrink phase for the model: leave costs.
    let mut leave_fracs = Vec::new();
    let vnodes = kv.engine().vnodes();
    for v in vnodes.into_iter().take((end_vnodes - start_vnodes) / 2) {
        let mig = kv.leave(v).expect("leave");
        leave_fracs.push(mig.entries as f64 / entries as f64);
    }
    kv.verify_placement().expect("placement after leaves");
    let mean_leave_frac = leave_fracs.iter().sum::<f64>() / leave_fracs.len().max(1) as f64;

    println!("\n── KV-MIGRATE — {entries} entries, cluster {start_vnodes} → {end_vnodes} vnodes ──");
    let mut t = Table::new(&["system", "mean data moved per join", "theoretical floor", "end balance σ̄ %"]);
    t.row(&[
        "model (local approach)".into(),
        format!("{:.2}%", 100.0 * mean_join_frac),
        format!("{:.2}%", 100.0 * floor),
        num(model_balance, 2),
    ]);
    t.row(&[
        "Consistent Hashing k=32".into(),
        format!("{:.2}%", 100.0 * ch_mean_frac),
        format!("{:.2}%", 100.0 * floor),
        num(ch_balance, 2),
    ]);
    println!("{}", t.render());

    rep.note(format!(
        "join migration: model {:.2}% of data per join vs CH {:.2}% (floor {:.2}%)",
        100.0 * mean_join_frac,
        100.0 * ch_mean_frac,
        100.0 * floor
    ));
    rep.note(format!(
        "end storage balance: model σ̄ {model_balance:.2}% vs CH quota σ̄ {ch_balance:.2}% — same move volume, far tighter balance"
    ));
    rep.note(format!("leave migration (model): {:.2}% of data per departure", 100.0 * mean_leave_frac));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_stays_near_the_floor() {
        let ctx = Ctx::quick(std::env::temp_dir().join("domus-kvx-test"));
        let rep = run(&ctx);
        assert!(rep.summary.iter().any(|l| l.contains("join migration")));
    }
}

//! **KV-MIGRATE** — end-to-end data-migration cost (DESIGN.md §4).
//!
//! Loads a uniform key population, then grows and shrinks the cluster,
//! measuring what fraction of the stored data each maintenance event
//! moves. The information-theoretic floor for a join is `≈ 1/V` of the
//! data (whatever the newcomer ends up owning must move); every backend
//! sits near that floor on joins — the model's edge is the *balance
//! achieved per byte moved*, which this experiment reports alongside.
//!
//! The sweep is **one generic function over [`DhtEngine`]**: the global
//! approach, the local approach and Consistent Hashing (through
//! [`ChEngine`]) run the identical workload through the identical
//! [`KvStore`] migration machinery, so the comparison prices real data
//! movement on all three — not a quota proxy for CH.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChEngine;
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht, SnodeId};
use domus_hashspace::HashSpace;
use domus_kv::{KvStore, UniformKeys};
use domus_metrics::table::{num, Table};

/// What one backend's sweep measured.
pub struct SweepResult {
    /// Mean fraction of stored entries moved per join.
    pub mean_join_frac: f64,
    /// Mean fraction moved per departure.
    pub mean_leave_frac: f64,
    /// End-of-growth storage balance `σ̄` (%) over entries per vnode
    /// (includes ~√N key-sampling noise).
    pub storage_relstd: f64,
    /// End-of-growth quota balance `σ̄(Qv)` (%) straight from the engine
    /// (deterministic — the paper's metric).
    pub quota_relstd: f64,
}

/// Grows `engine` from `start` to `end` vnodes under a constant key
/// population, then removes half the growth again — measuring migration
/// at every step and auditing placement after each phase.
pub fn migration_sweep<E: DhtEngine>(
    engine: E,
    entries: u64,
    start_vnodes: usize,
    end_vnodes: usize,
) -> SweepResult {
    let mut kv = KvStore::new(engine);
    for s in 0..start_vnodes {
        kv.join(SnodeId(s as u32)).expect("join");
    }
    let keys = UniformKeys::new(entries);
    for i in 0..entries {
        kv.put(keys.key_at(i), domus_kv::workload::value_of(16, i));
    }

    let mut join_fracs = Vec::new();
    for s in start_vnodes..end_vnodes {
        let (_, mig) = kv.join(SnodeId(s as u32)).expect("join");
        join_fracs.push(mig.entries as f64 / entries as f64);
    }
    kv.verify_placement().expect("placement after joins");
    let mean_join_frac = join_fracs.iter().sum::<f64>() / join_fracs.len().max(1) as f64;

    // Storage balance achieved (relative spread of entries per vnode),
    // and the engine's own quota balance at the same instant.
    let counts: Vec<f64> = kv.entries_per_vnode().into_iter().map(|(_, n)| n as f64).collect();
    let storage_relstd = domus_metrics::rel_std_dev_pct(counts.iter().copied());
    let quota_relstd = kv.engine().vnode_quota_relstd_pct();

    // Shrink phase: leave costs.
    let mut leave_fracs = Vec::new();
    let vnodes = kv.engine().vnodes();
    for v in vnodes.into_iter().take((end_vnodes - start_vnodes) / 2) {
        let mig = kv.leave(v).expect("leave");
        leave_fracs.push(mig.entries as f64 / entries as f64);
    }
    kv.verify_placement().expect("placement after leaves");
    let mean_leave_frac = leave_fracs.iter().sum::<f64>() / leave_fracs.len().max(1) as f64;

    SweepResult { mean_join_frac, mean_leave_frac, storage_relstd, quota_relstd }
}

/// Runs the migration experiment over all three backends.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("KV-MIGRATE");
    let entries = if ctx.n >= 512 { 40_000u64 } else { 8_000 };
    let start_vnodes = 8usize;
    let end_vnodes = if ctx.n >= 512 { 64usize } else { 24 };
    let space = HashSpace::full();
    let seed = derive_seed(&ctx.seeds, "kv-migrate", 0);
    let (pmin, vmin) = if ctx.n >= 512 { (32, 32) } else { (8, 8) };

    let floor: f64 = (start_vnodes..end_vnodes).map(|v| 1.0 / (v + 1) as f64).sum::<f64>()
        / (end_vnodes - start_vnodes) as f64;

    let local = migration_sweep(
        LocalDht::with_seed(DhtConfig::new(space, pmin, vmin).expect("powers of two"), seed),
        entries,
        start_vnodes,
        end_vnodes,
    );
    let global = migration_sweep(
        GlobalDht::with_seed(DhtConfig::new(space, pmin, 1).expect("powers of two"), seed),
        entries,
        start_vnodes,
        end_vnodes,
    );
    let ch = migration_sweep(
        ChEngine::with_seed(
            DhtConfig::new(space, pmin, 1).expect("powers of two"),
            32,
            seed ^ 0xCC,
        ),
        entries,
        start_vnodes,
        end_vnodes,
    );

    println!(
        "\n── KV-MIGRATE — {entries} entries, cluster {start_vnodes} → {end_vnodes} vnodes ──"
    );
    let mut t = Table::new(&[
        "system",
        "mean data moved per join",
        "per leave",
        "theoretical floor",
        "end balance σ̄ %",
    ]);
    for (name, r) in [
        ("model (local approach)", &local),
        ("model (global approach)", &global),
        ("Consistent Hashing k=32", &ch),
    ] {
        t.row(&[
            name.into(),
            format!("{:.2}%", 100.0 * r.mean_join_frac),
            format!("{:.2}%", 100.0 * r.mean_leave_frac),
            format!("{:.2}%", 100.0 * floor),
            num(r.storage_relstd, 2),
        ]);
    }
    println!("{}", t.render());

    rep.note(format!(
        "join migration: local {:.2}% / global {:.2}% / CH {:.2}% of data per join (floor {:.2}%)",
        100.0 * local.mean_join_frac,
        100.0 * global.mean_join_frac,
        100.0 * ch.mean_join_frac,
        100.0 * floor
    ));
    rep.note(format!(
        "end storage balance: local σ̄ {:.2}% / global σ̄ {:.2}% vs CH σ̄ {:.2}% — similar move volume, far tighter balance",
        local.storage_relstd, global.storage_relstd, ch.storage_relstd
    ));
    rep.note(format!(
        "leave migration: local {:.2}% / global {:.2}% / CH {:.2}% of data per departure",
        100.0 * local.mean_leave_frac,
        100.0 * global.mean_leave_frac,
        100.0 * ch.mean_leave_frac
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_stays_near_the_floor() {
        let ctx = Ctx::quick(std::env::temp_dir().join("domus-kvx-test"));
        let rep = run(&ctx);
        assert!(rep.summary.iter().any(|l| l.contains("join migration")));
    }

    #[test]
    fn generic_sweep_audits_all_backends() {
        let space = HashSpace::full();
        // The paper's reference Pmin=Vmin=32 grown to the power-of-two
        // population V=64 (σ̄(Qv) collapses, fig4) against CH with k=16
        // (σ̄ ≈ 100/√16 = 25%). The quota metric is deterministic, so the
        // gap is structural, not seed luck.
        let local = migration_sweep(
            LocalDht::with_seed(DhtConfig::new(space, 32, 32).unwrap(), 9),
            8_000,
            4,
            64,
        );
        let ch = migration_sweep(
            ChEngine::with_seed(DhtConfig::new(space, 32, 1).unwrap(), 16, 9),
            8_000,
            4,
            64,
        );
        // Both move a nonzero, sane fraction per join; the model balances
        // quotas far more tightly than CH.
        for r in [&local, &ch] {
            assert!(r.mean_join_frac > 0.0 && r.mean_join_frac < 0.9);
            assert!(r.mean_leave_frac > 0.0);
            assert!(r.storage_relstd.is_finite());
        }
        assert!(
            local.quota_relstd + 5.0 < ch.quota_relstd,
            "model σ̄(Qv) {:.2}% must clearly undercut CH σ̄(Qn) {:.2}%",
            local.quota_relstd,
            ch.quota_relstd
        );
    }
}

//! **FIG5** — Figure 5 of the paper: the parameter-choice functional
//! `θ = α·[Vmin/max(Vmin)] + β·[σ̄(Qv)/max(σ̄(Qv))]` with `α = β = 0.5`,
//! plotted for `Vmin ∈ {8, 16, 32, 64, 128}` (Pmin = Vmin).
//!
//! The paper does not state at which V the `σ̄` term is sampled; we use the
//! end state (V = 1024) and also report θ built from the zone-2 plateau
//! mean as a robustness check (DESIGN.md §7 item 4). The paper's
//! observation — θ minimises at `Vmin = 32` — must hold for both.

use crate::fig4::{compute as fig4_compute, Fig4Data};
use crate::output::{print_plot, write_csv};
use crate::{Ctx, ExpReport};
use domus_metrics::series::Series;
use domus_metrics::table::{num, Table};

/// θ for the weights `alpha`/`beta` from raw `(Vmin, σ̄)` pairs.
pub fn theta(values: &[u64], sigmas: &[f64], alpha: f64, beta: f64) -> Vec<f64> {
    assert_eq!(values.len(), sigmas.len());
    let vmax = *values.iter().max().expect("non-empty sweep") as f64;
    let smax = sigmas.iter().cloned().fold(f64::MIN, f64::max);
    values
        .iter()
        .zip(sigmas)
        .map(|(&v, &s)| alpha * (v as f64 / vmax) + beta * (s / smax))
        .collect()
}

/// Runs FIG5, reusing `fig4` data when the dispatcher already has it.
pub fn run(ctx: &Ctx, fig4: Option<&Fig4Data>) -> ExpReport {
    let mut rep = ExpReport::new("FIG5");
    let owned;
    let data = match fig4 {
        Some(d) => d,
        None => {
            owned = fig4_compute(ctx);
            &owned
        }
    };

    let end_sigma: Vec<f64> =
        data.curves.iter().map(|c| c.last_y().expect("non-empty curve")).collect();
    let plateau_sigma: Vec<f64> = data
        .values
        .iter()
        .zip(&data.curves)
        .map(|(v, c)| c.mean_y_in((4 * v + 1) as f64, ctx.n as f64))
        .collect();

    let theta_end = theta(&data.values, &end_sigma, 0.5, 0.5);
    let theta_plateau = theta(&data.values, &plateau_sigma, 0.5, 0.5);

    let x: Vec<f64> = data.values.iter().map(|&v| v as f64).collect();
    let s_end = Series::new("θ (σ̄ at end state)", x.clone(), theta_end.clone());
    let s_plat = Series::new("θ (σ̄ = zone-2 plateau mean)", x, theta_plateau.clone());
    let path = write_csv(ctx, "fig5_theta", "vmin", &[s_end.clone(), s_plat.clone()]);
    rep.note(format!("csv: {}", path.display()));

    print_plot(
        "Figure 5 — θ for Vmin sweep (α = β = 0.5)",
        &[s_end, s_plat],
        "θ",
        "Vmin",
        Some(1.0),
    );

    let mut t = Table::new(&["Vmin", "σ̄ end %", "θ(end)", "σ̄ plateau %", "θ(plateau)"]);
    for i in 0..data.values.len() {
        t.row(&[
            data.values[i].to_string(),
            num(end_sigma[i], 2),
            num(theta_end[i], 3),
            num(plateau_sigma[i], 2),
            num(theta_plateau[i], 3),
        ]);
    }
    println!("{}", t.render());

    let argmin = |th: &[f64]| {
        data.values[th
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0]
    };
    let m_end = argmin(&theta_end);
    let m_plat = argmin(&theta_plateau);
    rep.note(format!("θ minimised at Vmin = {m_end} (end-state σ̄); paper: 32"));
    rep.note(format!("θ minimised at Vmin = {m_plat} (plateau σ̄); paper: 32"));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_formula_matches_hand_computation() {
        // values {8,...,128}, σ̄ like the paper's figure-4 plateaus.
        let values = [8u64, 16, 32, 64, 128];
        let sigmas = [22.0, 15.4, 10.8, 7.5, 5.3];
        let th = theta(&values, &sigmas, 0.5, 0.5);
        // Hand check for Vmin = 32: 0.5·(32/128) + 0.5·(10.8/22).
        let expect = 0.5 * (32.0 / 128.0) + 0.5 * (10.8 / 22.0);
        assert!((th[2] - expect).abs() < 1e-12);
        // And the minimum falls at index 2 (Vmin = 32), as in the paper.
        let (argmin, _) =
            th.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        assert_eq!(values[argmin], 32);
    }

    #[test]
    fn equal_sigmas_make_theta_monotone_in_vmin() {
        let values = [8u64, 16, 32];
        let th = theta(&values, &[5.0, 5.0, 5.0], 0.5, 0.5);
        assert!(th[0] < th[1] && th[1] < th[2]);
    }
}

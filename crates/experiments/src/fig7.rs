//! **FIG7** — Figure 7 of the paper: evolution of the real (`G_real`) vs
//! ideal (`G_ideal`) number of groups, `Pmin = Vmin = 32`.
//!
//! Ideally the group count doubles each time `V` crosses a power-of-two
//! multiple of `Vmax`; in reality splits are premature and late, and the
//! divergence widens with `V` (§4.2.1). The harness emits the run-averaged
//! `G_real`, one representative single-seed trace (the staircase is sharper
//! per run), and `G_ideal`.

use crate::output::{canonical_samples, print_plot, sample_points, write_csv};
use crate::runner::{average_runs, derive_seed, local_growth};
use crate::{Ctx, ExpReport};
use domus_core::{ideal_group_count, DhtConfig};
use domus_hashspace::HashSpace;
use domus_metrics::series::Series;
use domus_metrics::table::{num, Table};

/// The figure's parameters.
pub const PMIN: u64 = 32;
/// See [`PMIN`].
pub const VMIN: u64 = 32;

/// Scales the figure's `(Pmin, Vmin) = (32, 32)` to smaller quick-mode runs.
fn params(ctx: &Ctx) -> (u64, u64) {
    if ctx.n >= 512 {
        (PMIN, VMIN)
    } else {
        (8, 8)
    }
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("FIG7");
    let (pmin, vmin) = params(ctx);
    let cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");

    let avg =
        average_runs("G_real (mean of runs)", "fig7", &ctx.seeds, ctx.runs, ctx.n, move |seed| {
            local_growth(cfg, ctx.n, seed).iter().map(|g| g.groups).collect()
        })
        .mean_series();

    let single_seed = derive_seed(&ctx.seeds, "fig7", 0);
    let single = Series::new(
        "G_real (single run)",
        (1..=ctx.n).map(|i| i as f64).collect(),
        local_growth(cfg, ctx.n, single_seed).iter().map(|g| g.groups).collect(),
    );

    let ideal = Series::new(
        "G_ideal",
        (1..=ctx.n).map(|i| i as f64).collect(),
        (1..=ctx.n).map(|v| ideal_group_count(v as u64, 2 * vmin) as f64).collect(),
    );

    let curves = vec![avg.clone(), single, ideal.clone()];
    let path = write_csv(ctx, "fig7_groups", "vnodes", &curves);
    rep.note(format!("csv: {}", path.display()));
    rep.note(format!("parameters: Pmin = Vmin = {vmin}"));

    print_plot(
        "Figure 7 — evolution of the number of groups",
        &curves,
        "overall number of groups",
        "overall number of vnodes",
        None,
    );

    let samples = canonical_samples(ctx.n);
    let mut t = Table::new(&["V", "G_real (mean)", "G_real (single)", "G_ideal"]);
    for &x in &samples {
        t.row(&[
            format!("{x:.0}"),
            num(sample_points(&curves[0], &[x])[0].1, 2),
            num(sample_points(&curves[1], &[x])[0].1, 0),
            num(sample_points(&curves[2], &[x])[0].1, 0),
        ]);
    }
    println!("{}", t.render());

    // Divergence diagnostics: premature and late splits.
    let max_over: f64 = avg.y.iter().zip(&ideal.y).map(|(r, i)| r - i).fold(f64::MIN, f64::max);
    let max_under: f64 = avg.y.iter().zip(&ideal.y).map(|(r, i)| i - r).fold(f64::MIN, f64::max);
    rep.note(format!(
        "max premature surplus (G_real − G_ideal): {max_over:.2} groups; max late deficit: {max_under:.2}"
    ));
    rep.note(format!(
        "G_real at V={}: {:.2} (ideal {:.0})",
        ctx.n,
        avg.last_y().unwrap_or(f64::NAN),
        ideal.last_y().unwrap_or(f64::NAN)
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_groups_straddle_the_ideal() {
        // At quick scale there must be both premature and late splits.
        let ctx =
            Ctx { runs: 6, n: 160, ..Ctx::quick(std::env::temp_dir().join("domus-fig7-test")) };
        let (pmin, vmin) = params(&ctx);
        let cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).unwrap();
        let run: Vec<f64> = local_growth(cfg, ctx.n, 3).iter().map(|g| g.groups).collect();
        let mut premature = false;
        let mut late = false;
        for (i, &g) in run.iter().enumerate() {
            let ideal = ideal_group_count((i + 1) as u64, 2 * vmin) as f64;
            if g > ideal {
                premature = true;
            }
            if g < ideal {
                late = true;
            }
        }
        assert!(premature || late, "real trace should diverge from ideal somewhere");
        // The group count is monotone non-decreasing under pure growth.
        for w in run.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}

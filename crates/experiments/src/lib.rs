//! # domus-experiments
//!
//! The reproduction harness: one module per figure and per in-text claim
//! of Rufino et al., IPDPS 2004, plus the ablations and substrate
//! experiments indexed in `DESIGN.md` §4. The `repro` binary dispatches to
//! these modules; each writes `results/<id>.csv`, prints the paper's
//! series as a table and an ASCII plot, and returns summary lines that the
//! `all` command collects into `results/summary.txt` (the source for
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]

pub mod ablations;
pub mod benchsum;
pub mod churnx;
pub mod claims;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod het;
pub mod kvx;
pub mod output;
pub mod replx;
pub mod routex;
pub mod runner;
pub mod simx;

use domus_util::SeedSequence;
use std::path::PathBuf;

/// Shared experiment context: seeds, scale, output directory.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Deterministic seed root (CLI `--seed`, default 2004 — the paper's
    /// year).
    pub seeds: SeedSequence,
    /// Runs to average (paper: 100).
    pub runs: u64,
    /// Vnodes/nodes created per run (paper: 1024).
    pub n: usize,
    /// Where CSVs land.
    pub out_dir: PathBuf,
}

impl Ctx {
    /// The paper's parameters: 100 runs × 1024 creations.
    pub fn paper(out_dir: impl Into<PathBuf>) -> Self {
        Self { seeds: SeedSequence::new(2004), runs: 100, n: 1024, out_dir: out_dir.into() }
    }

    /// A fast smoke-scale context for tests and `--quick`.
    pub fn quick(out_dir: impl Into<PathBuf>) -> Self {
        Self { seeds: SeedSequence::new(2004), runs: 8, n: 192, out_dir: out_dir.into() }
    }

    /// The largest `(Pmin, Vmin)` diagonal value that still leaves room for
    /// several group generations at this scale — used by fig4/fig5 to trim
    /// the sweep under `--quick`.
    pub fn diagonal_values(&self) -> Vec<u64> {
        [8u64, 16, 32, 64, 128].into_iter().filter(|&v| 2 * v * 2 <= self.n as u64).collect()
    }
}

/// The result every experiment hands back to the dispatcher.
#[derive(Debug, Clone, Default)]
pub struct ExpReport {
    /// Experiment id (`FIG4`, `CLAIM-30`, ...).
    pub id: String,
    /// Lines for `results/summary.txt` / EXPERIMENTS.md.
    pub summary: Vec<String>,
    /// `true` when a gated check failed — the dispatcher exits non-zero
    /// after printing the summary (used by `bench-summary --gate`).
    pub failed: bool,
}

impl ExpReport {
    /// A report for `id`.
    pub fn new(id: impl Into<String>) -> Self {
        Self { id: id.into(), summary: Vec::new(), failed: false }
    }

    /// Appends a summary line (also echoed to stdout by the dispatcher).
    pub fn note(&mut self, line: impl Into<String>) {
        self.summary.push(line.into());
    }
}

//! **CHURN-ROUTE** — the routing & failover control plane under a hot
//! spot and a silent stall.
//!
//! The CHURN-REPL experiment proves durability when failures are
//! *announced*: a crash event reaches the driver, which repairs from the
//! surviving replicas. This experiment removes the announcement. One
//! seeded [`Scenario::hotspot_failover`] stream — a fixed-capacity fleet,
//! one node degrading to a quarter of its declared capacity, one node
//! going **silent** with no crash notification ever delivered — replays
//! (fingerprint-checked) through all three backends with the replicated
//! overlay at R = 2 and the `domus-route` control plane riding the run.
//!
//! Per backend it writes `results/churn_route_<backend>.csv` with the
//! per-window route columns: route-table version churn, the deterministic
//! cache probe's hit/stale rates, live and expired leases, failovers and
//! hot-spot migrations. The contract asserted on every backend: the
//! degraded node is detected and rebalanced within bounded windows, the
//! stalled node fails over via lease expiry alone (`crashes == 0` — no
//! crash path was ever taken) with **zero** key loss at R = 2, the
//! lease-safety invariant never breaks, and every cache repair takes at
//! most one retry round.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChEngine;
use domus_churn::{ChurnDriver, ChurnOutcome, DriverConfig, EventKind, EventStream, Scenario};
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};
use domus_route::RouterConfig;
use domus_sim::SimTime;
use std::fs;
use std::io::BufWriter;

/// One backend's routed replay.
pub struct RouteCell {
    /// Backend name (`local`/`global`/`ch`).
    pub backend: &'static str,
    /// Keys loaded at the first join.
    pub entries: u64,
    /// The replay outcome (route columns included).
    pub outcome: ChurnOutcome,
}

/// The full comparison on one stream.
pub struct RouteComparison {
    /// Events replayed per run.
    pub events: usize,
    /// The stream fingerprint every run replayed.
    pub fingerprint: u64,
    /// Whether the (possibly truncated) stream still carries the silent
    /// stall — when `--events` cuts it off, the failover contract is
    /// vacuous and skipped.
    pub has_stall: bool,
    /// Whether the stream still carries the capacity degradation.
    pub has_degrade: bool,
    /// Per-backend cells, report order.
    pub cells: Vec<RouteCell>,
}

/// Compiles the hot-spot/stall scenario and replays it per backend with
/// the router attached (R = 2).
pub fn compute(ctx: &Ctx, events: Option<usize>) -> RouteComparison {
    let paper_scale = ctx.n >= 512;
    let entries: u64 = if paper_scale { 10_000 } else { 2_000 };
    let (pmin, vmin) = if paper_scale { (32, 32) } else { (8, 8) };
    let seed = derive_seed(&ctx.seeds, "churn-route", 0);
    let space = HashSpace::full();

    let build_stream = || {
        let mut s = Scenario::hotspot_failover().build(seed);
        if let Some(n) = events {
            s.truncate(n);
        }
        s
    };
    let reference = build_stream();
    let cfg = DriverConfig {
        window: SimTime((reference.horizon().nanos() / 20).max(1)),
        ..DriverConfig::default()
    };
    // The lease TTL spans 2.5 control-plane ticks, the same ratio the
    // default 75 s TTL holds against the default 30 s window: a stalled
    // node's leases lapse two windows after its last renewal, well
    // before the horizon.
    let router_cfg =
        RouterConfig { lease_ttl: SimTime(cfg.window.nanos() * 5 / 2), ..RouterConfig::default() };

    fn replay<E: DhtEngine + Send + Sync>(
        engine: E,
        cfg: DriverConfig,
        router_cfg: RouterConfig,
        entries: u64,
        stream: &EventStream,
    ) -> ChurnOutcome {
        ChurnDriver::with_replication(engine, cfg, entries, 16, 2)
            .with_router(router_cfg)
            .run(stream)
    }

    let mut cells = Vec::new();
    for name in ["local", "global", "ch"] {
        let stream = build_stream();
        assert_eq!(
            stream.fingerprint(),
            reference.fingerprint(),
            "seeded stream must be identical for every backend"
        );
        let outcome = match name {
            "local" => replay(
                LocalDht::with_seed(
                    DhtConfig::new(space, pmin, vmin).expect("powers of two"),
                    seed,
                ),
                cfg,
                router_cfg,
                entries,
                &stream,
            ),
            "global" => replay(
                GlobalDht::with_seed(DhtConfig::new(space, pmin, 1).expect("powers of two"), seed),
                cfg,
                router_cfg,
                entries,
                &stream,
            ),
            _ => replay(
                ChEngine::with_seed(
                    DhtConfig::new(space, pmin, 1).expect("powers of two"),
                    32,
                    seed ^ 0xCC,
                ),
                cfg,
                router_cfg,
                entries,
                &stream,
            ),
        };
        cells.push(RouteCell { backend: name, entries, outcome });
    }
    RouteComparison {
        events: reference.len(),
        fingerprint: reference.fingerprint(),
        has_stall: reference.events().iter().any(|e| matches!(e.kind, EventKind::StallRank { .. })),
        has_degrade: reference
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::DegradeRank { .. })),
        cells,
    }
}

/// Runs the CHURN-ROUTE experiment: replays, CSVs, table, contract.
pub fn run(ctx: &Ctx, events: Option<usize>) -> ExpReport {
    let mut rep = ExpReport::new("CHURN-ROUTE");
    let cmp = compute(ctx, events);

    fs::create_dir_all(&ctx.out_dir).expect("create results dir");
    for cell in &cmp.cells {
        let path = ctx.out_dir.join(format!("churn_route_{}.csv", cell.backend));
        let file = fs::File::create(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
        cell.outcome.write_csv(BufWriter::new(file)).expect("write churn-route csv");
    }

    println!(
        "\n── CHURN-ROUTE — {} events, stream fingerprint {:016x} ──",
        cmp.events, cmp.fingerprint
    );
    let mut t = Table::new(&[
        "system",
        "failovers",
        "leases expired",
        "hot windows",
        "moves",
        "converged in",
        "cache hit rate",
        "keys lost",
    ]);
    for cell in &cmp.cells {
        let o = &cell.outcome.totals;
        t.row(&[
            label(cell.backend).into(),
            o.failovers.to_string(),
            o.leases_expired.to_string(),
            o.hot_windows.to_string(),
            o.route_moves.to_string(),
            if o.route_converged {
                format!("{} windows", o.route_convergence)
            } else {
                "UNCONVERGED".into()
            },
            num(o.cache_hit_rate, 4),
            o.keys_lost.to_string(),
        ]);
    }
    println!("{}", t.render());

    // The contract, per backend. Unconditional: lease safety never
    // breaks, every cache repair is one round, no key is ever lost at
    // R = 2, and no read ever misses. Conditional on the stream still
    // carrying the seeded faults: the stall fails over through lease
    // expiry alone and the hot spot is shed within bounded windows.
    for cell in &cmp.cells {
        let o = &cell.outcome.totals;
        let name = cell.backend;
        assert_eq!(o.lease_violations, 0, "{name}: lease safety must never break");
        assert_eq!(o.keys_lost, 0, "{name}: R=2 failover must lose nothing");
        assert_eq!(o.lost_lookups, 0, "{name}: no probe may go unanswered");
        assert!(
            cell.outcome.samples.iter().all(|s| s.cache_stale <= 1),
            "{name}: a stale cache must repair within one retry round per probe window"
        );
        if cmp.has_stall {
            assert!(o.leases_expired >= 1, "{name}: the silent stall must lapse its leases");
            assert!(o.failovers >= 1, "{name}: lease expiry must drive a failover");
            assert_eq!(o.crashes, 0, "{name}: no crash notification was ever delivered");
        }
        if cmp.has_degrade {
            assert!(o.hot_windows >= 1, "{name}: the degraded node must trip the detector");
            assert!(o.route_moves >= 1, "{name}: the hot spot must shed vnodes");
            assert!(o.route_converged, "{name}: rebalancing must converge before the horizon");
            assert!(
                o.route_convergence <= 6,
                "{name}: convergence must be bounded ({} windows)",
                o.route_convergence
            );
        }
    }

    rep.note(format!(
        "identical fault stream: {} events (fingerprint {:016x}) × 3 backends, R=2 + router; lease safety and ≤1-round cache repair hold everywhere",
        cmp.events, cmp.fingerprint
    ));
    for cell in &cmp.cells {
        let o = &cell.outcome.totals;
        rep.note(format!(
            "{}: {} failover(s) via lease expiry ({} expired), hot spot shed in {} move(s) over {} hot window(s), converged in {} window(s), cache hit rate {:.4}, {} keys lost",
            label(cell.backend),
            o.failovers,
            o.leases_expired,
            o.route_moves,
            o.hot_windows,
            o.route_convergence,
            o.cache_hit_rate,
            o.keys_lost
        ));
    }
    if cmp.has_stall {
        rep.note("silent stall failed over on every backend with zero key loss at R=2");
    }
    rep
}

fn label(backend: &str) -> &'static str {
    match backend {
        "local" => "model (local approach)",
        "global" => "model (global approach)",
        _ => "Consistent Hashing k=32",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_ctx(dir: &str) -> Ctx {
        Ctx::quick(std::env::temp_dir().join(dir))
    }

    #[test]
    fn churn_route_runs_the_full_contract_on_all_backends() {
        let ctx = smoke_ctx("domus-routex-smoke");
        let rep = run(&ctx, None);
        assert_eq!(rep.id, "CHURN-ROUTE");
        assert!(rep.summary.iter().any(|l| l.contains("zero key loss")));
        for name in ["local", "global", "ch"] {
            let csv = std::fs::read_to_string(ctx.out_dir.join(format!("churn_route_{name}.csv")))
                .expect("per-backend CSV written");
            let header = csv.lines().next().unwrap();
            assert!(header.contains("route_version"));
            assert!(header.contains("cache_hit_rate"));
            assert!(header.contains("leases_expired"));
        }
    }

    #[test]
    fn truncated_streams_skip_the_fault_contract() {
        // Cutting the stream before the stall/degrade events must not
        // trip the conditional asserts — the flags go false.
        let ctx = smoke_ctx("domus-routex-trunc");
        let cmp = compute(&ctx, Some(5));
        assert!(!cmp.has_stall);
        assert!(!cmp.has_degrade);
        let rep = run(&ctx, Some(5));
        assert!(!rep.summary.iter().any(|l| l.contains("zero key loss")));
    }

    #[test]
    fn routed_comparison_is_deterministic_per_seed() {
        let ctx = smoke_ctx("domus-routex-det");
        let a = compute(&ctx, None);
        let b = compute(&ctx, None);
        assert_eq!(a.fingerprint, b.fingerprint);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.backend, cb.backend);
            assert_eq!(ca.outcome.csv_string(), cb.outcome.csv_string());
        }
    }
}

//! Output plumbing: CSV files, ASCII plots, tables.

use crate::Ctx;
use domus_metrics::csv::write_series_columns;
use domus_metrics::plot::{ascii_plot, PlotConfig};
use domus_metrics::series::Series;
use std::fs;
use std::io::BufWriter;

/// Writes the series family as `results/<name>.csv` (shared x grid).
pub fn write_csv(ctx: &Ctx, name: &str, x_name: &str, series: &[Series]) -> std::path::PathBuf {
    fs::create_dir_all(&ctx.out_dir).expect("create results dir");
    let path = ctx.out_dir.join(format!("{name}.csv"));
    let file = fs::File::create(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    write_series_columns(BufWriter::new(file), x_name, series).expect("write csv");
    path
}

/// Prints a titled ASCII plot of the series family.
pub fn print_plot(
    title: &str,
    series: &[Series],
    y_label: &str,
    x_label: &str,
    y_max: Option<f64>,
) {
    println!("\n── {title} {}", "─".repeat(60usize.saturating_sub(title.chars().count())));
    let cfg = PlotConfig {
        width: 76,
        height: 22,
        y_range: y_max.map(|m| (0.0, m)),
        x_label: x_label.to_string(),
        y_label: y_label.to_string(),
    };
    print!("{}", ascii_plot(series, &cfg));
}

/// Down-samples a series at the given x values (plus the last point) for
/// compact tables.
pub fn sample_points(s: &Series, at: &[f64]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &x in at {
        if let Some(i) = s.x.iter().position(|&v| v == x) {
            out.push((x, s.y[i]));
        }
    }
    if let (Some(&lx), Some(&ly)) = (s.x.last(), s.y.last()) {
        if out.last().map(|&(x, _)| x != lx).unwrap_or(true) {
            out.push((lx, ly));
        }
    }
    out
}

/// The canonical x sample grid used by tables: powers of two plus the
/// mid-zone points the paper's figures make visually salient.
pub fn canonical_samples(n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = [16u64, 32, 64, 96, 128, 192, 256, 384, 512, 640, 768, 896, 1024]
        .iter()
        .filter(|&&x| x <= n as u64)
        .map(|&x| x as f64)
        .collect();
    if v.is_empty() {
        v.push(n as f64);
    }
    v
}

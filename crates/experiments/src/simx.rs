//! Substrate experiments quantifying §1/§3's motivation (DESIGN.md ids
//! SIM-MAKESPAN, SIM-MSGS, SIM-MEM): the local approach buys parallelism,
//! bounded synchronisation and smaller records at a small balancement
//! price — the other half of the paper's trade-off, which its evaluation
//! discusses only qualitatively.

use crate::runner::derive_seed;
use crate::{Ctx, ExpReport};
use domus_ch::ChEngine;
use domus_core::{DhtConfig, DhtEngine, GlobalDht, LocalDht};
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};
use domus_sim::{global_footprint, local_footprint, SimDriver};

const SNODES: u32 = 64;

fn scale(ctx: &Ctx) -> usize {
    ctx.n.min(512)
}

/// **SIM-MAKESPAN** — makespan and achieved concurrency of `n`
/// back-to-back creations under the one-hop network model.
pub fn sim_makespan(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("SIM-MAKESPAN");
    let n = scale(ctx);
    let space = HashSpace::full();
    let seed = derive_seed(&ctx.seeds, "sim-makespan", 0);

    println!("\n── SIM-MAKESPAN — {n} creations over {SNODES} snodes ──");
    let mut t = Table::new(&[
        "engine",
        "makespan",
        "Σ service",
        "parallelism",
        "msgs",
        "MB",
        "mean participants",
    ]);

    let mut add_row = |name: &str, trace: &domus_sim::SimTrace| {
        t.row(&[
            name.to_string(),
            trace.makespan().to_string(),
            trace.total_service().to_string(),
            num(trace.parallelism(), 2),
            trace.messages().to_string(),
            num(trace.bytes() as f64 / 1e6, 2),
            num(trace.mean_participants(), 1),
        ]);
    };

    let gcfg = DhtConfig::new(space, 32, 1).expect("powers of two");
    let mut gsim = SimDriver::new(GlobalDht::with_seed(gcfg, seed));
    gsim.grow(n, SNODES).expect("growth");
    add_row("global", gsim.trace());
    let g_makespan = gsim.trace().makespan();
    rep.note(format!(
        "global: makespan {}, parallelism {:.2} (fully serial by construction)",
        g_makespan,
        gsim.trace().parallelism()
    ));

    for vmin in [8u64, 32, 128] {
        let cfg = DhtConfig::new(space, 32, vmin).expect("powers of two");
        let mut sim = SimDriver::new(LocalDht::with_seed(cfg, seed));
        sim.grow(n, SNODES).expect("growth");
        add_row(&format!("local Vmin={vmin}"), sim.trace());
        rep.note(format!(
            "local Vmin={vmin}: makespan {} ({:.1}× faster than global), parallelism {:.2}",
            sim.trace().makespan(),
            g_makespan.nanos() as f64 / sim.trace().makespan().nanos().max(1) as f64,
            sim.trace().parallelism()
        ));
    }

    // The CH reference through the same generic driver: one ring-wide
    // record, so (like the global approach) every join serialises on it.
    let ccfg = DhtConfig::new(space, 32, 1).expect("powers of two");
    let mut csim = SimDriver::new(ChEngine::with_seed(ccfg, 32, seed));
    csim.grow(n, SNODES).expect("growth");
    add_row("CH k=32", csim.trace());
    rep.note(format!(
        "CH k=32: makespan {}, parallelism {:.2} (serial, like the global approach)",
        csim.trace().makespan(),
        csim.trace().parallelism()
    ));
    println!("{}", t.render());
    rep
}

/// **SIM-MSGS** — per-creation synchronisation cost as the DHT grows: the
/// GPDR round involves every snode and a `V`-entry record; the LPDR round
/// is bounded by the group.
pub fn sim_msgs(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("SIM-MSGS");
    let n = scale(ctx);
    let space = HashSpace::full();
    let seed = derive_seed(&ctx.seeds, "sim-msgs", 0);

    let gcfg = DhtConfig::new(space, 32, 1).expect("powers of two");
    let mut gsim = SimDriver::new(GlobalDht::with_seed(gcfg, seed));
    gsim.grow(n, SNODES).expect("growth");
    let lcfg = DhtConfig::new(space, 32, 32).expect("powers of two");
    let mut lsim = SimDriver::new(LocalDht::with_seed(lcfg, seed));
    lsim.grow(n, SNODES).expect("growth");

    println!("\n── SIM-MSGS — per-creation cost while growing to {n} vnodes ──");
    let mut t = Table::new(&["V", "global msgs", "global KB", "local msgs", "local KB"]);
    for &v in &[n / 8, n / 4, n / 2, n - 1] {
        let ge = &gsim.trace().events[v];
        let le = &lsim.trace().events[v];
        t.row(&[
            (v + 1).to_string(),
            ge.cost.messages.to_string(),
            num(ge.cost.bytes as f64 / 1e3, 2),
            le.cost.messages.to_string(),
            num(le.cost.bytes as f64 / 1e3, 2),
        ]);
    }
    println!("{}", t.render());

    let glast = &gsim.trace().events[n - 1].cost;
    let llast = &lsim.trace().events[n - 1].cost;
    rep.note(format!(
        "creation #{n}: global {} msgs / {:.1} KB vs local {} msgs / {:.1} KB",
        glast.messages,
        glast.bytes as f64 / 1e3,
        llast.messages,
        llast.bytes as f64 / 1e3
    ));
    rep.note(format!(
        "totals over the run: global {} msgs / {:.2} MB, local {} msgs / {:.2} MB",
        gsim.trace().messages(),
        gsim.trace().bytes() as f64 / 1e6,
        lsim.trace().messages(),
        lsim.trace().bytes() as f64 / 1e6
    ));
    rep
}

/// **SIM-MEM** — record replication footprint at the end state.
pub fn sim_mem(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("SIM-MEM");
    let n = ctx.n.min(1024);
    let space = HashSpace::full();
    let seed = derive_seed(&ctx.seeds, "sim-mem", 0);

    println!("\n── SIM-MEM — record entries replicated at {n} vnodes / {SNODES} snodes ──");
    let mut t =
        Table::new(&["engine", "total entries", "mean/snode", "max/snode", "records/snode (max)"]);

    let gcfg = DhtConfig::new(space, 32, 1).expect("powers of two");
    let mut g = GlobalDht::with_seed(gcfg, seed);
    for i in 0..n {
        g.create_vnode(domus_core::SnodeId(i as u32 % SNODES)).expect("growth");
    }
    let gfp = global_footprint(&g);
    t.row(&[
        "global (GPDR)".into(),
        gfp.total_entries().to_string(),
        num(gfp.mean_entries(), 0),
        gfp.max_entries().to_string(),
        "1".into(),
    ]);

    for vmin in [8u64, 32, 128] {
        let cfg = DhtConfig::new(space, 32, vmin).expect("powers of two");
        let mut dht = LocalDht::with_seed(cfg, seed);
        for i in 0..n {
            dht.create_vnode(domus_core::SnodeId(i as u32 % SNODES)).expect("growth");
        }
        let fp = local_footprint(&dht);
        t.row(&[
            format!("local Vmin={vmin} (LPDRs)"),
            fp.total_entries().to_string(),
            num(fp.mean_entries(), 0),
            fp.max_entries().to_string(),
            fp.per_snode_records.values().max().copied().unwrap_or(0).to_string(),
        ]);
        rep.note(format!(
            "local Vmin={vmin}: {} entries total vs global {} ({}× smaller)",
            fp.total_entries(),
            gfp.total_entries(),
            gfp.total_entries() / fp.total_entries().max(1)
        ));
    }
    println!("{}", t.render());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_experiment_shows_local_speedup() {
        let ctx = Ctx::quick(std::env::temp_dir().join("domus-simx-test"));
        let rep = sim_makespan(&ctx);
        assert!(rep.summary.iter().any(|l| l.contains("faster than global")));
    }

    #[test]
    fn memory_experiment_shows_reduction() {
        let ctx = Ctx::quick(std::env::temp_dir().join("domus-simx-test"));
        let rep = sim_mem(&ctx);
        assert!(rep.summary.iter().any(|l| l.contains("smaller")));
    }
}

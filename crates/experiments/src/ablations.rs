//! Ablations over the model's open policy choices (DESIGN.md §7):
//! ABL-VICTIM, ABL-CONTAINER, ABL-SPLITSEL.

use crate::output::write_csv;
use crate::runner::{average_runs, derive_seed};
use crate::{Ctx, ExpReport};
use domus_core::{
    ContainerChoice, DhtConfig, DhtEngine, LocalDht, SnodeId, SplitSelection, VictimPartitionPolicy,
};
use domus_hashspace::HashSpace;
use domus_metrics::table::{num, Table};

fn params(ctx: &Ctx) -> (u64, u64) {
    if ctx.n >= 512 {
        (32, 32)
    } else {
        (8, 8)
    }
}

fn growth_with(cfg: DhtConfig, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, u64) {
    let mut dht = LocalDht::with_seed(cfg, seed);
    let mut qv = Vec::with_capacity(n);
    let mut qg = Vec::with_capacity(n);
    let mut transfers = 0u64;
    for i in 0..n {
        let (_, rep) = dht.create_vnode(SnodeId(i as u32)).expect("growth");
        transfers += rep.transfers.len() as u64;
        qv.push(dht.vnode_quota_relstd_pct());
        qg.push(dht.group_quota_relstd_pct());
    }
    (qv, qg, transfers)
}

/// **ABL-VICTIM** — the donor-partition choice (First/Last/Random). Within
/// one balancement event the choice cannot change quotas (all partitions of
/// a group share one size), so while a single group exists the σ̄(Qv)
/// traces are bit-identical across policies. Once groups multiply, *which*
/// partition moved feeds back through the random-point victim lookup, so
/// full trajectories diverge stochastically — but the distribution quality
/// is statistically indistinguishable.
pub fn abl_victim(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("ABL-VICTIM");
    let (pmin, vmin) = params(ctx);
    let base = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");
    let runs = (ctx.runs / 2).max(4);

    let policies = [
        ("Random (paper-spirit)", VictimPartitionPolicy::Random),
        ("Last", VictimPartitionPolicy::Last),
        ("First", VictimPartitionPolicy::First),
    ];

    // Exact part: identical traces while one group exists (V ≤ Vmax).
    let seed = derive_seed(&ctx.seeds, "abl-victim", 0);
    let horizon = (2 * vmin) as usize;
    let exact: Vec<Vec<f64>> = policies
        .iter()
        .map(|&(_, p)| growth_with(base.with_victim_partition(p), horizon, seed).0)
        .collect();
    let single_group_identical = exact.iter().all(|t| *t == exact[0]);

    // Statistical part: run-averaged end-state σ̄ per policy.
    println!("\n── ABL-VICTIM — donor-partition policy ──");
    let mut t = Table::new(&["policy", "mean σ̄(Qv) at end %", "mean transfers/run"]);
    let mut ends = Vec::new();
    for &(name, p) in &policies {
        let cfg = base.with_victim_partition(p);
        let end =
            average_runs(name, &format!("abl-victim-{name}"), &ctx.seeds, runs, ctx.n, move |s| {
                growth_with(cfg, ctx.n, s).0
            })
            .mean_series()
            .last_y()
            .unwrap_or(f64::NAN);
        let mut transfers = 0u64;
        for r in 0..runs {
            transfers +=
                growth_with(cfg, ctx.n.min(256), derive_seed(&ctx.seeds, "abl-victim-tr", r)).2;
        }
        t.row(&[name.to_string(), num(end, 2), format!("{}", transfers / runs)]);
        ends.push(end);
    }
    println!("{}", t.render());
    rep.note(format!(
        "single-group traces bit-identical across policies: {single_group_identical} (quotas are count-determined per event)"
    ));
    let spread = ends.iter().cloned().fold(f64::MIN, f64::max)
        - ends.iter().cloned().fold(f64::MAX, f64::min);
    rep.note(format!(
        "run-averaged end σ̄ spread across policies: {spread:.2} pp (statistical noise)"
    ));
    rep
}

/// **ABL-CONTAINER** — §3.7 picks the container of the new vnode uniformly
/// from the two halves of a split; the alternative (the half that kept the
/// victim vnode) biases growth toward regions that attract lookups.
pub fn abl_container(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("ABL-CONTAINER");
    let (pmin, vmin) = params(ctx);
    let base = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");
    let runs = (ctx.runs / 2).max(4);

    let mut curves = Vec::new();
    let mut ends = Vec::new();
    for (name, choice) in [
        ("RandomHalf (paper)", ContainerChoice::RandomHalf),
        ("OwningHalf", ContainerChoice::OwningHalf),
    ] {
        let cfg = base.with_container_choice(choice);
        let label = format!("abl-container-{name}");
        let curve = average_runs(name, &label, &ctx.seeds, runs, ctx.n, move |seed| {
            growth_with(cfg, ctx.n, seed).0
        })
        .mean_series();
        ends.push(curve.last_y().unwrap_or(f64::NAN));
        curves.push(curve);
    }
    let path = write_csv(ctx, "abl_container", "vnodes", &curves);
    println!("\n── ABL-CONTAINER — container-group choice after a split ──");
    let mut t = Table::new(&["policy", "σ̄(Qv) at end %"]);
    t.row(&["RandomHalf (paper)".into(), num(ends[0], 2)]);
    t.row(&["OwningHalf".into(), num(ends[1], 2)]);
    println!("{}", t.render());
    rep.note(format!("csv: {}", path.display()));
    rep.note(format!("end-state σ̄(Qv): RandomHalf {:.2}% vs OwningHalf {:.2}%", ends[0], ends[1]));
    rep
}

/// **ABL-SPLITSEL** — random halves (paper) vs admission-order halves at
/// group splits: distribution quality and the per-snode LPDR burden.
pub fn abl_splitsel(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("ABL-SPLITSEL");
    let (pmin, vmin) = params(ctx);
    let base = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");
    let runs = (ctx.runs / 2).max(4);
    // Model a cluster of `s` snodes hosting the vnodes round-robin, then
    // count how many distinct groups each snode participates in (≈ LPDR
    // replicas it must hold).
    let snodes = 16u32;

    println!("\n── ABL-SPLITSEL — group-split membership selection ──");
    let mut t = Table::new(&["policy", "σ̄(Qv) at end %", "mean LPDRs/snode", "max LPDRs/snode"]);
    for (name, sel) in [
        ("RandomHalves (paper)", SplitSelection::RandomHalves),
        ("AdmissionOrder", SplitSelection::AdmissionOrder),
    ] {
        let cfg = base.with_split_selection(sel);
        let end = average_runs(
            name,
            &format!("abl-splitsel-{name}"),
            &ctx.seeds,
            runs,
            ctx.n,
            move |seed| {
                let mut dht = LocalDht::with_seed(cfg, seed);
                let mut out = Vec::with_capacity(ctx.n);
                for i in 0..ctx.n {
                    dht.create_vnode(SnodeId(i as u32 % snodes)).expect("growth");
                    out.push(dht.vnode_quota_relstd_pct());
                }
                out
            },
        )
        .mean_series()
        .last_y()
        .unwrap_or(f64::NAN);

        // LPDR burden measured on one representative run.
        let mut dht = LocalDht::with_seed(cfg, derive_seed(&ctx.seeds, "abl-splitsel-burden", 1));
        for i in 0..ctx.n {
            dht.create_vnode(SnodeId(i as u32 % snodes)).expect("growth");
        }
        let mut per_snode: std::collections::BTreeMap<u32, std::collections::BTreeSet<String>> =
            Default::default();
        for v in dht.vnodes() {
            let s = dht.snode_of(v).expect("alive").0;
            let g = dht.group_of(v).expect("alive").to_string();
            per_snode.entry(s).or_default().insert(g);
        }
        let counts: Vec<usize> = per_snode.values().map(|s| s.len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
        let max = counts.iter().max().copied().unwrap_or(0);
        t.row(&[name.to_string(), num(end, 2), num(mean, 1), max.to_string()]);
        rep.note(format!("{name}: end σ̄ {end:.2}%, mean LPDRs/snode {mean:.1}, max {max}"));
    }
    println!("{}", t.render());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_policies_agree_exactly_while_one_group_exists() {
        // Up to V = Vmax there is a single group: the victim lookup cannot
        // influence anything, so quota traces are identical per event.
        let cfg = DhtConfig::new(HashSpace::full(), 8, 8).unwrap();
        let n = 16; // Vmax
        let (a, _, ta) = growth_with(cfg.with_victim_partition(VictimPartitionPolicy::Last), n, 7);
        let (b, _, tb) = growth_with(cfg.with_victim_partition(VictimPartitionPolicy::First), n, 7);
        let (c, _, tc) =
            growth_with(cfg.with_victim_partition(VictimPartitionPolicy::Random), n, 7);
        assert_eq!(a, b, "quota traces are count-determined");
        assert_eq!(a, c);
        assert_eq!(ta, tb);
        assert_eq!(ta, tc);
    }

    #[test]
    fn container_policies_both_preserve_invariants() {
        for choice in [ContainerChoice::RandomHalf, ContainerChoice::OwningHalf] {
            let cfg =
                DhtConfig::new(HashSpace::full(), 4, 4).unwrap().with_container_choice(choice);
            let mut dht = LocalDht::with_seed(cfg, 3);
            for i in 0..60u32 {
                dht.create_vnode(SnodeId(i)).unwrap();
            }
            dht.check_invariants().unwrap();
        }
    }

    #[test]
    fn splitsel_policies_both_preserve_invariants() {
        for sel in [SplitSelection::RandomHalves, SplitSelection::AdmissionOrder] {
            let cfg = DhtConfig::new(HashSpace::full(), 4, 4).unwrap().with_split_selection(sel);
            let mut dht = LocalDht::with_seed(cfg, 3);
            for i in 0..60u32 {
                dht.create_vnode(SnodeId(i % 8)).unwrap();
            }
            dht.check_invariants().unwrap();
        }
    }
}

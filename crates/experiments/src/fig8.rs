//! **FIG8** — Figure 8 of the paper: evolution of `σ̄(Qg, Q̄g)`, the quality
//! of balancement *between groups*, during the same `Pmin = Vmin = 32`
//! growth as figure 7.
//!
//! `σ̄(Qg)` is measured against the ideal average quota `Q̄g = 1/G`; its
//! spikes correlate with the divergence between `G_real` and `G_ideal`
//! (§4.2.1): whenever real and ideal group counts drift apart, groups with
//! very different quotas coexist.

use crate::output::{canonical_samples, print_plot, sample_points, write_csv};
use crate::runner::{average_runs, derive_seed, local_growth};
use crate::{Ctx, ExpReport};
use domus_core::{ideal_group_count, DhtConfig};
use domus_hashspace::HashSpace;
use domus_metrics::series::Series;
use domus_metrics::table::{num, Table};

/// Matches figure 7's parameter scaling.
fn params(ctx: &Ctx) -> (u64, u64) {
    if ctx.n >= 512 {
        (32, 32)
    } else {
        (8, 8)
    }
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExpReport {
    let mut rep = ExpReport::new("FIG8");
    let (pmin, vmin) = params(ctx);
    let cfg = DhtConfig::new(HashSpace::full(), pmin, vmin).expect("powers of two");

    let avg =
        average_runs("σ̄(Qg) (mean of runs)", "fig7", &ctx.seeds, ctx.runs, ctx.n, move |seed| {
            local_growth(cfg, ctx.n, seed).iter().map(|g| g.group_relstd).collect()
        })
        .mean_series();
    let single_seed = derive_seed(&ctx.seeds, "fig7", 0);
    let single_run = local_growth(cfg, ctx.n, single_seed);
    let single = Series::new(
        "σ̄(Qg) (single run)",
        (1..=ctx.n).map(|i| i as f64).collect(),
        single_run.iter().map(|g| g.group_relstd).collect(),
    );

    let curves = vec![avg.clone(), single.clone()];
    let path = write_csv(ctx, "fig8_sigma_qg", "vnodes", &curves);
    rep.note(format!("csv: {}", path.display()));
    rep.note(format!("parameters: Pmin = Vmin = {vmin} (same runs as FIG7)"));

    print_plot(
        "Figure 8 — evolution of σ̄(Qg) between groups",
        &curves,
        "quality of the balancement between groups (%)",
        "overall number of vnodes",
        Some(40.0),
    );

    let samples = canonical_samples(ctx.n);
    let mut t = Table::new(&["V", "σ̄(Qg) mean %", "σ̄(Qg) single %"]);
    for &x in &samples {
        t.row(&[
            format!("{x:.0}"),
            num(sample_points(&curves[0], &[x])[0].1, 2),
            num(sample_points(&curves[1], &[x])[0].1, 2),
        ]);
    }
    println!("{}", t.render());

    let (peak_x, peak_y) = avg.max_point().unwrap_or((0.0, 0.0));
    rep.note(format!("peak run-averaged σ̄(Qg): {peak_y:.2}% at V = {peak_x:.0}"));

    // Spike ↔ divergence correlation (§4.2.1): compare σ̄(Qg) where
    // G_real = G_ideal against where they differ, within the single run.
    let mut aligned = Vec::new();
    let mut diverged = Vec::new();
    for (i, g) in single_run.iter().enumerate() {
        let ideal = ideal_group_count((i + 1) as u64, 2 * vmin) as f64;
        if (g.groups - ideal).abs() < 0.5 {
            aligned.push(g.group_relstd);
        } else {
            diverged.push(g.group_relstd);
        }
    }
    let mean =
        |v: &[f64]| if v.is_empty() { f64::NAN } else { v.iter().sum::<f64>() / v.len() as f64 };
    rep.note(format!(
        "single run: mean σ̄(Qg) while G_real = G_ideal: {:.2}% | while diverged: {:.2}% (spikes follow divergence)",
        mean(&aligned),
        mean(&diverged)
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_imbalance_spikes_after_first_split() {
        let cfg = DhtConfig::new(HashSpace::full(), 8, 8).unwrap();
        let run = local_growth(cfg, 100, 7);
        // While one group exists, σ̄(Qg) = 0 (a single quota of 1).
        for g in &run[..16] {
            assert_eq!(g.group_relstd, 0.0);
        }
        // After groups multiply there must be nonzero imbalance somewhere.
        assert!(run[17..].iter().any(|g| g.group_relstd > 0.0));
    }

    #[test]
    fn divergence_correlates_with_spikes() {
        let cfg = DhtConfig::new(HashSpace::full(), 8, 8).unwrap();
        let run = local_growth(cfg, 200, 11);
        let mut aligned = Vec::new();
        let mut diverged = Vec::new();
        for (i, g) in run.iter().enumerate() {
            let ideal = ideal_group_count((i + 1) as u64, 16) as f64;
            if (g.groups - ideal).abs() < 0.5 {
                aligned.push(g.group_relstd);
            } else {
                diverged.push(g.group_relstd);
            }
        }
        if !aligned.is_empty() && !diverged.is_empty() {
            let ma = aligned.iter().sum::<f64>() / aligned.len() as f64;
            let md = diverged.iter().sum::<f64>() / diverged.len() as f64;
            assert!(md > ma, "diverged σ̄(Qg) ({md:.2}) must exceed aligned ({ma:.2})");
        }
    }
}
